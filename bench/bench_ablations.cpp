// Ablations of the documented design decisions (docs/DESIGN.md §3): how
// much do (a) SBU's opportunistic sibling-processor coalescing and (b) the
// iterated (transitive) grouping technique matter, and (c) how often does
// the three-loop server selection succeed where random selection fails.
// Every variant (default and ablation) is pulled from the strategy registry.
#include <cstdio>

#include "bench_common.hpp"
#include "core/downgrade.hpp"
#include "core/server_selection.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

struct VariantStats {
  SampleSet cost;
  int attempts = 0;
  int failures = 0;
};

void run_variant(const Problem& prob, const PlacementFn& place,
                 std::uint64_t seed, bool three_loop, VariantStats* stats) {
  ++stats->attempts;
  Rng rng(seed);
  PlacementState state(prob);
  const PlacementOutcome placed = place(state, rng);
  if (!placed.success) {
    ++stats->failures;
    return;
  }
  Allocation alloc = state.to_allocation();
  const ServerSelectionResult sel =
      three_loop ? select_servers_three_loop(prob, alloc)
                 : select_servers_random(prob, alloc, rng);
  if (!sel.success) {
    ++stats->failures;
    return;
  }
  downgrade_processors(prob, alloc);
  stats->cost.add(alloc.total_cost(*prob.catalog));
}

void print_stats(const char* name, const VariantStats& s) {
  if (s.cost.empty()) {
    std::printf("  %-44s all %d runs failed\n", name, s.attempts);
  } else {
    std::printf("  %-44s mean $%-9.0f fail %d/%d\n", name, s.cost.mean(),
                s.failures, s.attempts);
  }
}

} // namespace

int main(int argc, char** argv) {
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/20, /*accepts_heuristics=*/false);

  std::printf("Ablations of documented design decisions\n"
              "========================================\n\n");

  // ---- (a) SBU coalescing, small objects, two alphas. ----------------------
  for (double alpha : {0.9, 1.5}) {
    for (int n : {40, 80}) {
      VariantStats with_coalesce, without_coalesce;
      for (int rep = 0; rep < flags.repetitions; ++rep) {
        const Instance inst = make_instance(flags.seed + rep,
                                            paper_instance(n, alpha));
        const Problem prob = inst.problem();
        run_variant(prob, strategy_for(HeuristicKind::SubtreeBottomUp).place,
                    flags.seed + rep, true, &with_coalesce);
        run_variant(prob, strategy_for(HeuristicKind::SbuNoCoalesce).place,
                    flags.seed + rep, true, &without_coalesce);
      }
      std::printf("SBU coalescing (N=%d, alpha=%.1f):\n", n, alpha);
      print_stats("with sibling coalescing (default)", with_coalesce);
      print_stats("without (paper-literal parent merge)", without_coalesce);
    }
  }

  // ---- (b) grouping: iterated vs pair-only, large objects. -----------------
  std::printf("\nGrouping technique (Random placement, large objects, "
              "N=30, alpha=0.9):\n");
  {
    VariantStats iterated, pair_only;
    for (int rep = 0; rep < flags.repetitions; ++rep) {
      InstanceConfig cfg = paper_instance(30, 0.9);
      cfg.tree.object_size_lo = 450.0;
      cfg.tree.object_size_hi = 530.0;
      const Instance inst = make_instance(flags.seed + rep, cfg);
      const Problem prob = inst.problem();
      run_variant(prob, strategy_for(HeuristicKind::Random).place,
                  flags.seed + rep, false, &iterated);
      run_variant(prob, strategy_for(HeuristicKind::RandomPairGrouping).place,
                  flags.seed + rep, false, &pair_only);
    }
    print_stats("iterated transitive grouping (default)", iterated);
    print_stats("pair-only grouping (paper-literal)", pair_only);
  }

  // ---- (c) server selection policy under download pressure. ----------------
  std::printf("\nServer selection (Comp-Greedy placement, large objects, "
              "N=30, alpha=0.9):\n");
  {
    VariantStats three_loop, random_sel;
    for (int rep = 0; rep < flags.repetitions; ++rep) {
      InstanceConfig cfg = paper_instance(30, 0.9);
      cfg.tree.object_size_lo = 450.0;
      cfg.tree.object_size_hi = 530.0;
      const Instance inst = make_instance(flags.seed + rep, cfg);
      const Problem prob = inst.problem();
      run_variant(prob, strategy_for(HeuristicKind::CompGreedy).place,
                  flags.seed + rep, true, &three_loop);
      run_variant(prob, strategy_for(HeuristicKind::CompGreedy).place,
                  flags.seed + rep, false, &random_sel);
    }
    print_stats("three-loop selection (default)", three_loop);
    print_stats("random selection", random_sel);
  }
  return 0;
}
