// Ablations of the documented design decisions (docs/DESIGN.md §3): how
// much do (a) SBU's opportunistic sibling-processor coalescing and (b) the
// iterated (transitive) grouping technique matter, (c) how often does the
// three-loop server selection succeed where random selection fails, and
// (d) how much of the subexpression analysis' *predicted* sharing savings
// the fold pass (multi/subexpression_fold) actually *realizes* as fleet
// cost, sim-verified, and (e) how far each registry heuristic's full-
// pipeline cost sits above the PROVED exact optimum at paper sizes
// (docs/DESIGN.md §14).  Sections (d) and (e) emit machine-readable
// BENCH_ablations.json rows tagged "section": "fold" / "optimality_gap"
// (schema checked in CI by scripts/check_bench_json.py); --gate makes an
// unrealized saving, an unsustained plan, an unproved gap anchor or a
// heuristic gap above its pinned ceiling a hard failure.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/downgrade.hpp"
#include "core/server_selection.hpp"
#include "multi/multi_app.hpp"
#include "multi/subexpression.hpp"
#include "multi/subexpression_fold.hpp"
#include "platform/server_distribution.hpp"
#include "report/optimality_gap.hpp"
#include "sim/event_sim.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

struct VariantStats {
  SampleSet cost;
  int attempts = 0;
  int failures = 0;
};

void run_variant(const Problem& prob, const PlacementFn& place,
                 std::uint64_t seed, bool three_loop, VariantStats* stats) {
  ++stats->attempts;
  Rng rng(seed);
  PlacementState state(prob);
  const PlacementOutcome placed = place(state, rng);
  if (!placed.success) {
    ++stats->failures;
    return;
  }
  Allocation alloc = state.to_allocation();
  const ServerSelectionResult sel =
      three_loop ? select_servers_three_loop(prob, alloc)
                 : select_servers_random(prob, alloc, rng);
  if (!sel.success) {
    ++stats->failures;
    return;
  }
  downgrade_processors(prob, alloc);
  stats->cost.add(alloc.total_cost(*prob.catalog));
}

void print_stats(const char* name, const VariantStats& s) {
  if (s.cost.empty()) {
    std::printf("  %-44s all %d runs failed\n", name, s.attempts);
  } else {
    std::printf("  %-44s mean $%-9.0f fail %d/%d\n", name, s.cost.mean(),
                s.failures, s.attempts);
  }
}

// ---- (d) realized vs predicted subexpression sharing. ----------------------

struct FoldRow {
  int rep = 0;
  int num_apps = 0;
  int operators_forest = 0;
  int operators_folded = 0;
  int shared_nodes = 0;
  double predicted_work_saved = 0.0;
  double predicted_cost_bound = 0.0;
  double realized_work_saved = 0.0;
  double unfolded_cost = 0.0;
  double folded_cost = 0.0;
  double realized_cost_saving = 0.0;
  bool both_allocated = false;
  bool unfolded_sustained = false;
  bool folded_sustained = false;
};

/// Seeded shared-subexpression workload: three applications, two of them
/// identical (guaranteed maximal sharing), one independent, over one object
/// catalog.  The duplicated pair is what the fold pass can merge; the
/// third keeps the allocator honest about coexisting unshared work.
FoldRow run_fold_rep(int rep, std::uint64_t seed) {
  FoldRow row;
  row.rep = rep;
  Rng gen(seed);
  ObjectCatalog objects = ObjectCatalog::random(gen, 15, 5.0, 30.0, 0.5);
  TreeGenConfig tcfg;
  tcfg.num_operators = 20;
  tcfg.alpha = 1.0;
  std::vector<ApplicationSpec> apps;
  {
    Rng t(seed * 3 + 1);
    apps.push_back({generate_random_tree(t, tcfg, objects), 1.0});
  }
  {
    Rng t(seed * 3 + 1);  // identical draw: shared subexpressions
    apps.push_back({generate_random_tree(t, tcfg, objects), 1.0});
  }
  {
    Rng t(seed * 3 + 2);
    apps.push_back({generate_random_tree(t, tcfg, objects), 1.0});
  }
  row.num_apps = static_cast<int>(apps.size());

  ServerDistConfig dist;
  const Platform platform = make_paper_platform(gen, dist);
  const PriceCatalog catalog = PriceCatalog::paper_default();

  const SharingSavings predicted = estimate_sharing_savings(apps, catalog);
  row.predicted_work_saved = predicted.work_saved;
  row.predicted_cost_bound = predicted.cost_bound;

  const CombinedApplication c = combine_applications(apps);
  const FoldResult f = fold_shared_subexpressions(c.forest);
  row.operators_forest = f.stats.operators_before;
  row.operators_folded = f.stats.operators_after;
  row.shared_nodes = f.stats.shared_nodes;
  row.realized_work_saved = f.stats.work_saved;

  Problem unfolded;
  unfolded.tree = &c.forest;
  unfolded.platform = &platform;
  unfolded.catalog = &catalog;
  Problem folded = unfolded;
  folded.tree = &f.dag;

  Rng r1(seed ^ 0x5bd1e995u), r2(seed ^ 0x5bd1e995u);
  const AllocationOutcome before =
      allocate(unfolded, HeuristicKind::SubtreeBottomUp, r1);
  const AllocationOutcome after =
      allocate(folded, HeuristicKind::SubtreeBottomUp, r2);
  row.both_allocated = before.success && after.success;
  if (!row.both_allocated) return row;

  row.unfolded_cost = before.cost;
  row.folded_cost = after.cost;
  row.realized_cost_saving = before.cost - after.cost;
  row.unfolded_sustained =
      simulate_allocation(unfolded, before.allocation).sustained;
  row.folded_sustained =
      simulate_allocation(folded, after.allocation).sustained;
  return row;
}

// ---- (e) heuristic cost vs PROVED exact optimum at paper sizes. ------------

struct GapRow {
  int n = 0;
  double alpha = 0.0;
  std::string heuristic;
  int attempts = 0;   ///< instances where the heuristic pipeline succeeded
  int measured = 0;   ///< ... and the exact anchor proved Optimal
  double gap_mean = 0.0;  ///< heuristic cost / optimum over measured
  double gap_max = 0.0;
  std::uint64_t nodes_total = 0;  ///< branch-and-bound nodes across anchors
};

std::vector<GapRow> run_gap_section(std::uint64_t seed, int reps) {
  std::vector<GapRow> rows;
  for (double alpha : {0.9, 1.7}) {
    for (int n : {10, 16, 20}) {
      std::vector<GapRow> per_h;
      for (HeuristicKind h : all_heuristics()) {
        GapRow row;
        row.n = n;
        row.alpha = alpha;
        row.heuristic = heuristic_name(h);
        per_h.push_back(row);
      }
      for (int rep = 0; rep < reps; ++rep) {
        const Instance inst = make_instance(seed + 1000 * rep + n,
                                            paper_instance(n, alpha));
        const Problem prob = inst.problem();
        // One exact solve anchors every heuristic on this instance.
        const ExactResult ex = solve_exact(prob, ExactSolverConfig{});
        std::size_t idx = 0;
        for (HeuristicKind h : all_heuristics()) {
          GapRow& row = per_h[idx++];
          Rng rng(seed + rep);
          const AllocationOutcome out = allocate(prob, h, rng);
          if (!out.success) continue;
          ++row.attempts;
          OptimalityGap gap;
          gap.exact_status = ex.status;
          gap.exact_cost = ex.cost;
          gap.observed_cost = out.cost;
          gap.nodes_visited = ex.nodes_visited;
          row.nodes_total += ex.nodes_visited;
          if (!gap.measured()) continue;
          ++row.measured;
          row.gap_mean += gap.ratio();
          row.gap_max = std::max(row.gap_max, gap.ratio());
        }
      }
      for (GapRow& row : per_h) {
        if (row.measured > 0) row.gap_mean /= row.measured;
        rows.push_back(row);
      }
    }
  }
  return rows;
}

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<FoldRow>& rows,
                const std::vector<GapRow>& gap_rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablations\",\n");
  std::fprintf(f, "  \"schema_version\": 2,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FoldRow& r = rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"section\": \"fold\",\n");
    std::fprintf(f, "      \"rep\": %d,\n", r.rep);
    std::fprintf(f, "      \"num_apps\": %d,\n", r.num_apps);
    std::fprintf(f, "      \"operators_forest\": %d,\n", r.operators_forest);
    std::fprintf(f, "      \"operators_folded\": %d,\n", r.operators_folded);
    std::fprintf(f, "      \"shared_nodes\": %d,\n", r.shared_nodes);
    std::fprintf(f, "      \"predicted_work_saved\": %.4f,\n",
                 r.predicted_work_saved);
    std::fprintf(f, "      \"predicted_cost_bound\": %.4f,\n",
                 r.predicted_cost_bound);
    std::fprintf(f, "      \"realized_work_saved\": %.4f,\n",
                 r.realized_work_saved);
    std::fprintf(f, "      \"unfolded_cost\": %.2f,\n", r.unfolded_cost);
    std::fprintf(f, "      \"folded_cost\": %.2f,\n", r.folded_cost);
    std::fprintf(f, "      \"realized_cost_saving\": %.2f,\n",
                 r.realized_cost_saving);
    std::fprintf(f, "      \"both_allocated\": %s,\n",
                 r.both_allocated ? "true" : "false");
    std::fprintf(f, "      \"unfolded_sustained\": %s,\n",
                 r.unfolded_sustained ? "true" : "false");
    std::fprintf(f, "      \"folded_sustained\": %s\n",
                 r.folded_sustained ? "true" : "false");
    const bool last = i + 1 == rows.size() && gap_rows.empty();
    std::fprintf(f, "    }%s\n", last ? "" : ",");
  }
  for (std::size_t i = 0; i < gap_rows.size(); ++i) {
    const GapRow& r = gap_rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"section\": \"optimality_gap\",\n");
    std::fprintf(f, "      \"n\": %d,\n", r.n);
    std::fprintf(f, "      \"alpha\": %.2f,\n", r.alpha);
    std::fprintf(f, "      \"heuristic\": \"%s\",\n", r.heuristic.c_str());
    std::fprintf(f, "      \"attempts\": %d,\n", r.attempts);
    std::fprintf(f, "      \"measured\": %d,\n", r.measured);
    std::fprintf(f, "      \"gap_mean\": %.4f,\n", r.gap_mean);
    std::fprintf(f, "      \"gap_max\": %.4f,\n", r.gap_max);
    std::fprintf(f, "      \"nodes_total\": %llu\n",
                 static_cast<unsigned long long>(r.nodes_total));
    std::fprintf(f, "    }%s\n", i + 1 < gap_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/20, /*accepts_heuristics=*/false);
  const std::string json_path = args.get("json", "BENCH_ablations.json");
  const bool smoke = args.get_bool("smoke", false);
  const bool gate = args.get_bool("gate", false);
  const int reps = smoke ? std::min(flags.repetitions, 5) : flags.repetitions;

  std::printf("Ablations of documented design decisions\n"
              "========================================\n\n");

  // ---- (a) SBU coalescing, small objects, two alphas. ----------------------
  for (double alpha : {0.9, 1.5}) {
    for (int n : {40, 80}) {
      VariantStats with_coalesce, without_coalesce;
      for (int rep = 0; rep < reps; ++rep) {
        const Instance inst = make_instance(flags.seed + rep,
                                            paper_instance(n, alpha));
        const Problem prob = inst.problem();
        run_variant(prob, strategy_for(HeuristicKind::SubtreeBottomUp).place,
                    flags.seed + rep, true, &with_coalesce);
        run_variant(prob, strategy_for(HeuristicKind::SbuNoCoalesce).place,
                    flags.seed + rep, true, &without_coalesce);
      }
      std::printf("SBU coalescing (N=%d, alpha=%.1f):\n", n, alpha);
      print_stats("with sibling coalescing (default)", with_coalesce);
      print_stats("without (paper-literal parent merge)", without_coalesce);
    }
  }

  // ---- (b) grouping: iterated vs pair-only, large objects. -----------------
  std::printf("\nGrouping technique (Random placement, large objects, "
              "N=30, alpha=0.9):\n");
  {
    VariantStats iterated, pair_only;
    for (int rep = 0; rep < reps; ++rep) {
      InstanceConfig cfg = paper_instance(30, 0.9);
      cfg.tree.object_size_lo = 450.0;
      cfg.tree.object_size_hi = 530.0;
      const Instance inst = make_instance(flags.seed + rep, cfg);
      const Problem prob = inst.problem();
      run_variant(prob, strategy_for(HeuristicKind::Random).place,
                  flags.seed + rep, false, &iterated);
      run_variant(prob, strategy_for(HeuristicKind::RandomPairGrouping).place,
                  flags.seed + rep, false, &pair_only);
    }
    print_stats("iterated transitive grouping (default)", iterated);
    print_stats("pair-only grouping (paper-literal)", pair_only);
  }

  // ---- (c) server selection policy under download pressure. ----------------
  std::printf("\nServer selection (Comp-Greedy placement, large objects, "
              "N=30, alpha=0.9):\n");
  {
    VariantStats three_loop, random_sel;
    for (int rep = 0; rep < reps; ++rep) {
      InstanceConfig cfg = paper_instance(30, 0.9);
      cfg.tree.object_size_lo = 450.0;
      cfg.tree.object_size_hi = 530.0;
      const Instance inst = make_instance(flags.seed + rep, cfg);
      const Problem prob = inst.problem();
      run_variant(prob, strategy_for(HeuristicKind::CompGreedy).place,
                  flags.seed + rep, true, &three_loop);
      run_variant(prob, strategy_for(HeuristicKind::CompGreedy).place,
                  flags.seed + rep, false, &random_sel);
    }
    print_stats("three-loop selection (default)", three_loop);
    print_stats("random selection", random_sel);
  }

  // ---- (d) subexpression folding: realized vs predicted savings. -----------
  std::printf("\nSubexpression folding (SBU, 3 apps with one duplicated "
              "pair, N=20):\n");
  std::printf("  %-4s %-11s %-10s %-10s %-10s %-10s %-9s %s\n", "rep",
              "pred Mops", "real Mops", "unfolded$", "folded$", "saved$",
              "sustained", "ops");
  std::vector<FoldRow> fold_rows;
  int compared = 0, saved = 0, unsustained = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const FoldRow row = run_fold_rep(rep, flags.seed + static_cast<std::uint64_t>(rep));
    fold_rows.push_back(row);
    if (!row.both_allocated) {
      std::printf("  %-4d allocation failed on one side\n", rep);
      continue;
    }
    ++compared;
    if (row.realized_cost_saving > 0.0) ++saved;
    if (!row.unfolded_sustained || !row.folded_sustained) ++unsustained;
    std::printf("  %-4d %-11.0f %-10.0f %-10.0f %-10.0f %-10.0f %d/%d       "
                "%d->%d\n",
                rep, row.predicted_work_saved, row.realized_work_saved,
                row.unfolded_cost, row.folded_cost, row.realized_cost_saving,
                row.unfolded_sustained ? 1 : 0, row.folded_sustained ? 1 : 0,
                row.operators_forest, row.operators_folded);
  }
  std::printf("  folding lowered fleet cost in %d/%d comparable runs\n",
              saved, compared);

  // ---- (e) heuristic gap vs the exact optimum (docs/DESIGN.md §14). --------
  std::printf("\nOptimality gap vs exact branch-and-bound (full pipeline, "
              "paper catalog):\n");
  std::printf("  %-4s %-6s %-22s %-9s %-10s %s\n", "N", "alpha", "heuristic",
              "measured", "gap mean", "gap max");
  const std::vector<GapRow> gap_rows = run_gap_section(flags.seed, reps);
  for (const GapRow& r : gap_rows) {
    std::printf("  %-4d %-6.1f %-22s %d/%-7d %-10.3f %.3f\n", r.n, r.alpha,
                r.heuristic.c_str(), r.measured, r.attempts, r.gap_mean,
                r.gap_max);
  }

  write_json(json_path, flags.seed, fold_rows, gap_rows);
  std::printf("\njson written to %s\n", json_path.c_str());

  if (gate) {
    // The fold pass must realize savings, not just predict them: every
    // comparable run sim-sustained on both sides, never a cost regression,
    // and a strict improvement in at least one run.
    bool regressed = false;
    for (const FoldRow& r : fold_rows) {
      if (r.both_allocated && r.realized_cost_saving < 0.0) regressed = true;
    }
    if (compared == 0 || unsustained > 0 || regressed || saved == 0) {
      std::fprintf(stderr,
                   "GATE FAILED: compared=%d unsustained=%d regressed=%d "
                   "saved=%d\n",
                   compared, unsustained, regressed ? 1 : 0, saved);
      return 1;
    }
    // Gap-regression gate: at these sizes the exact anchor must prove every
    // attempted instance (measured == attempts, anchors never time out),
    // and the workhorse heuristic must stay near-optimal.  The 1.35x
    // ceiling is pinned well above the measured Subtree-bottom-up mean so
    // only a genuine regression trips it.
    bool gap_ok = !gap_rows.empty();
    for (const GapRow& r : gap_rows) {
      if (r.measured != r.attempts) {
        std::fprintf(stderr,
                     "GATE FAILED: gap anchor unproved for %s N=%d "
                     "alpha=%.1f (%d/%d)\n",
                     r.heuristic.c_str(), r.n, r.alpha, r.measured,
                     r.attempts);
        gap_ok = false;
      }
      if (r.heuristic == "Subtree-bottom-up" && r.measured > 0 &&
          r.gap_mean > 1.35) {
        std::fprintf(stderr,
                     "GATE FAILED: SBU gap regressed: mean %.3fx at N=%d "
                     "alpha=%.1f (ceiling 1.35x)\n",
                     r.gap_mean, r.n, r.alpha);
        gap_ok = false;
      }
    }
    if (!gap_ok) return 1;
    std::printf("gate passed: %d comparable fold runs, all sustained, "
                "%d with strictly lower cost; %zu gap rows, all anchors "
                "proved\n",
                compared, saved, gap_rows.size());
  }
  return 0;
}
