// Reproduces paper Table 1: the platform cost catalog (Dell PowerEdge R900,
// March 2008) with the derived performance/cost ratios.
#include <cstdio>

#include "platform/catalog.hpp"

using namespace insp;

int main() {
  const PriceCatalog cat = PriceCatalog::paper_default();

  std::printf("Table 1: platform costs\n=======================\n\n");
  std::printf("Processor\n%-18s %-16s %s\n", "Performance (GHz)", "Cost ($)",
              "Ratio (GHz/$)");
  for (const auto& cpu : cat.cpus()) {
    const double ghz = cpu.speed / 1000.0;
    const double cost = cat.base_price() + cpu.upgrade;
    std::printf("%-18.2f %5.0f + %-8.0f %.2f e-3\n", ghz, cat.base_price(),
                cpu.upgrade, 1000.0 * ghz / cost);
  }
  std::printf("\nNetwork Card\n%-18s %-16s %s\n", "Bandwidth (Gbps)",
              "Cost ($)", "Ratio (Gbps/$)");
  for (const auto& nic : cat.nics()) {
    const double gbps = nic.bandwidth / 125.0;
    const double cost = cat.base_price() + nic.upgrade;
    std::printf("%-18.0f %5.0f + %-8.0f %.2f e-4\n", gbps, cat.base_price(),
                nic.upgrade, 10000.0 * gbps / cost);
  }

  std::printf("\nDerived configurations: %d combinations, $%.0f (cheapest: %s)"
              " to $%.0f (most expensive: %s)\n",
              cat.num_configs(), cat.cost(cat.cheapest()),
              cat.describe(cat.cheapest()).c_str(),
              cat.cost(cat.most_expensive()),
              cat.describe(cat.most_expensive()).c_str());
  return 0;
}
