// Self-healing control-loop study (docs/DESIGN.md §12): for each chaos
// class — correlated rack failure, flapping server, slow-node brownout,
// network partition — a seeded ChaosTrace is rendered to its heartbeat
// stream and driven through the failure detector + DynamicAllocator repair
// loop (health/health_monitor).  No oracle: every repair the loop performs
// was *inferred* from missed or delayed beats.  Reported per class:
//
//   detection latency   beats from ground-truth transition to inference
//   repair latency      wall ms per inferred event (median)
//   recovery periods    beats from ground-truth heal to trusted-again
//
// together with the detection / repair / sim-sustained rates, emitted as
// machine-readable BENCH_chaos.json.  --gate enforces the acceptance
// thresholds (>= 95% detected, repaired, sustained); --smoke shrinks the
// sweep to the canonical pinned row per class (chaos_world.hpp).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_support/chaos_world.hpp"
#include "health/health_monitor.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

struct ClassResult {
  ChaosClass cls = ChaosClass::RackFailure;
  ChaosWorldScale scale;
  int faults = 0;
  ChaosScore score;
  int events = 0;
  int simulated = 0;
  int sustained = 0;
  double median_repair_ms = 0.0;
  Dollars final_cost = 0.0;
  std::uint64_t signature = 0;

  double detection_rate() const {
    return score.truth_down > 0
               ? static_cast<double>(score.detected) / score.truth_down
               : 1.0;
  }
  double repaired_rate() const {
    return score.truth_down > 0
               ? static_cast<double>(score.repaired) / score.truth_down
               : 1.0;
  }
  double sustained_rate() const {
    return simulated > 0 ? static_cast<double>(sustained) / simulated : 1.0;
  }
};

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<ClassResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"chaos\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ClassResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"chaos_class\": \"%s\",\n", to_string(r.cls));
    std::fprintf(f, "      \"num_operators\": %d,\n", r.scale.n);
    std::fprintf(f, "      \"initial_apps\": %d,\n", r.scale.apps);
    std::fprintf(f, "      \"faults\": %d,\n", r.faults);
    std::fprintf(f, "      \"truth_down\": %d,\n", r.score.truth_down);
    std::fprintf(f, "      \"detected\": %d,\n", r.score.detected);
    std::fprintf(f, "      \"repaired\": %d,\n", r.score.repaired);
    std::fprintf(f, "      \"recovered\": %d,\n", r.score.recovered);
    std::fprintf(f, "      \"detection_rate\": %.4f,\n", r.detection_rate());
    std::fprintf(f, "      \"mean_detection_beats\": %.4f,\n",
                 r.score.mean_detection_beats);
    std::fprintf(f, "      \"max_detection_beats\": %.4f,\n",
                 r.score.max_detection_beats);
    std::fprintf(f, "      \"median_repair_ms\": %.4f,\n",
                 r.median_repair_ms);
    std::fprintf(f, "      \"mean_recovery_beats\": %.4f,\n",
                 r.score.mean_recovery_beats);
    std::fprintf(f, "      \"max_recovery_beats\": %.4f,\n",
                 r.score.max_recovery_beats);
    std::fprintf(f, "      \"events_inferred\": %d,\n", r.events);
    std::fprintf(f, "      \"events_simulated\": %d,\n", r.simulated);
    std::fprintf(f, "      \"events_sustained\": %d,\n", r.sustained);
    std::fprintf(f, "      \"final_cost\": %.2f,\n", r.final_cost);
    std::fprintf(f, "      \"signature\": \"%016llx\"\n",
                 static_cast<unsigned long long>(r.signature));
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/1, /*accepts_heuristics=*/false);
  const std::string json_path = args.get("json", "BENCH_chaos.json");
  const bool smoke = args.get_bool("smoke", false);
  const bool gate = args.get_bool("gate", false);
  const bool simulate = args.get_bool("simulate", true);

  std::vector<ChaosWorldScale> scales;
  int faults;
  if (smoke) {
    scales.push_back(chaos_smoke_scale());
    faults = chaos_smoke_config(ChaosClass::RackFailure).num_faults;
  } else {
    scales.push_back({100, 2});
    scales.push_back({200, 4});
    faults = 6;
  }

  std::printf("Heartbeat detection + self-healing repair under chaos\n"
              "=====================================================\n\n");

  bool gate_ok = true;
  std::vector<ClassResult> results;
  for (const ChaosWorldScale& scale : scales) {
    for (ChaosClass cls : all_chaos_classes()) {
      ChaosGenConfig cfg = chaos_smoke_config(cls);
      cfg.num_faults = faults;
      ChaosWorld world = make_chaos_world(flags.seed, scale, cfg);

      HealthMonitorOptions opts;
      opts.detector.beat_interval_s = cfg.beat_interval_s;
      opts.detector.timeout_beats = cfg.timeout_beats;
      opts.detector.recovery_beats = cfg.recovery_beats;
      opts.seed = flags.seed;
      opts.simulate = simulate;
      opts.num_threads = flags.threads;
      const HealthMonitorResult run = run_health_monitor(
          world.apps, world.platform, world.catalog, world.trace, opts);

      ClassResult r;
      r.cls = cls;
      r.scale = scale;
      r.faults = static_cast<int>(world.trace.faults.size());
      r.score = run.score;
      r.events = run.summary.events;
      r.simulated = run.summary.simulated;
      r.sustained = run.summary.sustained;
      r.median_repair_ms = run.summary.median_repair_seconds * 1e3;
      r.final_cost = run.summary.final_cost;
      r.signature = run.signature;
      results.push_back(r);

      std::printf(
          "N=%-4d apps=%d %-13s  detect %2d/%2d (mean %4.2f beats)   repair "
          "%6.3f ms/event   recover mean %4.2f beats\n",
          scale.n, scale.apps, to_string(cls), r.score.detected,
          r.score.truth_down, r.score.mean_detection_beats,
          r.median_repair_ms, r.score.mean_recovery_beats);
      std::printf(
          "      inferred %d events   repaired %d/%d   sim sustained %d/%d   "
          "cost $%.0f   signature %016llx\n\n",
          r.events, r.score.repaired, r.score.truth_down, r.sustained,
          r.simulated, r.final_cost,
          static_cast<unsigned long long>(r.signature));

      if (r.detection_rate() < 0.95 || r.repaired_rate() < 0.95 ||
          r.sustained_rate() < 0.95) {
        gate_ok = false;
        std::printf("      GATE MISS: detection %.2f repaired %.2f "
                    "sustained %.2f (need >= 0.95)\n\n",
                    r.detection_rate(), r.repaired_rate(),
                    r.sustained_rate());
      }
    }
  }

  write_json(json_path, flags.seed, results);
  std::printf("json written to %s\n", json_path.c_str());
  if (gate && !gate_ok) {
    std::fprintf(stderr, "chaos gate failed: some class fell below the 95%% "
                         "detect/repair/sustain thresholds\n");
    return 1;
  }
  return 0;
}
