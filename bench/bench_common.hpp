// Shared plumbing for the figure-replication bench binaries: standard CLI
// flags, paper-default instance configs, and the print-table/chart/CSV
// epilogue every bench emits.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support/experiment.hpp"
#include "bench_support/reporting.hpp"
#include "core/strategy_registry.hpp"
#include "util/cli.hpp"

namespace insp::benchx {

/// Paper §5 defaults: small objects [5,30] MB at 1/2 Hz, 15 types, 6 servers
/// with 10 GB/s cards, rho = 1, Table 1 catalog.
inline InstanceConfig paper_instance(int n_operators, double alpha) {
  InstanceConfig cfg;
  cfg.tree.num_operators = n_operators;
  cfg.tree.alpha = alpha;
  cfg.tree.num_object_types = 15;
  cfg.tree.object_size_lo = 5.0;
  cfg.tree.object_size_hi = 30.0;
  cfg.tree.download_freq = 0.5;  // high frequency, 1/2 s^-1
  cfg.tree.at_most_n = true;     // paper: trees "with at most N operators"
  cfg.servers.num_servers = 6;
  cfg.servers.num_object_types = 15;
  cfg.rho = 1.0;
  return cfg;
}

struct BenchFlags {
  int repetitions;
  std::uint64_t seed;
  std::string csv_path;
  int threads;  ///< sweep worker threads: 0 = hardware concurrency, 1 = serial
  /// Strategies selected via --heuristics (comma-separated registry names);
  /// empty = the paper's six.
  std::vector<HeuristicKind> heuristics;
};

/// Parses a comma-separated list of strategy names against the placement
/// registry (display or CLI spelling).  Unknown names abort with the list of
/// registered spellings — the single source of truth for every bench flag.
inline std::vector<HeuristicKind> parse_heuristic_list(
    const std::string& csv) {
  std::vector<HeuristicKind> kinds;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string token = csv.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;
    const PlacementStrategy* s = strategy_by_name(token);
    if (s == nullptr) {
      std::fprintf(stderr, "unknown heuristic '%s'; registered:\n",
                   token.c_str());
      for (const PlacementStrategy& reg : placement_registry()) {
        std::fprintf(stderr, "  %-22s (--heuristics=%s)%s\n", reg.name,
                     reg.cli_name, reg.paper_core ? "" : "  [ablation]");
      }
      std::exit(2);
    }
    // Dedupe, keeping first-mention order: a repeated name would otherwise
    // double-count every run into the same sweep cell.
    if (std::find(kinds.begin(), kinds.end(), s->kind) == kinds.end()) {
      kinds.push_back(s->kind);
    }
  }
  return kinds;
}

/// `accepts_heuristics = false` is for benches with a fixed strategy set
/// (ablations, ILP comparison, ...): they reject --heuristics outright
/// rather than silently ignoring it.
inline BenchFlags parse_flags(int argc, char** argv, int default_reps = 20,
                              bool accepts_heuristics = true) {
  CliArgs args(argc, argv);
  BenchFlags f;
  f.repetitions = static_cast<int>(args.get_int("reps", default_reps));
  f.seed = args.get_u64("seed", 42);
  f.csv_path = args.get("csv", "");
  f.threads = static_cast<int>(args.get_int("threads", 0));
  const std::string heuristics_csv = args.get("heuristics", "");
  if (!heuristics_csv.empty() && !accepts_heuristics) {
    std::fprintf(stderr,
                 "%s runs a fixed strategy set and does not support "
                 "--heuristics\n",
                 args.program().c_str());
    std::exit(2);
  }
  f.heuristics = parse_heuristic_list(heuristics_csv);
  return f;
}

/// Pre-wired sweep spec: repetitions, seed, thread count, and the heuristic
/// selection come from the standard flags so every bench binary is parallel
/// and registry-filterable by default.
inline SweepSpec make_sweep_spec(const BenchFlags& flags) {
  SweepSpec spec;
  spec.repetitions = flags.repetitions;
  spec.base_seed = flags.seed;
  spec.num_threads = flags.threads;
  spec.heuristics = flags.heuristics;
  return spec;
}

inline void report(const SweepResult& result, const std::string& title,
                   const std::string& paper_expectation,
                   const std::string& csv_path) {
  std::printf("%s\n%s\n", title.c_str(),
              std::string(title.size(), '=').c_str());
  std::printf("paper-reported shape: %s\n\n", paper_expectation.c_str());
  std::printf("mean platform cost ($):\n%s\n",
              format_cost_table(result).c_str());
  std::printf("mean processor count:\n%s\n",
              format_processor_table(result).c_str());
  std::printf("failure rate:\n%s\n", format_failure_table(result).c_str());
  std::printf("%s\n", format_cost_chart(result, title).c_str());
  if (!csv_path.empty()) {
    write_sweep_csv(result, csv_path);
    std::printf("csv written to %s\n", csv_path.c_str());
  }
}

} // namespace insp::benchx
