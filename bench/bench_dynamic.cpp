// Online re-allocation study (docs/DESIGN.md §8): replays seeded dynamic
// workload traces (per-app rho drift, object-rate changes, server
// failure/recovery, application arrival/departure) against a live
// allocation twice —
//   repair  : the incremental repair engine (targeted reconfigure/evict/buy
//             moves over the undo-journal API, scratch fallback only when
//             targeted repair fails);
//   scratch : every event handled by a full from-scratch re-allocation (the
//             static paper pipeline's only option);
// and reports per-event repair latency, disruption (operators moved,
// processors bought/retired/re-priced) and final platform cost for both,
// emitting machine-readable BENCH_dynamic.json.  Every repaired allocation
// is cross-checked with the discrete-event simulator (sustained == true).
//
// Rows small enough for the exact anchor (N <= --gap-nmax, which covers the
// dedicated small gap row in both sweeps) additionally replay the trace
// through the repair-vs-scratch gap study (docs/DESIGN.md §14): after every
// event both engines survive, the folded problem is solved exactly and the
// per-event repair/scratch costs are reported as ratios to the PROVED
// optimum.  Larger rows keep the gap columns with zero measured events.
//
// --smoke shrinks the sweep to one small row for CI; --dump-trace /
// --trace round-trip the bundled trace through the text format.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_support/dynamic_world.hpp"
#include "bench_support/gap_study.hpp"
#include "dynamic/scenario_engine.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

using Scale = DynamicWorldScale;

struct ScaleResult {
  Scale scale;
  int trace_arrivals = 0;
  // repair run
  double median_repair_ms = 0.0;
  int repair_fallbacks = 0;
  int repair_failures = 0;
  int ops_moved = 0;
  int procs_bought = 0;
  int procs_retired = 0;
  int reconfigures = 0;
  int simulated = 0;
  int sustained = 0;
  Dollars repair_final_cost = 0.0;
  std::uint64_t repair_signature = 0;
  // scratch baseline
  double median_scratch_ms = 0.0;
  int scratch_failures = 0;
  Dollars scratch_final_cost = 0.0;
  // comparisons
  double latency_speedup = 0.0;
  double cost_ratio = 0.0;  ///< repair final cost / scratch final cost
  // optimality-gap anchor (only rows with N <= --gap-nmax are measured)
  int gap_events_comparable = 0;  ///< events where both engines succeeded
  int gap_events_measured = 0;    ///< ... and the exact anchor proved Optimal
  double repair_gap_mean = 0.0;   ///< repair cost / optimum over measured
  double repair_gap_max = 0.0;
  double scratch_gap_mean = 0.0;  ///< scratch cost / optimum over measured
  double scratch_gap_max = 0.0;
};

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<ScaleResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"dynamic\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"num_operators\": %d,\n", r.scale.n);
    std::fprintf(f, "      \"initial_apps\": %d,\n", r.scale.apps);
    std::fprintf(f, "      \"events\": %d,\n", r.scale.events);
    std::fprintf(f, "      \"trace_arrivals\": %d,\n", r.trace_arrivals);
    std::fprintf(f, "      \"median_repair_ms\": %.4f,\n",
                 r.median_repair_ms);
    std::fprintf(f, "      \"median_scratch_ms\": %.4f,\n",
                 r.median_scratch_ms);
    std::fprintf(f, "      \"latency_speedup\": %.2f,\n", r.latency_speedup);
    std::fprintf(f, "      \"repair_final_cost\": %.2f,\n",
                 r.repair_final_cost);
    std::fprintf(f, "      \"scratch_final_cost\": %.2f,\n",
                 r.scratch_final_cost);
    std::fprintf(f, "      \"cost_ratio\": %.4f,\n", r.cost_ratio);
    std::fprintf(f, "      \"repair_fallbacks\": %d,\n", r.repair_fallbacks);
    std::fprintf(f, "      \"repair_failures\": %d,\n", r.repair_failures);
    std::fprintf(f, "      \"scratch_failures\": %d,\n", r.scratch_failures);
    std::fprintf(f, "      \"ops_moved\": %d,\n", r.ops_moved);
    std::fprintf(f, "      \"procs_bought\": %d,\n", r.procs_bought);
    std::fprintf(f, "      \"procs_retired\": %d,\n", r.procs_retired);
    std::fprintf(f, "      \"reconfigures\": %d,\n", r.reconfigures);
    std::fprintf(f, "      \"events_simulated\": %d,\n", r.simulated);
    std::fprintf(f, "      \"events_sustained\": %d,\n", r.sustained);
    std::fprintf(f, "      \"gap_events_comparable\": %d,\n",
                 r.gap_events_comparable);
    std::fprintf(f, "      \"gap_events_measured\": %d,\n",
                 r.gap_events_measured);
    std::fprintf(f, "      \"repair_gap_mean\": %.4f,\n", r.repair_gap_mean);
    std::fprintf(f, "      \"repair_gap_max\": %.4f,\n", r.repair_gap_max);
    std::fprintf(f, "      \"scratch_gap_mean\": %.4f,\n", r.scratch_gap_mean);
    std::fprintf(f, "      \"scratch_gap_max\": %.4f,\n", r.scratch_gap_max);
    std::fprintf(f, "      \"repair_signature\": \"%016llx\"\n",
                 static_cast<unsigned long long>(r.repair_signature));
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/1, /*accepts_heuristics=*/false);
  const std::string json_path = args.get("json", "BENCH_dynamic.json");
  const bool smoke = args.get_bool("smoke", false);
  const std::string dump_trace_path = args.get("dump-trace", "");
  const std::string load_trace_path = args.get("trace", "");
  const bool simulate = args.get_bool("simulate", true);
  const int gap_nmax = static_cast<int>(args.get_int("gap-nmax", 24));
  const std::uint64_t gap_budget = args.get_u64("gap-budget", 500'000);

  // The first row is the gap anchor: small enough that the exact solver can
  // prove the per-event optimum, which turns the repair-vs-scratch cost
  // comparison into a measured optimality gap.
  std::vector<Scale> scales;
  if (smoke) {
    scales.push_back({16, 2, 24});
    scales.push_back({40, 2, 24});
  } else {
    scales.push_back({16, 2, 60});
    scales.push_back({100, 2, 200});
    scales.push_back({200, 4, 200});
    scales.push_back({400, 6, 200});
  }

  std::printf("Online re-allocation: repair vs scratch\n"
              "=======================================\n\n");

  std::vector<ScaleResult> results;
  for (const Scale& scale : scales) {
    DynamicWorld world = make_dynamic_world(flags.seed, scale);
    // --dump-trace writes one file per row (bare path when the sweep has a
    // single row, path.nNN otherwise); --trace mirrors that convention so a
    // dump/load round-trip reproduces every row: a bare file is replayed
    // against all rows (legacy single-row pairing), otherwise each row loads
    // its own .nNN file.  A row's trace must come from that row's world —
    // arrival trees embed the generation-time object catalog.
    if (!load_trace_path.empty()) {
      const std::string per_row =
          load_trace_path + ".n" + std::to_string(scale.n);
      world.trace = load_trace(
          std::ifstream(load_trace_path) ? load_trace_path : per_row);
    }
    if (!dump_trace_path.empty()) {
      const std::string path =
          scales.size() == 1
              ? dump_trace_path
              : dump_trace_path + ".n" + std::to_string(scale.n);
      save_trace(world.trace, path);
    }

    ScenarioOptions repair_opts;
    repair_opts.seed = flags.seed;
    repair_opts.simulate = simulate;
    repair_opts.num_threads = flags.threads;
    const ScenarioResult repair = replay_trace(
        world.apps, world.platform, world.catalog, world.trace, repair_opts);

    ScenarioOptions scratch_opts = repair_opts;
    scratch_opts.simulate = false;
    scratch_opts.repair.always_fallback = true;
    const ScenarioResult scratch = replay_trace(
        world.apps, world.platform, world.catalog, world.trace, scratch_opts);

    ScaleResult r;
    r.scale = scale;
    r.trace_arrivals = static_cast<int>(world.trace.arrival_trees.size());
    r.median_repair_ms = repair.summary.median_repair_seconds * 1e3;
    r.median_scratch_ms = scratch.summary.median_repair_seconds * 1e3;
    r.latency_speedup = r.median_repair_ms > 0.0
                            ? r.median_scratch_ms / r.median_repair_ms
                            : 0.0;
    r.repair_fallbacks = repair.summary.fallbacks;
    r.repair_failures = repair.summary.failures;
    r.scratch_failures = scratch.summary.failures;
    r.ops_moved = repair.summary.ops_moved;
    r.procs_bought = repair.summary.procs_bought;
    r.procs_retired = repair.summary.procs_retired;
    r.reconfigures = repair.summary.reconfigures;
    r.simulated = repair.summary.simulated;
    r.sustained = repair.summary.sustained;
    r.repair_final_cost = repair.summary.final_cost;
    r.scratch_final_cost = scratch.summary.final_cost;
    r.cost_ratio = r.scratch_final_cost > 0.0
                       ? r.repair_final_cost / r.scratch_final_cost
                       : 0.0;
    r.repair_signature = repair.signature;

    if (scale.n <= gap_nmax) {
      const GapStudyResult gaps = run_gap_study(world, flags.seed, gap_budget);
      r.gap_events_comparable = gaps.events_comparable;
      r.gap_events_measured = gaps.events_measured;
      r.repair_gap_mean = gaps.repair_gap_mean;
      r.repair_gap_max = gaps.repair_gap_max;
      r.scratch_gap_mean = gaps.scratch_gap_mean;
      r.scratch_gap_max = gaps.scratch_gap_max;
    }
    results.push_back(r);

    std::printf(
        "N=%-4d apps=%d events=%-4d  repair %8.3f ms/event   scratch %8.3f "
        "ms/event   speedup %6.1fx\n",
        scale.n, scale.apps, scale.events, r.median_repair_ms,
        r.median_scratch_ms, r.latency_speedup);
    std::printf(
        "      cost $%.0f vs scratch $%.0f (ratio %.3f)   fallbacks %d   "
        "failures %d/%d\n",
        r.repair_final_cost, r.scratch_final_cost, r.cost_ratio,
        r.repair_fallbacks, r.repair_failures, r.scratch_failures);
    std::printf(
        "      disruption: %d ops moved, %d bought, %d retired, %d "
        "re-priced   sim sustained %d/%d\n",
        r.ops_moved, r.procs_bought, r.procs_retired, r.reconfigures,
        r.sustained, r.simulated);
    if (r.gap_events_measured > 0) {
      std::printf(
          "      optimality gap (over %d/%d proved events): repair mean "
          "%.3fx max %.3fx   scratch mean %.3fx max %.3fx\n",
          r.gap_events_measured, r.gap_events_comparable, r.repair_gap_mean,
          r.repair_gap_max, r.scratch_gap_mean, r.scratch_gap_max);
    }
    std::printf("\n");
  }

  write_json(json_path, flags.seed, results);
  std::printf("json written to %s\n", json_path.c_str());
  return 0;
}
