// Figure 2(a): mean platform cost vs tree size N, alpha = 0.9, high
// download frequency (1/2 s^-1), small objects (5-30 MB).
#include "bench_common.hpp"

using namespace insp;
using namespace insp::benchx;

int main(int argc, char** argv) {
  const BenchFlags flags = parse_flags(argc, argv);

  SweepSpec spec = make_sweep_spec(flags);
  spec.x_name = "N";
  spec.xs = {20, 40, 60, 80, 100, 120, 140};
  spec.config_for = [](double n) {
    return paper_instance(static_cast<int>(n), 0.9);
  };

  const SweepResult result = run_sweep(spec);
  report(result,
         "Figure 2(a): cost vs N (alpha=0.9, high frequency, small objects)",
         "Random performs poorly; Subtree-bottom-up achieves the best costs; "
         "the Greedy family is similar to each other and poorer than "
         "Subtree-bottom-up; the object-sensitive heuristics perform poorly.",
         flags.csv_path);
  return 0;
}
