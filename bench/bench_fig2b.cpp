// Figure 2(b): mean platform cost vs tree size N, alpha = 1.7 — the
// operator-tree size becomes the limiting factor; almost no feasible
// mapping exists past ~80 operators.
#include "bench_common.hpp"

using namespace insp;
using namespace insp::benchx;

int main(int argc, char** argv) {
  const BenchFlags flags = parse_flags(argc, argv);

  SweepSpec spec = make_sweep_spec(flags);
  spec.x_name = "N";
  spec.xs = {20, 40, 60, 80, 100, 120, 140};
  spec.config_for = [](double n) {
    return paper_instance(static_cast<int>(n), 1.7);
  };

  const SweepResult result = run_sweep(spec);
  report(result,
         "Figure 2(b): cost vs N (alpha=1.7, high frequency, small objects)",
         "For trees with more than 80 operators almost no feasible mapping "
         "can be found; relative heuristic ranking as in Fig 2(a); "
         "Comp-Greedy catches up with Subtree-bottom-up as N grows; "
         "Object-Grouping still finds some mappings up to N=120.",
         flags.csv_path);
  return 0;
}
