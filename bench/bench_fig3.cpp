// Figure 3: mean platform cost vs computation factor alpha, N = 60 (the
// text also discusses N = 20; run with --n 20 for the companion sweep).
// Expected thresholds: costs flat up to alpha ~1.6, rising, no solutions
// past ~1.8 for N = 60 (1.7 / 2.2 for N = 20).
#include "bench_common.hpp"

using namespace insp;
using namespace insp::benchx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 60));
  const BenchFlags flags = parse_flags(argc, argv);

  SweepSpec spec = make_sweep_spec(flags);
  spec.x_name = "alpha";
  for (double a = 0.5; a <= 2.5001; a += 0.1) spec.xs.push_back(a);
  spec.config_for = [n](double alpha) { return paper_instance(n, alpha); };

  const SweepResult result = run_sweep(spec);
  report(result,
         "Figure 3: cost vs alpha (N=" + std::to_string(n) +
             ", high frequency, small objects)",
         "alpha has no influence up to a first threshold; cost then rises "
         "until a second threshold past which no solutions exist "
         "(N=60: ~1.6 and ~1.8; N=20: ~1.7 and ~2.2). Subtree-bottom-up "
         "best, Random worst.",
         flags.csv_path);
  return 0;
}
