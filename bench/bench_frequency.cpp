// Download-frequency study (paper §5, text): the download rate of object k
// is rate_k = f_k * delta_k.  Frequencies below 1/10 s^-1 stop influencing
// the solution; between 1/2 and 1/10 the cost generally decreases (cheaper
// network cards), and the heuristic ranking is unchanged.  The paper also
// notes the mapping itself usually matches the high-frequency mapping, with
// less powerful network cards purchased.
#include "bench_common.hpp"

using namespace insp;
using namespace insp::benchx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int n = static_cast<int>(args.get_int("n", 80));
  const BenchFlags flags = parse_flags(argc, argv);

  SweepSpec spec = make_sweep_spec(flags);
  spec.x_name = "freq(1/s)";
  spec.xs = {1.0 / 2, 1.0 / 5, 1.0 / 10, 1.0 / 25, 1.0 / 50};
  spec.config_for = [n](double freq) {
    InstanceConfig cfg = paper_instance(n, 0.9);
    cfg.tree.download_freq = freq;
    return cfg;
  };

  const SweepResult result = run_sweep(spec);
  report(result,
         "Frequency sweep: cost vs download frequency (N=" +
             std::to_string(n) + ", alpha=0.9, small objects)",
         "Cost decreases from 1/2 to ~1/10 s^-1 and is constant below 1/10; "
         "ranking unchanged: Subtree-bottom-up, Greedy family, object "
         "heuristics, Random.",
         flags.csv_path);
  return 0;
}
