// Microbenchmarks (google-benchmark): runtime of each placement heuristic
// as the tree grows — the paper's complexity claim is that all heuristics
// are polynomial; this pins the practical scaling.
#include <benchmark/benchmark.h>

#include "bench_support/experiment.hpp"
#include "core/allocator.hpp"

using namespace insp;

namespace {

InstanceConfig speed_config(int n) {
  InstanceConfig cfg;
  cfg.tree.num_operators = n;
  cfg.tree.alpha = 0.9;
  cfg.tree.num_object_types = 15;
  cfg.tree.object_size_lo = 5.0;
  cfg.tree.object_size_hi = 30.0;
  cfg.tree.download_freq = 0.5;
  cfg.servers.num_servers = 6;
  return cfg;
}

void run_heuristic(benchmark::State& state, HeuristicKind kind) {
  const int n = static_cast<int>(state.range(0));
  const Instance inst = make_instance(1234, speed_config(n));
  const Problem prob = inst.problem();
  std::uint64_t seed = 99;
  for (auto _ : state) {
    Rng rng(seed++);
    AllocationOutcome out = allocate(prob, kind, rng);
    benchmark::DoNotOptimize(out.cost);
  }
  state.SetComplexityN(n);
}

} // namespace

#define CINSP_SPEED_BENCH(name, kind)                          \
  static void name(benchmark::State& state) {                  \
    run_heuristic(state, kind);                                \
  }                                                            \
  BENCHMARK(name)->RangeMultiplier(2)->Range(20, 320)->Complexity()

CINSP_SPEED_BENCH(BM_Random, HeuristicKind::Random);
CINSP_SPEED_BENCH(BM_CompGreedy, HeuristicKind::CompGreedy);
CINSP_SPEED_BENCH(BM_CommGreedy, HeuristicKind::CommGreedy);
CINSP_SPEED_BENCH(BM_SubtreeBottomUp, HeuristicKind::SubtreeBottomUp);
CINSP_SPEED_BENCH(BM_ObjectGrouping, HeuristicKind::ObjectGrouping);
CINSP_SPEED_BENCH(BM_ObjectAvailability, HeuristicKind::ObjectAvailability);

BENCHMARK_MAIN();
