// ILP / optimal comparison (paper §5, last experiment): on a homogeneous
// platform (single processor type, downgrade skipped) and small trees, the
// paper solved the ILP with CPLEX and found (a) the optimum buys a single
// processor in all solved cases (N = 20), (b) Subtree-bottom-up is optimal
// in most cases, (c) ranking SBU > Greedy (Comm-Greedy best) > Object-
// Grouping > Object-Availability > Random.  Our exact branch-and-bound
// replaces CPLEX (docs/DESIGN.md §4, §14).
//
// Every instance is solved twice: by the incremental journal-based search
// (solve_exact) and by the legacy copy-based reference search
// (solve_exact_reference).  Both must agree bit-for-bit on the optimal
// cost; the per-(N, alpha) node counts quantify how much the composite
// lower bound + incumbent seeding shrink the tree.  Machine-readable
// BENCH_ilp.json (schema checked by scripts/check_bench_json.py); --gate
// fails the run unless every instance is proved Optimal, both solvers
// agree, and the aggregate node ratio is at least 5x.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ilp/exact_solver.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

struct IlpRow {
  int n = 0;
  double alpha = 0.0;
  int instances = 0;         ///< instances attempted at this (N, alpha)
  int solved = 0;            ///< incremental search proved Optimal
  int reference_solved = 0;  ///< reference search proved Optimal
  std::uint64_t nodes_incremental = 0;
  std::uint64_t nodes_reference = 0;
  double node_ratio = 0.0;  ///< reference / max(1, incremental)
  bool costs_match = true;  ///< bit-for-bit, over both-Optimal instances
  double best_heuristic_ratio = 0.0;  ///< best mean cost/optimal in the row
};

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<IlpRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ilp\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const IlpRow& r = rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"n\": %d,\n", r.n);
    std::fprintf(f, "      \"alpha\": %.2f,\n", r.alpha);
    std::fprintf(f, "      \"instances\": %d,\n", r.instances);
    std::fprintf(f, "      \"solved\": %d,\n", r.solved);
    std::fprintf(f, "      \"reference_solved\": %d,\n", r.reference_solved);
    std::fprintf(f, "      \"nodes_incremental\": %llu,\n",
                 static_cast<unsigned long long>(r.nodes_incremental));
    std::fprintf(f, "      \"nodes_reference\": %llu,\n",
                 static_cast<unsigned long long>(r.nodes_reference));
    std::fprintf(f, "      \"node_ratio\": %.2f,\n", r.node_ratio);
    std::fprintf(f, "      \"costs_match\": %s,\n",
                 r.costs_match ? "true" : "false");
    std::fprintf(f, "      \"best_heuristic_ratio\": %.4f\n",
                 r.best_heuristic_ratio);
    std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/10, /*accepts_heuristics=*/false);
  const std::string json_path = args.get("json", "BENCH_ilp.json");
  const bool smoke = args.get_bool("smoke", false);
  const bool gate = args.get_bool("gate", false);
  const int n_max =
      static_cast<int>(args.get_int("nmax", smoke ? 10 : 16));
  const int reps = smoke ? std::min(flags.repetitions, 3) : flags.repetitions;

  std::printf(
      "ILP comparison (homogeneous platform, alpha varied, no downgrade)\n"
      "================================================================\n"
      "paper-reported shape: optimum buys one processor; Subtree-bottom-up "
      "optimal in most cases;\nranking SBU, Greedy family (Comm best), "
      "Object-Grouping, Object-Availability, Random.\n\n");

  AllocatorOptions opts;
  opts.downgrade = false;  // paper skips downgrading in the homogeneous study

  std::printf("%-4s %-6s %-10s", "N", "alpha", "optimal");
  for (HeuristicKind h : all_heuristics()) {
    std::printf(" %-18s", heuristic_name(h));
  }
  std::printf("\n");

  std::map<HeuristicKind, int> optimal_hits;
  std::map<HeuristicKind, double> ratio_sum;
  int solved = 0;
  bool all_incremental_optimal = true;
  bool all_costs_match = true;
  std::uint64_t total_nodes_incremental = 0;
  std::uint64_t total_nodes_reference = 0;
  std::vector<IlpRow> rows;

  for (double alpha : {0.9, 1.7}) {
    for (int n = 4; n <= n_max; n += 2) {
      IlpRow row;
      row.n = n;
      row.alpha = alpha;
      std::map<HeuristicKind, double> row_ratio_sum;
      int row_compared = 0;
      for (int rep = 0; rep < reps; ++rep) {
        InstanceConfig cfg = paper_instance(n, alpha);
        cfg.tree.at_most_n = false;
        cfg.homogeneous_catalog = true;
        const Instance inst =
            make_instance(flags.seed + 1000 * rep + n, cfg);
        const Problem prob = inst.problem();

        ++row.instances;
        const ExactResult exact = solve_exact(prob, ExactSolverConfig{});
        const ExactResult reference =
            solve_exact_reference(prob, ExactSolverConfig{});
        row.nodes_incremental += exact.nodes_visited;
        row.nodes_reference += reference.nodes_visited;
        if (reference.status == ExactStatus::Optimal) ++row.reference_solved;
        if (exact.status != ExactStatus::Optimal || !exact.cost) {
          all_incremental_optimal = false;
          continue;
        }
        ++row.solved;
        ++solved;
        if (reference.status == ExactStatus::Optimal && reference.cost &&
            *reference.cost != *exact.cost) {
          // Catalog prices are integral, so exact equality is the contract.
          row.costs_match = false;
          all_costs_match = false;
          std::fprintf(stderr,
                       "COST MISMATCH N=%d alpha=%.1f rep=%d: "
                       "incremental $%.4f reference $%.4f\n",
                       n, alpha, rep, *exact.cost, *reference.cost);
        }

        const bool print_row = rep == 0;
        if (print_row) {
          std::printf("%-4d %-6.1f $%-9.0f", n, alpha, *exact.cost);
        }
        ++row_compared;
        for (HeuristicKind h : all_heuristics()) {
          Rng rng(flags.seed + rep);
          const AllocationOutcome out = allocate(prob, h, rng, opts);
          if (out.success) {
            ratio_sum[h] += out.cost / *exact.cost;
            row_ratio_sum[h] += out.cost / *exact.cost;
            if (out.cost <= *exact.cost * 1.0001) ++optimal_hits[h];
            if (print_row) std::printf(" $%-17.0f", out.cost);
          } else {
            ratio_sum[h] += 10.0;  // failure penalty for the summary only
            row_ratio_sum[h] += 10.0;
            if (print_row) std::printf(" %-18s", "FAIL");
          }
        }
        if (print_row) std::printf("\n");
      }
      total_nodes_incremental += row.nodes_incremental;
      total_nodes_reference += row.nodes_reference;
      row.node_ratio =
          static_cast<double>(row.nodes_reference) /
          static_cast<double>(std::max<std::uint64_t>(1, row.nodes_incremental));
      row.best_heuristic_ratio = 0.0;
      if (row_compared > 0) {
        double best = 10.0;
        for (HeuristicKind h : all_heuristics()) {
          best = std::min(best, row_ratio_sum[h] / row_compared);
        }
        row.best_heuristic_ratio = best;
      }
      rows.push_back(row);
    }
  }

  std::printf("\nsummary over %d solved instances:\n", solved);
  std::printf("%-22s %-18s %s\n", "heuristic", "mean cost/optimal",
              "found optimum");
  for (HeuristicKind h : all_heuristics()) {
    std::printf("%-22s %-18.3f %d/%d\n", heuristic_name(h),
                solved ? ratio_sum[h] / solved : 0.0, optimal_hits[h],
                solved);
  }

  const double aggregate_ratio =
      static_cast<double>(total_nodes_reference) /
      static_cast<double>(std::max<std::uint64_t>(1, total_nodes_incremental));
  std::printf("\nsearch-tree size: incremental %llu nodes vs reference %llu "
              "(%.1fx fewer)\n",
              static_cast<unsigned long long>(total_nodes_incremental),
              static_cast<unsigned long long>(total_nodes_reference),
              aggregate_ratio);

  write_json(json_path, flags.seed, rows);
  std::printf("json written to %s\n", json_path.c_str());

  if (gate) {
    // The incremental search must fully replace the reference: every
    // instance proved Optimal, bit-for-bit cost agreement wherever both
    // proved, and at least a 5x aggregate node reduction.  The reference
    // search shares the default node budget, so its count (and therefore
    // the ratio) is an underestimate when it is budget-capped — the gate
    // is conservative.
    if (!all_incremental_optimal || !all_costs_match ||
        aggregate_ratio < 5.0) {
      std::fprintf(stderr,
                   "GATE FAILED: all_optimal=%d costs_match=%d "
                   "node_ratio=%.2f (need >= 5)\n",
                   all_incremental_optimal ? 1 : 0, all_costs_match ? 1 : 0,
                   aggregate_ratio);
      return 1;
    }
    std::printf("gate passed: %d instances all Optimal, costs agree, "
                "%.1fx node reduction\n",
                solved, aggregate_ratio);
  }
  return 0;
}
