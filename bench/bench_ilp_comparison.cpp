// ILP / optimal comparison (paper §5, last experiment): on a homogeneous
// platform (single processor type, downgrade skipped) and small trees, the
// paper solved the ILP with CPLEX and found (a) the optimum buys a single
// processor in all solved cases (N = 20), (b) Subtree-bottom-up is optimal
// in most cases, (c) ranking SBU > Greedy (Comm-Greedy best) > Object-
// Grouping > Object-Availability > Random.  Our exact branch-and-bound
// replaces CPLEX (docs/DESIGN.md §4).
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "ilp/exact_solver.hpp"

using namespace insp;
using namespace insp::benchx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/10, /*accepts_heuristics=*/false);
  const int n_max = static_cast<int>(args.get_int("nmax", 12));

  std::printf(
      "ILP comparison (homogeneous platform, alpha varied, no downgrade)\n"
      "================================================================\n"
      "paper-reported shape: optimum buys one processor; Subtree-bottom-up "
      "optimal in most cases;\nranking SBU, Greedy family (Comm best), "
      "Object-Grouping, Object-Availability, Random.\n\n");

  AllocatorOptions opts;
  opts.downgrade = false;  // paper skips downgrading in the homogeneous study

  std::printf("%-4s %-6s %-10s", "N", "alpha", "optimal");
  for (HeuristicKind h : all_heuristics()) {
    std::printf(" %-18s", heuristic_name(h));
  }
  std::printf("\n");

  std::map<HeuristicKind, int> optimal_hits;
  std::map<HeuristicKind, double> ratio_sum;
  int solved = 0;

  for (double alpha : {0.9, 1.7}) {
    for (int n = 4; n <= n_max; n += 2) {
      for (int rep = 0; rep < flags.repetitions; ++rep) {
        InstanceConfig cfg = paper_instance(n, alpha);
        cfg.tree.at_most_n = false;
        cfg.homogeneous_catalog = true;
        const Instance inst =
            make_instance(flags.seed + 1000 * rep + n, cfg);
        const Problem prob = inst.problem();

        ExactSolverConfig ecfg;
        const ExactResult exact = solve_exact(prob, ecfg);
        if (exact.status != ExactStatus::Optimal || !exact.cost) continue;
        ++solved;

        const bool print_row = rep == 0;
        if (print_row) {
          std::printf("%-4d %-6.1f $%-9.0f", n, alpha, *exact.cost);
        }
        for (HeuristicKind h : all_heuristics()) {
          Rng rng(flags.seed + rep);
          const AllocationOutcome out = allocate(prob, h, rng, opts);
          if (out.success) {
            ratio_sum[h] += out.cost / *exact.cost;
            if (out.cost <= *exact.cost * 1.0001) ++optimal_hits[h];
            if (print_row) std::printf(" $%-17.0f", out.cost);
          } else {
            ratio_sum[h] += 10.0;  // failure penalty for the summary only
            if (print_row) std::printf(" %-18s", "FAIL");
          }
        }
        if (print_row) std::printf("\n");
      }
    }
  }

  std::printf("\nsummary over %d solved instances:\n", solved);
  std::printf("%-22s %-18s %s\n", "heuristic", "mean cost/optimal",
              "found optimum");
  for (HeuristicKind h : all_heuristics()) {
    std::printf("%-22s %-18.3f %d/%d\n", heuristic_name(h),
                solved ? ratio_sum[h] / solved : 0.0, optimal_hits[h],
                solved);
  }
  return 0;
}
