// Per-ISA kernel microbenchmark (docs/DESIGN.md §11): times the dispatched
// probe/sim kernels on every tier this binary+host can execute — forced
// scalar, SSE2, AVX2 — over the identical inputs, and emits
// BENCH_kernel.json with, per ISA:
//
//   * kernel_throughput      — candidate verdicts/sec of the RAW
//                              probe_candidates kernel on a synthetic
//                              N-candidate sweep (no journal, no gather:
//                              the vectorized loop itself);
//   * batch_throughput       — end-to-end can_place_batch verdicts/sec on a
//                              real populated PlacementState (gather +
//                              journal + kernel);
//   * sim_caps_throughput    — element updates/sec of the ready-caps kernel;
//   * speedup_vs_scalar      — kernel_throughput relative to the forced
//                              scalar row;
//   * verdicts_match         — byte-wise equality of this ISA's verdicts
//                              against the scalar reference, over both the
//                              synthetic sweep and the real state;
//   * allocations_per_probe  — heap allocations per end-to-end batch probe
//                              in steady state (counting operator new,
//                              compiled into this binary): must be 0.
//
// The process exits non-zero if any ISA's verdicts diverge from scalar or
// any steady-state probe allocates — CI runs `--smoke` on every push.
#define INSP_DEFINE_COUNTING_ALLOCATOR
#include "util/alloc_counter.hpp"

#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/placement_state.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/simd_kernels.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::vector<simd::Isa> available_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::detected_isa() >= simd::Isa::kSse2) {
    isas.push_back(simd::Isa::kSse2);
  }
  if (simd::detected_isa() >= simd::Isa::kAvx2) {
    isas.push_back(simd::Isa::kAvx2);
  }
  return isas;
}

/// Synthetic candidate sweep with the real kernel's data shape: N candidate
/// processors against `ext` external link endpoints, loads drawn so most
/// lanes survive the whole link loop (the expensive common case — early
/// rejection would just measure the short-circuit).
struct SyntheticSweep {
  std::vector<double> speed_cap, bw_cap, work, nic, work0, nic0, vol_to;
  std::vector<int> pids;
  std::vector<double> dl_add;
  std::vector<double> link_base, link_pre;
  std::vector<int> ext_pid;
  std::vector<double> ext_vol;
  std::vector<unsigned char> verdicts;
  simdk::ProbeBatchArgs args = {};

  SyntheticSweep(std::uint64_t seed, std::size_t num, std::size_t ext) {
    Rng rng(seed);
    speed_cap.resize(num);
    bw_cap.resize(num);
    work.resize(num);
    nic.resize(num);
    work0.resize(num);
    nic0.resize(num);
    vol_to.resize(num);
    pids.resize(num);
    dl_add.resize(num);
    link_base.resize(num * ext);
    link_pre.resize(num * ext);
    ext_pid.resize(ext);
    ext_vol.resize(ext);
    verdicts.resize(num);
    for (std::size_t i = 0; i < num; ++i) {
      pids[i] = static_cast<int>(i);
      speed_cap[i] = rng.uniform_real(300.0, 500.0);
      bw_cap[i] = rng.uniform_real(800.0, 1200.0);
      work[i] = rng.uniform_real(10.0, 250.0);
      nic[i] = rng.uniform_real(50.0, 400.0);
      work0[i] = work[i] * rng.uniform_real(0.8, 1.1);
      nic0[i] = nic[i] * rng.uniform_real(0.8, 1.1);
      vol_to[i] = rng.uniform_real(0.0, 20.0);
      dl_add[i] = rng.uniform_real(0.0, 30.0);
    }
    for (std::size_t j = 0; j < ext; ++j) {
      // A few externals alias candidate pids: the lane-compare pass path.
      ext_pid[j] = j % 5 == 0 ? static_cast<int>(j * 7 % num)
                              : static_cast<int>(num + j);
      ext_vol[j] = rng.uniform_real(0.0, 12.0);
      for (std::size_t i = 0; i < num; ++i) {
        link_base[j * num + i] = rng.uniform_real(0.0, 600.0);
        link_pre[j * num + i] = link_base[j * num + i] * 0.9;
      }
    }
    args.speed_cap = speed_cap.data();
    args.bw_cap = bw_cap.data();
    args.work = work.data();
    args.nic = nic.data();
    args.work0 = work0.data();
    args.nic0 = nic0.data();
    args.vol_to = vol_to.data();
    args.pids = pids.data();
    args.num = num;
    args.dl_add = dl_add.data();
    args.link_base = link_base.data();
    args.link_pre = nullptr;  // strict mode
    args.stride = num;
    args.ext_pid = ext_pid.data();
    args.ext_vol = ext_vol.data();
    args.ext = ext;
    args.skip = nullptr;
    args.rho = 1.0;
    args.sum_w = 120.0;
    args.ext_total = 40.0;
    args.link_cap = 1000.0;
    args.relaxed = false;
    args.others_failed = 0;
    args.others_failed_pid = -1;
    args.base_links_ok = true;
    args.verdicts = verdicts.data();
  }
};

/// Raw kernel verdicts/sec for one table over the synthetic sweep.
double measure_kernel(const simdk::KernelTable* table, SyntheticSweep& sweep,
                      std::size_t iters) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    table->probe_candidates(sweep.args);
  }
  const double elapsed = seconds_since(t0);
  return static_cast<double>(iters * sweep.args.num) / elapsed;
}

/// Element updates/sec of the event-sim per-period caps pass — the scalar
/// CSR loop from src/sim/event_sim.cpp, measured verbatim.  The dedicated
/// gather/blend SIMD kernel this row used to time was retired after losing
/// to this autovectorized form (the row is ISA-independent now and kept for
/// continuity of the bench artifact).
double measure_sim_caps(std::size_t n, std::size_t iters,
                        std::uint64_t seed) {
  Rng rng(seed);
  // Random forest shape with the old row's root density (every 17th op).
  std::vector<int> out_start(n + 1, 0);
  std::vector<int> out_dst;
  std::vector<double> cas(n), in_cap(n), caps(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool root = i == 0 || i % 17 == 0;
    out_start[i + 1] = out_start[i] + (root ? 0 : 1);
    if (!root) out_dst.push_back(static_cast<int>(rng.index(i)));
    cas[i] = static_cast<double>(rng.index(400));
    in_cap[i] = static_cast<double>(rng.index(400)) + 1.0;
  }
  const double kInf = std::numeric_limits<double>::infinity();
  const double bound = 8.0;
  const double period_cap = 201.0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    for (std::size_t o = 0; o < n; ++o) {
      const int ob = out_start[o];
      const int oe = out_start[o + 1];
      double bp = kInf;
      for (int k = ob; k < oe; ++k) {
        const double c = cas[static_cast<std::size_t>(
            out_dst[static_cast<std::size_t>(k)])];
        bp = c < bp ? c : bp;
      }
      double cap = period_cap;
      const double bpb = bp + bound;
      cap = bpb < cap ? bpb : cap;
      cap = in_cap[o] < cap ? in_cap[o] : cap;
      caps[o] = cap;
    }
  }
  const double elapsed = seconds_since(t0);
  if (caps[0] < -1.0) std::printf(" ");  // defeat DCE
  return static_cast<double>(iters * n) / elapsed;
}

/// Scatters the N-operator paper instance over many processors, as
/// bench_placement_speed does, for the end-to-end rows.  The Instance is
/// heap-pinned BEFORE the PlacementState captures Problem pointers into it.
struct RealState {
  std::unique_ptr<Instance> inst;
  std::unique_ptr<PlacementState> state;
  std::vector<int> live;
  std::vector<int> ops;
};

RealState make_real_state(std::uint64_t seed, int n) {
  InstanceConfig cfg = paper_instance(n, 1.0);
  cfg.tree.at_most_n = false;
  cfg.rho = 0.05;
  RealState rs;
  rs.inst = std::make_unique<Instance>(make_instance(seed, cfg));
  rs.state = std::make_unique<PlacementState>(rs.inst->problem());
  PlacementState& st = *rs.state;
  const int num_procs = std::max(2, n / 8);
  for (int i = 0; i < num_procs; ++i) {
    st.buy(rs.inst->problem().catalog->most_expensive());
  }
  rs.live = st.live_processors();
  const int n_ops = rs.inst->problem().tree->num_operators();
  for (int op = 0; op < n_ops; ++op) {
    for (int attempt = 0; attempt < num_procs; ++attempt) {
      if (st.try_place(op, rs.live[static_cast<std::size_t>(
                               (op + attempt) % num_procs)])) {
        break;
      }
    }
    rs.ops.push_back(op);
  }
  return rs;
}

/// End-to-end can_place_batch verdicts/sec on the real state, plus the
/// steady-state allocation rate per batch probe.
struct EndToEnd {
  double throughput = 0.0;
  double allocations_per_probe = 0.0;
};

EndToEnd measure_end_to_end(RealState& rs, std::size_t rounds) {
  std::vector<int> group(1);
  std::vector<unsigned char> verdicts;
  std::size_t feasible = 0;
  // Warmup sizes every persistent buffer for this state shape.
  for (std::size_t i = 0; i < 2 * rs.ops.size(); ++i) {
    group[0] = rs.ops[i % rs.ops.size()];
    rs.state->can_place_batch(group, rs.live, verdicts);
  }
  const long long alloc0 = alloc_counter::allocations();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < rounds; ++i) {
    group[0] = rs.ops[i % rs.ops.size()];
    rs.state->can_place_batch(group, rs.live, verdicts);
    feasible += verdicts[0];
  }
  const double elapsed = seconds_since(t0);
  const long long allocs = alloc_counter::allocations() - alloc0;
  if (feasible == rounds + 1) std::printf(" ");  // defeat DCE
  EndToEnd e;
  e.throughput = static_cast<double>(rounds * rs.live.size()) / elapsed;
  e.allocations_per_probe =
      static_cast<double>(allocs) / static_cast<double>(rounds);
  return e;
}

/// One pass of end-to-end verdict bytes for cross-ISA comparison.
std::vector<unsigned char> end_to_end_verdicts(RealState& rs) {
  std::vector<int> group(1);
  std::vector<unsigned char> verdicts, all;
  for (int op : rs.ops) {
    group[0] = op;
    rs.state->can_place_batch(group, rs.live, verdicts);
    all.insert(all.end(), verdicts.begin(), verdicts.end());
    rs.state->can_place_batch_relaxed(group, rs.live, verdicts);
    all.insert(all.end(), verdicts.begin(), verdicts.end());
  }
  return all;
}

struct IsaResult {
  simd::Isa isa = simd::Isa::kScalar;
  double kernel_throughput = 0.0;
  double batch_throughput = 0.0;
  double sim_caps_throughput = 0.0;
  double speedup_vs_scalar = 1.0;
  bool verdicts_match = true;
  double allocations_per_probe = 0.0;
};

void write_json(const std::string& path, std::uint64_t seed,
                std::size_t num_candidates,
                const std::vector<IsaResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernel\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"detected_isa\": \"%s\",\n",
               simd::to_string(simd::detected_isa()));
  std::fprintf(f, "  \"num_candidates\": %zu,\n", num_candidates);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const IsaResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"isa\": \"%s\",\n", simd::to_string(r.isa));
    std::fprintf(f, "      \"kernel_throughput\": %.1f,\n",
                 r.kernel_throughput);
    std::fprintf(f, "      \"batch_throughput\": %.1f,\n",
                 r.batch_throughput);
    std::fprintf(f, "      \"sim_caps_throughput\": %.1f,\n",
                 r.sim_caps_throughput);
    std::fprintf(f, "      \"speedup_vs_scalar\": %.2f,\n",
                 r.speedup_vs_scalar);
    std::fprintf(f, "      \"verdicts_match\": %s,\n",
                 r.verdicts_match ? "true" : "false");
    std::fprintf(f, "      \"allocations_per_probe\": %.3f\n",
                 r.allocations_per_probe);
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const std::string json_path = args.get("json", "BENCH_kernel.json");
  const bool smoke = args.get_bool("smoke", false);

  const std::size_t num = 400;  // acceptance point: N=400 candidates
  const std::size_t ext = 24;
  const std::size_t kernel_iters = smoke ? 2'000 : 40'000;
  const std::size_t batch_rounds = smoke ? 2'000 : 20'000;
  const std::size_t caps_iters = smoke ? 5'000 : 100'000;

  std::printf("SIMD kernel dispatch throughput (N=%zu candidates)\n"
              "==================================================\n\n",
              num);
  std::printf("detected ISA: %s\n\n", simd::to_string(simd::detected_isa()));

  SyntheticSweep sweep(seed, num, ext);
  RealState rs = make_real_state(seed, static_cast<int>(num));

  // Scalar reference verdicts, once.
  const simdk::KernelTable* scalar = simdk::kernels_for(simd::Isa::kScalar);
  scalar->probe_candidates(sweep.args);
  const std::vector<unsigned char> ref_synthetic = sweep.verdicts;
  simd::set_forced_isa(simd::Isa::kScalar);
  const std::vector<unsigned char> ref_real = end_to_end_verdicts(rs);
  simd::clear_forced_isa();

  std::vector<IsaResult> results;
  double scalar_kernel = 0.0;
  for (simd::Isa isa : available_isas()) {
    const simdk::KernelTable* table = simdk::kernels_for(isa);
    IsaResult r;
    r.isa = isa;

    table->probe_candidates(sweep.args);  // warm
    r.kernel_throughput = measure_kernel(table, sweep, kernel_iters);
    if (isa == simd::Isa::kScalar) scalar_kernel = r.kernel_throughput;
    r.speedup_vs_scalar =
        scalar_kernel > 0.0 ? r.kernel_throughput / scalar_kernel : 1.0;

    r.verdicts_match = sweep.verdicts == ref_synthetic;

    r.sim_caps_throughput = measure_sim_caps(num, caps_iters, seed);

    simd::set_forced_isa(isa);
    r.verdicts_match = r.verdicts_match && end_to_end_verdicts(rs) == ref_real;
    const EndToEnd e = measure_end_to_end(rs, batch_rounds);
    simd::clear_forced_isa();
    r.batch_throughput = e.throughput;
    r.allocations_per_probe = e.allocations_per_probe;

    std::printf("%-7s kernel %12.0f cand/s (%5.2fx)   batch %12.0f cand/s   "
                "sim caps(scalar) %12.0f elem/s   verdicts %s   "
                "allocs/probe %.3f\n",
                simd::to_string(isa), r.kernel_throughput,
                r.speedup_vs_scalar, r.batch_throughput,
                r.sim_caps_throughput,
                r.verdicts_match ? "match" : "MISMATCH",
                r.allocations_per_probe);
    results.push_back(r);
  }

  write_json(json_path, seed, num, results);
  std::printf("\njson written to %s\n", json_path.c_str());

  int rc = 0;
  for (const IsaResult& r : results) {
    if (!r.verdicts_match) {
      std::fprintf(stderr, "FAIL: %s verdicts diverge from scalar\n",
                   simd::to_string(r.isa));
      rc = 1;
    }
    if (r.allocations_per_probe > 0.0) {
      std::fprintf(stderr, "FAIL: %s steady-state probes allocate (%.3f per "
                           "probe)\n",
                   simd::to_string(r.isa), r.allocations_per_probe);
      rc = 1;
    }
  }
  return rc;
}
