// Large-object study (paper §5, text): same setting as Fig 2 but object
// sizes in [450, 530] MB.  Downloads of ~240 MB/s each dominate; no
// feasible solution exists once trees exceed ~45 nodes, Subtree-bottom-up
// occasionally fails in server selection while others succeed, and
// Comm-Greedy sometimes beats Subtree-bottom-up.
#include "bench_common.hpp"

using namespace insp;
using namespace insp::benchx;

int main(int argc, char** argv) {
  const BenchFlags flags = parse_flags(argc, argv);

  SweepSpec spec = make_sweep_spec(flags);
  spec.x_name = "N";
  spec.xs = {10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60};
  spec.config_for = [](double n) {
    InstanceConfig cfg = paper_instance(static_cast<int>(n), 0.9);
    cfg.tree.object_size_lo = 450.0;
    cfg.tree.object_size_hi = 530.0;
    return cfg;
  };

  const SweepResult result = run_sweep(spec);
  report(result,
         "Large objects: cost vs N (alpha=0.9, high frequency, 450-530 MB)",
         "No feasible solution as soon as trees exceed ~45 nodes; "
         "Subtree-bottom-up generally best but sometimes fails in server "
         "selection or is beaten by Comm-Greedy.",
         flags.csv_path);
  return 0;
}
