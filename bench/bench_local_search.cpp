// Local-search refinement (extension beyond the paper): how much of each
// heuristic's gap to the best-known cost does the merge/relocate hill-climb
// recover, and what does it cost in runtime?
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

using namespace insp;
using namespace insp::benchx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/20, /*accepts_heuristics=*/false);
  const double alpha = args.get_double("alpha", 1.5);

  std::printf("Local-search refinement (alpha=%.1f, small objects, high "
              "frequency)\n"
              "==============================================================\n\n",
              alpha);

  for (int n : {40, 80}) {
    std::printf("N = %d\n", n);
    std::printf("  %-22s %-12s %-12s %-9s %s\n", "heuristic", "plain ($)",
                "refined ($)", "gain", "refine time");
    for (HeuristicKind k : all_heuristics()) {
      SampleSet plain_cost, refined_cost;
      double refine_ms = 0.0;
      int fails = 0;
      for (int rep = 0; rep < flags.repetitions; ++rep) {
        const Instance inst =
            make_instance(flags.seed + rep, paper_instance(n, alpha));
        const Problem prob = inst.problem();
        Rng r1(flags.seed + rep), r2(flags.seed + rep);
        AllocatorOptions plain, refined;
        refined.local_search = true;
        const AllocationOutcome a = allocate(prob, k, r1, plain);
        const auto t0 = std::chrono::steady_clock::now();
        const AllocationOutcome b = allocate(prob, k, r2, refined);
        const auto t1 = std::chrono::steady_clock::now();
        if (!a.success || !b.success) {
          ++fails;
          continue;
        }
        plain_cost.add(a.cost);
        refined_cost.add(b.cost);
        refine_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
      }
      if (plain_cost.empty()) {
        std::printf("  %-22s all runs failed (%d)\n", heuristic_name(k),
                    fails);
        continue;
      }
      const double gain =
          100.0 * (plain_cost.mean() - refined_cost.mean()) /
          plain_cost.mean();
      std::printf("  %-22s %-12.0f %-12.0f %-8.1f%% %.1f ms\n",
                  heuristic_name(k), plain_cost.mean(), refined_cost.mean(),
                  gain, refine_ms / std::max<std::size_t>(1, plain_cost.count()));
    }
    std::printf("\n");
  }
  return 0;
}
