// Multi-application extension (the paper's §6 future work): several
// continuous queries provisioned together.  Compares, per heuristic:
//   separate — each application buys its own processors (baseline; note it
//              optimistically books the shared data servers per app);
//   joint    — one purchase plan serves all applications (processors and
//              per-processor downloads shared across apps).
// Also prints the common-subexpression analysis: what a DAG-capable engine
// could additionally save by computing shared expressions once.
#include <cstdio>

#include "bench_common.hpp"
#include "multi/multi_app.hpp"
#include "multi/subexpression.hpp"

using namespace insp;
using namespace insp::benchx;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/20, /*accepts_heuristics=*/false);
  const int num_apps = static_cast<int>(args.get_int("apps", 3));
  const int n = static_cast<int>(args.get_int("n", 25));
  const double alpha = args.get_double("alpha", 1.2);

  std::printf("Multi-application provisioning (%d apps, N=%d, alpha=%.1f)\n"
              "========================================================\n\n",
              num_apps, n, alpha);

  struct Cell {
    SampleSet joint, joint_ls, separate, procs_joint, procs_separate;
    int fails = 0, attempts = 0;
  };
  std::map<HeuristicKind, Cell> cells;
  SampleSet cse_work_saved, cse_cost_bound;

  for (int rep = 0; rep < flags.repetitions; ++rep) {
    Rng gen(flags.seed + rep);
    ObjectCatalog objects = ObjectCatalog::random(gen, 15, 5.0, 30.0, 0.5);
    TreeGenConfig tcfg;
    tcfg.num_operators = n;
    tcfg.alpha = alpha;
    std::vector<ApplicationSpec> apps;
    for (int a = 0; a < num_apps; ++a) {
      apps.push_back({generate_random_tree(gen, tcfg, objects),
                      /*rho=*/1.0});
    }
    ServerDistConfig dist;
    const Platform platform = make_paper_platform(gen, dist);
    const PriceCatalog catalog = PriceCatalog::paper_default();

    const CombinedApplication combined = combine_applications(apps);
    const SharingSavings savings =
        estimate_sharing_savings(apps, catalog);
    cse_work_saved.add(savings.work_saved);
    cse_cost_bound.add(savings.cost_bound);

    for (HeuristicKind k : all_heuristics()) {
      auto& cell = cells[k];
      ++cell.attempts;
      Rng r1(flags.seed + rep), r2(flags.seed + rep), r3(flags.seed + rep);
      const AllocationOutcome joint =
          allocate_joint(combined, platform, catalog, k, r1);
      const SeparateAllocationOutcome separate =
          allocate_separate(apps, platform, catalog, k, r2);
      AllocatorOptions with_ls;
      with_ls.local_search = true;  // merges across applications too
      const AllocationOutcome joint_ls =
          allocate_joint(combined, platform, catalog, k, r3, with_ls);
      if (!joint.success || !separate.success || !joint_ls.success) {
        ++cell.fails;
        continue;
      }
      cell.joint.add(joint.cost);
      cell.joint_ls.add(joint_ls.cost);
      cell.separate.add(separate.total_cost);
      cell.procs_joint.add(joint.num_processors);
      cell.procs_separate.add(separate.total_processors);
    }
  }

  std::printf("%-22s %-14s %-14s %-14s %-10s %-11s %s\n", "heuristic",
              "separate ($)", "joint ($)", "joint+LS ($)", "saving",
              "procs sep", "procs joint");
  for (HeuristicKind k : all_heuristics()) {
    const auto& cell = cells[k];
    if (cell.joint.empty()) {
      std::printf("%-22s all %d runs failed\n", heuristic_name(k),
                  cell.attempts);
      continue;
    }
    const double sep = cell.separate.mean(), joint = cell.joint.mean();
    const double joint_ls = cell.joint_ls.mean();
    std::printf("%-22s %-14.0f %-14.0f %-14.0f %-9.1f%% %-11.1f %.1f\n",
                heuristic_name(k), sep, joint, joint_ls,
                100.0 * (sep - joint_ls) / sep, cell.procs_separate.mean(),
                cell.procs_joint.mean());
  }

  std::printf("\ncommon-subexpression analysis (DAG-engine potential, on top "
              "of the joint plan):\n"
              "  mean CPU work shareable: %.0f Mops/result\n"
              "  mean platform-cost bound of that work: $%.0f\n",
              cse_work_saved.mean(), cse_cost_bound.mean());
  return 0;
}
