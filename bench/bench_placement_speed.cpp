// Probe-throughput and end-to-end placement timing vs tree size, emitting
// machine-readable BENCH_placement.json so the perf trajectory of the
// transactional placement engine (docs/DESIGN.md §5) is tracked over time.
//
// Two probe modes run the identical (op, target) sequence:
//  - incremental: PlacementState::can_place on the live state (journal
//    apply -> validate touched -> rollback);
//  - copy baseline: deep-copy the state, apply to the copy, full-state
//    revalidation — the seed implementation's copy-and-revalidate
//    transaction, kept here as the yardstick the incremental engine is
//    measured against.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/placement_state.hpp"
#include "util/simd.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct ProbeSet {
  std::vector<std::pair<int, int>> moves;  // (op, target pid)
};

/// A fixed cyclic probe sequence: single-operator relocations onto random
/// live processors — the shape of every heuristic fill loop.
ProbeSet make_probe_set(const PlacementState& st, Rng& rng,
                        std::size_t count) {
  ProbeSet set;
  const std::vector<int> live = st.live_processors();
  const int num_ops = st.problem().tree->num_operators();
  for (std::size_t i = 0; i < count; ++i) {
    const int op =
        static_cast<int>(rng.index(static_cast<std::size_t>(num_ops)));
    const int pid = live[rng.index(live.size())];
    set.moves.emplace_back(op, pid);
  }
  return set;
}

/// Probes/sec of can_place on the live state (non-const: probes mutate and
/// bit-exactly restore the state).
double measure_incremental(PlacementState& st, const ProbeSet& set,
                           std::size_t iterations) {
  const auto t0 = Clock::now();
  std::size_t feasible = 0;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto& [op, pid] = set.moves[i % set.moves.size()];
    feasible += st.can_place({op}, pid) ? 1 : 0;
  }
  const double elapsed = seconds_since(t0);
  if (feasible == set.moves.size() + 1) std::printf(" ");  // defeat DCE
  return static_cast<double>(iterations) / elapsed;
}

/// Probes/sec of the seed-equivalent transaction: deep-copy the state,
/// apply the move to the copy, and run the *full-state* feasible() scan —
/// the seed implementation's copy-and-revalidate cost shape (the journaling
/// the apply also does here is noise next to the copy and the full scan).
double measure_copy_baseline(const PlacementState& st, const ProbeSet& set,
                             std::size_t iterations) {
  const auto t0 = Clock::now();
  std::size_t feasible = 0;
  for (std::size_t i = 0; i < iterations; ++i) {
    const auto& [op, pid] = set.moves[i % set.moves.size()];
    PlacementState trial(st);
    trial.try_place({op}, pid);
    feasible += trial.feasible() ? 1 : 0;
  }
  const double elapsed = seconds_since(t0);
  if (feasible == set.moves.size() + 1) std::printf(" ");
  return static_cast<double>(iterations) / elapsed;
}

/// Candidate-verdicts/sec of the batched SoA probe (docs/DESIGN.md §10):
/// each round judges one operator against every live processor with a
/// single journal baseline and one flat kernel sweep.
double measure_soa_batch(PlacementState& st, const ProbeSet& set,
                         const std::vector<int>& pids, std::size_t rounds) {
  std::vector<int> group(1);
  std::vector<unsigned char> verdicts;
  std::size_t feasible = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < rounds; ++i) {
    group[0] = set.moves[i % set.moves.size()].first;
    st.can_place_batch(group, pids, verdicts);
    for (unsigned char v : verdicts) feasible += v;
  }
  const double elapsed = seconds_since(t0);
  if (feasible == rounds + 1) std::printf(" ");  // defeat DCE
  return static_cast<double>(rounds * pids.size()) / elapsed;
}

/// The same candidate matrix through the scalar per-processor can_place
/// loop — one full probe transaction per candidate.
double measure_scalar_scan(PlacementState& st, const ProbeSet& set,
                           const std::vector<int>& pids, std::size_t rounds) {
  std::size_t feasible = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < rounds; ++i) {
    const int op = set.moves[i % set.moves.size()].first;
    for (int pid : pids) feasible += st.can_place({op}, pid) ? 1 : 0;
  }
  const double elapsed = seconds_since(t0);
  if (feasible == rounds + 1) std::printf(" ");
  return static_cast<double>(rounds * pids.size()) / elapsed;
}

/// Element-wise batch-vs-scalar agreement over the probe set — the batch
/// kernel must be a pure speedup, never a semantic change.
bool verify_batch_matches_scalar(PlacementState& st, const ProbeSet& set,
                                 const std::vector<int>& pids) {
  std::vector<int> group(1);
  std::vector<unsigned char> verdicts;
  for (const auto& [op, unused] : set.moves) {
    (void)unused;
    group[0] = op;
    st.can_place_batch(group, pids, verdicts);
    for (std::size_t j = 0; j < pids.size(); ++j) {
      if ((verdicts[j] != 0) != st.can_place(group, pids[j])) {
        std::fprintf(stderr,
                     "batch/scalar verdict mismatch: op %d on P%d\n", op,
                     pids[j]);
        return false;
      }
    }
  }
  return true;
}

struct AllocateTiming {
  std::string name;
  double mean_ms = 0.0;
  int failures = 0;
};

/// Per-ISA row: the same batched sweep forced through one dispatch path
/// (docs/DESIGN.md §11); the deep per-kernel story lives in bench_kernel.
struct IsaRow {
  simd::Isa isa = simd::Isa::kScalar;
  double soa_probe_throughput = 0.0;
};

struct SizeResult {
  int num_operators = 0;
  int live_processors = 0;
  double probes_per_sec_incremental = 0.0;
  double probes_per_sec_copy = 0.0;
  double speedup = 0.0;
  double soa_probe_throughput = 0.0;   ///< batched candidate-verdicts/sec
  double scalar_scan_throughput = 0.0; ///< same matrix, scalar can_place
  double speedup_vs_scalar = 0.0;
  bool verdicts_match = false;
  std::vector<IsaRow> isa_rows;
  std::vector<AllocateTiming> allocate;
};

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<SizeResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  std::fprintf(f, "{\n  \"bench\": \"placement_speed\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"num_operators\": %d,\n", r.num_operators);
    std::fprintf(f, "      \"live_processors\": %d,\n", r.live_processors);
    std::fprintf(f, "      \"probes_per_sec_incremental\": %.1f,\n",
                 r.probes_per_sec_incremental);
    std::fprintf(f, "      \"probes_per_sec_copy_baseline\": %.1f,\n",
                 r.probes_per_sec_copy);
    std::fprintf(f, "      \"probe_speedup\": %.2f,\n", r.speedup);
    std::fprintf(f, "      \"soa_probe_throughput\": %.1f,\n",
                 r.soa_probe_throughput);
    std::fprintf(f, "      \"scalar_scan_throughput\": %.1f,\n",
                 r.scalar_scan_throughput);
    std::fprintf(f, "      \"speedup_vs_scalar\": %.2f,\n",
                 r.speedup_vs_scalar);
    std::fprintf(f, "      \"verdicts_match\": %s,\n",
                 r.verdicts_match ? "true" : "false");
    std::fprintf(f, "      \"isa_rows\": [\n");
    for (std::size_t j = 0; j < r.isa_rows.size(); ++j) {
      const IsaRow& row = r.isa_rows[j];
      std::fprintf(f,
                   "        {\"isa\": \"%s\", \"soa_probe_throughput\": "
                   "%.1f}%s\n",
                   simd::to_string(row.isa), row.soa_probe_throughput,
                   j + 1 < r.isa_rows.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    std::fprintf(f, "      \"hardware_concurrency\": %u,\n", hardware);
    std::fprintf(f, "      \"allocate\": [\n");
    for (std::size_t j = 0; j < r.allocate.size(); ++j) {
      const AllocateTiming& a = r.allocate[j];
      std::fprintf(f,
                   "        {\"heuristic\": \"%s\", \"mean_ms\": %.3f, "
                   "\"failures\": %d}%s\n",
                   a.name.c_str(), a.mean_ms, a.failures,
                   j + 1 < r.allocate.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags = parse_flags(argc, argv, /*default_reps=*/5);
  const std::string json_path = args.get("json", "BENCH_placement.json");
  const bool smoke = args.get_bool("smoke", false);

  const std::vector<HeuristicKind> kinds =
      flags.heuristics.empty() ? all_heuristics() : flags.heuristics;

  std::printf("Placement probe throughput vs tree size\n"
              "=======================================\n\n");

  const std::vector<int> sizes = smoke ? std::vector<int>{25}
                                       : std::vector<int>{25, 50, 100, 200, 400};
  std::vector<SizeResult> results;
  for (int n : sizes) {
    // Paper-shaped trees at a throughput low enough that even N=400 stays
    // feasible — probe cost, not instance difficulty, is what is measured.
    InstanceConfig cfg = paper_instance(n, 1.0);
    cfg.tree.at_most_n = false;  // exact size: the x axis is honest
    cfg.rho = 0.05;
    const Instance inst = make_instance(flags.seed, cfg);
    const Problem prob = inst.problem();

    // A populated mid-heuristic state to probe against: operators scattered
    // round-robin over many processors, so probes carry real cross-traffic
    // (Comp-Greedy at this rho would pack one processor and trivialize the
    // copy baseline).
    PlacementState st(prob);
    const int num_procs = std::max(2, n / 8);
    for (int i = 0; i < num_procs; ++i) {
      st.buy(prob.catalog->most_expensive());
    }
    bool scattered = true;
    const std::vector<int> live_now = st.live_processors();
    for (int op = 0; op < prob.tree->num_operators() && scattered; ++op) {
      bool placed_op = false;
      for (int attempt = 0; attempt < num_procs; ++attempt) {
        const int pid =
            live_now[static_cast<std::size_t>((op + attempt) % num_procs)];
        if (st.try_place({op}, pid)) {
          placed_op = true;
          break;
        }
      }
      scattered = placed_op;
    }
    if (!scattered) {
      std::printf("N=%d: could not scatter operators; skipping\n", n);
      continue;
    }

    SizeResult r;
    r.num_operators = n;
    r.live_processors = st.num_live_processors();

    Rng probe_rng(flags.seed ^ 0xbe9cull);
    const ProbeSet set = make_probe_set(st, probe_rng, 1024);
    // Warm-up, then size the iteration counts so each side runs long
    // enough to time stably but the whole sweep stays interactive (and the
    // CI smoke run stays near-instant).
    measure_incremental(st, set, 1000);
    const std::size_t inc_iters = smoke ? 20'000 : 200'000;
    const std::size_t copy_iters = std::max<std::size_t>(
        smoke ? 500 : 2'000, inc_iters / static_cast<std::size_t>(n));
    r.probes_per_sec_incremental = measure_incremental(st, set, inc_iters);
    r.probes_per_sec_copy = measure_copy_baseline(st, set, copy_iters);
    r.speedup = r.probes_per_sec_incremental / r.probes_per_sec_copy;

    // Batched SoA probe vs the scalar per-candidate scan, on the identical
    // (operator x live processor) candidate matrix; verify element-wise
    // verdict agreement before timing anything.
    const std::vector<int> all_live = st.live_processors();
    r.verdicts_match = verify_batch_matches_scalar(st, set, all_live);
    const std::size_t batch_rounds = smoke ? 2'000 : 20'000;
    const std::size_t scan_rounds = std::max<std::size_t>(
        smoke ? 200 : 1'000, batch_rounds / all_live.size());
    measure_soa_batch(st, set, all_live, 200);  // warm-up
    r.soa_probe_throughput = measure_soa_batch(st, set, all_live,
                                               batch_rounds);
    r.scalar_scan_throughput = measure_scalar_scan(st, set, all_live,
                                                   scan_rounds);
    r.speedup_vs_scalar = r.soa_probe_throughput / r.scalar_scan_throughput;

    // The same batched sweep once per dispatch path the host can run.
    for (simd::Isa isa :
         {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2}) {
      if (isa > simd::detected_isa()) continue;
      simd::set_forced_isa(isa);
      measure_soa_batch(st, set, all_live, 200);  // warm this path
      IsaRow row;
      row.isa = isa;
      row.soa_probe_throughput =
          measure_soa_batch(st, set, all_live, batch_rounds);
      simd::clear_forced_isa();
      r.isa_rows.push_back(row);
    }

    for (HeuristicKind k : kinds) {
      AllocateTiming t;
      t.name = heuristic_name(k);
      const auto t0 = Clock::now();
      for (int rep = 0; rep < flags.repetitions; ++rep) {
        Rng rng(flags.seed + static_cast<std::uint64_t>(rep));
        const AllocationOutcome out = allocate(prob, k, rng);
        t.failures += out.success ? 0 : 1;
      }
      t.mean_ms = seconds_since(t0) * 1000.0 /
                  std::max(1, flags.repetitions);
      r.allocate.push_back(t);
    }

    std::printf("N=%-4d procs=%-3d  incremental %10.0f probes/s   "
                "copy baseline %9.0f probes/s   speedup %6.1fx\n",
                n, r.live_processors, r.probes_per_sec_incremental,
                r.probes_per_sec_copy, r.speedup);
    std::printf("        SoA batch %12.0f cand/s   scalar scan %10.0f "
                "cand/s   speedup %6.1fx   verdicts %s\n",
                r.soa_probe_throughput, r.scalar_scan_throughput,
                r.speedup_vs_scalar, r.verdicts_match ? "match" : "MISMATCH");
    for (const IsaRow& row : r.isa_rows) {
      std::printf("        isa %-7s %13.0f cand/s\n",
                  simd::to_string(row.isa), row.soa_probe_throughput);
    }
    for (const AllocateTiming& a : r.allocate) {
      std::printf("        allocate %-22s %8.3f ms/run (%d failures)\n",
                  a.name.c_str(), a.mean_ms, a.failures);
    }
    results.push_back(r);
  }

  write_json(json_path, flags.seed, results);
  std::printf("\njson written to %s\n", json_path.c_str());
  for (const SizeResult& r : results) {
    if (!r.verdicts_match) return 1;  // batch kernel diverged from scalar
  }
  return 0;
}
