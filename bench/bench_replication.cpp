// Replication-level study (paper §5, text): "the level of replication of
// basic objects on servers may matter for application trees with specific
// structures and download frequencies, but ... in general we can consider
// that this parameter has little or no effect on the heuristics'
// performance."  Sweeps the per-server replication probability with small
// objects (expect: no effect) and large objects (expect: failure rates drop
// as replication spreads the download load across server cards).
#include "bench_common.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

void run(const char* title, MegaBytes lo, MegaBytes hi, int n,
         const BenchFlags& flags) {
  SweepSpec spec = make_sweep_spec(flags);
  spec.x_name = "repl-prob";
  spec.xs = {0.0, 0.1, 0.25, 0.5, 0.8};
  // Default to the three heuristics whose replication sensitivity the study
  // is about; --heuristics (already in the spec) overrides.
  if (spec.heuristics.empty()) {
    spec.heuristics = {HeuristicKind::SubtreeBottomUp,
                       HeuristicKind::CommGreedy,
                       HeuristicKind::ObjectAvailability};
  }
  spec.config_for = [=](double p) {
    InstanceConfig cfg = paper_instance(n, 0.9);
    cfg.tree.object_size_lo = lo;
    cfg.tree.object_size_hi = hi;
    cfg.servers.replication_prob = p;
    return cfg;
  };
  const SweepResult result = run_sweep(spec);
  report(result, title,
         "little or no effect on cost in general; with large objects higher "
         "replication relieves server cards (lower failure rates)",
         "");
}

} // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = parse_flags(argc, argv);
  run("Replication sweep: small objects (5-30 MB), N=60", 5.0, 30.0, 60,
      flags);
  run("Replication sweep: large objects (450-530 MB), N=30", 450.0, 530.0,
      30, flags);
  return 0;
}
