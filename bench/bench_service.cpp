// Concurrent multi-tenant allocation service study (docs/DESIGN.md §9):
// drives the sharded AllocationService with one producer thread per shard
// blasting a seeded dynamic trace through the bounded MPMC queue, across a
// {worker threads} x {shards} x {total operators} grid, and reports event
// throughput and request latency (p50/p99: submit -> batch applied).
// Every configuration's per-shard trajectory is checked bit for bit against
// the sequential per-shard reference (service_replay.hpp): a row with
// signatures_match=false is a correctness failure and the bench exits
// non-zero.
//
// Scaling is CPU-bound repair work, so the worker-speedup gate is keyed to
// the cores the runner actually has: >= 3x from 1 -> 8 workers on >= 8
// hardware threads, >= 2x at 4 workers on >= 4, >= 1.5x at 2 workers on
// >= 2, and skipped outright on a single-core box (which serializes
// everything by construction).  The JSON records hardware_concurrency so
// readers can tell a serialized box from a scaling failure.  --smoke
// shrinks the grid to one tiny row for CI; --gate makes the gate verdict
// the process exit code (CI runs --smoke --gate on every push, so the gate
// executes on the real runner instead of existing only as prose).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_support/dynamic_world.hpp"
#include "service/allocation_service.hpp"
#include "service/service_replay.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

using Clock = std::chrono::steady_clock;

struct GridRow {
  int n_total = 0;   ///< operators across the whole deployment
  int shards = 0;
  int workers = 0;
  int events_per_shard = 0;
};

struct RowResult {
  GridRow row;
  std::uint64_t requests = 0;
  int events_applied = 0;
  int events_coalesced = 0;
  int failures = 0;
  double events_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double speedup_vs_1worker = 0.0;
  bool signatures_match = false;
};

double percentile_ms(std::vector<double>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double idx = p / 100.0 * static_cast<double>(latencies.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, latencies.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (latencies[lo] * (1.0 - frac) + latencies[hi] * frac) * 1e3;
}

/// Per-shard worlds for one (N, shards) deployment: shard i gets its own
/// platform partition, tenants, and trace, derived from a per-shard seed.
std::vector<ShardSpec> make_deployment(std::uint64_t seed, int n_total,
                                       int shards, int events_per_shard) {
  std::vector<ShardSpec> specs;
  for (int i = 0; i < shards; ++i) {
    DynamicWorld world = make_dynamic_world(
        seed + 7919ull * static_cast<std::uint64_t>(i),
        {std::max(n_total / shards, 8), 2, events_per_shard});
    specs.push_back(ShardSpec{std::move(world.apps), std::move(world.platform),
                              std::move(world.catalog),
                              std::move(world.trace)});
  }
  return specs;
}

RowResult run_row(const std::vector<ShardSpec>& specs,
                  const std::vector<ShardReplayResult>& reference,
                  const GridRow& row, std::uint64_t seed) {
  ServiceOptions opt;
  opt.num_workers = row.workers;
  opt.queue_capacity = 1024;
  opt.seed = seed;
  AllocationService service(specs, opt);
  service.start();

  const auto t0 = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    producers.emplace_back([&service, &specs, s] {
      for (const WorkloadEvent& event : specs[s].trace.events) {
        service.submit(static_cast<int>(s), event);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ServiceStats stats = service.finish();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RowResult r;
  r.row = row;
  r.requests = stats.requests_submitted;
  r.events_applied = stats.events_applied;
  r.events_coalesced = stats.events_coalesced;
  r.failures = stats.failures;
  r.events_per_sec =
      wall > 0.0 ? static_cast<double>(stats.requests_submitted) / wall : 0.0;
  r.p50_ms = percentile_ms(stats.latency_seconds, 50.0);
  r.p99_ms = percentile_ms(stats.latency_seconds, 99.0);
  r.signatures_match = true;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const ShardSnapshot* snap = service.snapshot(static_cast<int>(s));
    if (snap->signature != reference[s].signature ||
        !(snap->allocation == reference[s].final_allocation)) {
      r.signatures_match = false;
    }
  }
  return r;
}

void write_json(const std::string& path, std::uint64_t seed,
                unsigned hardware, const std::vector<RowResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"service\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RowResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"num_operators\": %d,\n", r.row.n_total);
    std::fprintf(f, "      \"shards\": %d,\n", r.row.shards);
    std::fprintf(f, "      \"worker_threads\": %d,\n", r.row.workers);
    std::fprintf(f, "      \"events\": %llu,\n",
                 static_cast<unsigned long long>(r.requests));
    std::fprintf(f, "      \"events_applied\": %d,\n", r.events_applied);
    std::fprintf(f, "      \"events_coalesced\": %d,\n", r.events_coalesced);
    std::fprintf(f, "      \"failures\": %d,\n", r.failures);
    std::fprintf(f, "      \"events_per_sec\": %.1f,\n", r.events_per_sec);
    std::fprintf(f, "      \"p50_ms\": %.4f,\n", r.p50_ms);
    std::fprintf(f, "      \"p99_ms\": %.4f,\n", r.p99_ms);
    std::fprintf(f, "      \"speedup_vs_1worker\": %.2f,\n",
                 r.speedup_vs_1worker);
    std::fprintf(f, "      \"hardware_concurrency\": %u,\n", hardware);
    std::fprintf(f, "      \"signatures_match\": %s\n",
                 r.signatures_match ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/1, /*accepts_heuristics=*/false);
  const std::string json_path = args.get("json", "BENCH_service.json");
  const bool smoke = args.get_bool("smoke", false);
  const bool gate = args.get_bool("gate", false);
  const unsigned hardware = std::thread::hardware_concurrency();

  std::vector<int> n_totals, shard_counts, worker_counts;
  int events_per_shard;
  if (smoke) {
    n_totals = {40};
    shard_counts = {2};
    worker_counts = {1, 2};
    // A gated smoke run needs enough events for the speedup measurement to
    // rise above scheduler noise; a plain smoke run just exercises the
    // machinery.
    events_per_shard = gate ? 120 : 24;
  } else {
    n_totals = {200, 400};
    shard_counts = {2, 4, 8};
    worker_counts = {1, 2, 4, 8};
    events_per_shard = 200;
  }

  std::printf("Concurrent allocation service: throughput and latency\n"
              "=====================================================\n"
              "hardware threads: %u\n\n",
              hardware);

  bool all_match = true;
  std::vector<RowResult> results;
  for (int n_total : n_totals) {
    for (int shards : shard_counts) {
      const std::vector<ShardSpec> specs =
          make_deployment(flags.seed, n_total, shards, events_per_shard);
      ServiceOptions ref_opt;
      ref_opt.seed = flags.seed;
      std::vector<ShardReplayResult> reference;
      for (std::size_t s = 0; s < specs.size(); ++s) {
        reference.push_back(
            replay_shard_sequential(specs[s], static_cast<int>(s), ref_opt));
      }
      double baseline_eps = 0.0;
      for (int workers : worker_counts) {
        GridRow row{n_total, shards, workers, events_per_shard};
        RowResult r = run_row(specs, reference, row, flags.seed);
        if (workers == worker_counts.front()) baseline_eps = r.events_per_sec;
        r.speedup_vs_1worker =
            baseline_eps > 0.0 ? r.events_per_sec / baseline_eps : 0.0;
        all_match = all_match && r.signatures_match;
        results.push_back(r);
        std::printf(
            "N=%-4d shards=%d workers=%d  %9.0f events/s  p50 %7.3f ms  "
            "p99 %7.3f ms  speedup %5.2fx  %s\n",
            n_total, shards, workers, r.events_per_sec, r.p50_ms, r.p99_ms,
            r.speedup_vs_1worker,
            r.signatures_match ? "replay OK" : "REPLAY MISMATCH");
      }
      std::printf("\n");
    }
  }

  // Scaling gate, keyed off the cores this runner actually has: a box can
  // only demonstrate the parallelism it can park on hardware threads, so
  // the worker count and threshold scale down with hardware_concurrency
  // (and the gate is skipped entirely on a single-core box).
  bool gate_pass = true;
  {
    int gate_workers = 0;
    double threshold = 0.0;
    if (hardware >= 8) {
      gate_workers = 8;
      threshold = 3.0;
    } else if (hardware >= 4) {
      gate_workers = 4;
      threshold = 2.0;
    } else if (hardware >= 2) {
      gate_workers = 2;
      threshold = 1.5;
    }
    // Clamp to the grid actually run (smoke runs only {1, 2} workers) and
    // re-key the threshold to the clamped width.
    if (gate_workers > worker_counts.back()) {
      gate_workers = worker_counts.back();
      threshold = gate_workers >= 8 ? 3.0 : gate_workers >= 4 ? 2.0 : 1.5;
    }
    if (gate_workers >= 2) {
      double measured = 0.0;
      for (const RowResult& r : results) {
        if (r.row.n_total == n_totals.back() &&
            r.row.shards == shard_counts.back() &&
            r.row.workers == gate_workers) {
          measured = r.speedup_vs_1worker;
        }
      }
      gate_pass = measured >= threshold;
      std::printf("scaling gate (>= %.1fx, 1 -> %d workers, N=%d, %d shards, "
                  "%u hardware threads): %.2fx  %s%s\n",
                  threshold, gate_workers, n_totals.back(),
                  shard_counts.back(), hardware, measured,
                  gate_pass ? "PASS" : "FAIL",
                  gate ? "" : " (informational; run with --gate to enforce)");
    } else {
      std::printf("scaling gate skipped: %u hardware thread(s) cannot "
                  "demonstrate worker scaling\n",
                  hardware);
    }
  }
  if (!all_match) {
    std::fprintf(stderr,
                 "FATAL: some configuration diverged from the sequential "
                 "per-shard reference\n");
  }

  write_json(json_path, flags.seed, hardware, results);
  std::printf("json written to %s\n", json_path.c_str());
  if (!all_match) return 1;
  if (gate && !gate_pass) return 1;
  return 0;
}
