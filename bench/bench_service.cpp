// Concurrent multi-tenant allocation service study (docs/DESIGN.md §9):
// drives the sharded AllocationService with one producer thread per shard
// blasting a seeded dynamic trace through the bounded MPMC queue, across a
// {worker threads} x {shards} x {total operators} grid, and reports event
// throughput and request latency (p50/p99: submit -> batch applied).
// Every configuration's per-shard trajectory is checked bit for bit against
// the sequential per-shard reference (service_replay.hpp): a row with
// signatures_match=false is a correctness failure and the bench exits
// non-zero.
//
// Scaling is CPU-bound repair work, so the 1 -> 8 worker speedup gate
// (>= 3x at N=400, 8 shards) is only meaningful with >= 4 hardware
// threads; the JSON records hardware_concurrency so readers can tell a
// serialized box from a scaling failure.  --smoke shrinks the grid to one
// tiny row for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_support/dynamic_world.hpp"
#include "service/allocation_service.hpp"
#include "service/service_replay.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

using Clock = std::chrono::steady_clock;

struct GridRow {
  int n_total = 0;   ///< operators across the whole deployment
  int shards = 0;
  int workers = 0;
  int events_per_shard = 0;
};

struct RowResult {
  GridRow row;
  std::uint64_t requests = 0;
  int events_applied = 0;
  int events_coalesced = 0;
  int failures = 0;
  double events_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double speedup_vs_1worker = 0.0;
  bool signatures_match = false;
};

double percentile_ms(std::vector<double>& latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  const double idx = p / 100.0 * static_cast<double>(latencies.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, latencies.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return (latencies[lo] * (1.0 - frac) + latencies[hi] * frac) * 1e3;
}

/// Per-shard worlds for one (N, shards) deployment: shard i gets its own
/// platform partition, tenants, and trace, derived from a per-shard seed.
std::vector<ShardSpec> make_deployment(std::uint64_t seed, int n_total,
                                       int shards, int events_per_shard) {
  std::vector<ShardSpec> specs;
  for (int i = 0; i < shards; ++i) {
    DynamicWorld world = make_dynamic_world(
        seed + 7919ull * static_cast<std::uint64_t>(i),
        {std::max(n_total / shards, 8), 2, events_per_shard});
    specs.push_back(ShardSpec{std::move(world.apps), std::move(world.platform),
                              std::move(world.catalog),
                              std::move(world.trace)});
  }
  return specs;
}

RowResult run_row(const std::vector<ShardSpec>& specs,
                  const std::vector<ShardReplayResult>& reference,
                  const GridRow& row, std::uint64_t seed) {
  ServiceOptions opt;
  opt.num_workers = row.workers;
  opt.queue_capacity = 1024;
  opt.seed = seed;
  AllocationService service(specs, opt);
  service.start();

  const auto t0 = Clock::now();
  std::vector<std::thread> producers;
  producers.reserve(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    producers.emplace_back([&service, &specs, s] {
      for (const WorkloadEvent& event : specs[s].trace.events) {
        service.submit(static_cast<int>(s), event);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ServiceStats stats = service.finish();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

  RowResult r;
  r.row = row;
  r.requests = stats.requests_submitted;
  r.events_applied = stats.events_applied;
  r.events_coalesced = stats.events_coalesced;
  r.failures = stats.failures;
  r.events_per_sec =
      wall > 0.0 ? static_cast<double>(stats.requests_submitted) / wall : 0.0;
  r.p50_ms = percentile_ms(stats.latency_seconds, 50.0);
  r.p99_ms = percentile_ms(stats.latency_seconds, 99.0);
  r.signatures_match = true;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    const ShardSnapshot* snap = service.snapshot(static_cast<int>(s));
    if (snap->signature != reference[s].signature ||
        !(snap->allocation == reference[s].final_allocation)) {
      r.signatures_match = false;
    }
  }
  return r;
}

void write_json(const std::string& path, std::uint64_t seed,
                unsigned hardware, const std::vector<RowResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"service\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RowResult& r = results[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"num_operators\": %d,\n", r.row.n_total);
    std::fprintf(f, "      \"shards\": %d,\n", r.row.shards);
    std::fprintf(f, "      \"worker_threads\": %d,\n", r.row.workers);
    std::fprintf(f, "      \"events\": %llu,\n",
                 static_cast<unsigned long long>(r.requests));
    std::fprintf(f, "      \"events_applied\": %d,\n", r.events_applied);
    std::fprintf(f, "      \"events_coalesced\": %d,\n", r.events_coalesced);
    std::fprintf(f, "      \"failures\": %d,\n", r.failures);
    std::fprintf(f, "      \"events_per_sec\": %.1f,\n", r.events_per_sec);
    std::fprintf(f, "      \"p50_ms\": %.4f,\n", r.p50_ms);
    std::fprintf(f, "      \"p99_ms\": %.4f,\n", r.p99_ms);
    std::fprintf(f, "      \"speedup_vs_1worker\": %.2f,\n",
                 r.speedup_vs_1worker);
    std::fprintf(f, "      \"hardware_concurrency\": %u,\n", hardware);
    std::fprintf(f, "      \"signatures_match\": %s\n",
                 r.signatures_match ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/1, /*accepts_heuristics=*/false);
  const std::string json_path = args.get("json", "BENCH_service.json");
  const bool smoke = args.get_bool("smoke", false);
  const unsigned hardware = std::thread::hardware_concurrency();

  std::vector<int> n_totals, shard_counts, worker_counts;
  int events_per_shard;
  if (smoke) {
    n_totals = {40};
    shard_counts = {2};
    worker_counts = {1, 2};
    events_per_shard = 24;
  } else {
    n_totals = {200, 400};
    shard_counts = {2, 4, 8};
    worker_counts = {1, 2, 4, 8};
    events_per_shard = 200;
  }

  std::printf("Concurrent allocation service: throughput and latency\n"
              "=====================================================\n"
              "hardware threads: %u\n\n",
              hardware);

  bool all_match = true;
  std::vector<RowResult> results;
  for (int n_total : n_totals) {
    for (int shards : shard_counts) {
      const std::vector<ShardSpec> specs =
          make_deployment(flags.seed, n_total, shards, events_per_shard);
      ServiceOptions ref_opt;
      ref_opt.seed = flags.seed;
      std::vector<ShardReplayResult> reference;
      for (std::size_t s = 0; s < specs.size(); ++s) {
        reference.push_back(
            replay_shard_sequential(specs[s], static_cast<int>(s), ref_opt));
      }
      double baseline_eps = 0.0;
      for (int workers : worker_counts) {
        GridRow row{n_total, shards, workers, events_per_shard};
        RowResult r = run_row(specs, reference, row, flags.seed);
        if (workers == worker_counts.front()) baseline_eps = r.events_per_sec;
        r.speedup_vs_1worker =
            baseline_eps > 0.0 ? r.events_per_sec / baseline_eps : 0.0;
        all_match = all_match && r.signatures_match;
        results.push_back(r);
        std::printf(
            "N=%-4d shards=%d workers=%d  %9.0f events/s  p50 %7.3f ms  "
            "p99 %7.3f ms  speedup %5.2fx  %s\n",
            n_total, shards, workers, r.events_per_sec, r.p50_ms, r.p99_ms,
            r.speedup_vs_1worker,
            r.signatures_match ? "replay OK" : "REPLAY MISMATCH");
      }
      std::printf("\n");
    }
  }

  // Scaling gate: >= 3x from 1 -> max workers at the largest deployment.
  // Only meaningful on hardware that can actually run the workers in
  // parallel; a 1-2 core box serializes everything by construction.
  if (!smoke) {
    double best = 0.0;
    for (const RowResult& r : results) {
      if (r.row.n_total == n_totals.back() &&
          r.row.shards == shard_counts.back() &&
          r.row.workers == worker_counts.back()) {
        best = r.speedup_vs_1worker;
      }
    }
    if (hardware >= 4) {
      std::printf("scaling gate (>= 3x, 1 -> %d workers, N=%d, %d shards): "
                  "%.2fx  %s\n",
                  worker_counts.back(), n_totals.back(), shard_counts.back(),
                  best, best >= 3.0 ? "PASS" : "FAIL");
    } else {
      std::printf("scaling gate skipped: %u hardware thread(s) cannot "
                  "demonstrate worker scaling (measured %.2fx)\n",
                  hardware, best);
    }
  }
  if (!all_match) {
    std::fprintf(stderr,
                 "FATAL: some configuration diverged from the sequential "
                 "per-shard reference\n");
  }

  write_json(json_path, flags.seed, hardware, results);
  std::printf("json written to %s\n", json_path.c_str());
  return all_match ? 0 : 1;
}
