// Simulator throughput study: the sparse pre-indexed event-simulator core
// vs the seed-era dense reference (full n_procs x n_procs link matrix
// rebuilt every period, full-vector snapshots, deque token churn), across
// growing instance sizes.  The simulator sits on the scenario engine's hot
// path — one run per trace event per thread slot — so this is the perf
// trajectory that decides how many scenarios a replay sweep can afford.
//
// Instances are built for *simulator* stress, not allocation quality: one
// operator per processor makes every tree edge a crossing edge (the worst
// case for the dense link matrix), and a single-model catalog is sized from
// the measured loads so the plan is valid (rho* >= 1) and the steady-state
// pipeline path is what gets timed.
// Each row cross-checks that both cores return bit-identical results —
// the same contract tests/sim/sim_differential_test.cpp enforces.
//
// Emits machine-readable BENCH_sim.json (schema checked in CI by
// scripts/check_bench_json.py).  --smoke shrinks the sweep for CI.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/event_sim.hpp"
#include "sim/flow_analyzer.hpp"
#include "tree/tree_generator.hpp"

using namespace insp;
using namespace insp::benchx;

namespace {

using Clock = std::chrono::steady_clock;

struct SimWorld {
  OperatorTree tree;
  Platform platform;
  PriceCatalog catalog;
  Allocation alloc;
  int crossing_edges = 0;

  Problem problem() const {
    Problem p;
    p.tree = &tree;
    p.platform = &platform;
    p.catalog = &catalog;
    p.rho = 1.0;
    return p;
  }
};

/// Deterministic stress instance: random paper-shaped tree with one
/// operator per processor (every tree edge crosses — the worst case for
/// the dense link matrix), catalog and links sized to the measured loads
/// with ~1% headroom so every budget is tight but sufficient.
SimWorld make_world(std::uint64_t seed, int n_operators) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ull *
                  static_cast<std::uint64_t>(n_operators)));
  TreeGenConfig tcfg;
  tcfg.num_operators = n_operators;
  tcfg.alpha = 1.0;
  OperatorTree tree = generate_random_tree(rng, tcfg);

  const int n_procs = std::max(2, n_operators);
  Allocation alloc;
  alloc.processors.resize(static_cast<std::size_t>(n_procs));
  alloc.op_to_proc.resize(static_cast<std::size_t>(tree.num_operators()));
  for (int op = 0; op < tree.num_operators(); ++op) {
    const int u = op % n_procs;
    alloc.processors[static_cast<std::size_t>(u)].ops.push_back(op);
    alloc.op_to_proc[static_cast<std::size_t>(op)] = u;
  }
  for (auto& p : alloc.processors) {
    p.config = ProcessorConfig{0, 0};
  }

  // One server hosts every type; route all downloads there.
  std::vector<int> all_types;
  for (int t = 0; t < tree.catalog().count(); ++t) all_types.push_back(t);
  Platform sizing_platform({{0, 1e9, all_types}}, 1e9, 1e9,
                           tree.catalog().count());
  PriceCatalog sizing_catalog = PriceCatalog::paper_default();
  Problem sizing;
  sizing.tree = &tree;
  sizing.platform = &sizing_platform;
  sizing.catalog = &sizing_catalog;
  sizing.rho = 1.0;
  const auto needed = needed_types_per_processor(sizing, alloc);
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    for (int t : needed[u]) {
      alloc.processors[u].downloads.push_back({t, 0});
    }
  }

  // Size the single catalog model and the pair links off the real loads.
  const auto loads = compute_processor_loads(sizing, alloc);
  MopsPerSec max_cpu = 1.0;
  MBps max_nic = 1.0;
  for (const auto& l : loads) {
    max_cpu = std::max(max_cpu, l.cpu_demand);
    max_nic = std::max(max_nic, l.nic_total());
  }
  MegaBytes max_pair_volume = 1.0;
  {
    std::vector<std::pair<long long, double>> acc;  // (pair key, edge MB)
    for (const auto& n : tree.operators()) {
      const int u = alloc.op_to_proc[static_cast<std::size_t>(n.id)];
      for (const OutEdge& e : n.out) {
        const int v = alloc.op_to_proc[static_cast<std::size_t>(e.dst)];
        if (u == v) continue;
        acc.push_back({static_cast<long long>(std::min(u, v)) * n_procs +
                           std::max(u, v),
                       e.delta});
      }
    }
    std::sort(acc.begin(), acc.end());
    double run = 0.0;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      run += acc[i].second;
      if (i + 1 == acc.size() || acc[i + 1].first != acc[i].first) {
        max_pair_volume = std::max(max_pair_volume, run);
        run = 0.0;
      }
    }
  }

  SimWorld world{
      std::move(tree),
      Platform({{0, 1e9, all_types}}, 1e9, max_pair_volume * 1.01,
               static_cast<int>(all_types.size())),
      PriceCatalog(10.0, {{max_cpu * 1.01, 0.0}}, {{max_nic * 1.01, 0.0}}),
      std::move(alloc)};
  for (const auto& n : world.tree.operators()) {
    const int u = world.alloc.op_to_proc[static_cast<std::size_t>(n.id)];
    for (const OutEdge& e : n.out) {
      if (world.alloc.op_to_proc[static_cast<std::size_t>(e.dst)] != u) {
        ++world.crossing_edges;
      }
    }
  }
  return world;
}

struct Row {
  int n = 0;
  int procs = 0;
  int crossing = 0;
  int periods = 0;
  int reps = 0;
  double rho_star = 0.0;
  double dense_ms = 0.0;
  double sparse_ms = 0.0;
  double speedup = 0.0;
  bool sustained = false;
  bool identical = false;
};

template <typename F>
double time_ms_per_run(int reps, F&& run) {
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) run();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
             .count() /
         static_cast<double>(reps);
}

void write_json(const std::string& path, std::uint64_t seed,
                const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim\",\n");
  std::fprintf(f, "  \"schema_version\": 1,\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"num_operators\": %d,\n", r.n);
    std::fprintf(f, "      \"num_processors\": %d,\n", r.procs);
    std::fprintf(f, "      \"crossing_edges\": %d,\n", r.crossing);
    std::fprintf(f, "      \"periods\": %d,\n", r.periods);
    std::fprintf(f, "      \"reps\": %d,\n", r.reps);
    std::fprintf(f, "      \"rho_star\": %.4f,\n", r.rho_star);
    std::fprintf(f, "      \"dense_ms_per_run\": %.4f,\n", r.dense_ms);
    std::fprintf(f, "      \"sparse_ms_per_run\": %.4f,\n", r.sparse_ms);
    std::fprintf(f, "      \"speedup\": %.2f,\n", r.speedup);
    std::fprintf(f, "      \"sustained\": %s,\n",
                 r.sustained ? "true" : "false");
    std::fprintf(f, "      \"identical_results\": %s\n",
                 r.identical ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

} // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const BenchFlags flags =
      parse_flags(argc, argv, /*default_reps=*/10,
                  /*accepts_heuristics=*/false);
  const std::string json_path = args.get("json", "BENCH_sim.json");
  const bool smoke = args.get_bool("smoke", false);

  std::vector<int> sizes = smoke ? std::vector<int>{60}
                                 : std::vector<int>{100, 200, 400};
  const int reps = smoke ? std::min(flags.repetitions, 3) : flags.repetitions;

  std::printf("Event simulator: sparse core vs dense reference\n"
              "===============================================\n\n");

  const EventSimConfig config;  // derived warmup/bound, 400 periods
  std::vector<Row> rows;
  for (int n : sizes) {
    const SimWorld world = make_world(flags.seed, n);
    const Problem prob = world.problem();
    const SimPlatformView view = SimPlatformView::uniform(world.platform);

    Row row;
    row.n = n;
    row.procs = world.alloc.num_processors();
    row.crossing = world.crossing_edges;
    row.periods = config.periods;
    row.reps = reps;
    row.rho_star = analyze_flow(prob, world.alloc).max_throughput;

    const EventSimResult sparse =
        simulate_allocation(prob, world.alloc, view, config);
    const EventSimResult dense = simulate_allocation_dense_reference(
        prob, world.alloc, view, config);
    row.sustained = sparse.sustained;
    row.identical =
        sparse.results_produced == dense.results_produced &&
        sparse.first_output_period == dense.first_output_period &&
        sparse.sustained == dense.sustained &&
        sparse.achieved_throughput == dense.achieved_throughput &&
        sparse.degenerate_config == dense.degenerate_config &&
        sparse.warmup_periods_used == dense.warmup_periods_used &&
        sparse.max_results_ahead_used == dense.max_results_ahead_used;

    row.sparse_ms = time_ms_per_run(reps, [&] {
      (void)simulate_allocation(prob, world.alloc, view, config);
    });
    row.dense_ms = time_ms_per_run(reps, [&] {
      (void)simulate_allocation_dense_reference(prob, world.alloc, view,
                                                config);
    });
    row.speedup = row.sparse_ms > 0.0 ? row.dense_ms / row.sparse_ms : 0.0;
    rows.push_back(row);

    std::printf(
        "N=%-4d procs=%-4d crossing=%-4d rho*=%.2f  dense %8.3f ms   "
        "sparse %8.3f ms   speedup %6.1fx   sustained=%d identical=%d\n",
        row.n, row.procs, row.crossing, row.rho_star, row.dense_ms,
        row.sparse_ms, row.speedup, row.sustained ? 1 : 0,
        row.identical ? 1 : 0);
  }

  write_json(json_path, flags.seed, rows);
  std::printf("\njson written to %s\n", json_path.c_str());
  return 0;
}
