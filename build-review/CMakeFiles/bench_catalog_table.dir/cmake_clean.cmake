file(REMOVE_RECURSE
  "CMakeFiles/bench_catalog_table.dir/bench/bench_catalog_table.cpp.o"
  "CMakeFiles/bench_catalog_table.dir/bench/bench_catalog_table.cpp.o.d"
  "bench_catalog_table"
  "bench_catalog_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_catalog_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
