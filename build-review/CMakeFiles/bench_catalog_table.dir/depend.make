# Empty dependencies file for bench_catalog_table.
# This may be replaced when dependencies are built.
