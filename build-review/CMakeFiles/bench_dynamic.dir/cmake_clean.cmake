file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic.dir/bench/bench_dynamic.cpp.o"
  "CMakeFiles/bench_dynamic.dir/bench/bench_dynamic.cpp.o.d"
  "bench_dynamic"
  "bench_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
