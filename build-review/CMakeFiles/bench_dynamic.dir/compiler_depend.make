# Empty compiler generated dependencies file for bench_dynamic.
# This may be replaced when dependencies are built.
