file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a.dir/bench/bench_fig2a.cpp.o"
  "CMakeFiles/bench_fig2a.dir/bench/bench_fig2a.cpp.o.d"
  "bench_fig2a"
  "bench_fig2a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
