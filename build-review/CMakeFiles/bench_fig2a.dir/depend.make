# Empty dependencies file for bench_fig2a.
# This may be replaced when dependencies are built.
