file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b.dir/bench/bench_fig2b.cpp.o"
  "CMakeFiles/bench_fig2b.dir/bench/bench_fig2b.cpp.o.d"
  "bench_fig2b"
  "bench_fig2b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
