# Empty compiler generated dependencies file for bench_fig2b.
# This may be replaced when dependencies are built.
