
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_frequency.cpp" "CMakeFiles/bench_frequency.dir/bench/bench_frequency.cpp.o" "gcc" "CMakeFiles/bench_frequency.dir/bench/bench_frequency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/insp_ilp.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_service.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_planner.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_report.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_bench_support.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_dynamic.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_multi.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_tree.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_platform.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
