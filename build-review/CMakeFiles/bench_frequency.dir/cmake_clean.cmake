file(REMOVE_RECURSE
  "CMakeFiles/bench_frequency.dir/bench/bench_frequency.cpp.o"
  "CMakeFiles/bench_frequency.dir/bench/bench_frequency.cpp.o.d"
  "bench_frequency"
  "bench_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
