# Empty compiler generated dependencies file for bench_frequency.
# This may be replaced when dependencies are built.
