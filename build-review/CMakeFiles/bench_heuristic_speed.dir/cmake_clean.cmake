file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristic_speed.dir/bench/bench_heuristic_speed.cpp.o"
  "CMakeFiles/bench_heuristic_speed.dir/bench/bench_heuristic_speed.cpp.o.d"
  "bench_heuristic_speed"
  "bench_heuristic_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
