# Empty compiler generated dependencies file for bench_heuristic_speed.
# This may be replaced when dependencies are built.
