file(REMOVE_RECURSE
  "CMakeFiles/bench_ilp_comparison.dir/bench/bench_ilp_comparison.cpp.o"
  "CMakeFiles/bench_ilp_comparison.dir/bench/bench_ilp_comparison.cpp.o.d"
  "bench_ilp_comparison"
  "bench_ilp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
