# Empty compiler generated dependencies file for bench_ilp_comparison.
# This may be replaced when dependencies are built.
