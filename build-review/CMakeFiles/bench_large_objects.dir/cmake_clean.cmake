file(REMOVE_RECURSE
  "CMakeFiles/bench_large_objects.dir/bench/bench_large_objects.cpp.o"
  "CMakeFiles/bench_large_objects.dir/bench/bench_large_objects.cpp.o.d"
  "bench_large_objects"
  "bench_large_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
