# Empty dependencies file for bench_large_objects.
# This may be replaced when dependencies are built.
