file(REMOVE_RECURSE
  "CMakeFiles/bench_local_search.dir/bench/bench_local_search.cpp.o"
  "CMakeFiles/bench_local_search.dir/bench/bench_local_search.cpp.o.d"
  "bench_local_search"
  "bench_local_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
