# Empty dependencies file for bench_local_search.
# This may be replaced when dependencies are built.
