file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_app.dir/bench/bench_multi_app.cpp.o"
  "CMakeFiles/bench_multi_app.dir/bench/bench_multi_app.cpp.o.d"
  "bench_multi_app"
  "bench_multi_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
