# Empty compiler generated dependencies file for bench_multi_app.
# This may be replaced when dependencies are built.
