file(REMOVE_RECURSE
  "CMakeFiles/bench_placement_speed.dir/bench/bench_placement_speed.cpp.o"
  "CMakeFiles/bench_placement_speed.dir/bench/bench_placement_speed.cpp.o.d"
  "bench_placement_speed"
  "bench_placement_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
