# Empty compiler generated dependencies file for bench_placement_speed.
# This may be replaced when dependencies are built.
