file(REMOVE_RECURSE
  "CMakeFiles/bench_replication.dir/bench/bench_replication.cpp.o"
  "CMakeFiles/bench_replication.dir/bench/bench_replication.cpp.o.d"
  "bench_replication"
  "bench_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
