# Empty dependencies file for bench_replication.
# This may be replaced when dependencies are built.
