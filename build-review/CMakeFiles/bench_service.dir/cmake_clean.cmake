file(REMOVE_RECURSE
  "CMakeFiles/bench_service.dir/bench/bench_service.cpp.o"
  "CMakeFiles/bench_service.dir/bench/bench_service.cpp.o.d"
  "bench_service"
  "bench_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
