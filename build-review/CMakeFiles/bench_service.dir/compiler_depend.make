# Empty compiler generated dependencies file for bench_service.
# This may be replaced when dependencies are built.
