file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_speed.dir/bench/bench_sim_speed.cpp.o"
  "CMakeFiles/bench_sim_speed.dir/bench/bench_sim_speed.cpp.o.d"
  "bench_sim_speed"
  "bench_sim_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
