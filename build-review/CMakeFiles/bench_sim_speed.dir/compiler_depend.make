# Empty compiler generated dependencies file for bench_sim_speed.
# This may be replaced when dependencies are built.
