file(REMOVE_RECURSE
  "CMakeFiles/core_allocator_test.dir/tests/core/allocator_test.cpp.o"
  "CMakeFiles/core_allocator_test.dir/tests/core/allocator_test.cpp.o.d"
  "core_allocator_test"
  "core_allocator_test.pdb"
  "core_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
