# Empty dependencies file for core_allocator_test.
# This may be replaced when dependencies are built.
