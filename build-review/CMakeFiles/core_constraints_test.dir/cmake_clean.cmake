file(REMOVE_RECURSE
  "CMakeFiles/core_constraints_test.dir/tests/core/constraints_test.cpp.o"
  "CMakeFiles/core_constraints_test.dir/tests/core/constraints_test.cpp.o.d"
  "core_constraints_test"
  "core_constraints_test.pdb"
  "core_constraints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
