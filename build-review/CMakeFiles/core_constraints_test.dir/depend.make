# Empty dependencies file for core_constraints_test.
# This may be replaced when dependencies are built.
