file(REMOVE_RECURSE
  "CMakeFiles/core_downgrade_test.dir/tests/core/downgrade_test.cpp.o"
  "CMakeFiles/core_downgrade_test.dir/tests/core/downgrade_test.cpp.o.d"
  "core_downgrade_test"
  "core_downgrade_test.pdb"
  "core_downgrade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_downgrade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
