# Empty compiler generated dependencies file for core_downgrade_test.
# This may be replaced when dependencies are built.
