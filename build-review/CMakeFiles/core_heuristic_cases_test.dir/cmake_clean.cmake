file(REMOVE_RECURSE
  "CMakeFiles/core_heuristic_cases_test.dir/tests/core/heuristic_cases_test.cpp.o"
  "CMakeFiles/core_heuristic_cases_test.dir/tests/core/heuristic_cases_test.cpp.o.d"
  "core_heuristic_cases_test"
  "core_heuristic_cases_test.pdb"
  "core_heuristic_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_heuristic_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
