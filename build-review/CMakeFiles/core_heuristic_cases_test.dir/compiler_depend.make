# Empty compiler generated dependencies file for core_heuristic_cases_test.
# This may be replaced when dependencies are built.
