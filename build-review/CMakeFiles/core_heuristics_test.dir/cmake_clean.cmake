file(REMOVE_RECURSE
  "CMakeFiles/core_heuristics_test.dir/tests/core/heuristics_test.cpp.o"
  "CMakeFiles/core_heuristics_test.dir/tests/core/heuristics_test.cpp.o.d"
  "core_heuristics_test"
  "core_heuristics_test.pdb"
  "core_heuristics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
