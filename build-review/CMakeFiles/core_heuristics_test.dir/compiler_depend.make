# Empty compiler generated dependencies file for core_heuristics_test.
# This may be replaced when dependencies are built.
