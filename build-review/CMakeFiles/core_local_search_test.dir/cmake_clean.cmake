file(REMOVE_RECURSE
  "CMakeFiles/core_local_search_test.dir/tests/core/local_search_test.cpp.o"
  "CMakeFiles/core_local_search_test.dir/tests/core/local_search_test.cpp.o.d"
  "core_local_search_test"
  "core_local_search_test.pdb"
  "core_local_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_local_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
