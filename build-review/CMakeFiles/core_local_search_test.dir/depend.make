# Empty dependencies file for core_local_search_test.
# This may be replaced when dependencies are built.
