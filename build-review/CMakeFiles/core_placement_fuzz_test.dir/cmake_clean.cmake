file(REMOVE_RECURSE
  "CMakeFiles/core_placement_fuzz_test.dir/tests/core/placement_fuzz_test.cpp.o"
  "CMakeFiles/core_placement_fuzz_test.dir/tests/core/placement_fuzz_test.cpp.o.d"
  "core_placement_fuzz_test"
  "core_placement_fuzz_test.pdb"
  "core_placement_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_placement_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
