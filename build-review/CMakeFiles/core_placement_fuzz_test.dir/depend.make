# Empty dependencies file for core_placement_fuzz_test.
# This may be replaced when dependencies are built.
