# Empty compiler generated dependencies file for core_placement_state_test.
# This may be replaced when dependencies are built.
