file(REMOVE_RECURSE
  "CMakeFiles/core_placement_txn_diff_test.dir/tests/core/placement_txn_diff_test.cpp.o"
  "CMakeFiles/core_placement_txn_diff_test.dir/tests/core/placement_txn_diff_test.cpp.o.d"
  "core_placement_txn_diff_test"
  "core_placement_txn_diff_test.pdb"
  "core_placement_txn_diff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_placement_txn_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
