# Empty compiler generated dependencies file for core_placement_txn_diff_test.
# This may be replaced when dependencies are built.
