file(REMOVE_RECURSE
  "CMakeFiles/core_server_selection_test.dir/tests/core/server_selection_test.cpp.o"
  "CMakeFiles/core_server_selection_test.dir/tests/core/server_selection_test.cpp.o.d"
  "core_server_selection_test"
  "core_server_selection_test.pdb"
  "core_server_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_server_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
