# Empty dependencies file for core_server_selection_test.
# This may be replaced when dependencies are built.
