file(REMOVE_RECURSE
  "CMakeFiles/core_strategy_registry_test.dir/tests/core/strategy_registry_test.cpp.o"
  "CMakeFiles/core_strategy_registry_test.dir/tests/core/strategy_registry_test.cpp.o.d"
  "core_strategy_registry_test"
  "core_strategy_registry_test.pdb"
  "core_strategy_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_strategy_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
