# Empty compiler generated dependencies file for core_strategy_registry_test.
# This may be replaced when dependencies are built.
