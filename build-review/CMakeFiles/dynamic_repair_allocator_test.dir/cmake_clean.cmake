file(REMOVE_RECURSE
  "CMakeFiles/dynamic_repair_allocator_test.dir/tests/dynamic/repair_allocator_test.cpp.o"
  "CMakeFiles/dynamic_repair_allocator_test.dir/tests/dynamic/repair_allocator_test.cpp.o.d"
  "dynamic_repair_allocator_test"
  "dynamic_repair_allocator_test.pdb"
  "dynamic_repair_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_repair_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
