# Empty dependencies file for dynamic_repair_allocator_test.
# This may be replaced when dependencies are built.
