file(REMOVE_RECURSE
  "CMakeFiles/dynamic_trace_replay_determinism_test.dir/tests/dynamic/trace_replay_determinism_test.cpp.o"
  "CMakeFiles/dynamic_trace_replay_determinism_test.dir/tests/dynamic/trace_replay_determinism_test.cpp.o.d"
  "dynamic_trace_replay_determinism_test"
  "dynamic_trace_replay_determinism_test.pdb"
  "dynamic_trace_replay_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_trace_replay_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
