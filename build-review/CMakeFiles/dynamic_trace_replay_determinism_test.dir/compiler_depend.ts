# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dynamic_trace_replay_determinism_test.
