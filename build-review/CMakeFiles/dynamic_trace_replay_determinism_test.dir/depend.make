# Empty dependencies file for dynamic_trace_replay_determinism_test.
# This may be replaced when dependencies are built.
