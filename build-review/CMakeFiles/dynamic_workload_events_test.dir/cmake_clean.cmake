file(REMOVE_RECURSE
  "CMakeFiles/dynamic_workload_events_test.dir/tests/dynamic/workload_events_test.cpp.o"
  "CMakeFiles/dynamic_workload_events_test.dir/tests/dynamic/workload_events_test.cpp.o.d"
  "dynamic_workload_events_test"
  "dynamic_workload_events_test.pdb"
  "dynamic_workload_events_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_workload_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
