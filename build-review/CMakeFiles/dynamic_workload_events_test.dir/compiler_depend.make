# Empty compiler generated dependencies file for dynamic_workload_events_test.
# This may be replaced when dependencies are built.
