# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dynamic_workload_events_test.
