file(REMOVE_RECURSE
  "CMakeFiles/example_capacity_planner.dir/examples/capacity_planner.cpp.o"
  "CMakeFiles/example_capacity_planner.dir/examples/capacity_planner.cpp.o.d"
  "example_capacity_planner"
  "example_capacity_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_capacity_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
