# Empty dependencies file for example_capacity_planner.
# This may be replaced when dependencies are built.
