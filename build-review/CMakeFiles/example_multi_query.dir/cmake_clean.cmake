file(REMOVE_RECURSE
  "CMakeFiles/example_multi_query.dir/examples/multi_query.cpp.o"
  "CMakeFiles/example_multi_query.dir/examples/multi_query.cpp.o.d"
  "example_multi_query"
  "example_multi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
