# Empty compiler generated dependencies file for example_multi_query.
# This may be replaced when dependencies are built.
