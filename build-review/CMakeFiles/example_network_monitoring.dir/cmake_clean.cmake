file(REMOVE_RECURSE
  "CMakeFiles/example_network_monitoring.dir/examples/network_monitoring.cpp.o"
  "CMakeFiles/example_network_monitoring.dir/examples/network_monitoring.cpp.o.d"
  "example_network_monitoring"
  "example_network_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
