# Empty dependencies file for example_network_monitoring.
# This may be replaced when dependencies are built.
