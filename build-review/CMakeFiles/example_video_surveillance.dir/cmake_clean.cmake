file(REMOVE_RECURSE
  "CMakeFiles/example_video_surveillance.dir/examples/video_surveillance.cpp.o"
  "CMakeFiles/example_video_surveillance.dir/examples/video_surveillance.cpp.o.d"
  "example_video_surveillance"
  "example_video_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
