# Empty compiler generated dependencies file for example_video_surveillance.
# This may be replaced when dependencies are built.
