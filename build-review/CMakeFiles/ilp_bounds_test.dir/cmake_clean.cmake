file(REMOVE_RECURSE
  "CMakeFiles/ilp_bounds_test.dir/tests/ilp/bounds_test.cpp.o"
  "CMakeFiles/ilp_bounds_test.dir/tests/ilp/bounds_test.cpp.o.d"
  "ilp_bounds_test"
  "ilp_bounds_test.pdb"
  "ilp_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
