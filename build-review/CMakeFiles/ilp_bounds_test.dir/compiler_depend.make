# Empty compiler generated dependencies file for ilp_bounds_test.
# This may be replaced when dependencies are built.
