file(REMOVE_RECURSE
  "CMakeFiles/ilp_exact_solver_test.dir/tests/ilp/exact_solver_test.cpp.o"
  "CMakeFiles/ilp_exact_solver_test.dir/tests/ilp/exact_solver_test.cpp.o.d"
  "ilp_exact_solver_test"
  "ilp_exact_solver_test.pdb"
  "ilp_exact_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_exact_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
