# Empty dependencies file for ilp_exact_solver_test.
# This may be replaced when dependencies are built.
