file(REMOVE_RECURSE
  "CMakeFiles/ilp_ilp_model_test.dir/tests/ilp/ilp_model_test.cpp.o"
  "CMakeFiles/ilp_ilp_model_test.dir/tests/ilp/ilp_model_test.cpp.o.d"
  "ilp_ilp_model_test"
  "ilp_ilp_model_test.pdb"
  "ilp_ilp_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_ilp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
