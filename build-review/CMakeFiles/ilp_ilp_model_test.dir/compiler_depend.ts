# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ilp_ilp_model_test.
