# Empty dependencies file for ilp_ilp_model_test.
# This may be replaced when dependencies are built.
