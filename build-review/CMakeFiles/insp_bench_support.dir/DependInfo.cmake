
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_support/dynamic_world.cpp" "CMakeFiles/insp_bench_support.dir/src/bench_support/dynamic_world.cpp.o" "gcc" "CMakeFiles/insp_bench_support.dir/src/bench_support/dynamic_world.cpp.o.d"
  "/root/repo/src/bench_support/experiment.cpp" "CMakeFiles/insp_bench_support.dir/src/bench_support/experiment.cpp.o" "gcc" "CMakeFiles/insp_bench_support.dir/src/bench_support/experiment.cpp.o.d"
  "/root/repo/src/bench_support/reporting.cpp" "CMakeFiles/insp_bench_support.dir/src/bench_support/reporting.cpp.o" "gcc" "CMakeFiles/insp_bench_support.dir/src/bench_support/reporting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/insp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_platform.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_tree.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_dynamic.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_multi.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
