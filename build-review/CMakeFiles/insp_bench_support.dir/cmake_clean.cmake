file(REMOVE_RECURSE
  "CMakeFiles/insp_bench_support.dir/src/bench_support/dynamic_world.cpp.o"
  "CMakeFiles/insp_bench_support.dir/src/bench_support/dynamic_world.cpp.o.d"
  "CMakeFiles/insp_bench_support.dir/src/bench_support/experiment.cpp.o"
  "CMakeFiles/insp_bench_support.dir/src/bench_support/experiment.cpp.o.d"
  "CMakeFiles/insp_bench_support.dir/src/bench_support/reporting.cpp.o"
  "CMakeFiles/insp_bench_support.dir/src/bench_support/reporting.cpp.o.d"
  "libinsp_bench_support.a"
  "libinsp_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
