file(REMOVE_RECURSE
  "libinsp_bench_support.a"
)
