# Empty dependencies file for insp_bench_support.
# This may be replaced when dependencies are built.
