
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ablation_variants.cpp" "CMakeFiles/insp_core.dir/src/core/ablation_variants.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/ablation_variants.cpp.o.d"
  "/root/repo/src/core/allocation.cpp" "CMakeFiles/insp_core.dir/src/core/allocation.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/allocation.cpp.o.d"
  "/root/repo/src/core/allocator.cpp" "CMakeFiles/insp_core.dir/src/core/allocator.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/allocator.cpp.o.d"
  "/root/repo/src/core/constraints.cpp" "CMakeFiles/insp_core.dir/src/core/constraints.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/constraints.cpp.o.d"
  "/root/repo/src/core/downgrade.cpp" "CMakeFiles/insp_core.dir/src/core/downgrade.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/downgrade.cpp.o.d"
  "/root/repo/src/core/heuristic_comm_greedy.cpp" "CMakeFiles/insp_core.dir/src/core/heuristic_comm_greedy.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/heuristic_comm_greedy.cpp.o.d"
  "/root/repo/src/core/heuristic_comp_greedy.cpp" "CMakeFiles/insp_core.dir/src/core/heuristic_comp_greedy.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/heuristic_comp_greedy.cpp.o.d"
  "/root/repo/src/core/heuristic_object_availability.cpp" "CMakeFiles/insp_core.dir/src/core/heuristic_object_availability.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/heuristic_object_availability.cpp.o.d"
  "/root/repo/src/core/heuristic_object_grouping.cpp" "CMakeFiles/insp_core.dir/src/core/heuristic_object_grouping.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/heuristic_object_grouping.cpp.o.d"
  "/root/repo/src/core/heuristic_random.cpp" "CMakeFiles/insp_core.dir/src/core/heuristic_random.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/heuristic_random.cpp.o.d"
  "/root/repo/src/core/heuristic_subtree_bottom_up.cpp" "CMakeFiles/insp_core.dir/src/core/heuristic_subtree_bottom_up.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/heuristic_subtree_bottom_up.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "CMakeFiles/insp_core.dir/src/core/local_search.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/local_search.cpp.o.d"
  "/root/repo/src/core/placement_common.cpp" "CMakeFiles/insp_core.dir/src/core/placement_common.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/placement_common.cpp.o.d"
  "/root/repo/src/core/placement_state.cpp" "CMakeFiles/insp_core.dir/src/core/placement_state.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/placement_state.cpp.o.d"
  "/root/repo/src/core/server_selection.cpp" "CMakeFiles/insp_core.dir/src/core/server_selection.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/server_selection.cpp.o.d"
  "/root/repo/src/core/strategy_registry.cpp" "CMakeFiles/insp_core.dir/src/core/strategy_registry.cpp.o" "gcc" "CMakeFiles/insp_core.dir/src/core/strategy_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/insp_tree.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_platform.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
