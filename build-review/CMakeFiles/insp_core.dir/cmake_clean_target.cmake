file(REMOVE_RECURSE
  "libinsp_core.a"
)
