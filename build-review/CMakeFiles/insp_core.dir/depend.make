# Empty dependencies file for insp_core.
# This may be replaced when dependencies are built.
