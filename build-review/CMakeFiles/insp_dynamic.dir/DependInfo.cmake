
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynamic/repair_allocator.cpp" "CMakeFiles/insp_dynamic.dir/src/dynamic/repair_allocator.cpp.o" "gcc" "CMakeFiles/insp_dynamic.dir/src/dynamic/repair_allocator.cpp.o.d"
  "/root/repo/src/dynamic/scenario_engine.cpp" "CMakeFiles/insp_dynamic.dir/src/dynamic/scenario_engine.cpp.o" "gcc" "CMakeFiles/insp_dynamic.dir/src/dynamic/scenario_engine.cpp.o.d"
  "/root/repo/src/dynamic/workload_events.cpp" "CMakeFiles/insp_dynamic.dir/src/dynamic/workload_events.cpp.o" "gcc" "CMakeFiles/insp_dynamic.dir/src/dynamic/workload_events.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/insp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_multi.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_tree.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_platform.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
