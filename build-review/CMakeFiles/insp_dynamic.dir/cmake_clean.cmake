file(REMOVE_RECURSE
  "CMakeFiles/insp_dynamic.dir/src/dynamic/repair_allocator.cpp.o"
  "CMakeFiles/insp_dynamic.dir/src/dynamic/repair_allocator.cpp.o.d"
  "CMakeFiles/insp_dynamic.dir/src/dynamic/scenario_engine.cpp.o"
  "CMakeFiles/insp_dynamic.dir/src/dynamic/scenario_engine.cpp.o.d"
  "CMakeFiles/insp_dynamic.dir/src/dynamic/workload_events.cpp.o"
  "CMakeFiles/insp_dynamic.dir/src/dynamic/workload_events.cpp.o.d"
  "libinsp_dynamic.a"
  "libinsp_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
