file(REMOVE_RECURSE
  "libinsp_dynamic.a"
)
