# Empty dependencies file for insp_dynamic.
# This may be replaced when dependencies are built.
