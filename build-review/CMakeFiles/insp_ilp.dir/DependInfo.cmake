
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilp/bounds.cpp" "CMakeFiles/insp_ilp.dir/src/ilp/bounds.cpp.o" "gcc" "CMakeFiles/insp_ilp.dir/src/ilp/bounds.cpp.o.d"
  "/root/repo/src/ilp/exact_solver.cpp" "CMakeFiles/insp_ilp.dir/src/ilp/exact_solver.cpp.o" "gcc" "CMakeFiles/insp_ilp.dir/src/ilp/exact_solver.cpp.o.d"
  "/root/repo/src/ilp/ilp_model.cpp" "CMakeFiles/insp_ilp.dir/src/ilp/ilp_model.cpp.o" "gcc" "CMakeFiles/insp_ilp.dir/src/ilp/ilp_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/insp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_tree.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_platform.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
