file(REMOVE_RECURSE
  "CMakeFiles/insp_ilp.dir/src/ilp/bounds.cpp.o"
  "CMakeFiles/insp_ilp.dir/src/ilp/bounds.cpp.o.d"
  "CMakeFiles/insp_ilp.dir/src/ilp/exact_solver.cpp.o"
  "CMakeFiles/insp_ilp.dir/src/ilp/exact_solver.cpp.o.d"
  "CMakeFiles/insp_ilp.dir/src/ilp/ilp_model.cpp.o"
  "CMakeFiles/insp_ilp.dir/src/ilp/ilp_model.cpp.o.d"
  "libinsp_ilp.a"
  "libinsp_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
