file(REMOVE_RECURSE
  "libinsp_ilp.a"
)
