# Empty dependencies file for insp_ilp.
# This may be replaced when dependencies are built.
