file(REMOVE_RECURSE
  "CMakeFiles/insp_multi.dir/src/multi/multi_app.cpp.o"
  "CMakeFiles/insp_multi.dir/src/multi/multi_app.cpp.o.d"
  "CMakeFiles/insp_multi.dir/src/multi/subexpression.cpp.o"
  "CMakeFiles/insp_multi.dir/src/multi/subexpression.cpp.o.d"
  "libinsp_multi.a"
  "libinsp_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
