file(REMOVE_RECURSE
  "libinsp_multi.a"
)
