# Empty dependencies file for insp_multi.
# This may be replaced when dependencies are built.
