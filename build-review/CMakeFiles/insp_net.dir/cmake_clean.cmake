file(REMOVE_RECURSE
  "CMakeFiles/insp_net.dir/src/net/bandwidth_ledger.cpp.o"
  "CMakeFiles/insp_net.dir/src/net/bandwidth_ledger.cpp.o.d"
  "libinsp_net.a"
  "libinsp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
