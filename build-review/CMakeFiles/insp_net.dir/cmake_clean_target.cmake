file(REMOVE_RECURSE
  "libinsp_net.a"
)
