# Empty dependencies file for insp_net.
# This may be replaced when dependencies are built.
