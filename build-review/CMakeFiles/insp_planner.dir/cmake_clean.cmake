file(REMOVE_RECURSE
  "CMakeFiles/insp_planner.dir/src/planner/budget_planner.cpp.o"
  "CMakeFiles/insp_planner.dir/src/planner/budget_planner.cpp.o.d"
  "libinsp_planner.a"
  "libinsp_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
