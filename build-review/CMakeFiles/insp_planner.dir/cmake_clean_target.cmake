file(REMOVE_RECURSE
  "libinsp_planner.a"
)
