# Empty dependencies file for insp_planner.
# This may be replaced when dependencies are built.
