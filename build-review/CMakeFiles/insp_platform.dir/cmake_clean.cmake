file(REMOVE_RECURSE
  "CMakeFiles/insp_platform.dir/src/platform/catalog.cpp.o"
  "CMakeFiles/insp_platform.dir/src/platform/catalog.cpp.o.d"
  "CMakeFiles/insp_platform.dir/src/platform/platform.cpp.o"
  "CMakeFiles/insp_platform.dir/src/platform/platform.cpp.o.d"
  "CMakeFiles/insp_platform.dir/src/platform/server_distribution.cpp.o"
  "CMakeFiles/insp_platform.dir/src/platform/server_distribution.cpp.o.d"
  "libinsp_platform.a"
  "libinsp_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
