file(REMOVE_RECURSE
  "libinsp_platform.a"
)
