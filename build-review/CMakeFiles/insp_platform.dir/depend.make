# Empty dependencies file for insp_platform.
# This may be replaced when dependencies are built.
