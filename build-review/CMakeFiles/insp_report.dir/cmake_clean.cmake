file(REMOVE_RECURSE
  "CMakeFiles/insp_report.dir/src/report/allocation_report.cpp.o"
  "CMakeFiles/insp_report.dir/src/report/allocation_report.cpp.o.d"
  "libinsp_report.a"
  "libinsp_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
