file(REMOVE_RECURSE
  "libinsp_report.a"
)
