# Empty dependencies file for insp_report.
# This may be replaced when dependencies are built.
