
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/allocation_service.cpp" "CMakeFiles/insp_service.dir/src/service/allocation_service.cpp.o" "gcc" "CMakeFiles/insp_service.dir/src/service/allocation_service.cpp.o.d"
  "/root/repo/src/service/batch_planner.cpp" "CMakeFiles/insp_service.dir/src/service/batch_planner.cpp.o" "gcc" "CMakeFiles/insp_service.dir/src/service/batch_planner.cpp.o.d"
  "/root/repo/src/service/request_queue.cpp" "CMakeFiles/insp_service.dir/src/service/request_queue.cpp.o" "gcc" "CMakeFiles/insp_service.dir/src/service/request_queue.cpp.o.d"
  "/root/repo/src/service/service_replay.cpp" "CMakeFiles/insp_service.dir/src/service/service_replay.cpp.o" "gcc" "CMakeFiles/insp_service.dir/src/service/service_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/insp_dynamic.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_multi.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_tree.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_platform.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
