file(REMOVE_RECURSE
  "CMakeFiles/insp_service.dir/src/service/allocation_service.cpp.o"
  "CMakeFiles/insp_service.dir/src/service/allocation_service.cpp.o.d"
  "CMakeFiles/insp_service.dir/src/service/batch_planner.cpp.o"
  "CMakeFiles/insp_service.dir/src/service/batch_planner.cpp.o.d"
  "CMakeFiles/insp_service.dir/src/service/request_queue.cpp.o"
  "CMakeFiles/insp_service.dir/src/service/request_queue.cpp.o.d"
  "CMakeFiles/insp_service.dir/src/service/service_replay.cpp.o"
  "CMakeFiles/insp_service.dir/src/service/service_replay.cpp.o.d"
  "libinsp_service.a"
  "libinsp_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
