file(REMOVE_RECURSE
  "libinsp_service.a"
)
