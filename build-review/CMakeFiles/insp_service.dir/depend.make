# Empty dependencies file for insp_service.
# This may be replaced when dependencies are built.
