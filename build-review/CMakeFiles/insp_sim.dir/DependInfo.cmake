
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_sim.cpp" "CMakeFiles/insp_sim.dir/src/sim/event_sim.cpp.o" "gcc" "CMakeFiles/insp_sim.dir/src/sim/event_sim.cpp.o.d"
  "/root/repo/src/sim/event_sim_dense.cpp" "CMakeFiles/insp_sim.dir/src/sim/event_sim_dense.cpp.o" "gcc" "CMakeFiles/insp_sim.dir/src/sim/event_sim_dense.cpp.o.d"
  "/root/repo/src/sim/flow_analyzer.cpp" "CMakeFiles/insp_sim.dir/src/sim/flow_analyzer.cpp.o" "gcc" "CMakeFiles/insp_sim.dir/src/sim/flow_analyzer.cpp.o.d"
  "/root/repo/src/sim/sim_platform_view.cpp" "CMakeFiles/insp_sim.dir/src/sim/sim_platform_view.cpp.o" "gcc" "CMakeFiles/insp_sim.dir/src/sim/sim_platform_view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/insp_core.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_tree.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_platform.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_net.dir/DependInfo.cmake"
  "/root/repo/build-review/CMakeFiles/insp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
