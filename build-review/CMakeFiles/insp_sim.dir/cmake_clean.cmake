file(REMOVE_RECURSE
  "CMakeFiles/insp_sim.dir/src/sim/event_sim.cpp.o"
  "CMakeFiles/insp_sim.dir/src/sim/event_sim.cpp.o.d"
  "CMakeFiles/insp_sim.dir/src/sim/event_sim_dense.cpp.o"
  "CMakeFiles/insp_sim.dir/src/sim/event_sim_dense.cpp.o.d"
  "CMakeFiles/insp_sim.dir/src/sim/flow_analyzer.cpp.o"
  "CMakeFiles/insp_sim.dir/src/sim/flow_analyzer.cpp.o.d"
  "CMakeFiles/insp_sim.dir/src/sim/sim_platform_view.cpp.o"
  "CMakeFiles/insp_sim.dir/src/sim/sim_platform_view.cpp.o.d"
  "libinsp_sim.a"
  "libinsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
