file(REMOVE_RECURSE
  "libinsp_sim.a"
)
