# Empty dependencies file for insp_sim.
# This may be replaced when dependencies are built.
