
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/operator_tree.cpp" "CMakeFiles/insp_tree.dir/src/tree/operator_tree.cpp.o" "gcc" "CMakeFiles/insp_tree.dir/src/tree/operator_tree.cpp.o.d"
  "/root/repo/src/tree/tree_generator.cpp" "CMakeFiles/insp_tree.dir/src/tree/tree_generator.cpp.o" "gcc" "CMakeFiles/insp_tree.dir/src/tree/tree_generator.cpp.o.d"
  "/root/repo/src/tree/tree_io.cpp" "CMakeFiles/insp_tree.dir/src/tree/tree_io.cpp.o" "gcc" "CMakeFiles/insp_tree.dir/src/tree/tree_io.cpp.o.d"
  "/root/repo/src/tree/tree_stats.cpp" "CMakeFiles/insp_tree.dir/src/tree/tree_stats.cpp.o" "gcc" "CMakeFiles/insp_tree.dir/src/tree/tree_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/insp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
