file(REMOVE_RECURSE
  "CMakeFiles/insp_tree.dir/src/tree/operator_tree.cpp.o"
  "CMakeFiles/insp_tree.dir/src/tree/operator_tree.cpp.o.d"
  "CMakeFiles/insp_tree.dir/src/tree/tree_generator.cpp.o"
  "CMakeFiles/insp_tree.dir/src/tree/tree_generator.cpp.o.d"
  "CMakeFiles/insp_tree.dir/src/tree/tree_io.cpp.o"
  "CMakeFiles/insp_tree.dir/src/tree/tree_io.cpp.o.d"
  "CMakeFiles/insp_tree.dir/src/tree/tree_stats.cpp.o"
  "CMakeFiles/insp_tree.dir/src/tree/tree_stats.cpp.o.d"
  "libinsp_tree.a"
  "libinsp_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
