file(REMOVE_RECURSE
  "libinsp_tree.a"
)
