# Empty dependencies file for insp_tree.
# This may be replaced when dependencies are built.
