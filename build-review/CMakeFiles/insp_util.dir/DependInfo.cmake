
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/ascii_chart.cpp" "CMakeFiles/insp_util.dir/src/util/ascii_chart.cpp.o" "gcc" "CMakeFiles/insp_util.dir/src/util/ascii_chart.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "CMakeFiles/insp_util.dir/src/util/cli.cpp.o" "gcc" "CMakeFiles/insp_util.dir/src/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/insp_util.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/insp_util.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/log.cpp" "CMakeFiles/insp_util.dir/src/util/log.cpp.o" "gcc" "CMakeFiles/insp_util.dir/src/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/insp_util.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/insp_util.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/insp_util.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/insp_util.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "CMakeFiles/insp_util.dir/src/util/thread_pool.cpp.o" "gcc" "CMakeFiles/insp_util.dir/src/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
