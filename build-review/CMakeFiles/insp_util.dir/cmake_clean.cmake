file(REMOVE_RECURSE
  "CMakeFiles/insp_util.dir/src/util/ascii_chart.cpp.o"
  "CMakeFiles/insp_util.dir/src/util/ascii_chart.cpp.o.d"
  "CMakeFiles/insp_util.dir/src/util/cli.cpp.o"
  "CMakeFiles/insp_util.dir/src/util/cli.cpp.o.d"
  "CMakeFiles/insp_util.dir/src/util/csv.cpp.o"
  "CMakeFiles/insp_util.dir/src/util/csv.cpp.o.d"
  "CMakeFiles/insp_util.dir/src/util/log.cpp.o"
  "CMakeFiles/insp_util.dir/src/util/log.cpp.o.d"
  "CMakeFiles/insp_util.dir/src/util/rng.cpp.o"
  "CMakeFiles/insp_util.dir/src/util/rng.cpp.o.d"
  "CMakeFiles/insp_util.dir/src/util/stats.cpp.o"
  "CMakeFiles/insp_util.dir/src/util/stats.cpp.o.d"
  "CMakeFiles/insp_util.dir/src/util/thread_pool.cpp.o"
  "CMakeFiles/insp_util.dir/src/util/thread_pool.cpp.o.d"
  "libinsp_util.a"
  "libinsp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
