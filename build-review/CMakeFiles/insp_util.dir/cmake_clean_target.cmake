file(REMOVE_RECURSE
  "libinsp_util.a"
)
