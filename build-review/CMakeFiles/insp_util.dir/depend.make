# Empty dependencies file for insp_util.
# This may be replaced when dependencies are built.
