file(REMOVE_RECURSE
  "CMakeFiles/integration_experiment_harness_test.dir/tests/integration/experiment_harness_test.cpp.o"
  "CMakeFiles/integration_experiment_harness_test.dir/tests/integration/experiment_harness_test.cpp.o.d"
  "integration_experiment_harness_test"
  "integration_experiment_harness_test.pdb"
  "integration_experiment_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_experiment_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
