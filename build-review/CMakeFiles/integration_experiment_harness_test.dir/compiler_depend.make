# Empty compiler generated dependencies file for integration_experiment_harness_test.
# This may be replaced when dependencies are built.
