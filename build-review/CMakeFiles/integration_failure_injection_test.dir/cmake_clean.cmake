file(REMOVE_RECURSE
  "CMakeFiles/integration_failure_injection_test.dir/tests/integration/failure_injection_test.cpp.o"
  "CMakeFiles/integration_failure_injection_test.dir/tests/integration/failure_injection_test.cpp.o.d"
  "integration_failure_injection_test"
  "integration_failure_injection_test.pdb"
  "integration_failure_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_failure_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
