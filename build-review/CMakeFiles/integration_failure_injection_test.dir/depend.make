# Empty dependencies file for integration_failure_injection_test.
# This may be replaced when dependencies are built.
