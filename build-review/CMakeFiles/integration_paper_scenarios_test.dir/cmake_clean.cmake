file(REMOVE_RECURSE
  "CMakeFiles/integration_paper_scenarios_test.dir/tests/integration/paper_scenarios_test.cpp.o"
  "CMakeFiles/integration_paper_scenarios_test.dir/tests/integration/paper_scenarios_test.cpp.o.d"
  "integration_paper_scenarios_test"
  "integration_paper_scenarios_test.pdb"
  "integration_paper_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_paper_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
