# Empty compiler generated dependencies file for integration_paper_scenarios_test.
# This may be replaced when dependencies are built.
