# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for integration_paper_scenarios_test.
