file(REMOVE_RECURSE
  "CMakeFiles/integration_pipeline_properties_test.dir/tests/integration/pipeline_properties_test.cpp.o"
  "CMakeFiles/integration_pipeline_properties_test.dir/tests/integration/pipeline_properties_test.cpp.o.d"
  "integration_pipeline_properties_test"
  "integration_pipeline_properties_test.pdb"
  "integration_pipeline_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_pipeline_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
