# Empty dependencies file for integration_pipeline_properties_test.
# This may be replaced when dependencies are built.
