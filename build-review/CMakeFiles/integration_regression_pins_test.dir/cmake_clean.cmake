file(REMOVE_RECURSE
  "CMakeFiles/integration_regression_pins_test.dir/tests/integration/regression_pins_test.cpp.o"
  "CMakeFiles/integration_regression_pins_test.dir/tests/integration/regression_pins_test.cpp.o.d"
  "integration_regression_pins_test"
  "integration_regression_pins_test.pdb"
  "integration_regression_pins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_regression_pins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
