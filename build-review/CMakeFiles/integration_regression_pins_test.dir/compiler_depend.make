# Empty compiler generated dependencies file for integration_regression_pins_test.
# This may be replaced when dependencies are built.
