file(REMOVE_RECURSE
  "CMakeFiles/integration_replay_signature_golden_test.dir/tests/integration/replay_signature_golden_test.cpp.o"
  "CMakeFiles/integration_replay_signature_golden_test.dir/tests/integration/replay_signature_golden_test.cpp.o.d"
  "integration_replay_signature_golden_test"
  "integration_replay_signature_golden_test.pdb"
  "integration_replay_signature_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_replay_signature_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
