# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for integration_replay_signature_golden_test.
