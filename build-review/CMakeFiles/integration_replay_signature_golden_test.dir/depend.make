# Empty dependencies file for integration_replay_signature_golden_test.
# This may be replaced when dependencies are built.
