file(REMOVE_RECURSE
  "CMakeFiles/integration_sweep_determinism_test.dir/tests/integration/sweep_determinism_test.cpp.o"
  "CMakeFiles/integration_sweep_determinism_test.dir/tests/integration/sweep_determinism_test.cpp.o.d"
  "integration_sweep_determinism_test"
  "integration_sweep_determinism_test.pdb"
  "integration_sweep_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_sweep_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
