# Empty dependencies file for integration_sweep_determinism_test.
# This may be replaced when dependencies are built.
