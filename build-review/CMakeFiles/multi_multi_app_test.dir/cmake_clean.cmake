file(REMOVE_RECURSE
  "CMakeFiles/multi_multi_app_test.dir/tests/multi/multi_app_test.cpp.o"
  "CMakeFiles/multi_multi_app_test.dir/tests/multi/multi_app_test.cpp.o.d"
  "multi_multi_app_test"
  "multi_multi_app_test.pdb"
  "multi_multi_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_multi_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
