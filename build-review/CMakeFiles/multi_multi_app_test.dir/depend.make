# Empty dependencies file for multi_multi_app_test.
# This may be replaced when dependencies are built.
