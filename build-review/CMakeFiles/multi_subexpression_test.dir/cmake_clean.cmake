file(REMOVE_RECURSE
  "CMakeFiles/multi_subexpression_test.dir/tests/multi/subexpression_test.cpp.o"
  "CMakeFiles/multi_subexpression_test.dir/tests/multi/subexpression_test.cpp.o.d"
  "multi_subexpression_test"
  "multi_subexpression_test.pdb"
  "multi_subexpression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_subexpression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
