# Empty dependencies file for multi_subexpression_test.
# This may be replaced when dependencies are built.
