file(REMOVE_RECURSE
  "CMakeFiles/net_bandwidth_ledger_test.dir/tests/net/bandwidth_ledger_test.cpp.o"
  "CMakeFiles/net_bandwidth_ledger_test.dir/tests/net/bandwidth_ledger_test.cpp.o.d"
  "net_bandwidth_ledger_test"
  "net_bandwidth_ledger_test.pdb"
  "net_bandwidth_ledger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_bandwidth_ledger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
