# Empty compiler generated dependencies file for net_bandwidth_ledger_test.
# This may be replaced when dependencies are built.
