file(REMOVE_RECURSE
  "CMakeFiles/planner_budget_planner_test.dir/tests/planner/budget_planner_test.cpp.o"
  "CMakeFiles/planner_budget_planner_test.dir/tests/planner/budget_planner_test.cpp.o.d"
  "planner_budget_planner_test"
  "planner_budget_planner_test.pdb"
  "planner_budget_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planner_budget_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
