# Empty dependencies file for planner_budget_planner_test.
# This may be replaced when dependencies are built.
