file(REMOVE_RECURSE
  "CMakeFiles/platform_catalog_test.dir/tests/platform/catalog_test.cpp.o"
  "CMakeFiles/platform_catalog_test.dir/tests/platform/catalog_test.cpp.o.d"
  "platform_catalog_test"
  "platform_catalog_test.pdb"
  "platform_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
