file(REMOVE_RECURSE
  "CMakeFiles/platform_platform_test.dir/tests/platform/platform_test.cpp.o"
  "CMakeFiles/platform_platform_test.dir/tests/platform/platform_test.cpp.o.d"
  "platform_platform_test"
  "platform_platform_test.pdb"
  "platform_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
