# Empty dependencies file for platform_platform_test.
# This may be replaced when dependencies are built.
