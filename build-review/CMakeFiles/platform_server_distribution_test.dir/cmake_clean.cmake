file(REMOVE_RECURSE
  "CMakeFiles/platform_server_distribution_test.dir/tests/platform/server_distribution_test.cpp.o"
  "CMakeFiles/platform_server_distribution_test.dir/tests/platform/server_distribution_test.cpp.o.d"
  "platform_server_distribution_test"
  "platform_server_distribution_test.pdb"
  "platform_server_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_server_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
