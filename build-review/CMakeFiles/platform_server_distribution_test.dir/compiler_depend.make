# Empty compiler generated dependencies file for platform_server_distribution_test.
# This may be replaced when dependencies are built.
