# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for platform_server_distribution_test.
