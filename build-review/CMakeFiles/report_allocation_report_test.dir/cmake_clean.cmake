file(REMOVE_RECURSE
  "CMakeFiles/report_allocation_report_test.dir/tests/report/allocation_report_test.cpp.o"
  "CMakeFiles/report_allocation_report_test.dir/tests/report/allocation_report_test.cpp.o.d"
  "report_allocation_report_test"
  "report_allocation_report_test.pdb"
  "report_allocation_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_allocation_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
