# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for report_allocation_report_test.
