# Empty dependencies file for report_allocation_report_test.
# This may be replaced when dependencies are built.
