file(REMOVE_RECURSE
  "CMakeFiles/service_allocation_service_test.dir/tests/service/allocation_service_test.cpp.o"
  "CMakeFiles/service_allocation_service_test.dir/tests/service/allocation_service_test.cpp.o.d"
  "service_allocation_service_test"
  "service_allocation_service_test.pdb"
  "service_allocation_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_allocation_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
