# Empty dependencies file for service_allocation_service_test.
# This may be replaced when dependencies are built.
