file(REMOVE_RECURSE
  "CMakeFiles/service_service_stress_test.dir/tests/service/service_stress_test.cpp.o"
  "CMakeFiles/service_service_stress_test.dir/tests/service/service_stress_test.cpp.o.d"
  "service_service_stress_test"
  "service_service_stress_test.pdb"
  "service_service_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_service_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
