# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for service_service_stress_test.
