# Empty dependencies file for service_service_stress_test.
# This may be replaced when dependencies are built.
