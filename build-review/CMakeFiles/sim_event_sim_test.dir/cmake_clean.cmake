file(REMOVE_RECURSE
  "CMakeFiles/sim_event_sim_test.dir/tests/sim/event_sim_test.cpp.o"
  "CMakeFiles/sim_event_sim_test.dir/tests/sim/event_sim_test.cpp.o.d"
  "sim_event_sim_test"
  "sim_event_sim_test.pdb"
  "sim_event_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_event_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
