# Empty compiler generated dependencies file for sim_event_sim_test.
# This may be replaced when dependencies are built.
