file(REMOVE_RECURSE
  "CMakeFiles/sim_flow_analyzer_test.dir/tests/sim/flow_analyzer_test.cpp.o"
  "CMakeFiles/sim_flow_analyzer_test.dir/tests/sim/flow_analyzer_test.cpp.o.d"
  "sim_flow_analyzer_test"
  "sim_flow_analyzer_test.pdb"
  "sim_flow_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_flow_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
