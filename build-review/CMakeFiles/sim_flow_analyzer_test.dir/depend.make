# Empty dependencies file for sim_flow_analyzer_test.
# This may be replaced when dependencies are built.
