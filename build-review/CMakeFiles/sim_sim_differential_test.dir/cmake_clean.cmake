file(REMOVE_RECURSE
  "CMakeFiles/sim_sim_differential_test.dir/tests/sim/sim_differential_test.cpp.o"
  "CMakeFiles/sim_sim_differential_test.dir/tests/sim/sim_differential_test.cpp.o.d"
  "sim_sim_differential_test"
  "sim_sim_differential_test.pdb"
  "sim_sim_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sim_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
