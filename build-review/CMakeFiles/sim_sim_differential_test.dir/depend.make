# Empty dependencies file for sim_sim_differential_test.
# This may be replaced when dependencies are built.
