file(REMOVE_RECURSE
  "CMakeFiles/tree_operator_tree_test.dir/tests/tree/operator_tree_test.cpp.o"
  "CMakeFiles/tree_operator_tree_test.dir/tests/tree/operator_tree_test.cpp.o.d"
  "tree_operator_tree_test"
  "tree_operator_tree_test.pdb"
  "tree_operator_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_operator_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
