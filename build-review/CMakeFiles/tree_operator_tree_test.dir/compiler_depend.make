# Empty compiler generated dependencies file for tree_operator_tree_test.
# This may be replaced when dependencies are built.
