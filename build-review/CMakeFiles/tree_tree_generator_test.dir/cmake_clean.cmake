file(REMOVE_RECURSE
  "CMakeFiles/tree_tree_generator_test.dir/tests/tree/tree_generator_test.cpp.o"
  "CMakeFiles/tree_tree_generator_test.dir/tests/tree/tree_generator_test.cpp.o.d"
  "tree_tree_generator_test"
  "tree_tree_generator_test.pdb"
  "tree_tree_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_tree_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
