# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tree_tree_generator_test.
