# Empty dependencies file for tree_tree_generator_test.
# This may be replaced when dependencies are built.
