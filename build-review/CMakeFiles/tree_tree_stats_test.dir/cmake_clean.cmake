file(REMOVE_RECURSE
  "CMakeFiles/tree_tree_stats_test.dir/tests/tree/tree_stats_test.cpp.o"
  "CMakeFiles/tree_tree_stats_test.dir/tests/tree/tree_stats_test.cpp.o.d"
  "tree_tree_stats_test"
  "tree_tree_stats_test.pdb"
  "tree_tree_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_tree_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
