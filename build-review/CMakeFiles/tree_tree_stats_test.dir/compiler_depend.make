# Empty compiler generated dependencies file for tree_tree_stats_test.
# This may be replaced when dependencies are built.
