file(REMOVE_RECURSE
  "CMakeFiles/util_ascii_chart_test.dir/tests/util/ascii_chart_test.cpp.o"
  "CMakeFiles/util_ascii_chart_test.dir/tests/util/ascii_chart_test.cpp.o.d"
  "util_ascii_chart_test"
  "util_ascii_chart_test.pdb"
  "util_ascii_chart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_ascii_chart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
