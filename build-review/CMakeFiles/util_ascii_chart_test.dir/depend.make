# Empty dependencies file for util_ascii_chart_test.
# This may be replaced when dependencies are built.
