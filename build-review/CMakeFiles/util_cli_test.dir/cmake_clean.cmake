file(REMOVE_RECURSE
  "CMakeFiles/util_cli_test.dir/tests/util/cli_test.cpp.o"
  "CMakeFiles/util_cli_test.dir/tests/util/cli_test.cpp.o.d"
  "util_cli_test"
  "util_cli_test.pdb"
  "util_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
