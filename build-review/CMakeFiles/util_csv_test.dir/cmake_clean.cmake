file(REMOVE_RECURSE
  "CMakeFiles/util_csv_test.dir/tests/util/csv_test.cpp.o"
  "CMakeFiles/util_csv_test.dir/tests/util/csv_test.cpp.o.d"
  "util_csv_test"
  "util_csv_test.pdb"
  "util_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
