# Empty dependencies file for util_csv_test.
# This may be replaced when dependencies are built.
