file(REMOVE_RECURSE
  "CMakeFiles/util_rng_test.dir/tests/util/rng_test.cpp.o"
  "CMakeFiles/util_rng_test.dir/tests/util/rng_test.cpp.o.d"
  "util_rng_test"
  "util_rng_test.pdb"
  "util_rng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
