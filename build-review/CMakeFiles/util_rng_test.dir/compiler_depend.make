# Empty compiler generated dependencies file for util_rng_test.
# This may be replaced when dependencies are built.
