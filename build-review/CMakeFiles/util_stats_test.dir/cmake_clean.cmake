file(REMOVE_RECURSE
  "CMakeFiles/util_stats_test.dir/tests/util/stats_test.cpp.o"
  "CMakeFiles/util_stats_test.dir/tests/util/stats_test.cpp.o.d"
  "util_stats_test"
  "util_stats_test.pdb"
  "util_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
