# Empty compiler generated dependencies file for util_stats_test.
# This may be replaced when dependencies are built.
