file(REMOVE_RECURSE
  "CMakeFiles/util_units_test.dir/tests/util/units_test.cpp.o"
  "CMakeFiles/util_units_test.dir/tests/util/units_test.cpp.o.d"
  "util_units_test"
  "util_units_test.pdb"
  "util_units_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_units_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
