# Empty compiler generated dependencies file for util_units_test.
# This may be replaced when dependencies are built.
