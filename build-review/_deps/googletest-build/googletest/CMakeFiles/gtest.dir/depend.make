# Empty dependencies file for gtest.
# This may be replaced when dependencies are built.
