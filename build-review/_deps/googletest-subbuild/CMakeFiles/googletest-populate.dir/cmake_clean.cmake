file(REMOVE_RECURSE
  "CMakeFiles/googletest-populate"
  "CMakeFiles/googletest-populate-complete"
  "googletest-populate-prefix/src/googletest-populate-stamp/googletest-populate-build"
  "googletest-populate-prefix/src/googletest-populate-stamp/googletest-populate-configure"
  "googletest-populate-prefix/src/googletest-populate-stamp/googletest-populate-download"
  "googletest-populate-prefix/src/googletest-populate-stamp/googletest-populate-install"
  "googletest-populate-prefix/src/googletest-populate-stamp/googletest-populate-mkdir"
  "googletest-populate-prefix/src/googletest-populate-stamp/googletest-populate-patch"
  "googletest-populate-prefix/src/googletest-populate-stamp/googletest-populate-test"
  "googletest-populate-prefix/src/googletest-populate-stamp/googletest-populate-update"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/googletest-populate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
