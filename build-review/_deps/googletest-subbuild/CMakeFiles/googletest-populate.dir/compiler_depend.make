# Empty custom commands generated dependencies file for googletest-populate.
# This may be replaced when dependencies are built.
