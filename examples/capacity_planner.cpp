// Capacity planner: a small CLI a platform operator would actually use.
// Takes workload parameters (or a saved tree file), runs every heuristic
// plus the cost lower bound, and recommends the cheapest verified purchase
// plan together with its headroom (max sustainable throughput / target).
//
//   ./capacity_planner --ops 40 --alpha 1.3 --types 10 --servers 6
//                      [--budget 30000]   # maximize throughput instead
//                      [--size-lo 5 --size-hi 30] [--freq 0.5] [--rho 1]
//                      [--seed 1] [--tree saved.tree] [--save plan.tree]
#include <cstdio>
#include <fstream>
#include <string>

#include "core/allocator.hpp"
#include "ilp/bounds.hpp"
#include "planner/budget_planner.hpp"
#include "platform/server_distribution.hpp"
#include "report/allocation_report.hpp"
#include "sim/flow_analyzer.hpp"
#include "tree/tree_generator.hpp"
#include "tree/tree_io.hpp"
#include "util/cli.hpp"

using namespace insp;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const double alpha = args.get_double("alpha", 1.3);
  const double rho = args.get_double("rho", 1.0);

  // --- Workload -------------------------------------------------------------
  Rng rng(seed);
  OperatorTree tree = [&] {
    if (args.has("tree")) {
      return load_tree(args.get("tree", ""));
    }
    TreeGenConfig cfg;
    cfg.num_operators = static_cast<int>(args.get_int("ops", 40));
    cfg.alpha = alpha;
    cfg.num_object_types = static_cast<int>(args.get_int("types", 10));
    cfg.object_size_lo = args.get_double("size-lo", 5.0);
    cfg.object_size_hi = args.get_double("size-hi", 30.0);
    cfg.download_freq = args.get_double("freq", 0.5);
    return generate_random_tree(rng, cfg);
  }();
  if (args.has("save")) {
    save_tree(tree, args.get("save", ""), alpha);
    std::printf("tree saved to %s\n", args.get("save", "").c_str());
  }

  ServerDistConfig dist;
  dist.num_servers = static_cast<int>(args.get_int("servers", 6));
  dist.num_object_types = tree.catalog().count();
  Platform platform = make_paper_platform(rng, dist);
  PriceCatalog catalog = PriceCatalog::paper_default();

  Problem problem;
  problem.tree = &tree;
  problem.platform = &platform;
  problem.catalog = &catalog;
  problem.rho = rho;

  std::printf("workload: %d operators, %d leaves, target throughput %.2f/s\n",
              tree.num_operators(), tree.num_leaves(), rho);
  const CostLowerBound lb = cost_lower_bound(problem);
  std::printf("no plan can cost less than $%.0f (%s)\n\n", lb.value,
              lb.binding);

  // --- Budget mode: maximize throughput under a spending cap ---------------
  if (args.has("budget")) {
    BudgetPlanConfig bcfg;
    bcfg.budget = args.get_double("budget", 0.0);
    Rng brng(seed);
    const BudgetPlanResult plan = plan_for_budget(problem, bcfg, brng);
    if (!plan.feasible) {
      std::printf("budget $%.0f buys no feasible platform (cheapest "
                  "processor is $7,548)\n",
                  bcfg.budget);
      return 1;
    }
    std::printf("budget $%.0f -> plan for %.3f results/s (sustains %.3f), "
                "spending $%.0f on %d processor(s)\n\n%s",
                bcfg.budget, plan.planned_rho, plan.sustainable_rho,
                plan.outcome.cost, plan.outcome.num_processors,
                plan_summary(problem, plan.outcome.allocation).c_str());
    return 0;
  }

  // --- Compare plans ----------------------------------------------------------
  AllocationOutcome best;
  const char* best_name = nullptr;
  std::printf("%-22s %-10s %-6s %s\n", "heuristic", "cost", "procs",
              "throughput headroom");
  for (HeuristicKind h : all_heuristics()) {
    Rng hrng(seed);
    const AllocationOutcome out = allocate(problem, h, hrng);
    if (!out.success) {
      std::printf("%-22s FAILED: %s\n", heuristic_name(h),
                  out.failure_reason.c_str());
      continue;
    }
    const FlowAnalysis flow = analyze_flow(problem, out.allocation);
    std::printf("%-22s $%-9.0f %-6d %.2fx\n", heuristic_name(h), out.cost,
                out.num_processors, flow.max_throughput / rho);
    if (!best_name || out.cost < best.cost) {
      best = out;
      best_name = heuristic_name(h);
    }
  }
  if (!best_name) {
    std::printf("\nno feasible plan found — relax the target throughput or "
                "add servers\n");
    return 1;
  }

  std::printf("\nrecommended plan (%s, $%.0f, %.1f%% above the lower "
              "bound):\n%s",
              best_name, best.cost, 100.0 * (best.cost - lb.value) / lb.value,
              best.allocation.describe(problem).c_str());

  std::printf("\n%s", plan_summary(problem, best.allocation).c_str());
  if (args.has("dot")) {
    const std::string path = args.get("dot", "plan.dot");
    std::ofstream f(path);
    f << allocation_to_dot(problem, best.allocation);
    std::printf("\nGraphviz rendering written to %s\n", path.c_str());
  }
  return 0;
}
