// Multiple continuous queries sharing one platform (the paper's §6 future
// work).  Two monitoring queries over a common sensor fleet: a security
// query correlating motion across zones, and a maintenance query tracking
// the same camera streams against reference images.  The queries share
// sub-expressions; this example provisions them jointly, compares with
// per-query provisioning, and prints the common-subexpression report.
//
//   ./multi_query [--seed 5] [--alpha 1.1]
#include <cstdio>

#include "multi/multi_app.hpp"
#include "multi/subexpression.hpp"
#include "platform/server_distribution.hpp"
#include "sim/event_sim.hpp"
#include "util/cli.hpp"

using namespace insp;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 5);
  const double alpha = args.get_double("alpha", 1.1);

  // Shared object universe: four camera streams and one reference archive.
  ObjectCatalog objects({
      {0, 16.0, 0.5},  // cam-north
      {1, 14.0, 0.5},  // cam-south
      {2, 18.0, 0.5},  // cam-east
      {3, 15.0, 0.5},  // cam-west
      {4, 25.0, 0.1},  // reference archive, refreshed slowly
  });

  // Query 1 (security, 1 result / 2 s): correlate motion north-south and
  // east-west, then site-wide.
  TreeBuilder q1(objects);
  const int site = q1.add_operator(kNoNode);
  const int ns = q1.add_operator(site);
  const int ew = q1.add_operator(site);
  q1.add_leaf(ns, 0);
  q1.add_leaf(ns, 1);
  q1.add_leaf(ew, 2);
  q1.add_leaf(ew, 3);

  // Query 2 (maintenance, 1 result / 10 s): the same north-south motion
  // sub-expression, checked against the reference archive.
  TreeBuilder q2(objects);
  const int check = q2.add_operator(kNoNode);
  const int ns2 = q2.add_operator(check);
  q2.add_leaf(ns2, 0);
  q2.add_leaf(ns2, 1);
  q2.add_leaf(check, 4);

  std::vector<ApplicationSpec> apps;
  apps.push_back({q1.build(alpha), 0.5});
  apps.push_back({q2.build(alpha), 0.1});

  Rng rng(seed);
  ServerDistConfig dist;
  dist.num_servers = 3;
  dist.num_object_types = objects.count();
  const Platform platform = make_paper_platform(rng, dist);
  const PriceCatalog catalog = PriceCatalog::paper_default();

  // --- Shared sub-expressions ----------------------------------------------
  std::printf("== common sub-expressions ==\n");
  for (const auto& shared : find_common_subexpressions(apps)) {
    std::printf("  %s: %zu occurrences, %d op(s), %.0f Mops each -> %.0f "
                "Mops shareable\n",
                shared.signature.c_str(), shared.occurrences.size(),
                shared.num_operators, shared.work, shared.work_saved());
  }
  const SharingSavings savings = estimate_sharing_savings(apps, catalog);
  std::printf("  total shareable work %.0f Mops (cost bound $%.0f) — needs "
              "a DAG engine, reported for planning\n\n",
              savings.work_saved, savings.cost_bound);

  // --- Joint vs separate provisioning --------------------------------------
  const CombinedApplication combined = combine_applications(apps);
  std::printf("== provisioning (both queries, per-query throughputs) ==\n");
  std::printf("%-22s %-12s %-12s\n", "heuristic", "separate", "joint");
  auto money = [](bool ok, Dollars v) {
    return ok ? "$" + std::to_string(static_cast<long long>(v))
              : std::string("FAILED");
  };
  for (HeuristicKind k : all_heuristics()) {
    Rng r1(seed), r2(seed);
    const SeparateAllocationOutcome sep =
        allocate_separate(apps, platform, catalog, k, r1);
    const AllocationOutcome joint =
        allocate_joint(combined, platform, catalog, k, r2);
    std::printf("%-22s %-12s %-12s\n", heuristic_name(k),
                money(sep.success, sep.total_cost).c_str(),
                money(joint.success, joint.cost).c_str());
  }

  // --- Validate the joint SBU plan end to end -------------------------------
  Rng r(seed);
  const AllocationOutcome best = allocate_joint(
      combined, platform, catalog, HeuristicKind::SubtreeBottomUp, r);
  if (!best.success) {
    std::printf("\njoint allocation failed: %s\n",
                best.failure_reason.c_str());
    return 1;
  }
  Problem prob;
  prob.tree = &combined.forest;
  prob.platform = &platform;
  prob.catalog = &catalog;
  std::printf("\n== joint plan (Subtree-bottom-up) ==\n%s",
              best.allocation.describe(prob).c_str());
  const EventSimResult sim = simulate_allocation(prob, best.allocation);
  std::printf("\nevent simulation: both queries %s\n",
              sim.sustained ? "meet their targets" : "MISS their targets");
  return sim.sustained ? 0 : 1;
}
