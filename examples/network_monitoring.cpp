// Network-monitoring scenario (paper §1: routers produce streams of data
// about forwarded packets; continuous queries join and select over them).
// Models a left-deep join pipeline — the classical continuous-query plan
// shape the paper's complexity section analyzes (Fig 1(b)) — over per-router
// flow-record streams, and compares provisioning costs as the query grows.
//
//   ./network_monitoring [--routers 12] [--record-mb 9] [--period 10]
//                        [--alpha 1.1] [--seed 11]
#include <cstdio>

#include "core/allocator.hpp"
#include "platform/server_distribution.hpp"
#include "sim/event_sim.hpp"
#include "tree/tree_generator.hpp"
#include "tree/tree_stats.hpp"
#include "util/cli.hpp"

using namespace insp;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int routers = static_cast<int>(args.get_int("routers", 12));
  const double record_mb = args.get_double("record-mb", 9.0);
  const double period_s = args.get_double("period", 10.0);
  const double alpha = args.get_double("alpha", 1.1);
  const std::uint64_t seed = args.get_u64("seed", 11);

  if (routers < 2) {
    std::fprintf(stderr, "need at least 2 routers\n");
    return 2;
  }

  // --- Application: left-deep join over router feeds ------------------------
  // Object type r = flow-record batch of router r, refreshed every period.
  std::vector<ObjectType> objs;
  Rng obj_rng(seed);
  for (int r = 0; r < routers; ++r) {
    objs.push_back({r, record_mb * obj_rng.uniform_real(0.7, 1.3),
                    1.0 / period_s});
  }
  ObjectCatalog catalog_objs(std::move(objs));

  // Left-deep plan: JOIN(...JOIN(JOIN(r0, r1), r2)..., r_{k-1}).
  TreeBuilder b(catalog_objs);
  int op = b.add_operator(kNoNode);
  for (int r = routers - 1; r >= 2; --r) {
    b.add_leaf(op, r);
    op = b.add_operator(op);
  }
  b.add_leaf(op, 0);
  b.add_leaf(op, 1);
  OperatorTree tree = b.build(alpha);

  const TreeStats stats = compute_tree_stats(tree);
  std::printf("continuous query: left-deep join pipeline, %d operators over "
              "%d router feeds (depth %d)\n",
              stats.num_operators, routers, stats.depth);

  // --- Platform: collectors co-located with POPs ----------------------------
  Rng rng(seed + 1);
  ServerDistConfig dist;
  dist.num_servers = std::max(2, routers / 3);
  dist.num_object_types = routers;
  dist.replication_prob = 0.3;  // records mirrored across collectors
  Platform platform = make_paper_platform(rng, dist);
  PriceCatalog catalog = PriceCatalog::paper_default();

  Problem problem;
  problem.tree = &tree;
  problem.platform = &platform;
  problem.catalog = &catalog;
  problem.rho = 1.0 / period_s;  // one fresh site-wide report per period

  std::printf("\n%-22s %-10s %-6s %s\n", "heuristic", "cost", "procs",
              "simulated throughput");
  bool any = false;
  for (HeuristicKind h : all_heuristics()) {
    Rng hrng(seed);
    const AllocationOutcome out = allocate(problem, h, hrng);
    if (!out.success) {
      std::printf("%-22s FAILED: %s\n", heuristic_name(h),
                  out.failure_reason.c_str());
      continue;
    }
    any = true;
    const EventSimResult sim = simulate_allocation(problem, out.allocation);
    std::printf("%-22s $%-9.0f %-6d %.4f/s (%s)\n", heuristic_name(h),
                out.cost, out.num_processors, sim.achieved_throughput,
                sim.sustained ? "sustained" : "MISSED");
  }
  return any ? 0 : 1;
}
