// Quickstart: build a small operator tree by hand, describe the platform,
// run every allocation heuristic, validate the winner's plan, and confirm
// its sustainable throughput with the flow analyzer and the event-driven
// simulator.
//
//   ./quickstart [--seed 7] [--alpha 1.0] [--rho 1.0]
#include <cstdio>

#include "core/allocator.hpp"
#include "ilp/bounds.hpp"
#include "platform/server_distribution.hpp"
#include "sim/event_sim.hpp"
#include "sim/flow_analyzer.hpp"
#include "tree/tree_io.hpp"
#include "util/cli.hpp"

using namespace insp;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const double alpha = args.get_double("alpha", 1.0);
  const double rho = args.get_double("rho", 1.0);

  // --- Application: a small continuous query ------------------------------
  // Object types: three streams of different sizes, refreshed every 2 s.
  ObjectCatalog objects({
      {0, 12.0, 0.5},  // 12 MB, 1/2 Hz
      {1, 25.0, 0.5},
      {2, 8.0, 0.5},
  });
  // Tree (paper Fig 1(a) shape): n0 joins n1 and n3; n1 filters o0 with o1;
  // n2 correlates o1 with o2; n3 refines n2's output with o0 again.
  TreeBuilder b(objects);
  const int n0 = b.add_operator(kNoNode);
  const int n1 = b.add_operator(n0);
  const int n3 = b.add_operator(n0);
  const int n2 = b.add_operator(n3);
  b.add_leaf(n1, 0);
  b.add_leaf(n1, 1);
  b.add_leaf(n2, 1);
  b.add_leaf(n2, 2);
  b.add_leaf(n3, 0);
  OperatorTree tree = b.build(alpha);

  std::printf("== application ==\n%s\n", to_dot(tree).c_str());

  // --- Platform: 3 data servers, replicated objects, Table 1 catalog ------
  Rng rng(seed);
  ServerDistConfig dist;
  dist.num_servers = 3;
  dist.num_object_types = objects.count();
  Platform platform = make_paper_platform(rng, dist);
  PriceCatalog catalog = PriceCatalog::paper_default();

  Problem problem;
  problem.tree = &tree;
  problem.platform = &platform;
  problem.catalog = &catalog;
  problem.rho = rho;

  const auto lb = cost_lower_bound(problem);
  std::printf("== cost lower bound ==\n$%.0f (%s)\n\n", lb.value, lb.binding);

  // --- Run every heuristic -------------------------------------------------
  std::printf("== heuristics ==\n");
  AllocationOutcome best;
  const char* best_name = nullptr;
  for (HeuristicKind h : all_heuristics()) {
    Rng hrng(seed);
    const AllocationOutcome out = allocate(problem, h, hrng);
    if (out.success) {
      std::printf("%-22s $%-8.0f (%d processor(s), $%.0f before downgrade)\n",
                  heuristic_name(h), out.cost, out.num_processors,
                  out.cost_before_downgrade);
      if (!best_name || out.cost < best.cost) {
        best = out;
        best_name = heuristic_name(h);
      }
    } else {
      std::printf("%-22s FAILED: %s\n", heuristic_name(h),
                  out.failure_reason.c_str());
    }
  }
  if (!best_name) {
    std::printf("no heuristic found a feasible allocation\n");
    return 1;
  }

  // --- Inspect and validate the cheapest plan ------------------------------
  std::printf("\n== best plan (%s) ==\n%s", best_name,
              best.allocation.describe(problem).c_str());

  const FlowAnalysis flow = analyze_flow(problem, best.allocation);
  std::printf("\nmax sustainable throughput: %.3f results/s (bottleneck: %s)\n",
              flow.max_throughput, flow.bottleneck_detail.c_str());

  const EventSimResult sim = simulate_allocation(problem, best.allocation);
  std::printf(
      "event simulation: %.3f results/s achieved, first output in period %d "
      "-> %s\n",
      sim.achieved_throughput, sim.first_output_period,
      sim.sustained ? "target sustained" : "TARGET MISSED");
  return sim.sustained ? 0 : 1;
}
