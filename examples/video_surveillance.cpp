// Video-surveillance scenario (the paper's §1 motivating application):
// cameras spread over a geographical area produce frames continuously; the
// query pipeline detects motion per camera zone, matches lighting patterns,
// and correlates zones pairwise up to a site-wide alarm operator.
//
// Builds the operator tree programmatically from a camera count, provisions
// the platform, and prints the purchase plan a site operator would order.
//
//   ./video_surveillance [--cameras 8] [--fps 0.5] [--frame-mb 18]
//                        [--alpha 1.0] [--seed 3]
#include <cstdio>
#include <vector>

#include "core/allocator.hpp"
#include "platform/server_distribution.hpp"
#include "sim/flow_analyzer.hpp"
#include "tree/tree_generator.hpp"
#include "tree/tree_stats.hpp"
#include "util/cli.hpp"

using namespace insp;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int cameras = static_cast<int>(args.get_int("cameras", 8));
  const double fps = args.get_double("fps", 0.5);       // refresh per second
  const double frame_mb = args.get_double("frame-mb", 18.0);
  const double alpha = args.get_double("alpha", 1.0);
  const std::uint64_t seed = args.get_u64("seed", 3);

  if (cameras < 2) {
    std::fprintf(stderr, "need at least 2 cameras\n");
    return 2;
  }

  // --- Application ---------------------------------------------------------
  // One basic-object type per camera: the latest frame buffer.
  std::vector<ObjectType> objs;
  Rng obj_rng(seed);
  for (int c = 0; c < cameras; ++c) {
    // Slightly varying frame sizes across cameras (resolution mix).
    objs.push_back(
        {c, frame_mb * obj_rng.uniform_real(0.8, 1.2), fps});
  }
  ObjectCatalog catalog_objs(std::move(objs));

  // Per camera: motion detection combines the current frame with the same
  // frame again (frame differencing reads the stream twice); zones are then
  // correlated pairwise up to the site alarm — the library's balanced
  // reduction shape (one al-operator per camera, two leaves each).
  OperatorTree tree = generate_reduction_tree(catalog_objs, cameras, alpha,
                                              /*leaves_per_source=*/2);

  const TreeStats stats = compute_tree_stats(tree);
  std::printf("surveillance query: %d operators, %d camera feeds, "
              "%.0f MB/s aggregate ingest\n",
              stats.num_operators, cameras, stats.total_download_demand);

  // --- Platform: one storage head per two cameras --------------------------
  Rng rng(seed + 1);
  ServerDistConfig dist;
  dist.num_servers = std::max(2, cameras / 2);
  dist.num_object_types = cameras;
  dist.replication_prob = 0.15;  // frames replicated to a neighbor head
  Platform platform = make_paper_platform(rng, dist);
  PriceCatalog catalog = PriceCatalog::paper_default();

  Problem problem;
  problem.tree = &tree;
  problem.platform = &platform;
  problem.catalog = &catalog;
  problem.rho = fps;  // alarms must refresh as fast as the cameras do

  // --- Provision -------------------------------------------------------------
  std::printf("\n%-22s %-10s %-6s %s\n", "heuristic", "cost", "procs",
              "max rho (bottleneck)");
  for (HeuristicKind h : all_heuristics()) {
    Rng hrng(seed);
    const AllocationOutcome out = allocate(problem, h, hrng);
    if (!out.success) {
      std::printf("%-22s FAILED: %s\n", heuristic_name(h),
                  out.failure_reason.c_str());
      continue;
    }
    const FlowAnalysis flow = analyze_flow(problem, out.allocation);
    std::printf("%-22s $%-9.0f %-6d %.2f/s (%s)\n", heuristic_name(h),
                out.cost, out.num_processors, flow.max_throughput,
                flow.bottleneck_detail.c_str());
  }

  // --- Show the recommended plan (Subtree-bottom-up) -----------------------
  Rng hrng(seed);
  const AllocationOutcome best =
      allocate(problem, HeuristicKind::SubtreeBottomUp, hrng);
  if (best.success) {
    std::printf("\nrecommended purchase plan:\n%s",
                best.allocation.describe(problem).c_str());
  }
  return best.success ? 0 : 1;
}
