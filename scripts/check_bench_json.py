#!/usr/bin/env python3
"""Shared schema check for the BENCH_*.json artifacts.

Every bench binary that emits machine-readable JSON (bench_placement_speed,
bench_dynamic, bench_sim_speed, ...) follows one envelope:

    {
      "bench": "<name>",          # non-empty string
      "schema_version": 1,        # positive integer
      "seed": 42,                 # integer (optional but conventional)
      "results": [ { ... }, ... ] # non-empty list of flat objects
    }

Each result row must be an object of scalar values (numbers, strings,
booleans); one level of nesting is allowed for per-row breakdown tables
(a list of flat scalar objects, e.g. bench_placement's per-heuristic
timings).  The artifacts are meant to be trivially diffable and trackable
over time, so anything deeper is rejected.  CI runs this over every
artifact the smoke runs produce; it is also handy locally:

    python3 scripts/check_bench_json.py BENCH_*.json
"""
import json
import sys

# Per-bench row schemas: when a known bench name is seen, every result row
# must carry at least these keys.  The envelope check alone would accept an
# artifact whose rows silently lost their payload (a formatting bug in the
# emitter); the key lists keep the benches' downstream consumers honest.
# Benches not listed here are envelope-checked only.
REQUIRED_ROW_KEYS = {
    "placement_speed": {
        "num_operators", "live_processors", "probes_per_sec_incremental",
        "probes_per_sec_copy_baseline", "probe_speedup",
        "soa_probe_throughput", "scalar_scan_throughput",
        "speedup_vs_scalar", "verdicts_match", "hardware_concurrency",
    },
    "dynamic": {
        "num_operators", "events", "median_repair_ms", "median_scratch_ms",
        "latency_speedup", "repair_signature", "gap_events_comparable",
        "gap_events_measured", "repair_gap_mean", "repair_gap_max",
        "scratch_gap_mean", "scratch_gap_max",
    },
    "ilp": {
        "n", "alpha", "instances", "solved", "reference_solved",
        "nodes_incremental", "nodes_reference", "node_ratio", "costs_match",
        "best_heuristic_ratio",
    },
    "service": {
        "num_operators", "shards", "worker_threads", "events",
        "events_per_sec", "p50_ms", "p99_ms", "speedup_vs_1worker",
        "hardware_concurrency", "signatures_match",
    },
    "kernel": {
        "isa", "kernel_throughput", "batch_throughput",
        "sim_caps_throughput", "speedup_vs_scalar", "verdicts_match",
        "allocations_per_probe",
    },
    "chaos": {
        "chaos_class", "faults", "truth_down", "detected", "detection_rate",
        "mean_detection_beats", "median_repair_ms", "mean_recovery_beats",
        "events_simulated", "events_sustained", "signature",
    },
}

# bench_ablations emits heterogeneous rows keyed by a "section" field:
# "fold" rows carry the realized-vs-predicted sharing study, and
# "optimality_gap" rows carry the per-heuristic gap to the exact optimum.
# Rows whose section is unknown are rejected outright.
ABLATIONS_SECTION_KEYS = {
    "fold": {
        "section", "rep", "num_apps", "operators_forest", "operators_folded",
        "shared_nodes", "predicted_work_saved", "predicted_cost_bound",
        "realized_work_saved", "unfolded_cost", "folded_cost",
        "realized_cost_saving", "both_allocated", "unfolded_sustained",
        "folded_sustained",
    },
    "optimality_gap": {
        "section", "n", "alpha", "heuristic", "attempts", "measured",
        "gap_mean", "gap_max", "nodes_total",
    },
}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    return 1


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"not readable valid JSON: {e}")

    if not isinstance(doc, dict):
        return fail(path, "top level must be an object")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        return fail(path, "'bench' must be a non-empty string")
    version = doc.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        return fail(path, "'schema_version' must be a positive integer")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        return fail(path, "'results' must be a non-empty list")
    def is_scalar(value):
        return isinstance(value, (int, float, str, bool))

    required = REQUIRED_ROW_KEYS.get(bench, set())
    for i, row in enumerate(results):
        if not isinstance(row, dict) or not row:
            return fail(path, f"results[{i}] must be a non-empty object")
        if bench == "ablations":
            section = row.get("section")
            if section not in ABLATIONS_SECTION_KEYS:
                return fail(
                    path,
                    f"results[{i}] has unknown ablations section "
                    f"{section!r} (expected one of "
                    f"{', '.join(sorted(ABLATIONS_SECTION_KEYS))})",
                )
            required = ABLATIONS_SECTION_KEYS[section]
        missing = required - row.keys()
        if missing:
            return fail(
                path,
                f"results[{i}] is missing required '{bench}' keys: "
                f"{', '.join(sorted(missing))}",
            )
        for key, value in row.items():
            if is_scalar(value):
                continue
            if isinstance(value, list) and all(
                isinstance(sub, dict)
                and sub
                and all(is_scalar(v) for v in sub.values())
                for sub in value
            ):
                continue  # one breakdown table per row is fine
            return fail(
                path,
                f"results[{i}].{key} must be a scalar or a list of flat "
                f"objects (got {type(value).__name__})",
            )

    print(f"{path}: ok (bench={bench}, schema_version={version}, "
          f"{len(results)} result rows)")
    return 0


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py BENCH_a.json [BENCH_b.json ...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in argv[1:]:
        status |= check_file(path)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
