#!/usr/bin/env python3
"""Relative-link checker for the documentation suite.

Scans the given markdown files (default: README.md and docs/*.md) for
markdown links and inline code references to repo paths, and fails when a
relative link points at a file that does not exist.  External links
(http/https/mailto) are ignored; intra-file anchors (#...) are checked
against the target file's headings.

Usage: scripts/check_links.py [file.md ...]
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def heading_anchor(text: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation
    (including the section sign used in DESIGN.md headings) dropped."""
    text = text.strip().lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text)


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        content = f.read()
    return {heading_anchor(h) for h in HEADING_RE.findall(content)}


def check_file(md_path: str) -> list:
    errors = []
    base = os.path.dirname(md_path)
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = os.path.normpath(os.path.join(base, path_part))
            if not os.path.exists(resolved):
                errors.append(f"{md_path}: broken link -> {target}")
                continue
            anchor_file = resolved
        else:
            anchor_file = md_path
        if anchor and os.path.isfile(anchor_file) and anchor_file.endswith(
                ".md"):
            if heading_anchor(anchor) not in anchors_of(anchor_file):
                errors.append(f"{md_path}: missing anchor -> {target}")
    return errors


def main(argv: list) -> int:
    files = argv[1:] or ["README.md"] + sorted(glob.glob("docs/*.md"))
    all_errors = []
    for md in files:
        if not os.path.exists(md):
            all_errors.append(f"{md}: file not found")
            continue
        all_errors.extend(check_file(md))
    for err in all_errors:
        print(err, file=sys.stderr)
    checked = ", ".join(files)
    if all_errors:
        print(f"link check FAILED ({len(all_errors)} problem(s)) in "
              f"{checked}", file=sys.stderr)
        return 1
    print(f"link check OK: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
