#include "bench_support/chaos_world.hpp"

#include <algorithm>

#include "platform/server_distribution.hpp"
#include "tree/tree_generator.hpp"

namespace insp::benchx {

ChaosWorld make_chaos_world(std::uint64_t seed, const ChaosWorldScale& scale,
                            const ChaosGenConfig& chaos) {
  Rng gen(seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                                              scale.n + 131 * scale.apps)));
  ObjectCatalog objects = ObjectCatalog::random(gen, 15, 5.0, 30.0, 0.5);
  TreeGenConfig tcfg;
  tcfg.num_operators = scale.n / scale.apps;
  tcfg.alpha = 1.0;
  tcfg.num_object_types = 15;
  std::vector<ApplicationSpec> apps;
  for (int a = 0; a < scale.apps; ++a) {
    apps.push_back({generate_random_tree(gen, tcfg, objects), /*rho=*/0.5});
  }
  ServerDistConfig dist;
  dist.replication_prob = 0.4;
  std::vector<std::vector<int>> hosted = distribute_objects(gen, dist);
  // Patch every type onto >= 3 servers: the widest chaos fault downs two
  // servers together, and the world must keep a reachable replica of every
  // type through it.
  for (int t = 0; t < dist.num_object_types; ++t) {
    std::vector<int> holders;
    for (int s = 0; s < dist.num_servers; ++s) {
      for (int ht : hosted[static_cast<std::size_t>(s)]) {
        if (ht == t) holders.push_back(s);
      }
    }
    while (holders.size() < 3) {
      int extra = static_cast<int>(
          gen.index(static_cast<std::size_t>(dist.num_servers)));
      while (std::find(holders.begin(), holders.end(), extra) !=
             holders.end()) {
        extra = (extra + 1) % dist.num_servers;
      }
      holders.push_back(extra);
      auto& list = hosted[static_cast<std::size_t>(extra)];
      list.insert(std::lower_bound(list.begin(), list.end(), t), t);
    }
  }
  Platform platform =
      Platform::paper_default(std::move(hosted), dist.num_object_types);

  ChaosTrace trace = generate_chaos(gen, chaos, platform.num_servers());
  return ChaosWorld{std::move(apps), std::move(platform),
                    PriceCatalog::paper_default(), std::move(trace)};
}

ChaosGenConfig chaos_smoke_config(ChaosClass cls) {
  ChaosGenConfig cfg;
  cfg.num_faults = 4;
  cfg.w_rack = cls == ChaosClass::RackFailure ? 1.0 : 0.0;
  cfg.w_flap = cls == ChaosClass::Flapping ? 1.0 : 0.0;
  cfg.w_brownout = cls == ChaosClass::Brownout ? 1.0 : 0.0;
  cfg.w_partition = cls == ChaosClass::Partition ? 1.0 : 0.0;
  return cfg;
}

ChaosWorldScale chaos_smoke_scale() { return ChaosWorldScale{40, 2}; }

} // namespace insp::benchx
