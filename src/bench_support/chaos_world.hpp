// Deterministic worlds + chaos traces for bench_chaos and the health-layer
// test subsystem.  Same construction discipline as dynamic_world.hpp — the
// seeded world is part of the determinism contract and the pinned chaos
// signatures in tests/golden/replay_signatures.txt depend on it — with one
// extra hardening step: chaos faults take down up to two servers *at once*
// (rack, partition), so every object type is patched onto >= 3 servers;
// any single fault always leaves a live replica of everything.
#pragma once

#include <cstdint>

#include "dynamic/chaos_generator.hpp"
#include "multi/multi_app.hpp"

namespace insp::benchx {

struct ChaosWorldScale {
  int n = 0;     ///< total operators across all applications
  int apps = 0;  ///< concurrent applications
};

struct ChaosWorld {
  std::vector<ApplicationSpec> apps;
  Platform platform;
  PriceCatalog catalog;
  ChaosTrace trace;
};

/// Deterministic world + chaos trace for one scale row.  `chaos` carries
/// the class mix and the detector parameters the trace must be detectable
/// under (ChaosGenConfig::timeout_beats / recovery_beats); pass the same
/// values to FailureDetectorConfig when monitoring the returned trace.
ChaosWorld make_chaos_world(std::uint64_t seed, const ChaosWorldScale& scale,
                            const ChaosGenConfig& chaos);

/// Canonical smoke row: one chaos class isolated (the other weights
/// zeroed), four faults, detector-default timings.  Shared by
/// bench_chaos --smoke and the golden-signature regression test, so the
/// pinned bench_chaos_smoke_* signatures name one exact construction.
ChaosGenConfig chaos_smoke_config(ChaosClass cls);
ChaosWorldScale chaos_smoke_scale();

} // namespace insp::benchx
