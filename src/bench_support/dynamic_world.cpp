#include "bench_support/dynamic_world.hpp"

#include <algorithm>

#include "platform/server_distribution.hpp"
#include "tree/tree_generator.hpp"

namespace insp::benchx {

DynamicWorld make_dynamic_world(std::uint64_t seed,
                                const DynamicWorldScale& scale) {
  Rng gen(seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                                              scale.n + 131 * scale.apps)));
  ObjectCatalog objects = ObjectCatalog::random(gen, 15, 5.0, 30.0, 0.5);
  TreeGenConfig tcfg;
  tcfg.num_operators = scale.n / scale.apps;
  tcfg.alpha = 1.0;
  tcfg.num_object_types = 15;
  std::vector<ApplicationSpec> apps;
  for (int a = 0; a < scale.apps; ++a) {
    apps.push_back({generate_random_tree(gen, tcfg, objects), /*rho=*/0.5});
  }
  ServerDistConfig dist;
  dist.replication_prob = 0.4;
  std::vector<std::vector<int>> hosted = distribute_objects(gen, dist);
  for (int t = 0; t < dist.num_object_types; ++t) {
    std::vector<int> holders;
    for (int s = 0; s < dist.num_servers; ++s) {
      for (int ht : hosted[static_cast<std::size_t>(s)]) {
        if (ht == t) holders.push_back(s);
      }
    }
    if (holders.size() >= 2) continue;
    const int second = (holders.front() + 1 +
                        static_cast<int>(gen.index(static_cast<std::size_t>(
                            dist.num_servers - 1)))) %
                       dist.num_servers;
    auto& list = hosted[static_cast<std::size_t>(second)];
    list.insert(std::lower_bound(list.begin(), list.end(), t), t);
  }
  Platform platform =
      Platform::paper_default(std::move(hosted), dist.num_object_types);

  TraceGenConfig tg;
  tg.num_events = scale.events;
  tg.max_live_apps = scale.apps + 2;
  tg.rho_min = 0.05;
  tg.rho_max = 1.5;
  tg.arrival_tree = tcfg;
  EventTrace trace =
      generate_trace(gen, tg, scale.apps, /*initial_rho=*/0.5, platform,
                     objects);
  return DynamicWorld{std::move(apps), std::move(platform),
                      PriceCatalog::paper_default(), std::move(trace)};
}

} // namespace insp::benchx
