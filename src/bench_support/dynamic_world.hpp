// Deterministic multi-application worlds + event traces for the dynamic and
// service benches.  Extracted from bench_dynamic so bench_service, the
// golden-signature regression test, and the service stress test replay the
// *same* seeded worlds: the construction here is part of the determinism
// contract (docs/EXPERIMENTS.md) — changing it invalidates the pinned
// signatures in tests/golden/replay_signatures.txt.
#pragma once

#include <cstdint>

#include "dynamic/workload_events.hpp"
#include "multi/multi_app.hpp"

namespace insp::benchx {

struct DynamicWorldScale {
  int n = 0;       ///< total operators across all applications
  int apps = 0;    ///< concurrent applications at trace start
  int events = 0;  ///< trace length
};

struct DynamicWorld {
  std::vector<ApplicationSpec> apps;
  Platform platform;
  PriceCatalog catalog;
  EventTrace trace;
};

/// Deterministic world + trace for one scale row.  Paper-shaped trees and
/// platform; initial rho 0.5 per application leaves headroom for upward
/// rho drift (the trace clamps rho to [0.05, 1.5]).  Replicated object
/// distribution patched so every type lives on >= 2 servers: the trace
/// takes one server down at a time, and a single-replica type on the
/// failed server would make the whole world infeasible.
DynamicWorld make_dynamic_world(std::uint64_t seed,
                                const DynamicWorldScale& scale);

} // namespace insp::benchx
