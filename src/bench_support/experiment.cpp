#include "bench_support/experiment.hpp"

namespace insp {

Instance::Instance(OperatorTree tree, Platform platform, PriceCatalog catalog,
                   Throughput rho)
    : tree_(std::move(tree)),
      platform_(std::move(platform)),
      catalog_(std::move(catalog)),
      rho_(rho) {}

Problem Instance::problem() const {
  Problem p;
  p.tree = &tree_;
  p.platform = &platform_;
  p.catalog = &catalog_;
  p.rho = rho_;
  return p;
}

Instance make_instance(std::uint64_t seed, const InstanceConfig& config) {
  Rng master(seed);
  Rng tree_rng = master.split();
  Rng plat_rng = master.split();

  ServerDistConfig servers = config.servers;
  servers.num_object_types = config.tree.num_object_types;

  OperatorTree tree = generate_random_tree(tree_rng, config.tree);
  Platform platform = make_paper_platform(plat_rng, servers);
  PriceCatalog catalog = config.homogeneous_catalog
                             ? PriceCatalog::homogeneous()
                             : PriceCatalog::paper_default();
  return Instance(std::move(tree), std::move(platform), std::move(catalog),
                  config.rho);
}

SweepResult run_sweep(const SweepSpec& spec) {
  SweepResult result;
  result.x_name = spec.x_name;
  result.xs = spec.xs;
  result.heuristics =
      spec.heuristics.empty() ? all_heuristics() : spec.heuristics;
  for (HeuristicKind h : result.heuristics) {
    result.cells[h].resize(spec.xs.size());
  }

  for (std::size_t xi = 0; xi < spec.xs.size(); ++xi) {
    const InstanceConfig cfg = spec.config_for(spec.xs[xi]);
    for (int rep = 0; rep < spec.repetitions; ++rep) {
      // One instance per (x, rep); all heuristics see the same instance,
      // like the paper's per-configuration comparisons.
      const std::uint64_t seed =
          spec.base_seed * 1'000'003ull + xi * 7919ull + rep;
      const Instance inst = make_instance(seed, cfg);
      const Problem prob = inst.problem();
      for (HeuristicKind h : result.heuristics) {
        SweepCell& cell = result.cells[h][xi];
        ++cell.attempts;
        Rng run_rng(seed ^ (0x9e37ull + static_cast<std::uint64_t>(h)));
        const AllocationOutcome out =
            allocate(prob, h, run_rng, spec.allocator_options);
        if (out.success) {
          cell.cost.add(out.cost);
          cell.processors.add(out.num_processors);
        } else {
          ++cell.failures;
        }
      }
    }
  }
  return result;
}

} // namespace insp
