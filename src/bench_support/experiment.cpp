#include "bench_support/experiment.hpp"

#include "util/thread_pool.hpp"

namespace insp {

Instance::Instance(OperatorTree tree, Platform platform, PriceCatalog catalog,
                   Throughput rho)
    : tree_(std::move(tree)),
      platform_(std::move(platform)),
      catalog_(std::move(catalog)),
      rho_(rho) {}

Problem Instance::problem() const {
  Problem p;
  p.tree = &tree_;
  p.platform = &platform_;
  p.catalog = &catalog_;
  p.rho = rho_;
  return p;
}

Instance make_instance(std::uint64_t seed, const InstanceConfig& config) {
  Rng master(seed);
  Rng tree_rng = master.split();
  Rng plat_rng = master.split();

  ServerDistConfig servers = config.servers;
  servers.num_object_types = config.tree.num_object_types;

  OperatorTree tree = generate_random_tree(tree_rng, config.tree);
  Platform platform = make_paper_platform(plat_rng, servers);
  PriceCatalog catalog = config.homogeneous_catalog
                             ? PriceCatalog::homogeneous()
                             : PriceCatalog::paper_default();
  return Instance(std::move(tree), std::move(platform), std::move(catalog),
                  config.rho);
}

SweepResult run_sweep(const SweepSpec& spec) {
  SweepResult result;
  result.x_name = spec.x_name;
  result.xs = spec.xs;
  result.heuristics =
      spec.heuristics.empty() ? all_heuristics() : spec.heuristics;
  for (HeuristicKind h : result.heuristics) {
    result.cells[h].resize(spec.xs.size());
  }

  const std::size_t num_xs = spec.xs.size();
  const std::size_t reps = spec.repetitions > 0
                               ? static_cast<std::size_t>(spec.repetitions)
                               : 0;

  // config_for is caller-supplied and not required to be thread-safe, so
  // evaluate it once per sweep point up front.
  std::vector<InstanceConfig> configs;
  configs.reserve(num_xs);
  for (double x : spec.xs) configs.push_back(spec.config_for(x));

  // One task per (x, rep) grid cell; all heuristics see the same instance,
  // like the paper's per-configuration comparisons.  Each task derives its
  // RNGs purely from (base_seed, x_index, rep) and writes to its own
  // pre-allocated slot, so the fan-out is race-free and the merged result is
  // bit-identical to the serial loop for any thread count.
  struct RunOutcome {
    bool success = false;
    double cost = 0.0;
    int num_processors = 0;
  };
  const std::size_t num_tasks = num_xs * reps;
  std::vector<std::vector<RunOutcome>> grid(num_tasks);

  ThreadPool::parallel_for(
      num_tasks,
      spec.num_threads < 0 ? 1u : static_cast<unsigned>(spec.num_threads),
      [&](std::size_t task) {
        const std::size_t xi = task / reps;
        const std::size_t rep = task % reps;
        const std::uint64_t seed =
            spec.base_seed * 1'000'003ull + xi * 7919ull + rep;
        const Instance inst = make_instance(seed, configs[xi]);
        const Problem prob = inst.problem();
        std::vector<RunOutcome>& runs = grid[task];
        runs.reserve(result.heuristics.size());
        for (HeuristicKind h : result.heuristics) {
          Rng run_rng(seed ^ (0x9e37ull + static_cast<std::uint64_t>(h)));
          const AllocationOutcome out =
              allocate(prob, h, run_rng, spec.allocator_options);
          runs.push_back({out.success, out.cost, out.num_processors});
        }
      });

  // Deterministic merge in the exact order the serial loop used, so sample
  // insertion order (and thus every SampleSet) matches bit for bit.
  for (std::size_t xi = 0; xi < num_xs; ++xi) {
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const std::vector<RunOutcome>& runs = grid[xi * reps + rep];
      for (std::size_t hi = 0; hi < result.heuristics.size(); ++hi) {
        SweepCell& cell = result.cells[result.heuristics[hi]][xi];
        ++cell.attempts;
        const RunOutcome& run = runs[hi];
        if (run.success) {
          cell.cost.add(run.cost);
          cell.processors.add(run.num_processors);
        } else {
          ++cell.failures;
        }
      }
    }
  }
  return result;
}

} // namespace insp
