// Experiment harness shared by every bench binary: builds seeded random
// instances exactly per the paper's methodology (§5), runs the heuristic
// pipelines, and aggregates costs/failures per sweep point.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "platform/server_distribution.hpp"
#include "tree/tree_generator.hpp"
#include "util/stats.hpp"

namespace insp {

/// Everything a single allocation problem owns.  Problem::tree etc. point
/// into this object, so it must outlive the Problem it hands out.
class Instance {
 public:
  Instance(OperatorTree tree, Platform platform, PriceCatalog catalog,
           Throughput rho);

  Problem problem() const;
  const OperatorTree& tree() const { return tree_; }
  const Platform& platform() const { return platform_; }
  const PriceCatalog& catalog() const { return catalog_; }

 private:
  OperatorTree tree_;
  Platform platform_;
  PriceCatalog catalog_;
  Throughput rho_;
};

struct InstanceConfig {
  TreeGenConfig tree;
  ServerDistConfig servers;
  Throughput rho = 1.0;
  bool homogeneous_catalog = false;  ///< CONSTR-HOM instead of Table 1
};

/// Deterministic: the same (seed, config) always yields the same instance.
Instance make_instance(std::uint64_t seed, const InstanceConfig& config);

// ---------------------------------------------------------------------------

struct SweepCell {
  SampleSet cost;        ///< successful runs only (paper plots likewise)
  SampleSet processors;  ///< processor counts of successful runs
  int attempts = 0;
  int failures = 0;
  double failure_rate() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(failures) / attempts;
  }
};

struct SweepResult {
  std::string x_name;
  std::vector<double> xs;
  std::vector<HeuristicKind> heuristics;
  /// cells[h][i]: aggregate for heuristic h at xs[i].
  std::map<HeuristicKind, std::vector<SweepCell>> cells;
};

struct SweepSpec {
  std::string x_name = "x";
  std::vector<double> xs;
  /// Instance for sweep value x and repetition seed.
  std::function<InstanceConfig(double x)> config_for;
  int repetitions = 30;
  std::uint64_t base_seed = 42;
  std::vector<HeuristicKind> heuristics;  ///< empty = all six
  AllocatorOptions allocator_options;
  /// Worker threads for the (x, repetition) grid: 0 = hardware concurrency,
  /// 1 = serial.  Every task derives its RNG purely from
  /// (base_seed, x_index, rep), so the result is bit-identical for every
  /// thread count.
  int num_threads = 0;
};

SweepResult run_sweep(const SweepSpec& spec);

} // namespace insp
