#include "bench_support/gap_study.hpp"

#include <algorithm>

#include "dynamic/repair_allocator.hpp"

namespace insp::benchx {

GapStudyResult run_gap_study(const DynamicWorld& world, std::uint64_t seed,
                             std::uint64_t exact_node_budget) {
  RepairOptions repair_opts;  // incremental repair, defaults
  RepairOptions scratch_opts;
  scratch_opts.always_fallback = true;

  DynamicAllocator repair(world.apps, world.platform, world.catalog,
                          repair_opts);
  DynamicAllocator scratch(world.apps, world.platform, world.catalog,
                           scratch_opts);

  ExactSolverConfig exact_cfg;
  exact_cfg.node_budget = exact_node_budget;

  GapStudyResult out;
  double repair_sum = 0.0;
  double scratch_sum = 0.0;

  const auto record = [&](int event_index, bool both_ok) {
    if (!both_ok) return;
    ++out.events_comparable;
    // Both engines hold allocations for the SAME folded problem; one exact
    // solve anchors both costs.
    const ExactResult ex = solve_exact(repair.problem(), exact_cfg);
    GapEventSample s;
    s.event_index = event_index;
    s.nodes_visited = ex.nodes_visited;
    s.measured = ex.status == ExactStatus::Optimal && ex.cost.has_value() &&
                 *ex.cost > 0.0;
    if (s.measured) {
      s.repair_ratio = repair.cost() / *ex.cost;
      s.scratch_ratio = scratch.cost() / *ex.cost;
      ++out.events_measured;
      repair_sum += s.repair_ratio;
      scratch_sum += s.scratch_ratio;
      out.repair_gap_max = std::max(out.repair_gap_max, s.repair_ratio);
      out.scratch_gap_max = std::max(out.scratch_gap_max, s.scratch_ratio);
    }
    out.samples.push_back(s);
  };

  const RepairReport r0 = repair.initialize(seed);
  const RepairReport s0 = scratch.initialize(seed);
  if (!r0.success) ++out.repair_failures;
  if (!s0.success) ++out.scratch_failures;
  record(0, r0.success && s0.success);

  int index = 1;
  for (const WorkloadEvent& event : world.trace.events) {
    const RepairReport rr = repair.apply(event, world.trace);
    const RepairReport sr = scratch.apply(event, world.trace);
    ++out.events_applied;
    if (!rr.success) ++out.repair_failures;
    if (!sr.success) ++out.scratch_failures;
    record(index, rr.success && sr.success);
    ++index;
  }

  if (out.events_measured > 0) {
    out.repair_gap_mean = repair_sum / out.events_measured;
    out.scratch_gap_mean = scratch_sum / out.events_measured;
  }
  return out;
}

} // namespace insp::benchx
