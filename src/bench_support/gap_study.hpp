// Repair-vs-scratch optimality-gap study (docs/DESIGN.md §14): replays one
// seeded event trace through TWO DynamicAllocators in lockstep — the
// incremental-repair engine and the always-fallback scratch baseline — and
// anchors both post-event costs to the exact optimum of the folded problem.
// World mutation is event-driven (never allocation-driven), so after any
// event prefix the two engines face the SAME folded problem and one exact
// solve anchors both.  Used by bench_dynamic's gap columns and by
// tests/integration/optimality_gap_test, which turns PR 3's "repair is
// cheaper AND better than scratch" claim into a measured, gated assertion.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_support/dynamic_world.hpp"
#include "ilp/exact_solver.hpp"

namespace insp::benchx {

struct GapEventSample {
  int event_index = 0;     ///< 0 = initial allocation, i = trace event i
  bool measured = false;   ///< the exact anchor proved Optimal
  double repair_ratio = 0.0;   ///< repair cost / optimum (>= 1), when measured
  double scratch_ratio = 0.0;  ///< scratch cost / optimum, when measured
  std::uint64_t nodes_visited = 0;
};

struct GapStudyResult {
  int events_applied = 0;    ///< trace events fed to both engines
  int events_comparable = 0; ///< both engines succeeded (initial incl.)
  int events_measured = 0;   ///< comparable AND the anchor proved Optimal
  int repair_failures = 0;
  int scratch_failures = 0;
  /// Means/maxima over the measured events (1.0 = always optimal).
  double repair_gap_mean = 0.0;
  double repair_gap_max = 0.0;
  double scratch_gap_mean = 0.0;
  double scratch_gap_max = 0.0;
  std::vector<GapEventSample> samples;
};

/// Replays `world.trace` through repair and scratch engines seeded
/// identically, solving the folded problem exactly after the initial
/// allocation and after every event both engines survived.  Events whose
/// anchor ran out of `exact_node_budget` nodes are counted but excluded
/// from the gap statistics (measured == false) — a gap is only ever
/// reported against a PROVED optimum.
GapStudyResult run_gap_study(const DynamicWorld& world, std::uint64_t seed,
                             std::uint64_t exact_node_budget = 2'000'000);

} // namespace insp::benchx
