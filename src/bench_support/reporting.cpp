#include "bench_support/reporting.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"

namespace insp {

char heuristic_marker(HeuristicKind kind) {
  return strategy_for(kind).marker;
}

namespace {

std::string money(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

using CellFormatter = std::string (*)(const SweepCell&);

std::string generic_table(const SweepResult& r, CellFormatter fmt) {
  std::ostringstream out;
  const int name_w = 20;
  out << std::left << std::setw(10) << r.x_name;
  for (HeuristicKind h : r.heuristics) {
    out << std::setw(name_w) << heuristic_name(h);
  }
  out << "\n";
  for (std::size_t i = 0; i < r.xs.size(); ++i) {
    std::ostringstream xv;
    xv << r.xs[i];
    out << std::setw(10) << xv.str();
    for (HeuristicKind h : r.heuristics) {
      out << std::setw(name_w) << fmt(r.cells.at(h)[i]);
    }
    out << "\n";
  }
  return out.str();
}

std::string cost_cell(const SweepCell& c) {
  if (c.cost.empty()) return "-";
  std::string s = money(c.cost.mean());
  if (c.failures > 0) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), " (%.0f%% fail)", 100.0 * c.failure_rate());
    s += buf;
  }
  return s;
}

std::string proc_cell(const SweepCell& c) {
  if (c.processors.empty()) return "-";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%.1f", c.processors.mean());
  return buf;
}

std::string fail_cell(const SweepCell& c) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * c.failure_rate());
  return buf;
}

} // namespace

std::string format_cost_table(const SweepResult& result) {
  return generic_table(result, cost_cell);
}

std::string format_processor_table(const SweepResult& result) {
  return generic_table(result, proc_cell);
}

std::string format_failure_table(const SweepResult& result) {
  return generic_table(result, fail_cell);
}

std::string format_cost_chart(const SweepResult& result,
                              const std::string& title) {
  std::vector<ChartSeries> series;
  for (HeuristicKind h : result.heuristics) {
    ChartSeries s;
    s.name = heuristic_name(h);
    s.marker = heuristic_marker(h);
    const auto& cells = result.cells.at(h);
    for (std::size_t i = 0; i < result.xs.size(); ++i) {
      const double y = cells[i].cost.empty()
                           ? std::numeric_limits<double>::quiet_NaN()
                           : cells[i].cost.mean();
      s.points.emplace_back(result.xs[i], y);
    }
    series.push_back(std::move(s));
  }
  ChartOptions opt;
  opt.title = title;
  opt.x_label = result.x_name;
  opt.y_label = "mean cost ($)";
  return render_ascii_chart(series, opt);
}

void write_sweep_csv(const SweepResult& result, const std::string& path) {
  CsvWriter csv(path);
  csv.header({"x", "heuristic", "attempts", "failures", "mean_cost",
              "stddev_cost", "mean_processors"});
  for (HeuristicKind h : result.heuristics) {
    const auto& cells = result.cells.at(h);
    for (std::size_t i = 0; i < result.xs.size(); ++i) {
      const auto& c = cells[i];
      csv.cell(result.xs[i]);
      csv.cell(std::string(heuristic_name(h)));
      csv.cell(static_cast<long long>(c.attempts));
      csv.cell(static_cast<long long>(c.failures));
      if (c.cost.empty()) {
        csv.cell(std::string("")).cell(std::string("")).cell(std::string(""));
      } else {
        csv.cell(c.cost.mean());
        csv.cell(c.cost.stddev());
        csv.cell(c.processors.mean());
      }
      csv.end_row();
    }
  }
}

} // namespace insp
