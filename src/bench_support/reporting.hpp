// Rendering of sweep results: the text tables printed by the bench
// binaries (paper-figure rows), ASCII charts, and CSV dumps.
#pragma once

#include <string>

#include "bench_support/experiment.hpp"

namespace insp {

/// Table: one row per x value, one column per heuristic, cells "mean-cost
/// (fail%)"; failed-only cells print "-".
std::string format_cost_table(const SweepResult& result);

/// Same layout, mean processor counts.
std::string format_processor_table(const SweepResult& result);

/// Failure-rate table (percent).
std::string format_failure_table(const SweepResult& result);

/// ASCII chart of mean cost vs x (NaN gaps where every run failed).
std::string format_cost_chart(const SweepResult& result,
                              const std::string& title);

/// CSV: x, heuristic, attempts, failures, mean_cost, stddev_cost,
/// mean_processors.
void write_sweep_csv(const SweepResult& result, const std::string& path);

/// Marker characters used consistently across charts/legends.
char heuristic_marker(HeuristicKind kind);

} // namespace insp
