#include "core/ablation_variants.hpp"

#include <algorithm>

#include "core/placement_common.hpp"

namespace insp {

PlacementOutcome place_subtree_bottom_up_no_coalesce(PlacementState& state,
                                                     Rng& /*rng*/) {
  const OperatorTree& tree = *state.problem().tree;

  for (int al : tree.al_operators()) {
    std::string why;
    if (!place_with_grouping(state, al, GroupConfigPolicy::MostExpensiveOnly,
                             &why)) {
      return {false, "sbu-no-coalesce: " + why};
    }
  }

  for (int op : tree.bottom_up_order()) {
    if (state.proc_of(op) != kNoNode) continue;
    std::vector<int> kids = tree.op(op).children;
    std::sort(kids.begin(), kids.end(), [&](int a, int b) {
      const MegaBytes va = tree.op(a).output_mb, vb = tree.op(b).output_mb;
      if (va != vb) return va > vb;
      return a < b;
    });
    bool placed = false;
    for (int k : kids) {
      if (state.try_place({op}, state.proc_of(k))) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      std::string why;
      if (!place_with_grouping(state, op, GroupConfigPolicy::MostExpensiveOnly,
                               &why)) {
        return {false, "sbu-no-coalesce: " + why};
      }
    }
  }
  return {true, ""};
}

PlacementOutcome place_random_pair_grouping(PlacementState& state, Rng& rng) {
  const PriceCatalog& cat = *state.problem().catalog;
  while (state.num_unassigned() > 0) {
    const auto unassigned = state.unassigned_ops();
    const int op = unassigned[rng.index(unassigned.size())];

    auto buy_cheapest_for = [&](const std::vector<int>& group) {
      for (const auto& cfg : cat.by_cost()) {
        const int pid = state.buy(cfg);
        if (state.try_place(group, pid)) return true;
        state.sell(pid);
      }
      return false;
    };

    if (buy_cheapest_for({op})) continue;
    // Literal pair grouping: the neighbor with the most demanding edge.
    const auto nbs = state.neighbors(op);
    if (nbs.empty()) {
      return {false, "random-pair: isolated operator fits nowhere"};
    }
    const auto partner = *std::max_element(
        nbs.begin(), nbs.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (!buy_cheapest_for({op, partner.first})) {
      return {false, "random-pair: pair around op " + std::to_string(op) +
                         " fits on no processor"};
    }
  }
  return {true, ""};
}

} // namespace insp
