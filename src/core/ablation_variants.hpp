// Ablation variants of the design decisions docs/DESIGN.md documents for the
// heuristics.  The bench_ablations binary compares each variant against the
// default to quantify how much the decision matters:
//  - Subtree-Bottom-Up without opportunistic sibling-processor coalescing
//    (paper's literal "merge with the father" only);
//  - grouping limited to the paper's literal operator pair (no transitive
//    growth).
#pragma once

#include "core/placement_heuristics.hpp"

namespace insp {

/// SBU that never absorbs a sibling processor after placing a parent (the
/// strictly literal reading of the paper's merge step).
PlacementOutcome place_subtree_bottom_up_no_coalesce(PlacementState& state,
                                                     Rng& rng);

/// Random placement whose grouping stops at a pair of operators (the
/// paper's literal text); fails where the iterated version keeps growing.
PlacementOutcome place_random_pair_grouping(PlacementState& state, Rng& rng);

} // namespace insp
