#include "core/allocation.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace insp {

Dollars Allocation::total_cost(const PriceCatalog& catalog) const {
  Dollars total = 0.0;
  for (const auto& p : processors) total += catalog.cost(p.config);
  return total;
}

std::string Allocation::describe(const Problem& problem) const {
  std::ostringstream out;
  const auto loads = compute_processor_loads(problem, *this);
  out << "allocation: " << processors.size() << " processor(s), total $"
      << total_cost(*problem.catalog) << "\n";
  for (std::size_t u = 0; u < processors.size(); ++u) {
    const auto& p = processors[u];
    out << "  P" << u << " " << problem.catalog->describe(p.config) << " ops[";
    for (std::size_t i = 0; i < p.ops.size(); ++i) {
      out << (i ? "," : "") << p.ops[i];
    }
    out << "] cpu=" << loads[u].cpu_demand << "/"
        << problem.catalog->speed(p.config)
        << " nic=" << loads[u].nic_total() << "/"
        << problem.catalog->bandwidth(p.config);
    if (!p.downloads.empty()) {
      out << " dl{";
      for (std::size_t i = 0; i < p.downloads.size(); ++i) {
        out << (i ? "," : "") << "o" << p.downloads[i].object_type << "<-S"
            << p.downloads[i].server;
      }
      out << "}";
    }
    out << "\n";
  }
  return out.str();
}

std::vector<ProcessorLoads> compute_processor_loads(const Problem& problem,
                                                    const Allocation& alloc) {
  const OperatorTree& tree = *problem.tree;
  std::vector<ProcessorLoads> loads(alloc.processors.size());

  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    for (int op : alloc.processors[u].ops) {
      loads[u].cpu_demand += problem.rho * tree.op(op).work;
    }
  }

  // Downloads: distinct types per processor.
  const auto types = needed_types_per_processor(problem, alloc);
  for (std::size_t u = 0; u < types.size(); ++u) {
    for (int t : types[u]) {
      loads[u].download += tree.catalog().type(t).rate();
    }
  }

  // Crossing edges: one shipment per (producer, distinct destination
  // processor) at the max out-edge delta into it (multicast dedup,
  // docs/DESIGN.md §13) — the single child->parent edge on trees.
  for (const auto& n : tree.operators()) {
    const int uc = alloc.op_to_proc[static_cast<std::size_t>(n.id)];
    if (uc == kNoNode) continue;
    const auto& out = n.out;
    for (std::size_t a = 0; a < out.size(); ++a) {
      const int up = alloc.op_to_proc[static_cast<std::size_t>(out[a].dst)];
      if (up == kNoNode || up == uc) continue;
      bool first = true;
      for (std::size_t b = 0; b < a; ++b) {
        if (alloc.op_to_proc[static_cast<std::size_t>(out[b].dst)] == up) {
          first = false;
          break;
        }
      }
      if (!first) continue;
      MegaBytes mx = out[a].delta;
      for (std::size_t b = a + 1; b < out.size(); ++b) {
        if (alloc.op_to_proc[static_cast<std::size_t>(out[b].dst)] == up) {
          mx = std::max(mx, out[b].delta);
        }
      }
      const MBps v = problem.rho * mx;
      loads[static_cast<std::size_t>(uc)].comm_out += v;
      loads[static_cast<std::size_t>(up)].comm_in += v;
    }
  }
  return loads;
}

std::vector<std::vector<int>> needed_types_per_processor(
    const Problem& problem, const Allocation& alloc) {
  const OperatorTree& tree = *problem.tree;
  std::vector<std::set<int>> sets(alloc.processors.size());
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    for (int op : alloc.processors[u].ops) {
      for (int t : tree.object_types_of(op)) {
        sets[u].insert(t);
      }
    }
  }
  std::vector<std::vector<int>> out(alloc.processors.size());
  for (std::size_t u = 0; u < sets.size(); ++u) {
    out[u].assign(sets[u].begin(), sets[u].end());
  }
  return out;
}

} // namespace insp
