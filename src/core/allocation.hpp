// The output of the allocation pipeline: which processors were purchased,
// which operators run where, and from which server each processor downloads
// each basic object it needs (the DL(u) sets of the paper).
#pragma once

#include <string>
#include <vector>

#include "core/problem.hpp"

namespace insp {

/// One (object type, server) download route of a processor.
struct DownloadRoute {
  int object_type = -1;
  int server = -1;
  bool operator==(const DownloadRoute&) const = default;
};

struct PurchasedProcessor {
  ProcessorConfig config;
  std::vector<int> ops;                  ///< a-bar(u): operators mapped here
  std::vector<DownloadRoute> downloads;  ///< DL(u)
  bool operator==(const PurchasedProcessor&) const = default;
};

struct Allocation {
  std::vector<PurchasedProcessor> processors;
  /// op id -> processor index; kNoNode when unassigned (invalid allocation).
  std::vector<int> op_to_proc;

  bool operator==(const Allocation&) const = default;

  int num_processors() const { return static_cast<int>(processors.size()); }
  Dollars total_cost(const PriceCatalog& catalog) const;
  /// Human-readable purchase plan (one line per processor).
  std::string describe(const Problem& problem) const;
};

/// Per-processor load summary used by the checker, the downgrade step and
/// the reports.  All values at the problem's rho.
struct ProcessorLoads {
  MegaOps cpu_demand = 0.0;   ///< rho * sum(w_i); feasible iff <= speed
  MBps download = 0.0;        ///< sum of distinct-type download rates
  MBps comm_in = 0.0;         ///< rho * volumes from children elsewhere
  MBps comm_out = 0.0;        ///< rho * volumes to parents elsewhere
  MBps nic_total() const { return download + comm_in + comm_out; }
};

/// Recomputes loads from scratch (no dependence on PlacementState) so tests
/// can cross-validate the incremental accounting against this ground truth.
std::vector<ProcessorLoads> compute_processor_loads(const Problem& problem,
                                                    const Allocation& alloc);

/// Distinct object types needed on each processor, sorted ascending.
std::vector<std::vector<int>> needed_types_per_processor(
    const Problem& problem, const Allocation& alloc);

} // namespace insp
