#include "core/allocator.hpp"

#include "core/downgrade.hpp"
#include "core/local_search.hpp"
#include "core/server_selection.hpp"
#include "util/log.hpp"

namespace insp {

const std::vector<HeuristicKind>& all_heuristics() {
  static const std::vector<HeuristicKind> kAll = {
      HeuristicKind::Random,          HeuristicKind::CompGreedy,
      HeuristicKind::CommGreedy,      HeuristicKind::SubtreeBottomUp,
      HeuristicKind::ObjectGrouping,  HeuristicKind::ObjectAvailability,
  };
  return kAll;
}

const char* heuristic_name(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::Random: return "Random";
    case HeuristicKind::CompGreedy: return "Comp-Greedy";
    case HeuristicKind::CommGreedy: return "Comm-Greedy";
    case HeuristicKind::SubtreeBottomUp: return "Subtree-bottom-up";
    case HeuristicKind::ObjectGrouping: return "Object-Grouping";
    case HeuristicKind::ObjectAvailability: return "Object-Availability";
  }
  return "?";
}

std::optional<HeuristicKind> heuristic_from_name(const std::string& name) {
  for (HeuristicKind k : all_heuristics()) {
    if (name == heuristic_name(k)) return k;
  }
  return std::nullopt;
}

namespace {

PlacementOutcome run_placement(HeuristicKind kind, PlacementState& state,
                               Rng& rng) {
  switch (kind) {
    case HeuristicKind::Random: return place_random(state, rng);
    case HeuristicKind::CompGreedy: return place_comp_greedy(state, rng);
    case HeuristicKind::CommGreedy: return place_comm_greedy(state, rng);
    case HeuristicKind::SubtreeBottomUp:
      return place_subtree_bottom_up(state, rng);
    case HeuristicKind::ObjectGrouping:
      return place_object_grouping(state, rng);
    case HeuristicKind::ObjectAvailability:
      return place_object_availability(state, rng);
  }
  return {false, "unknown heuristic"};
}

} // namespace

AllocationOutcome allocate(const Problem& problem, HeuristicKind kind,
                           Rng& rng, const AllocatorOptions& options) {
  AllocationOutcome out;
  if (!problem.valid()) {
    out.failure_reason = "invalid problem instance";
    return out;
  }

  // ---- Phase 1: operator placement. ---------------------------------------
  PlacementState state(problem);
  const PlacementOutcome placed = run_placement(kind, state, rng);
  if (!placed.success) {
    out.failure_reason = "placement: " + placed.failure_reason;
    return out;
  }
  if (options.local_search) {
    refine_placement(state);
  }
  out.allocation = state.to_allocation();

  // ---- Phase 2: server selection. ------------------------------------------
  ServerSelectionKind ss = options.server_selection;
  if (ss == ServerSelectionKind::PaperDefault) {
    ss = kind == HeuristicKind::Random ? ServerSelectionKind::RandomChoice
                                       : ServerSelectionKind::ThreeLoop;
  }
  const ServerSelectionResult sel =
      ss == ServerSelectionKind::RandomChoice
          ? select_servers_random(problem, out.allocation, rng)
          : select_servers_three_loop(problem, out.allocation);
  if (!sel.success) {
    out.failure_reason = "server-selection: " + sel.failure_reason;
    return out;
  }

  // ---- Phase 3: downgrade. --------------------------------------------------
  out.cost_before_downgrade = out.allocation.total_cost(*problem.catalog);
  if (options.downgrade) {
    const DowngradeSummary dg = downgrade_processors(problem, out.allocation);
    INSP_DEBUG << heuristic_name(kind) << ": downgrade changed "
               << dg.processors_changed << " processor(s), saved $"
               << dg.saved;
  }

  // ---- Final validation. ----------------------------------------------------
  if (options.validate) {
    const CheckReport report = check_allocation(problem, out.allocation);
    if (!report.ok()) {
      out.failure_reason = "validation: " + report.summary();
      return out;
    }
  }

  out.success = true;
  out.cost = out.allocation.total_cost(*problem.catalog);
  out.num_processors = out.allocation.num_processors();
  return out;
}

} // namespace insp
