#include "core/allocator.hpp"

#include "core/downgrade.hpp"
#include "core/local_search.hpp"
#include "core/server_selection.hpp"
#include "util/log.hpp"

namespace insp {

AllocationOutcome allocate(const Problem& problem, HeuristicKind kind,
                           Rng& rng, const AllocatorOptions& options) {
  AllocationOutcome out;
  if (!problem.valid()) {
    out.failure_reason = "invalid problem instance";
    return out;
  }
  const PlacementStrategy& strat = strategy_for(kind);

  // ---- Phase 1: operator placement. ---------------------------------------
  PlacementState state(problem);
  const PlacementOutcome placed = strat.place(state, rng);
  if (!placed.success) {
    out.failure_reason = "placement: " + placed.failure_reason;
    return out;
  }
  if (options.local_search) {
    refine_placement(state);
  }
  out.allocation = state.to_allocation();

  // ---- Phase 2: server selection. ------------------------------------------
  ServerSelectionKind ss = options.server_selection;
  if (ss == ServerSelectionKind::PaperDefault) {
    ss = strat.default_selection;
  }
  const ServerSelectionResult sel =
      ss == ServerSelectionKind::RandomChoice
          ? select_servers_random(problem, out.allocation, rng)
          : select_servers_three_loop(problem, out.allocation);
  if (!sel.success) {
    out.failure_reason = "server-selection: " + sel.failure_reason;
    return out;
  }

  // ---- Phase 3: downgrade. --------------------------------------------------
  out.cost_before_downgrade = out.allocation.total_cost(*problem.catalog);
  if (options.downgrade) {
    const DowngradeSummary dg = downgrade_processors(problem, out.allocation);
    INSP_DEBUG << heuristic_name(kind) << ": downgrade changed "
               << dg.processors_changed << " processor(s), saved $"
               << dg.saved;
  }

  // ---- Final validation. ----------------------------------------------------
  if (options.validate) {
    const CheckReport report = check_allocation(problem, out.allocation);
    if (!report.ok()) {
      out.failure_reason = "validation: " + report.summary();
      return out;
    }
  }

  out.success = true;
  out.cost = out.allocation.total_cost(*problem.catalog);
  out.num_processors = out.allocation.num_processors();
  return out;
}

} // namespace insp
