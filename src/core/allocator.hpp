// End-to-end allocation pipeline (paper §4): operator placement, then
// server selection, then the downgrade step, then a full validation of the
// result against constraints (1)-(5).  Any phase may fail; the experiment
// harness counts failures per heuristic exactly as the paper does.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/constraints.hpp"
#include "core/placement_heuristics.hpp"
#include "core/problem.hpp"
#include "core/strategy_registry.hpp"
#include "util/rng.hpp"

namespace insp {

struct AllocatorOptions {
  ServerSelectionKind server_selection = ServerSelectionKind::PaperDefault;
  bool downgrade = true;  ///< paper skips it only in the homogeneous study
  bool validate = true;   ///< run the full constraint checker on the result
  /// Optional local-search refinement between placement and server
  /// selection (extension beyond the paper; see core/local_search.hpp).
  bool local_search = false;
};

struct AllocationOutcome {
  bool success = false;
  std::string failure_reason;  ///< which phase failed and why
  Allocation allocation;       ///< valid only when success
  Dollars cost = 0.0;
  int num_processors = 0;
  Dollars cost_before_downgrade = 0.0;
};

/// Runs the full pipeline for one heuristic.  `rng` drives the Random
/// heuristic (and random server selection); deterministic given its state.
AllocationOutcome allocate(const Problem& problem, HeuristicKind kind,
                           Rng& rng, const AllocatorOptions& options = {});

} // namespace insp
