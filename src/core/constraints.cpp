#include "core/constraints.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace insp {

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::Structure: return "structure";
    case ViolationKind::CpuCapacity: return "cpu-capacity(1)";
    case ViolationKind::ProcNic: return "proc-nic(2)";
    case ViolationKind::ServerCard: return "server-card(3)";
    case ViolationKind::ServerProcLink: return "server-proc-link(4)";
    case ViolationKind::ProcProcLink: return "proc-proc-link(5)";
    case ViolationKind::DownloadRouting: return "download-routing";
  }
  return "?";
}

std::string CheckReport::summary() const {
  if (ok()) return "ok";
  std::ostringstream out;
  out << violations.size() << " violation(s):";
  for (const auto& v : violations) {
    out << "\n  [" << to_string(v.kind) << "] " << v.detail;
  }
  return out.str();
}

namespace {

class Checker {
 public:
  Checker(const Problem& problem, const Allocation& alloc)
      : p_(problem), a_(alloc) {}

  CheckReport run() {
    check_structure();
    if (!report_.ok()) return std::move(report_);  // loads need structure
    check_downloads();
    check_cpu_and_nic();
    check_servers_and_links();
    return std::move(report_);
  }

 private:
  void fail(ViolationKind kind, const std::string& detail) {
    report_.violations.push_back({kind, detail});
  }

  void check_structure() {
    const auto& tree = *p_.tree;
    if (static_cast<int>(a_.op_to_proc.size()) != tree.num_operators()) {
      fail(ViolationKind::Structure, "op_to_proc size mismatch");
      return;
    }
    std::vector<int> seen(a_.op_to_proc.size(), 0);
    for (std::size_t u = 0; u < a_.processors.size(); ++u) {
      if (a_.processors[u].ops.empty()) {
        fail(ViolationKind::Structure,
             "processor " + std::to_string(u) + " owns no operators");
      }
      for (int op : a_.processors[u].ops) {
        if (op < 0 || op >= tree.num_operators()) {
          fail(ViolationKind::Structure, "processor owns unknown operator");
          continue;
        }
        if (a_.op_to_proc[static_cast<std::size_t>(op)] !=
            static_cast<int>(u)) {
          fail(ViolationKind::Structure,
               "op " + std::to_string(op) + " map/ops list disagree");
        }
        ++seen[static_cast<std::size_t>(op)];
      }
    }
    for (std::size_t op = 0; op < seen.size(); ++op) {
      if (seen[op] != 1) {
        fail(ViolationKind::Structure,
             "op " + std::to_string(op) + " owned by " +
                 std::to_string(seen[op]) + " processors");
      }
    }
  }

  void check_downloads() {
    const auto needed = needed_types_per_processor(p_, a_);
    for (std::size_t u = 0; u < a_.processors.size(); ++u) {
      std::set<int> routed;
      for (const auto& dl : a_.processors[u].downloads) {
        if (dl.object_type < 0 ||
            dl.object_type >= p_.tree->catalog().count()) {
          fail(ViolationKind::DownloadRouting,
               "P" + std::to_string(u) + " downloads unknown type");
          continue;
        }
        if (!routed.insert(dl.object_type).second) {
          fail(ViolationKind::DownloadRouting,
               "P" + std::to_string(u) + " downloads type " +
                   std::to_string(dl.object_type) + " twice");
        }
        if (dl.server < 0 || dl.server >= p_.platform->num_servers()) {
          fail(ViolationKind::DownloadRouting,
               "P" + std::to_string(u) + " downloads from unknown server");
          continue;
        }
        if (!p_.platform->server(dl.server).hosts(dl.object_type)) {
          fail(ViolationKind::DownloadRouting,
               "P" + std::to_string(u) + " downloads type " +
                   std::to_string(dl.object_type) + " from S" +
                   std::to_string(dl.server) + " which does not host it");
        }
      }
      const std::set<int> need(needed[u].begin(), needed[u].end());
      for (int t : need) {
        if (!routed.count(t)) {
          fail(ViolationKind::DownloadRouting,
               "P" + std::to_string(u) + " misses a route for type " +
                   std::to_string(t));
        }
      }
      for (int t : routed) {
        if (!need.count(t)) {
          fail(ViolationKind::DownloadRouting,
               "P" + std::to_string(u) + " routes unneeded type " +
                   std::to_string(t));
        }
      }
    }
  }

  void check_cpu_and_nic() {
    const auto loads = compute_processor_loads(p_, a_);
    const auto& cat = *p_.catalog;
    for (std::size_t u = 0; u < a_.processors.size(); ++u) {
      const auto& cfg = a_.processors[u].config;
      if (!cfg.valid()) {
        fail(ViolationKind::Structure,
             "P" + std::to_string(u) + " has no configuration");
        continue;
      }
      if (!fits_within(loads[u].cpu_demand, cat.speed(cfg))) {
        std::ostringstream ss;
        ss << "P" << u << " cpu " << loads[u].cpu_demand << " > "
           << cat.speed(cfg);
        fail(ViolationKind::CpuCapacity, ss.str());
      }
      if (!fits_within(loads[u].nic_total(), cat.bandwidth(cfg))) {
        std::ostringstream ss;
        ss << "P" << u << " nic " << loads[u].nic_total() << " > "
           << cat.bandwidth(cfg) << " (dl " << loads[u].download << " in "
           << loads[u].comm_in << " out " << loads[u].comm_out << ")";
        fail(ViolationKind::ProcNic, ss.str());
      }
    }
  }

  void check_servers_and_links() {
    const auto& tree = *p_.tree;
    const auto& plat = *p_.platform;
    // (3) server cards and (4) server->processor links.
    std::vector<MBps> server_load(static_cast<std::size_t>(plat.num_servers()),
                                  0.0);
    std::map<std::pair<int, int>, MBps> sp_link;  // (server, proc)
    for (std::size_t u = 0; u < a_.processors.size(); ++u) {
      for (const auto& dl : a_.processors[u].downloads) {
        if (dl.server < 0 || dl.server >= plat.num_servers()) continue;
        const MBps r = tree.catalog().type(dl.object_type).rate();
        server_load[static_cast<std::size_t>(dl.server)] += r;
        sp_link[{dl.server, static_cast<int>(u)}] += r;
      }
    }
    for (int l = 0; l < plat.num_servers(); ++l) {
      if (!fits_within(server_load[static_cast<std::size_t>(l)],
                       plat.server(l).card_bandwidth)) {
        std::ostringstream ss;
        ss << "S" << l << " card " << server_load[static_cast<std::size_t>(l)]
           << " > " << plat.server(l).card_bandwidth;
        fail(ViolationKind::ServerCard, ss.str());
      }
    }
    for (const auto& [key, load] : sp_link) {
      if (!fits_within(load, plat.link_server_proc())) {
        std::ostringstream ss;
        ss << "link S" << key.first << "->P" << key.second << " " << load
           << " > " << plat.link_server_proc();
        fail(ViolationKind::ServerProcLink, ss.str());
      }
    }
    // (5) processor<->processor links.  A producer ships its result once
    // per distinct destination processor, at the max out-edge delta into it
    // (multicast dedup, docs/DESIGN.md §13); on trees this is the single
    // child->parent edge at rho * output_mb, as before.
    std::map<std::pair<int, int>, MBps> pp_link;
    for (const auto& n : tree.operators()) {
      const int uc = a_.op_to_proc[static_cast<std::size_t>(n.id)];
      if (uc == kNoNode) continue;
      const auto& out = n.out;
      for (std::size_t a = 0; a < out.size(); ++a) {
        const int up = a_.op_to_proc[static_cast<std::size_t>(out[a].dst)];
        if (up == kNoNode || up == uc) continue;
        bool first = true;
        for (std::size_t b = 0; b < a; ++b) {
          if (a_.op_to_proc[static_cast<std::size_t>(out[b].dst)] == up) {
            first = false;
            break;
          }
        }
        if (!first) continue;
        MegaBytes mx = out[a].delta;
        for (std::size_t b = a + 1; b < out.size(); ++b) {
          if (a_.op_to_proc[static_cast<std::size_t>(out[b].dst)] == up) {
            mx = std::max(mx, out[b].delta);
          }
        }
        pp_link[{std::min(uc, up), std::max(uc, up)}] += p_.rho * mx;
      }
    }
    for (const auto& [key, load] : pp_link) {
      if (!fits_within(load, plat.link_proc_proc())) {
        std::ostringstream ss;
        ss << "link P" << key.first << "<->P" << key.second << " " << load
           << " > " << plat.link_proc_proc();
        fail(ViolationKind::ProcProcLink, ss.str());
      }
    }
  }

  const Problem& p_;
  const Allocation& a_;
  CheckReport report_;
};

} // namespace

CheckReport check_allocation(const Problem& problem, const Allocation& alloc) {
  return Checker(problem, alloc).run();
}

} // namespace insp
