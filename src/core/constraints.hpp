// Full validation of a finished allocation against the paper's constraints
// (1)-(5), plus structural sanity (every operator mapped, every needed
// object downloaded exactly once per processor from a hosting server).
//
// This checker recomputes everything from scratch and shares no code with
// the incremental accounting in PlacementState — property tests validate
// one implementation against the other.
#pragma once

#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"

namespace insp {

enum class ViolationKind {
  Structure,       ///< unassigned op, dangling indices, duplicate downloads
  CpuCapacity,     ///< eq (1)
  ProcNic,         ///< eq (2)
  ServerCard,      ///< eq (3)
  ServerProcLink,  ///< eq (4)
  ProcProcLink,    ///< eq (5)
  DownloadRouting, ///< download from a server not hosting the type, or a
                   ///< needed type with no route / an unneeded route
};

const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::string detail;
};

struct CheckReport {
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

CheckReport check_allocation(const Problem& problem, const Allocation& alloc);

} // namespace insp
