#include "core/downgrade.hpp"

#include <cassert>

namespace insp {

DowngradeSummary downgrade_processors(const Problem& problem,
                                      Allocation& alloc) {
  DowngradeSummary summary;
  const auto loads = compute_processor_loads(problem, alloc);
  const PriceCatalog& cat = *problem.catalog;
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    auto& p = alloc.processors[u];
    const auto best =
        cat.cheapest_meeting(loads[u].cpu_demand, loads[u].nic_total());
    // The current configuration satisfies the load (the placement phase
    // checked it), so a meeting configuration always exists.
    assert(best.has_value());
    if (!best) continue;
    const Dollars before = cat.cost(p.config);
    const Dollars after = cat.cost(*best);
    if (after < before) {
      p.config = *best;
      ++summary.processors_changed;
      summary.saved += before - after;
    }
  }
  return summary;
}

} // namespace insp
