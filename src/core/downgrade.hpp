// Third phase of every heuristic (paper §4): most placement heuristics buy
// only the most powerful processors; after server selection, every purchase
// is replaced by the *cheapest* catalog configuration whose CPU speed and
// NIC bandwidth still satisfy that processor's realized load.
#pragma once

#include "core/allocation.hpp"
#include "core/problem.hpp"

namespace insp {

struct DowngradeSummary {
  int processors_changed = 0;
  Dollars saved = 0.0;  ///< cost before minus cost after (>= 0)
};

DowngradeSummary downgrade_processors(const Problem& problem,
                                      Allocation& alloc);

} // namespace insp
