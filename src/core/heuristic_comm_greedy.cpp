#include "core/placement_common.hpp"
#include "core/placement_heuristics.hpp"
#include "tree/tree_stats.hpp"

namespace insp {

PlacementOutcome place_comm_greedy(PlacementState& state, Rng& /*rng*/) {
  const OperatorTree& tree = *state.problem().tree;
  const PriceCatalog& cat = *state.problem().catalog;

  // Edges (child -> parent) by non-increasing communication volume: "picks
  // the two operators that have the largest communication requirements".
  // On a DAG a shared child appears once per consumer, so every
  // producer/consumer pair gets its co-location attempt.
  for (const EdgeRef& edge : edges_by_volume_desc(tree)) {
    const int child = edge.child;
    const int parent = edge.parent;
    const int uc = state.proc_of(child);
    const int up = state.proc_of(parent);

    if (uc == kNoNode && up == kNoNode) {
      // (i) both unassigned: cheapest processor that can handle both,
      // found with one batched hypothetical-purchase probe over the catalog.
      bool placed = false;
      const auto& configs = cat.by_cost();
      std::vector<unsigned char> verdicts;
      state.can_place_on_new_batch({child, parent}, configs, verdicts);
      for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!verdicts[c]) continue;
        const int pid = state.buy(configs[c]);
        if (state.try_place({child, parent}, pid)) {
          placed = true;
          break;
        }
        state.sell(pid);
      }
      if (!placed) {
        // ... "if no such processor is available then the heuristic acquires
        // the most expensive processor for each operator" (grouping keeps
        // that robust when a lone operator still cannot be seated).
        for (int op : {child, parent}) {
          std::string why;
          if (!place_with_grouping(state, op,
                                   GroupConfigPolicy::MostExpensiveOnly,
                                   &why)) {
            return {false, "comm-greedy: " + why};
          }
        }
      }
    } else if (uc == kNoNode || up == kNoNode) {
      // (ii) one assigned: try to accommodate the other on the same
      // processor, else buy the most expensive processor for it.
      const int assigned_proc = uc == kNoNode ? up : uc;
      const int loose = uc == kNoNode ? child : parent;
      if (!state.try_place({loose}, assigned_proc)) {
        std::string why;
        if (!place_with_grouping(state, loose,
                                 GroupConfigPolicy::MostExpensiveOnly,
                                 &why)) {
          return {false, "comm-greedy: " + why};
        }
      }
    } else if (uc != up) {
      // (iii) both assigned on different processors: try to accommodate all
      // operators on one processor and sell the other; keep the current
      // assignment when neither direction fits.
      const std::vector<int> from_up = state.ops_on(up);
      if (!state.try_place(from_up, uc)) {
        const std::vector<int> from_uc = state.ops_on(uc);
        state.try_place(from_uc, up);
      }
    }
  }

  // A single-operator tree has no edges; seat the root directly.  Copy the
  // snapshot: placing mutates the unassigned list we would be iterating.
  const std::vector<int> leftover = state.unassigned_ops();
  for (int op : leftover) {
    std::string why;
    if (!place_with_grouping(state, op, GroupConfigPolicy::CheapestFirst,
                             &why)) {
      return {false, "comm-greedy: " + why};
    }
  }
  return {true, ""};
}

} // namespace insp
