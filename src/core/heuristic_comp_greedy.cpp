#include "core/placement_common.hpp"
#include "core/placement_heuristics.hpp"

namespace insp {

PlacementOutcome place_comp_greedy(PlacementState& state, Rng& /*rng*/) {
  const auto order = ops_by_work_desc(*state.problem().tree);
  for (int op : order) {
    if (state.proc_of(op) != kNoNode) continue;
    // "the heuristic acquires the most expensive processor available and
    //  assigns the most computationally demanding unassigned operator to it"
    // with the grouping technique when the operator alone does not fit.
    std::string why;
    const auto pid = place_with_grouping(
        state, op, GroupConfigPolicy::MostExpensiveOnly, &why);
    if (!pid) {
      return {false, "comp-greedy: " + why};
    }
    // "If after this step some capacity is left on the processor, then the
    //  heuristic tries to assign other operators to it ... in non-increasing
    //  order of w_i."
    for (int other : order) {
      if (state.proc_of(other) != kNoNode) continue;
      state.try_place({other}, *pid);
    }
  }
  return {true, ""};
}

} // namespace insp
