#include <algorithm>

#include "core/placement_common.hpp"
#include "core/placement_heuristics.hpp"

namespace insp {

PlacementOutcome place_object_availability(PlacementState& state,
                                           Rng& /*rng*/) {
  const OperatorTree& tree = *state.problem().tree;
  const Platform& plat = *state.problem().platform;

  // "For each object k the number av_k of servers handling object o_k is
  //  calculated. Al-operators in turn are treated in increasing order of
  //  av_k of the basic objects they need to download."
  std::vector<int> types;
  for (int t = 0; t < tree.catalog().count(); ++t) types.push_back(t);
  std::sort(types.begin(), types.end(), [&](int a, int b) {
    const int aa = plat.availability(a), ab = plat.availability(b);
    if (aa != ab) return aa < ab;
    return a < b;
  });

  const auto by_work = ops_by_work_desc(tree);

  for (int t : types) {
    // Unassigned al-operators needing this type, heaviest first.
    std::vector<int> needing;
    for (int op : by_work) {
      if (state.proc_of(op) != kNoNode || !tree.op(op).is_al_operator()) {
        continue;
      }
      const auto ts = tree.object_types_of(op);
      if (std::find(ts.begin(), ts.end(), t) != ts.end()) {
        needing.push_back(op);
      }
    }
    if (needing.empty()) continue;

    // "tries to assign as many al-operators downloading object k as
    //  possible on a most expensive processor"
    const int pid = state.buy(state.problem().catalog->most_expensive());
    bool any = false;
    for (int op : needing) {
      if (state.try_place({op}, pid)) any = true;
    }
    if (!any) state.sell(pid);
  }

  // "The remaining internal operators are assigned similarly to
  //  Comp-Greedy, i.e., in decreasing order of w_i of the operators."
  for (int op : by_work) {
    if (state.proc_of(op) != kNoNode) continue;
    std::string why;
    const auto pid = place_with_grouping(
        state, op, GroupConfigPolicy::MostExpensiveOnly, &why);
    if (!pid) {
      return {false, "object-availability: " + why};
    }
    for (int other : by_work) {
      if (state.proc_of(other) != kNoNode) continue;
      state.try_place({other}, *pid);
    }
  }
  return {true, ""};
}

} // namespace insp
