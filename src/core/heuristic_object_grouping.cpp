#include <algorithm>

#include "core/placement_common.hpp"
#include "core/placement_heuristics.hpp"
#include "tree/tree_stats.hpp"

namespace insp {

namespace {

/// Sum of popularities of the distinct object types an operator needs.
int popularity_sum(const OperatorTree& tree, const std::vector<int>& pop,
                   int op) {
  int s = 0;
  for (int t : tree.object_types_of(op)) {
    s += pop[static_cast<std::size_t>(t)];
  }
  return s;
}

} // namespace

PlacementOutcome place_object_grouping(PlacementState& state, Rng& /*rng*/) {
  const OperatorTree& tree = *state.problem().tree;
  const auto pop = object_popularity(tree);

  // "The al-operators are then sorted by non-increasing sum of the
  //  popularities of the basic objects they need."
  std::vector<int> als = tree.al_operators();
  std::sort(als.begin(), als.end(), [&](int a, int b) {
    const int pa = popularity_sum(tree, pop, a);
    const int pb = popularity_sum(tree, pop, b);
    if (pa != pb) return pa > pb;
    return a < b;
  });

  const auto by_work = ops_by_work_desc(tree);

  for (int seed : als) {
    if (state.proc_of(seed) != kNoNode) continue;
    // "starts by acquiring the most expensive processor and assigns to it
    //  the first al-operator"
    std::string why;
    const auto pid = place_with_grouping(
        state, seed, GroupConfigPolicy::MostExpensiveOnly, &why);
    if (!pid) {
      return {false, "object-grouping: " + why};
    }
    // "... then attempts to assign to it as many other al-operators that
    //  require the same basic objects as the first al-operator, taken in
    //  order of non-increasing popularity ..."
    const auto seed_types = tree.object_types_of(seed);
    auto shares_type = [&](int op) {
      for (int t : tree.object_types_of(op)) {
        if (std::find(seed_types.begin(), seed_types.end(), t) !=
            seed_types.end()) {
          return true;
        }
      }
      return false;
    };
    for (int other : als) {
      if (state.proc_of(other) != kNoNode || !shares_type(other)) continue;
      state.try_place({other}, *pid);
    }
    // "... and then as many non al-operators as possible."
    for (int op : by_work) {
      if (state.proc_of(op) != kNoNode || tree.op(op).is_al_operator()) {
        continue;
      }
      state.try_place({op}, *pid);
    }
    // DAG-aware co-consumer pull: a child of an operator seated here ships
    // its result to this processor once, so the child's *other* consumers
    // ride the same shipment for free — co-locate the unassigned ones when
    // they fit.  On trees each child's only consumer is already here, so
    // this adds zero probes and the tree behavior is unchanged.
    const std::vector<int> here = state.ops_on(*pid);
    for (int op : here) {
      for (int c : tree.op(op).children) {
        for (const OutEdge& e : tree.op(c).out) {
          if (state.proc_of(e.dst) != kNoNode) continue;
          state.try_place({e.dst}, *pid);
        }
      }
    }
  }

  // Non-al operators that fit on no seed processor get their own
  // most-expensive processors, heaviest first.
  for (int op : by_work) {
    if (state.proc_of(op) != kNoNode) continue;
    std::string why;
    if (!place_with_grouping(state, op, GroupConfigPolicy::MostExpensiveOnly,
                             &why)) {
      return {false, "object-grouping: " + why};
    }
  }
  return {true, ""};
}

} // namespace insp
