#include "core/placement_common.hpp"
#include "core/placement_heuristics.hpp"

namespace insp {

PlacementOutcome place_random(PlacementState& state, Rng& rng) {
  while (state.num_unassigned() > 0) {
    const auto unassigned = state.unassigned_ops();
    const int op = unassigned[rng.index(unassigned.size())];
    std::string why;
    if (!place_with_grouping(state, op, GroupConfigPolicy::CheapestFirst,
                             &why)) {
      return {false, "random: " + why};
    }
  }
  return {true, ""};
}

} // namespace insp
