#include <algorithm>
#include <map>

#include "core/placement_common.hpp"
#include "core/placement_heuristics.hpp"
#include "tree/tree_stats.hpp"

namespace insp {

namespace {

/// Grow processor `pid` to a fixpoint: pull the parents of its operators in
/// (from other processors or unassigned), and absorb whole child processors
/// ("merge the operators with their father on a single machine ... possibly
/// returning some processors").  Every successful step strictly increases
/// the operator count on `pid`, so the loop terminates.
void grow_to_fixpoint(PlacementState& state, int pid) {
  const OperatorTree& tree = *state.problem().tree;
  bool changed = true;
  while (changed && state.is_live(pid)) {
    changed = false;
    const std::vector<int> snapshot = state.ops_on(pid);
    for (int op : snapshot) {
      // Pull every consumer next to its child (the single parent on trees;
      // each sharing parent on a DAG — co-locating all of them makes the
      // shared shipment free).
      for (const OutEdge& e : tree.op(op).out) {
        if (state.proc_of(e.dst) != pid) {
          if (state.try_place({e.dst}, pid)) changed = true;
        }
      }
      // Absorb whole child processors (subtree consolidation).
      for (int c : tree.op(op).children) {
        const int pc = state.proc_of(c);
        if (pc == kNoNode || pc == pid) continue;
        if (state.try_place(state.ops_on(pc), pid)) changed = true;
      }
    }
  }
}

/// Final consolidation sweep: repeatedly merge the pair of processors with
/// the largest mutual traffic (selling the emptied one) until no merge is
/// feasible.  Starting from one-processor-per-al-operator, intermediate
/// merge states can wedge on link capacities; this sweep frees them and is
/// what lets SBU approach the optimum the paper reports.
void consolidation_sweep(PlacementState& state) {
  const OperatorTree& tree = *state.problem().tree;
  for (;;) {
    // Pairwise crossing traffic, deduped per (producer, distinct
    // destination processor) at the max out-edge delta — matching the
    // charging semantics (docs/DESIGN.md §13); the per-edge output_mb on
    // trees, as before.
    std::map<std::pair<int, int>, MBps> traffic;
    for (const auto& n : tree.operators()) {
      const int a = state.proc_of(n.id);
      if (a == kNoNode) continue;
      for (std::size_t i = 0; i < n.out.size(); ++i) {
        const int b = state.proc_of(n.out[i].dst);
        if (b == kNoNode || b == a) continue;
        bool first = true;
        for (std::size_t j = 0; j < i; ++j) {
          if (state.proc_of(n.out[j].dst) == b) {
            first = false;
            break;
          }
        }
        if (!first) continue;
        MegaBytes mx = n.out[i].delta;
        for (std::size_t j = i + 1; j < n.out.size(); ++j) {
          if (state.proc_of(n.out[j].dst) == b) mx = std::max(mx, n.out[j].delta);
        }
        traffic[{std::min(a, b), std::max(a, b)}] += mx;
      }
    }
    std::vector<std::pair<std::pair<int, int>, MBps>> pairs(traffic.begin(),
                                                            traffic.end());
    std::sort(pairs.begin(), pairs.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
    bool merged = false;
    for (const auto& [pr, volume] : pairs) {
      (void)volume;
      const auto [a, b] = pr;
      if (!state.is_live(a) || !state.is_live(b)) continue;
      // Move the smaller processor's content into the larger.
      const int from = state.ops_on(a).size() <= state.ops_on(b).size() ? a : b;
      const int to = from == a ? b : a;
      if (state.try_place(state.ops_on(from), to) ||
          state.try_place(state.ops_on(to), from)) {
        merged = true;
        break;
      }
    }
    if (!merged) return;
  }
}

} // namespace

PlacementOutcome place_subtree_bottom_up(PlacementState& state, Rng& /*rng*/) {
  const OperatorTree& tree = *state.problem().tree;
  const auto depths = operator_depths(tree);

  // Phase 1: "acquires as many most expensive processors as there are
  // al-operators and assigns each al-operator to a distinct processor".
  std::vector<int> al_procs;
  for (int al : tree.al_operators()) {
    std::string why;
    const auto pid = place_with_grouping(
        state, al, GroupConfigPolicy::MostExpensiveOnly, &why);
    if (!pid) {
      return {false, "subtree-bottom-up: " + why};
    }
    al_procs.push_back(*pid);
  }

  // Phase 2: bottom-up merging.  Process the al processors deepest-first
  // (their subtrees close first) and let each grow to a fixpoint.
  std::sort(al_procs.begin(), al_procs.end(), [&](int a, int b) {
    auto proc_depth = [&](int pid) {
      if (!state.is_live(pid)) return -1;
      int d = 0;
      for (int op : state.ops_on(pid)) {
        d = std::max(d, depths[static_cast<std::size_t>(op)]);
      }
      return d;
    };
    const int da = proc_depth(a), db = proc_depth(b);
    if (da != db) return da > db;
    return a < b;
  });
  for (int pid : al_procs) {
    if (state.is_live(pid)) grow_to_fixpoint(state, pid);
  }

  // Phase 3: any operator the merging could not seat (its pulls failed on
  // every processor) gets the literal fallback — join a child's processor,
  // else coalesce the children's processors, else a new most expensive
  // processor ("one or more new processors are acquired").
  for (int op : tree.bottom_up_order()) {
    if (state.proc_of(op) != kNoNode) continue;

    std::vector<int> kids = tree.op(op).children;
    std::sort(kids.begin(), kids.end(), [&](int a, int b) {
      const MegaBytes va = tree.op(a).output_mb, vb = tree.op(b).output_mb;
      if (va != vb) return va > vb;
      return a < b;
    });

    int target = kNoNode;
    // One batched probe over the children's processors replaces the
    // journal-per-child scan; the committing try_place re-validates the
    // winner (falling back to the scan if a boundary case ever disagrees).
    std::vector<int> kid_procs;
    kid_procs.reserve(kids.size());
    for (int k : kids) kid_procs.push_back(state.proc_of(k));
    const int first = state.first_feasible_target({op}, kid_procs);
    if (first != kNoNode && state.try_place({op}, first)) {
      target = first;
    } else if (first != kNoNode) {
      for (int pk : kid_procs) {
        if (state.try_place({op}, pk)) {
          target = pk;
          break;
        }
      }
    }
    if (target == kNoNode) {
      // Forced coalesce: op plus all other children's processors onto one
      // child processor.
      for (int k : kids) {
        const int pk = state.proc_of(k);
        std::vector<int> group = {op};
        for (int other : kids) {
          const int po = state.proc_of(other);
          if (po == pk) continue;
          const auto& ops = state.ops_on(po);
          group.insert(group.end(), ops.begin(), ops.end());
        }
        if (state.try_place(group, pk)) {
          target = pk;
          break;
        }
      }
    }
    if (target == kNoNode) {
      std::string why;
      const auto pid = place_with_grouping(
          state, op, GroupConfigPolicy::MostExpensiveOnly, &why);
      if (!pid) {
        return {false, "subtree-bottom-up: " + why};
      }
      target = *pid;
    }
  }

  consolidation_sweep(state);
  return {true, ""};
}

} // namespace insp
