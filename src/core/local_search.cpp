#include "core/local_search.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace insp {

Dollars projected_processor_cost(const PlacementState& state, int pid) {
  const PriceCatalog& cat = *state.problem().catalog;
  const auto cfg =
      cat.cheapest_meeting(state.cpu_demand(pid), state.nic_load(pid));
  return cfg ? cat.cost(*cfg) : cat.cost(state.config(pid));
}

std::optional<Dollars> projected_merged_cost(const PlacementState& state,
                                             int a, int b) {
  const PriceCatalog& cat = *state.problem().catalog;
  const OperatorTree& tree = *state.problem().tree;

  const MegaOps cpu = state.cpu_demand(a) + state.cpu_demand(b);
  // Downloads: union of distinct types.
  MBps download = state.download_load(a);
  const auto types_a = state.download_types(a);
  for (int t : state.download_types(b)) {
    if (!std::binary_search(types_a.begin(), types_a.end(), t)) {
      download += tree.catalog().type(t).rate();
    }
  }
  // Comm: the pair's mutual traffic disappears from both cards.
  const MBps mutual = state.pair_traffic(a, b);
  const MBps comm = state.comm_load(a) + state.comm_load(b) - 2.0 * mutual;
  const auto cfg = cat.cheapest_meeting(cpu, download + comm);
  if (!cfg) return std::nullopt;
  return cat.cost(*cfg);
}

namespace {

bool merge_pass(PlacementState& state, LocalSearchStats& stats) {
  bool improved = false;
  const auto procs = state.live_processors();
  for (std::size_t i = 0; i < procs.size(); ++i) {
    for (std::size_t j = i + 1; j < procs.size(); ++j) {
      const int a = procs[i], b = procs[j];
      if (!state.is_live(a) || !state.is_live(b)) continue;
      const auto merged = projected_merged_cost(state, a, b);
      if (!merged) continue;
      const Dollars pair_cost = projected_processor_cost(state, a) +
                                projected_processor_cost(state, b);
      if (*merged >= pair_cost - 1e-9) continue;
      // Prefer moving the lighter processor.
      const int from =
          state.ops_on(a).size() <= state.ops_on(b).size() ? a : b;
      const int to = from == a ? b : a;
      if (state.try_place(state.ops_on(from), to) ||
          state.try_place(state.ops_on(to), from)) {
        ++stats.merges;
        improved = true;
      }
    }
  }
  return improved;
}

bool relocation_pass(PlacementState& state, LocalSearchStats& stats) {
  bool improved = false;
  const OperatorTree& tree = *state.problem().tree;
  // Hoisted candidate buffer: refilled per operator (the live set shifts as
  // relocations retire processors) but reuses its capacity across the pass.
  std::vector<int> targets;
  for (int op = 0; op < tree.num_operators(); ++op) {
    const int home = state.proc_of(op);
    if (home == kNoNode || state.ops_on(home).size() < 2) continue;
    const Dollars before = projected_downgraded_cost(state);
    // One batched probe picks the first feasible target (the scalar scan
    // paid a journal transaction per candidate); only that one target is
    // then tried for an improvement, as before.
    targets.clear();
    for (int t : state.live_processors()) {
      if (t != home) targets.push_back(t);
    }
    const int target = state.first_feasible_target(op, targets);
    if (target == kNoNode) continue;
    if (!state.try_place(op, target)) continue;
    const Dollars after = projected_downgraded_cost(state);
    if (after < before - 1e-9) {
      ++stats.relocations;
      improved = true;
      continue;
    }
    // Not an improvement: move back (always feasible — the previous
    // state satisfied every constraint).
    const bool restored = state.try_place(op, home);
    (void)restored;
    assert(restored);
  }
  return improved;
}

} // namespace

Dollars projected_downgraded_cost(const PlacementState& state) {
  Dollars total = 0.0;
  for (int pid : state.live_processors()) {
    total += projected_processor_cost(state, pid);
  }
  return total;
}

LocalSearchStats refine_placement(PlacementState& state,
                                  const LocalSearchOptions& options) {
  LocalSearchStats stats;
  stats.projected_cost_before = projected_downgraded_cost(state);
  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++stats.passes;
    bool improved = false;
    if (options.enable_merges) improved |= merge_pass(state, stats);
    if (options.enable_relocations) improved |= relocation_pass(state, stats);
    if (!improved) break;
  }
  stats.projected_cost_after = projected_downgraded_cost(state);
  INSP_DEBUG << "local search: " << stats.merges << " merges, "
             << stats.relocations << " relocations, $"
             << stats.projected_cost_before << " -> $"
             << stats.projected_cost_after;
  return stats;
}

} // namespace insp
