// Local-search refinement of a placement (an extension beyond the paper,
// in the spirit of its conclusion).  Operates on the live PlacementState
// between the placement and server-selection phases; the objective is the
// *projected post-downgrade cost*: the sum over live processors of the
// cheapest catalog configuration meeting each processor's current CPU and
// NIC load (exactly what the downgrade phase will charge).
//
// Two move types, applied in passes until a fixpoint or the pass limit:
//   - merge: move one processor's whole content onto another and sell it,
//     when the merged cheapest-meeting config costs less than the pair;
//   - relocate: move a single operator to another processor when that
//     lowers the projected total.
// Every move goes through try_place, so feasibility (1)-(5 realized) is
// preserved by construction.
#pragma once

#include <optional>

#include "core/placement_state.hpp"

namespace insp {

struct LocalSearchOptions {
  int max_passes = 8;
  bool enable_merges = true;
  bool enable_relocations = true;
};

struct LocalSearchStats {
  int merges = 0;
  int relocations = 0;
  int passes = 0;
  Dollars projected_cost_before = 0.0;
  Dollars projected_cost_after = 0.0;
};

/// Projected post-downgrade cost of the current state (sum of
/// cheapest-meeting configs; the current configs are upper bounds).
Dollars projected_downgraded_cost(const PlacementState& state);

/// Projected post-downgrade cost of one live processor (cheapest catalog
/// configuration meeting its current loads; its current — always
/// sufficient — configuration is the fallback).
Dollars projected_processor_cost(const PlacementState& state, int pid);

/// Projected cost of processors `a` and `b` merged onto one (analytic: no
/// state mutation; shared downloads counted once, mutual traffic freed).
/// nullopt when no catalog model could host the merge.  Shared with the
/// dynamic repair engine's consolidation pass (src/dynamic/).
std::optional<Dollars> projected_merged_cost(const PlacementState& state,
                                             int a, int b);

LocalSearchStats refine_placement(PlacementState& state,
                                  const LocalSearchOptions& options = {});

} // namespace insp
