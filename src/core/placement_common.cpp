#include "core/placement_common.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace insp {

namespace {

/// Neighbors of the group not yet in it, with the connecting edge volume;
/// when several edges reach the same neighbor the largest volume counts.
std::vector<std::pair<int, MBps>> group_frontier(
    const PlacementState& state, const std::vector<int>& group) {
  std::vector<std::pair<int, MBps>> frontier;
  auto in_group = [&](int op) {
    return std::find(group.begin(), group.end(), op) != group.end();
  };
  for (int member : group) {
    for (const auto& [nb, volume] : state.neighbors(member)) {
      if (in_group(nb)) continue;
      auto it = std::find_if(frontier.begin(), frontier.end(),
                             [&](const auto& f) { return f.first == nb; });
      if (it == frontier.end()) {
        frontier.emplace_back(nb, volume);
      } else {
        it->second = std::max(it->second, volume);
      }
    }
  }
  return frontier;
}

bool try_buy_and_place(PlacementState& state, const std::vector<int>& group,
                       GroupConfigPolicy policy, int* out_pid) {
  const PriceCatalog& cat = *state.problem().catalog;
  if (policy == GroupConfigPolicy::MostExpensiveOnly) {
    const int pid = state.buy(cat.most_expensive());
    if (state.try_place(group, pid)) {
      *out_pid = pid;
      return true;
    }
    state.sell(pid);
    return false;
  }
  // Cheapest-first config scan, batched: one journal baseline judges every
  // catalog configuration at once, and only the winner's processor is
  // actually bought (the scalar loop paid a full probe per configuration and
  // burned a processor id per rejection).
  const auto& configs = cat.by_cost();
  std::vector<unsigned char> verdicts;
  state.can_place_on_new_batch(group, configs, verdicts);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (!verdicts[c]) continue;
    const int pid = state.buy(configs[c]);
    if (state.try_place(group, pid)) {
      *out_pid = pid;
      return true;
    }
    state.sell(pid);
  }
  return false;
}

} // namespace

std::optional<int> place_with_grouping(PlacementState& state, int seed,
                                       GroupConfigPolicy policy,
                                       std::string* why) {
  std::vector<int> group = {seed};
  for (;;) {
    int pid = -1;
    if (try_buy_and_place(state, group, policy, &pid)) {
      return pid;
    }
    // Grow the group along the most demanding communication edge
    // (paper: "chosen so that it has the most demanding communication
    // requirements with op, in an attempt to reduce communication overhead").
    const auto frontier = group_frontier(state, group);
    if (frontier.empty()) {
      if (why) {
        *why = "operator group around " + std::to_string(seed) +
               " (size " + std::to_string(group.size()) +
               ") fits on no purchasable processor";
      }
      return std::nullopt;
    }
    const auto grow = *std::max_element(
        frontier.begin(), frontier.end(), [](const auto& a, const auto& b) {
          if (a.second != b.second) return a.second < b.second;
          return a.first > b.first;  // tie: smaller id wins
        });
    INSP_DEBUG << "grouping: adding op " << grow.first << " (edge "
               << grow.second << " MB/s) to group of " << group.size();
    group.push_back(grow.first);
  }
}

std::vector<int> ops_by_work_desc(const OperatorTree& tree) {
  std::vector<int> order(static_cast<std::size_t>(tree.num_operators()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const MegaOps wa = tree.op(a).work, wb = tree.op(b).work;
    if (wa != wb) return wa > wb;
    return a < b;
  });
  return order;
}

} // namespace insp
