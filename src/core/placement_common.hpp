// Shared machinery for the placement heuristics: the "grouping technique"
// of the paper (§4.1) generalized to iterate until the group fits, plus
// common orderings.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/placement_state.hpp"

namespace insp {

/// Which configurations a group placement may purchase.
enum class GroupConfigPolicy {
  CheapestFirst,      ///< Random: "cheapest possible processor"
  MostExpensiveOnly,  ///< greedy family: "most expensive processor"
};

/// Places `seed` onto a freshly purchased processor, growing a group when
/// the seed cannot be placed alone: the neighbor (child or parent) connected
/// by the most demanding communication edge is merged in and the placement
/// retried — the paper's pairwise grouping, iterated transitively.  Assigned
/// group members are pulled out of their processors (which are sold when
/// emptied).  Returns the processor id, or nullopt with `why` filled.
std::optional<int> place_with_grouping(PlacementState& state, int seed,
                                       GroupConfigPolicy policy,
                                       std::string* why);

/// Operator ids sorted by non-increasing w_i (ties: id ascending) —
/// the processing order of Comp-Greedy and of several fill phases.
std::vector<int> ops_by_work_desc(const OperatorTree& tree);

} // namespace insp
