// The six operator-placement heuristics of the paper (§4.1).  Each consumes
// a fresh PlacementState, purchases processors and assigns every operator,
// returning an unsuccessful PlacementOutcome (with a reason) when it cannot
// — which the paper counts as a heuristic failure for that instance.
//
// All heuristics are deterministic given the Rng state; only Random actually
// consumes randomness.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/placement_state.hpp"
#include "util/rng.hpp"

namespace insp {

struct PlacementOutcome {
  bool success = false;
  std::string failure_reason;
};

/// Random: picks unassigned operators in random order and buys the cheapest
/// processor able to host each, falling back to the grouping technique.
PlacementOutcome place_random(PlacementState& state, Rng& rng);

/// Comp-Greedy: operators by non-increasing w; buys the most expensive
/// processor, seats the most demanding operator (grouping on failure), then
/// packs further operators in w order while they fit.
PlacementOutcome place_comp_greedy(PlacementState& state, Rng& rng);

/// Comm-Greedy: tree edges by non-increasing volume; co-locates the two
/// endpoint operators, merging processors (and selling one) when both ends
/// are already placed.
PlacementOutcome place_comm_greedy(PlacementState& state, Rng& rng);

/// Subtree-Bottom-Up: one most-expensive processor per al-operator, then
/// parents join a child's processor bottom-up; sibling processors are
/// coalesced (and sold) opportunistically.
PlacementOutcome place_subtree_bottom_up(PlacementState& state, Rng& rng);

/// Object-Grouping: al-operators by total popularity of the objects they
/// need; each seed pulls in al-operators sharing its objects, then non-al
/// operators while they fit.
PlacementOutcome place_object_grouping(PlacementState& state, Rng& rng);

/// Object-Availability: object types by increasing server availability
/// av_k; one most-expensive processor per type packs the al-operators
/// needing it; the rest is placed Comp-Greedy style.
PlacementOutcome place_object_availability(PlacementState& state, Rng& rng);

using PlacementFn = std::function<PlacementOutcome(PlacementState&, Rng&)>;

} // namespace insp
