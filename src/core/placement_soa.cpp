#include "core/placement_soa.hpp"

#include "util/simd_kernels.hpp"

namespace insp {

void soa_probe_candidates(const PlacementSoA& soa, const BatchFootprint& fp,
                          const int* pids, std::size_t num,
                          const double* dl_add, const double* link_base,
                          const double* link_pre, std::size_t stride,
                          const unsigned char* skip, unsigned char* verdicts) {
  simdk::ProbeBatchArgs a;
  a.speed_cap = soa.speed_cap.data();
  a.bw_cap = soa.bw_cap.data();
  a.work = soa.work.data();
  a.nic = soa.nic.data();
  a.work0 = soa.work0.data();
  a.nic0 = soa.nic0.data();
  a.vol_to = soa.vol_to.data();
  a.pids = pids;
  a.num = num;
  a.dl_add = dl_add;
  a.link_base = link_base;
  a.link_pre = link_pre;
  a.stride = stride;
  a.ext_pid = fp.ext_pid.data();
  a.ext_vol = fp.ext_vol.data();
  a.ext = fp.ext_pid.size();
  a.skip = skip;
  a.rho = fp.rho;
  a.sum_w = fp.sum_w;
  a.ext_total = fp.ext_total;
  a.link_cap = fp.link_cap;
  a.relaxed = fp.relaxed;
  a.others_failed = fp.others_failed;
  a.others_failed_pid = fp.others_failed_pid;
  a.base_links_ok = fp.base_links_ok;
  a.verdicts = verdicts;
  simdk::active_kernels()->probe_candidates(a);
}

void soa_probe_configs(const BatchFootprint& fp, const double* speed_caps,
                       const double* bw_caps, std::size_t num,
                       unsigned char* verdicts) {
  // A fresh processor is empty: every group type is downloaded, every
  // external edge crosses, and every candidate-side link starts at zero.
  // The candidate-independent parts collapse to one flag (folded scalar —
  // O(ext), not O(num)); only the per-config capacity sweep dispatches.
  double dl_all = 0.0;
  for (double r : fp.gtype_rate) dl_all += r;
  bool shared_ok = fp.others_failed == 0 && fp.base_links_ok;
  for (std::size_t j = 0; shared_ok && j < fp.ext_vol.size(); ++j) {
    // Link pre-transaction value is zero too, so relaxed == strict here.
    shared_ok = fits_within(fp.ext_vol[j], fp.link_cap);
  }
  simdk::ProbeConfigsArgs a;
  a.speed_caps = speed_caps;
  a.bw_caps = bw_caps;
  a.num = num;
  a.cpu = fp.rho * fp.sum_w;
  a.nic = dl_all + fp.ext_total;
  a.shared_ok = shared_ok;
  a.verdicts = verdicts;
  simdk::active_kernels()->probe_configs(a);
}

} // namespace insp
