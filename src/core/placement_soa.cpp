#include "core/placement_soa.hpp"

namespace insp {

void soa_probe_candidates(const PlacementSoA& soa, const BatchFootprint& fp,
                          const int* pids, std::size_t num,
                          const double* dl_add, const double* link_base,
                          const double* link_pre, const unsigned char* skip,
                          unsigned char* verdicts) {
  const std::size_t ext = fp.ext_pid.size();
  const bool relaxed = fp.relaxed;
  for (std::size_t i = 0; i < num; ++i) {
    if (skip != nullptr && skip[i] != 0) continue;
    const int pid = pids[i];

    // Every touched processor other than the candidate must pass; the
    // candidate replaces its own folded entry with the richer check below.
    bool ok = fp.others_failed == 0 ||
              (fp.others_failed == 1 && fp.others_failed_pid == pid);
    ok = ok && fp.base_links_ok;

    // CPU: the whole group lands on the candidate.
    const double cpu = fp.rho * (soa.work[pid] + fp.sum_w);
    ok = ok && (fits_within(cpu, soa.speed_cap[pid]) ||
                (relaxed && fits_within(cpu, fp.rho * soa.work0[pid])));

    // NIC: added downloads plus the external edge volume that actually
    // crosses (edges toward the candidate itself become internal).
    const double nic =
        soa.nic[pid] + dl_add[i] + (fp.ext_total - soa.vol_to[pid]);
    ok = ok && (fits_within(nic, soa.bw_cap[pid]) ||
                (relaxed && fits_within(nic, soa.nic0[pid])));

    // Pairwise links toward each external neighbor processor.
    for (std::size_t j = 0; ok && j < ext; ++j) {
      if (fp.ext_pid[j] == pid) continue;
      const double used = link_base[i * ext + j] + fp.ext_vol[j];
      ok = fits_within(used, fp.link_cap) ||
           (relaxed && fits_within(used, link_pre[i * ext + j]));
    }

    verdicts[i] = ok ? 1 : 0;
  }
}

void soa_probe_configs(const BatchFootprint& fp, const double* speed_caps,
                       const double* bw_caps, std::size_t num,
                       unsigned char* verdicts) {
  // A fresh processor is empty: every group type is downloaded, every
  // external edge crosses, and every candidate-side link starts at zero.
  // The candidate-independent parts collapse to one flag.
  double dl_all = 0.0;
  for (double r : fp.gtype_rate) dl_all += r;
  bool shared_ok = fp.others_failed == 0 && fp.base_links_ok;
  for (std::size_t j = 0; shared_ok && j < fp.ext_vol.size(); ++j) {
    // Link pre-transaction value is zero too, so relaxed == strict here.
    shared_ok = fits_within(fp.ext_vol[j], fp.link_cap);
  }
  const double cpu = fp.rho * fp.sum_w;
  const double nic = dl_all + fp.ext_total;
  for (std::size_t i = 0; i < num; ++i) {
    verdicts[i] = (shared_ok && fits_within(cpu, speed_caps[i]) &&
                   fits_within(nic, bw_caps[i]))
                      ? 1
                      : 0;
  }
}

} // namespace insp
