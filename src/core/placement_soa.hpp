// Structure-of-arrays core for batched feasibility probes (docs/DESIGN.md
// §10).  The transactional PlacementState keeps its accounting in per-object
// AoS records (ProcState, a link map); that layout is ideal for one
// journaled move but makes the heuristics' inner loop — "which of these
// candidate processors can host this operator group?" — a chain of
// pointer-chasing probes, each paying the full journal/rollback toll.
//
// The batch protocol instead pays the journal ONCE per group:
//
//   1. the group is unassigned under a single kFull transaction (the
//      "journal baseline"), so the state temporarily reflects the world
//      without the group;
//   2. the per-processor capacities and loads are gathered into the flat
//      parallel vectors below, and the group's pid-independent footprint
//      (total work, distinct object types, external edge volume per
//      neighbor processor) is extracted;
//   3. every candidate is evaluated by `soa_probe_candidates` /
//      `soa_probe_configs` — a branch-light flat loop over parallel arrays
//      with no journaling, no data-structure mutation, and no per-candidate
//      allocation;
//   4. the baseline is rolled back bit-exactly.
//
// The kernels here are deliberately ignorant of PlacementState: they see
// only flat arrays, so they stay trivially vectorizable and unit-testable.
// PlacementState::can_place_batch / can_place_on_new_batch own the protocol
// (baseline, footprint extraction, slow-path for candidates that host group
// members) and guarantee verdicts element-wise identical to the scalar
// can_place / can_place_relaxed probes.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace insp {

/// Flat per-processor capacity/load mirror, indexed by pid.  Entries for
/// dead processors are stale/unspecified — every reader indexes it with a
/// live pid.  Rebuilt from the AoS state before each batch (O(live
/// processors)); the scalar probe paths never maintain it.
struct PlacementSoA {
  std::vector<double> speed_cap;  ///< Mops/s of the pid's configuration
  std::vector<double> bw_cap;     ///< NIC capacity (MB/s)
  std::vector<double> work;       ///< baseline Σ w_i (rho applied at check)
  std::vector<double> nic;        ///< baseline download + comm (MB/s)
  /// Pre-transaction baselines for the relaxed verdict: equal to work/nic
  /// except on processors the journal baseline touched.
  std::vector<double> work0;
  std::vector<double> nic0;
  /// Dense scatter of the group's external edge volume into each processor
  /// (zero outside the footprint's ext set).
  std::vector<double> vol_to;

  void resize(std::size_t n) {
    speed_cap.resize(n);
    bw_cap.resize(n);
    work.resize(n);
    nic.resize(n);
    work0.resize(n);
    nic0.resize(n);
    vol_to.resize(n);
  }
};

/// Pid-independent description of one probe group, computed against the
/// journal baseline (group unassigned).  Everything a candidate's verdict
/// needs that does not depend on which candidate it is.
struct BatchFootprint {
  double rho = 1.0;
  double sum_w = 0.0;      ///< Σ w over the (deduplicated) group
  double ext_total = 0.0;  ///< Σ edge volume toward external neighbors
  double link_cap = 0.0;   ///< uniform processor-pair link capacity
  bool relaxed = false;
  /// Some external child of the group has more than one *assigned* consumer
  /// (shared subexpression, docs/DESIGN.md §13): it may already ship to an
  /// existing candidate, which this candidate-independent footprint cannot
  /// represent.  PlacementState::batch_probe resolves every lane through
  /// the sequential probe when set; always false on tree-shaped inputs.
  /// The fresh-processor path (soa_probe_configs) stays exact regardless —
  /// a new processor hosts no consumers.
  bool has_shared_child = false;

  /// Distinct processors hosting external neighbors of the group, with the
  /// total edge volume the placement would realize toward each.
  std::vector<int> ext_pid;
  std::vector<double> ext_vol;

  /// Distinct object types the group downloads (first-need order) + rates.
  std::vector<int> gtypes;
  std::vector<double> gtype_rate;

  /// Folded verdict over every touched processor other than the candidate
  /// (sources drained by the baseline, external neighbor processors with
  /// their edge volume added).  These checks are candidate-independent
  /// except that the candidate itself is judged by its own richer check —
  /// hence the count/pid pair: 0 failures passes every candidate, exactly
  /// one failure passes only the candidate that IS the failing processor,
  /// two or more failures fail every candidate.
  int others_failed = 0;
  int others_failed_pid = -1;

  /// Strict mode: every link the journal baseline touched still fits at its
  /// baseline value (re-added volume toward the candidate is re-checked per
  /// candidate; volumes are non-negative, so the conjunction is exact).
  /// Relaxed mode: vacuously true — the baseline only removes volume, so no
  /// touched link can exceed its pre-transaction value.
  bool base_links_ok = true;
};

/// Evaluates `num` live candidate processors in one flat pass, through the
/// runtime-dispatched SIMD kernels (util/simd_kernels.hpp: scalar/SSE2/AVX2,
/// element-wise identical verdicts on every path).
///   dl_add[i]             — download rate candidate i would gain (the
///                           caller resolves object-type presence);
///   link_base[j*stride+i] — baseline usage of link (pids[i], ext_pid[j]);
///                           COLUMN-major so a vector block of candidates
///                           loads contiguously (stride is normally num);
///   link_pre [j*stride+i] — pre-transaction usage of the same link (relaxed
///                           verdicts only; may be null in strict mode);
///   skip[i]               — non-zero entries are left untouched (the caller
///                           resolves them through the scalar probe; may be
///                           null).
/// verdicts[i] is set to 0/1.
void soa_probe_candidates(const PlacementSoA& soa, const BatchFootprint& fp,
                          const int* pids, std::size_t num,
                          const double* dl_add, const double* link_base,
                          const double* link_pre, std::size_t stride,
                          const unsigned char* skip, unsigned char* verdicts);

/// Hypothetical-purchase variant: candidate i is a freshly bought, empty
/// processor with capacities (speed_caps[i], bw_caps[i]).  No processor id
/// is consumed; all candidate-side base loads and link usages are zero, so
/// the per-candidate check degenerates to two comparisons.
void soa_probe_configs(const BatchFootprint& fp, const double* speed_caps,
                       const double* bw_caps, std::size_t num,
                       unsigned char* verdicts);

} // namespace insp
