#include "core/placement_state.hpp"

#include <algorithm>
#include <cassert>

namespace insp {

namespace {

/// Insert `v` into sorted `xs` (no duplicates expected).
void sorted_insert(std::vector<int>& xs, int v) {
  xs.insert(std::lower_bound(xs.begin(), xs.end(), v), v);
}

/// Erase `v` from sorted `xs`; it must be present.
void sorted_erase(std::vector<int>& xs, int v) {
  auto it = std::lower_bound(xs.begin(), xs.end(), v);
  assert(it != xs.end() && *it == v);
  xs.erase(it);
}

} // namespace

PlacementState::PlacementState(Problem problem)
    : problem_(problem),
      op_to_proc_(static_cast<std::size_t>(problem.tree->num_operators()),
                  kNoNode),
      pp_links_(problem.platform->link_proc_proc()) {
  assert(problem.valid());
  unassigned_ids_.resize(op_to_proc_.size());
  for (std::size_t i = 0; i < unassigned_ids_.size(); ++i) {
    unassigned_ids_[i] = static_cast<int>(i);
  }
}

int PlacementState::buy(ProcessorConfig config) {
  assert(txn_mode_ == TxnMode::kNone);
  const int pid = static_cast<int>(procs_.size());
  ProcState p;
  p.cfg = config;
  p.live = true;
  procs_.push_back(std::move(p));
  live_ids_.push_back(pid);  // pids grow monotonically: stays sorted
  return pid;
}

void PlacementState::sell(int pid) {
  assert(txn_mode_ == TxnMode::kNone);
  auto& p = proc(pid);
  assert(p.live && p.ops.empty());
  p.live = false;
  sorted_erase(live_ids_, pid);
}

bool PlacementState::is_live(int pid) const {
  return pid >= 0 && static_cast<std::size_t>(pid) < procs_.size() &&
         proc(pid).live;
}

const ProcessorConfig& PlacementState::config(int pid) const {
  assert(is_live(pid));
  return proc(pid).cfg;
}

int PlacementState::proc_of(int op) const {
  return op_to_proc_[static_cast<std::size_t>(op)];
}

const std::vector<int>& PlacementState::ops_on(int pid) const {
  assert(is_live(pid));
  return proc(pid).ops;
}

std::vector<std::pair<int, MBps>> PlacementState::neighbors(int op) const {
  std::vector<std::pair<int, MBps>> out;
  for_each_neighbor(op, [&](int nb, MBps volume) {
    out.emplace_back(nb, volume);
  });
  return out;
}

// --- transactions ----------------------------------------------------------

void PlacementState::begin_txn(TxnMode mode) {
  assert(txn_mode_ == TxnMode::kNone);
  assert(mode != TxnMode::kNone);
  txn_mode_ = mode;
  ++txn_epoch_;
  snap_count_ = 0;
  touched_procs_.clear();
  moved_ops_.clear();
  pp_links_.begin_txn();
}

void PlacementState::touch_proc(int pid) {
  ProcState& p = proc(pid);
  if (p.touch_epoch == txn_epoch_) return;
  p.touch_epoch = txn_epoch_;
  touched_procs_.push_back(pid);
  if (txn_mode_ != TxnMode::kFull) return;
  if (snap_count_ == snaps_.size()) snaps_.emplace_back();
  ProcSnapshot& s = snaps_[snap_count_++];
  s.pid = pid;
  s.work = p.work;
  s.download = p.download;
  s.comm = p.comm;
  s.ops.assign(p.ops.begin(), p.ops.end());
  s.type_count.assign(p.type_count.begin(), p.type_count.end());
}

void PlacementState::commit_txn() {
  assert(txn_mode_ != TxnMode::kNone);
  txn_mode_ = TxnMode::kNone;
  pp_links_.commit_txn();
}

void PlacementState::rollback_txn() {
  assert(txn_mode_ == TxnMode::kFull);
  txn_mode_ = TxnMode::kNone;
  // Touched processors: restore the value snapshots verbatim.
  for (std::size_t i = snap_count_; i-- > 0;) {
    const ProcSnapshot& s = snaps_[i];
    ProcState& p = proc(s.pid);
    p.work = s.work;
    p.download = s.download;
    p.comm = s.comm;
    p.ops.assign(s.ops.begin(), s.ops.end());
    p.type_count.assign(s.type_count.begin(), s.type_count.end());
  }
  // Moved operators: reverse replay restores op_to_proc_ and the sorted
  // unassigned list (ints: exact).
  for (auto it = moved_ops_.rbegin(); it != moved_ops_.rend(); ++it) {
    const auto [op, prev] = *it;
    const int cur = op_to_proc_[static_cast<std::size_t>(op)];
    if (cur == kNoNode && prev != kNoNode) {
      sorted_erase(unassigned_ids_, op);
    } else if (cur != kNoNode && prev == kNoNode) {
      sorted_insert(unassigned_ids_, op);
    }
    op_to_proc_[static_cast<std::size_t>(op)] = prev;
  }
  pp_links_.rollback_txn();
}

bool PlacementState::touched_feasible() const {
  const PriceCatalog& cat = *problem_.catalog;
  for (int pid : touched_procs_) {
    const ProcState& p = proc(pid);
    if (!p.live) continue;
    if (!fits_within(problem_.rho * p.work, cat.speed(p.cfg))) return false;
    if (!fits_within(p.download + p.comm, cat.bandwidth(p.cfg))) return false;
  }
  return pp_links_.touched_within();
}

bool PlacementState::touched_no_worse() const {
  assert(txn_mode_ == TxnMode::kFull);
  const PriceCatalog& cat = *problem_.catalog;
  // In kFull mode touch_proc snapshots every touched processor as it
  // records it, so touched_procs_[i] and snaps_[i] describe the same
  // processor: the snapshot is the pre-transaction baseline.
  for (std::size_t i = 0; i < touched_procs_.size(); ++i) {
    const ProcState& p = proc(touched_procs_[i]);
    if (!p.live) continue;
    const ProcSnapshot& s = snaps_[i];
    assert(s.pid == touched_procs_[i]);
    const MegaOps cpu_now = problem_.rho * p.work;
    if (!fits_within(cpu_now, cat.speed(p.cfg)) &&
        !fits_within(cpu_now, problem_.rho * s.work)) {
      return false;
    }
    const MBps nic_now = p.download + p.comm;
    if (!fits_within(nic_now, cat.bandwidth(p.cfg)) &&
        !fits_within(nic_now, s.download + s.comm)) {
      return false;
    }
  }
  return pp_links_.touched_no_worse();
}

// --- assignment -------------------------------------------------------------

// Comm charging under multicast dedup (docs/DESIGN.md §13): a producer
// ships its result ONCE per distinct destination processor, at the largest
// out-edge delta into it.  The incremental charge when an edge endpoint
// arrives/leaves is therefore max-over-edges "after" minus "before".  For
// trees every out-degree is 1, before is always 0, and `x - 0.0 == x`
// bit-for-bit — the charges reduce exactly to the historical per-edge ones.

void PlacementState::assign_op(int op, int pid) {
  assert(proc_of(op) == kNoNode);
  if (txn_mode_ != TxnMode::kNone) {
    touch_proc(pid);
    if (txn_mode_ == TxnMode::kFull) moved_ops_.emplace_back(op, kNoNode);
  }
  const OperatorTree& tree = *problem_.tree;
  auto& p = proc(pid);
  op_to_proc_[static_cast<std::size_t>(op)] = pid;
  sorted_erase(unassigned_ids_, op);
  p.ops.push_back(op);
  p.work += tree.op(op).work;
  tree.visit_object_types(op, [&](int t) {
    auto it = std::lower_bound(
        p.type_count.begin(), p.type_count.end(), t,
        [](const std::pair<int, int>& e, int type) { return e.first < type; });
    if (it != p.type_count.end() && it->first == t) {
      ++it->second;
    } else {
      p.type_count.insert(it, {t, 1});
      p.download += tree.catalog().type(t).rate();
    }
  });
  const auto charge = [&](int q, MBps volume) {
    if (txn_mode_ != TxnMode::kNone) touch_proc(q);
    p.comm += volume;
    proc(q).comm += volume;
    pp_links_.add(pid, q, volume);
  };
  // Producer side: op starts shipping its output — once per distinct
  // destination processor, at the max delta into it (first-occurrence scan;
  // out-degrees are tiny, so O(deg^2) beats any allocation).
  const auto& out = tree.op(op).out;
  for (std::size_t a = 0; a < out.size(); ++a) {
    const int q = proc_of(out[a].dst);
    if (q == kNoNode || q == pid) continue;
    bool first = true;
    for (std::size_t b = 0; b < a; ++b) {
      if (proc_of(out[b].dst) == q) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    MegaBytes mx = out[a].delta;
    for (std::size_t b = a + 1; b < out.size(); ++b) {
      if (proc_of(out[b].dst) == q) mx = std::max(mx, out[b].delta);
    }
    charge(q, problem_.rho * mx);
  }
  // Consumer side: each distinct assigned child now (also) ships to pid;
  // its charge toward pid moves from the pre-assignment max to the new max.
  const auto& ch = tree.op(op).children;
  for (std::size_t a = 0; a < ch.size(); ++a) {
    const int c = ch[a];
    bool first = true;
    for (std::size_t b = 0; b < a; ++b) {
      if (ch[b] == c) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    const int q = proc_of(c);
    if (q == kNoNode || q == pid) continue;
    MegaBytes before = 0.0, after = 0.0;
    for (const OutEdge& e : tree.op(c).out) {
      if (proc_of(e.dst) != pid) continue;
      after = std::max(after, e.delta);
      if (e.dst != op) before = std::max(before, e.delta);
    }
    charge(q, problem_.rho * after - problem_.rho * before);
  }
}

void PlacementState::unassign_op(int op) {
  const int pid = proc_of(op);
  assert(pid != kNoNode);
  if (txn_mode_ != TxnMode::kNone) {
    touch_proc(pid);
    if (txn_mode_ == TxnMode::kFull) moved_ops_.emplace_back(op, pid);
  }
  const OperatorTree& tree = *problem_.tree;
  auto& p = proc(pid);
  const auto discharge = [&](int q, MBps volume) {
    if (txn_mode_ != TxnMode::kNone) touch_proc(q);
    p.comm -= volume;
    proc(q).comm -= volume;
    pp_links_.remove(pid, q, volume);
  };
  // Producer side: op stops shipping — remove the full deduped charge.
  const auto& out = tree.op(op).out;
  for (std::size_t a = 0; a < out.size(); ++a) {
    const int q = proc_of(out[a].dst);
    if (q == kNoNode || q == pid) continue;
    bool first = true;
    for (std::size_t b = 0; b < a; ++b) {
      if (proc_of(out[b].dst) == q) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    MegaBytes mx = out[a].delta;
    for (std::size_t b = a + 1; b < out.size(); ++b) {
      if (proc_of(out[b].dst) == q) mx = std::max(mx, out[b].delta);
    }
    discharge(q, problem_.rho * mx);
  }
  // Consumer side: each distinct assigned child drops from the current max
  // toward pid to the max without op (op is still in op_to_proc_ here).
  const auto& ch = tree.op(op).children;
  for (std::size_t a = 0; a < ch.size(); ++a) {
    const int c = ch[a];
    bool first = true;
    for (std::size_t b = 0; b < a; ++b) {
      if (ch[b] == c) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    const int q = proc_of(c);
    if (q == kNoNode || q == pid) continue;
    MegaBytes cur = 0.0, without = 0.0;
    for (const OutEdge& e : tree.op(c).out) {
      if (proc_of(e.dst) != pid) continue;
      cur = std::max(cur, e.delta);
      if (e.dst != op) without = std::max(without, e.delta);
    }
    discharge(q, problem_.rho * cur - problem_.rho * without);
  }
  problem_.tree->visit_object_types(op, [&](int t) {
    auto it = std::lower_bound(
        p.type_count.begin(), p.type_count.end(), t,
        [](const std::pair<int, int>& e, int type) { return e.first < type; });
    assert(it != p.type_count.end() && it->first == t);
    if (--it->second == 0) {
      p.download -= problem_.tree->catalog().type(t).rate();
      p.type_count.erase(it);
    }
  });
  p.work -= problem_.tree->op(op).work;
  auto pos = std::find(p.ops.begin(), p.ops.end(), op);
  assert(pos != p.ops.end());
  *pos = p.ops.back();
  p.ops.pop_back();
  op_to_proc_[static_cast<std::size_t>(op)] = kNoNode;
  sorted_insert(unassigned_ids_, op);
}

bool PlacementState::feasible() const {
  const PriceCatalog& cat = *problem_.catalog;
  for (const auto& p : procs_) {
    if (!p.live) continue;
    if (!fits_within(problem_.rho * p.work, cat.speed(p.cfg))) return false;
    if (!fits_within(p.download + p.comm, cat.bandwidth(p.cfg))) return false;
  }
  return pp_links_.all_within();
}

bool PlacementState::probe(const int* ops, std::size_t n, int pid,
                           bool commit, bool relaxed) {
  // `ops` routinely aliases ops_on() of a processor the move empties, and
  // assign/unassign reshuffle those vectors — copy into reusable scratch.
  scratch_ops_.assign(ops, ops + n);
  sell_candidates_.clear();
  begin_txn(TxnMode::kFull);
  for (int op : scratch_ops_) {
    const int src = proc_of(op);
    if (src == pid) continue;
    if (src != kNoNode) {
      unassign_op(op);
      sell_candidates_.push_back(src);
    }
    assign_op(op, pid);
  }
  if (!(relaxed ? touched_no_worse() : touched_feasible())) {
    rollback_txn();
    return false;
  }
  if (!commit) {
    rollback_txn();
    return true;
  }
  commit_txn();
  // Sell the source processors the move emptied (Random: "this last
  // processor is sold back"; SBU: "possibly returning some processors").
  // Only sources are sold — processors that were already empty (e.g. just
  // bought by the caller) are none of this move's business.
  for (int src : sell_candidates_) {
    const auto& p = proc(src);
    if (p.live && p.ops.empty()) sell(src);
  }
  return true;
}

bool PlacementState::try_place(const std::vector<int>& ops, int pid) {
  assert(is_live(pid));
  return probe(ops.data(), ops.size(), pid, /*commit=*/true,
               /*relaxed=*/false);
}

bool PlacementState::try_place(int op, int pid) {
  assert(is_live(pid));
  return probe(&op, 1, pid, /*commit=*/true, /*relaxed=*/false);
}

bool PlacementState::can_place(const std::vector<int>& ops, int pid) {
  return probe(ops.data(), ops.size(), pid, /*commit=*/false,
               /*relaxed=*/false);
}

bool PlacementState::can_place(int op, int pid) {
  return probe(&op, 1, pid, /*commit=*/false, /*relaxed=*/false);
}

bool PlacementState::try_place_relaxed(const std::vector<int>& ops, int pid) {
  assert(is_live(pid));
  return probe(ops.data(), ops.size(), pid, /*commit=*/true,
               /*relaxed=*/true);
}

bool PlacementState::try_place_relaxed(int op, int pid) {
  assert(is_live(pid));
  return probe(&op, 1, pid, /*commit=*/true, /*relaxed=*/true);
}

bool PlacementState::can_place_relaxed(const std::vector<int>& ops, int pid) {
  return probe(ops.data(), ops.size(), pid, /*commit=*/false,
               /*relaxed=*/true);
}

bool PlacementState::can_place_relaxed(int op, int pid) {
  return probe(&op, 1, pid, /*commit=*/false, /*relaxed=*/true);
}

// --- batched probes (docs/DESIGN.md §10) ------------------------------------

bool PlacementState::batch_footprint(const int* ops, std::size_t n,
                                     bool relaxed) {
  assert(txn_mode_ == TxnMode::kNone);
  const OperatorTree& tree = *problem_.tree;
  const PriceCatalog& cat = *problem_.catalog;

  // Deduplicate preserving order: the sequential probe skips an operator's
  // second occurrence (it is already on the target by then).
  batch_group_.clear();
  batch_group_pos_.assign(op_to_proc_.size(), 0);
  for (std::size_t gi = 0; gi < n; ++gi) {
    const int op = ops[gi];
    int& pos = batch_group_pos_[static_cast<std::size_t>(op)];
    if (pos == 0) {
      batch_group_.push_back(op);
      pos = static_cast<int>(batch_group_.size());
    }
  }
  proc_is_source_.assign(procs_.size(), 0);
  for (int op : batch_group_) {
    const int src = proc_of(op);
    if (src != kNoNode) proc_is_source_[static_cast<std::size_t>(src)] = 1;
  }
  if (batch_group_.empty()) return false;

  // Transient sources: when group member b (assigned at src_b) has a group
  // neighbor that moves BEFORE it, the sequential probe realizes their edge
  // toward src_b for a moment — touching link (candidate, src_b) with net
  // zero volume but still validating it at its baseline value.  Recorded
  // here (before the baseline erases proc_of) and folded in below as
  // zero-volume ext entries so the strict verdict checks the same links.
  batch_transient_.clear();
  for (std::size_t ib = 0; ib < batch_group_.size(); ++ib) {
    const int b = batch_group_[ib];
    const int src = proc_of(b);
    if (src == kNoNode) continue;
    bool has_earlier = false;
    for_each_neighbor(b, [&](int a, MBps /*volume*/) {
      const int pa = batch_group_pos_[static_cast<std::size_t>(a)];
      if (pa != 0 && static_cast<std::size_t>(pa - 1) < ib) has_earlier = true;
    });
    if (has_earlier) batch_transient_.push_back(src);
  }

  // Journal baseline: the world without the group.
  begin_txn(TxnMode::kFull);
  for (int op : batch_group_) {
    if (proc_of(op) != kNoNode) unassign_op(op);
  }

  fp_.rho = problem_.rho;
  fp_.relaxed = relaxed;
  fp_.link_cap = pp_links_.capacity();
  fp_.sum_w = 0.0;
  fp_.has_shared_child = false;
  fp_.gtypes.clear();
  fp_.gtype_rate.clear();
  fp_.ext_pid.clear();
  fp_.ext_vol.clear();
  batch_ext_slot_.assign(procs_.size(), -1);
  const auto slot_add = [&](int q, MBps volume) {
    int slot = batch_ext_slot_[static_cast<std::size_t>(q)];
    if (slot < 0) {
      slot = static_cast<int>(fp_.ext_pid.size());
      batch_ext_slot_[static_cast<std::size_t>(q)] = slot;
      fp_.ext_pid.push_back(q);
      fp_.ext_vol.push_back(0.0);
    }
    fp_.ext_vol[static_cast<std::size_t>(slot)] += volume;
  };
  // Replays the sequential probe's member-by-member charging (docs/DESIGN.md
  // §10, §13) against a hypothetical candidate hosting the whole group, so
  // the accumulation order — and thus every FP sum — matches the sequential
  // path exactly on trees.
  for (std::size_t ib = 0; ib < batch_group_.size(); ++ib) {
    const int m = batch_group_[ib];
    fp_.sum_w += tree.op(m).work;
    tree.visit_object_types(m, [&](int t) {
      if (std::find(fp_.gtypes.begin(), fp_.gtypes.end(), t) ==
          fp_.gtypes.end()) {
        fp_.gtypes.push_back(t);
        fp_.gtype_rate.push_back(tree.catalog().type(t).rate());
      }
    });
    // Producer side: m ships once per distinct external destination
    // processor, at the max out-edge delta into it.  Out-edges to group
    // members are co-located on the candidate: free, like the sequential
    // assign (their proc is kNoNode under the open baseline anyway).
    const auto& out = tree.op(m).out;
    for (std::size_t a = 0; a < out.size(); ++a) {
      if (batch_group_pos_[static_cast<std::size_t>(out[a].dst)] != 0) {
        continue;
      }
      const int q = proc_of(out[a].dst);
      if (q == kNoNode) continue;
      bool first = true;
      for (std::size_t b = 0; b < a; ++b) {
        const int dst = out[b].dst;
        if (batch_group_pos_[static_cast<std::size_t>(dst)] == 0 &&
            proc_of(dst) == q) {
          first = false;
          break;
        }
      }
      if (!first) continue;
      MegaBytes mx = out[a].delta;
      for (std::size_t b = a + 1; b < out.size(); ++b) {
        const int dst = out[b].dst;
        if (batch_group_pos_[static_cast<std::size_t>(dst)] == 0 &&
            proc_of(dst) == q) {
          mx = std::max(mx, out[b].delta);
        }
      }
      slot_add(q, problem_.rho * mx);
    }
    // Consumer side: each distinct external assigned child ships to the
    // candidate; its charge steps from the max over *earlier* group
    // consumers to the max including m — summed over members this telescopes
    // to the deduped max, in the sequential accumulation order.
    const auto& ch = tree.op(m).children;
    for (std::size_t a = 0; a < ch.size(); ++a) {
      const int c = ch[a];
      if (batch_group_pos_[static_cast<std::size_t>(c)] != 0) continue;
      bool first = true;
      for (std::size_t b = 0; b < a; ++b) {
        if (ch[b] == c) {
          first = false;
          break;
        }
      }
      if (!first) continue;
      const int q = proc_of(c);
      if (q == kNoNode) continue;
      MegaBytes before = 0.0, after = 0.0;
      for (const OutEdge& e : tree.op(c).out) {
        const int pos = batch_group_pos_[static_cast<std::size_t>(e.dst)];
        if (pos == 0) {
          // A shared external child with another *assigned* consumer may
          // already ship to one of the candidates, which this
          // candidate-independent footprint cannot see — those lanes are
          // resolved through the sequential path (batch_probe).
          if (proc_of(e.dst) != kNoNode) fp_.has_shared_child = true;
          continue;
        }
        if (pos - 1 <= static_cast<int>(ib)) {
          after = std::max(after, e.delta);
          if (pos - 1 < static_cast<int>(ib)) before = std::max(before, e.delta);
        }
      }
      slot_add(q, problem_.rho * after - problem_.rho * before);
    }
  }
  double ext_total = 0.0;
  for (double v : fp_.ext_vol) ext_total += v;
  fp_.ext_total = ext_total;
  for (int s : batch_transient_) {
    if (batch_ext_slot_[static_cast<std::size_t>(s)] < 0) {
      batch_ext_slot_[static_cast<std::size_t>(s)] =
          static_cast<int>(fp_.ext_pid.size());
      fp_.ext_pid.push_back(s);
      fp_.ext_vol.push_back(0.0);
    }
  }

  // Fold the candidate-independent processor checks: drained sources (at
  // their baseline values) and external neighbor processors (baseline plus
  // the edge volume the placement realizes toward them).  The candidate
  // itself is judged by its own richer check in the kernel; the count/pid
  // pair lets it forgive exactly its own folded entry.
  fp_.others_failed = 0;
  fp_.others_failed_pid = -1;
  const auto eval_other = [&](int o, double w0, double d0, double c0) {
    const ProcState& p = proc(o);
    if (!p.live) return;
    const int slot = batch_ext_slot_[static_cast<std::size_t>(o)];
    const double ev = slot >= 0 ? fp_.ext_vol[static_cast<std::size_t>(slot)]
                                : 0.0;
    const double cpu_now = problem_.rho * p.work;
    const double nic_now = p.download + p.comm + ev;
    const bool ok =
        (fits_within(cpu_now, cat.speed(p.cfg)) ||
         (relaxed && fits_within(cpu_now, problem_.rho * w0))) &&
        (fits_within(nic_now, cat.bandwidth(p.cfg)) ||
         (relaxed && fits_within(nic_now, d0 + c0)));
    if (!ok) {
      ++fp_.others_failed;
      fp_.others_failed_pid = o;
    }
  };
  // Baseline-touched processors carry their pre-transaction snapshot in
  // snaps_ (parallel to touched_procs_ in kFull mode); processors only the
  // candidate assignment touches are at their pre-transaction values now.
  for (std::size_t i = 0; i < touched_procs_.size(); ++i) {
    const ProcSnapshot& s = snaps_[i];
    eval_other(touched_procs_[i], s.work, s.download, s.comm);
  }
  for (int q : fp_.ext_pid) {
    const ProcState& p = proc(q);
    if (p.touch_epoch == txn_epoch_) continue;  // folded above
    eval_other(q, p.work, p.download, p.comm);
  }

  // Strict: every link the baseline touched must fit at its baseline value
  // (re-added candidate-side volume is re-checked per candidate; volumes are
  // non-negative and fits_within is monotone, so the conjunction is exact).
  // Relaxed: vacuous — the baseline only removes volume.
  fp_.base_links_ok = relaxed ? true : pp_links_.touched_within();
  return true;
}

void PlacementState::batch_probe(const int* ops, std::size_t n,
                                 const int* pids, std::size_t num,
                                 bool relaxed, unsigned char* verdicts) {
  if (num == 0) return;
  if (!batch_footprint(ops, n, relaxed)) {
    // Empty move: the sequential probe touches nothing and reports true.
    std::fill(verdicts, verdicts + num, 1);
    return;
  }
  bool any_skip = false;
  batch_skip_.assign(num, 0);
  for (std::size_t i = 0; i < num; ++i) {
    assert(is_live(pids[i]));
    // Candidates hosting group members keep partial-move semantics, and a
    // shared external child may already ship to *any* existing candidate —
    // both are invisible to the candidate-independent footprint, so those
    // lanes fall back to the sequential probe.  has_shared_child is always
    // false on trees, keeping the fast path byte-identical there.
    if (proc_is_source_[static_cast<std::size_t>(pids[i])] ||
        fp_.has_shared_child) {
      batch_skip_[i] = 1;
      any_skip = true;
    }
  }

  // Gather the flat SoA mirror while the baseline is open.
  const PriceCatalog& cat = *problem_.catalog;
  soa_.resize(procs_.size());
  for (int pid : live_ids_) {
    const ProcState& p = proc(pid);
    const auto u = static_cast<std::size_t>(pid);
    soa_.speed_cap[u] = cat.speed(p.cfg);
    soa_.bw_cap[u] = cat.bandwidth(p.cfg);
    soa_.work[u] = p.work;
    soa_.nic[u] = p.download + p.comm;
    soa_.work0[u] = p.work;
    soa_.nic0[u] = p.download + p.comm;
    soa_.vol_to[u] = 0.0;
  }
  for (std::size_t i = 0; i < snap_count_; ++i) {
    const ProcSnapshot& s = snaps_[i];
    const auto u = static_cast<std::size_t>(s.pid);
    soa_.work0[u] = s.work;
    soa_.nic0[u] = s.download + s.comm;
  }
  for (std::size_t j = 0; j < fp_.ext_pid.size(); ++j) {
    soa_.vol_to[static_cast<std::size_t>(fp_.ext_pid[j])] = fp_.ext_vol[j];
  }

  // Per-candidate download delta: rates of group types the candidate does
  // not already hold, summed in the group's first-need order (matching the
  // sequential assignment's accumulation order).
  batch_dl_add_.assign(num, 0.0);
  for (std::size_t i = 0; i < num; ++i) {
    if (batch_skip_[i]) continue;
    const auto& tc = proc(pids[i]).type_count;
    double add = 0.0;
    for (std::size_t g = 0; g < fp_.gtypes.size(); ++g) {
      const int t = fp_.gtypes[g];
      const auto it = std::lower_bound(
          tc.begin(), tc.end(), t,
          [](const std::pair<int, int>& e, int type) {
            return e.first < type;
          });
      if (it == tc.end() || it->first != t) add += fp_.gtype_rate[g];
    }
    batch_dl_add_[i] = add;
  }

  // Baseline (and, relaxed, pre-transaction) usage of every candidate<->ext
  // link, column-major [ext][candidate] (stride = num) so the SIMD kernel's
  // candidate blocks load contiguously.
  const std::size_t ext = fp_.ext_pid.size();
  batch_link_base_.assign(num * ext, 0.0);
  batch_link_pre_.assign(relaxed ? num * ext : 0, 0.0);
  for (std::size_t i = 0; i < num; ++i) {
    if (batch_skip_[i]) continue;
    for (std::size_t j = 0; j < ext; ++j) {
      if (fp_.ext_pid[j] == pids[i]) continue;
      batch_link_base_[j * num + i] = pp_links_.used(pids[i], fp_.ext_pid[j]);
      if (relaxed) {
        batch_link_pre_[j * num + i] =
            pp_links_.pre_txn_value(pids[i], fp_.ext_pid[j]);
      }
    }
  }

  rollback_txn();

  soa_probe_candidates(soa_, fp_, pids, num, batch_dl_add_.data(),
                       batch_link_base_.data(),
                       relaxed ? batch_link_pre_.data() : nullptr,
                       /*stride=*/num, batch_skip_.data(), verdicts);

  // Candidates hosting group members keep the sequential probe's
  // partial-move semantics (members already on the target do not move at
  // all); resolve them through the sequential path.
  if (any_skip) {
    for (std::size_t i = 0; i < num; ++i) {
      if (!batch_skip_[i]) continue;
      verdicts[i] =
          probe(ops, n, pids[i], /*commit=*/false, relaxed) ? 1 : 0;
    }
  }
}

void PlacementState::can_place_batch(const std::vector<int>& ops,
                                     const std::vector<int>& pids,
                                     std::vector<unsigned char>& verdicts) {
  verdicts.resize(pids.size());
  batch_probe(ops.data(), ops.size(), pids.data(), pids.size(),
              /*relaxed=*/false, verdicts.data());
}

void PlacementState::can_place_batch_relaxed(
    const std::vector<int>& ops, const std::vector<int>& pids,
    std::vector<unsigned char>& verdicts) {
  verdicts.resize(pids.size());
  batch_probe(ops.data(), ops.size(), pids.data(), pids.size(),
              /*relaxed=*/true, verdicts.data());
}

int PlacementState::first_feasible_target(const std::vector<int>& ops,
                                          const std::vector<int>& pids,
                                          bool relaxed) {
  batch_verdicts_.resize(pids.size());
  batch_probe(ops.data(), ops.size(), pids.data(), pids.size(), relaxed,
              batch_verdicts_.data());
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (batch_verdicts_[i]) return pids[i];
  }
  return kNoNode;
}

int PlacementState::first_feasible_target(int op, const std::vector<int>& pids,
                                          bool relaxed) {
  batch_verdicts_.resize(pids.size());
  batch_probe(&op, 1, pids.data(), pids.size(), relaxed,
              batch_verdicts_.data());
  for (std::size_t i = 0; i < pids.size(); ++i) {
    if (batch_verdicts_[i]) return pids[i];
  }
  return kNoNode;
}

void PlacementState::can_place_on_new_batch(
    const std::vector<int>& ops, const std::vector<ProcessorConfig>& configs,
    std::vector<unsigned char>& verdicts) {
  verdicts.assign(configs.size(), 0);
  if (configs.empty()) return;
  if (!batch_footprint(ops.data(), ops.size(), /*relaxed=*/false)) {
    std::fill(verdicts.begin(), verdicts.end(), 1);
    return;
  }
  rollback_txn();
  const PriceCatalog& cat = *problem_.catalog;
  batch_speed_caps_.resize(configs.size());
  batch_bw_caps_.resize(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    batch_speed_caps_[i] = cat.speed(configs[i]);
    batch_bw_caps_[i] = cat.bandwidth(configs[i]);
  }
  soa_probe_configs(fp_, batch_speed_caps_.data(), batch_bw_caps_.data(),
                    configs.size(), verdicts.data());
}

bool PlacementState::search_place(int op, int pid) {
  begin_txn(TxnMode::kTrack);
  assign_op(op, pid);
  const bool ok = touched_feasible();
  commit_txn();
  return ok;
}

// --- repair API -------------------------------------------------------------

bool PlacementState::try_reconfigure(int pid, ProcessorConfig config) {
  assert(txn_mode_ == TxnMode::kNone);
  assert(is_live(pid));
  const PriceCatalog& cat = *problem_.catalog;
  ProcState& p = proc(pid);
  if (!fits_within(problem_.rho * p.work, cat.speed(config))) return false;
  if (!fits_within(p.download + p.comm, cat.bandwidth(config))) return false;
  p.cfg = config;
  return true;
}

void PlacementState::refresh_op_demand(int op, MegaOps old_work,
                                       MegaBytes old_output_mb) {
  assert(txn_mode_ == TxnMode::kNone);
  const int pid = proc_of(op);
  const auto& node = problem_.tree->op(op);
  if (pid != kNoNode) {
    proc(pid).work += node.work - old_work;
  }
  // Only op's *output* edges depend on op's own delta; edges to children
  // carry the children's deltas and are refreshed by their own calls.
  // set_demand writes the new output_mb into every out-edge delta and the
  // previous deltas were uniform (== old_output_mb) by the same contract,
  // so each distinct destination's deduped max moves by exactly dv.
  if (pid == kNoNode) return;
  const MBps dv = problem_.rho * (node.output_mb - old_output_mb);
  if (dv == 0.0) return;
  const auto& out = node.out;
  for (std::size_t a = 0; a < out.size(); ++a) {
    const int q = proc_of(out[a].dst);
    if (q == kNoNode || q == pid) continue;
    bool first = true;
    for (std::size_t b = 0; b < a; ++b) {
      if (proc_of(out[b].dst) == q) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    proc(pid).comm += dv;
    proc(q).comm += dv;
    if (dv > 0.0) {
      pp_links_.add(pid, q, dv);
    } else {
      pp_links_.remove(pid, q, -dv);
    }
  }
}

void PlacementState::refresh_object_rate(int type, MBps old_rate) {
  assert(txn_mode_ == TxnMode::kNone);
  const MBps dv = problem_.tree->catalog().type(type).rate() - old_rate;
  if (dv == 0.0) return;
  for (int pid : live_ids_) {
    ProcState& p = proc(pid);
    const auto it = std::lower_bound(
        p.type_count.begin(), p.type_count.end(), type,
        [](const std::pair<int, int>& e, int t) { return e.first < t; });
    if (it != p.type_count.end() && it->first == type) p.download += dv;
  }
}

std::vector<int> PlacementState::overloaded_processors() const {
  std::vector<int> out;
  overloaded_processors(out);
  return out;
}

void PlacementState::overloaded_processors(std::vector<int>& out) const {
  const PriceCatalog& cat = *problem_.catalog;
  out.clear();
  for (int pid : live_ids_) {
    const ProcState& p = proc(pid);
    if (!fits_within(problem_.rho * p.work, cat.speed(p.cfg)) ||
        !fits_within(p.download + p.comm, cat.bandwidth(p.cfg))) {
      out.push_back(pid);
    }
  }
}

std::vector<std::pair<int, int>> PlacementState::overloaded_links() const {
  std::vector<std::pair<int, int>> out;
  overloaded_links(out);
  return out;
}

void PlacementState::overloaded_links(
    std::vector<std::pair<int, int>>& out) const {
  out.clear();
  for (const auto& [link, used] : pp_links_.entries()) {
    if (!fits_within(used, pp_links_.capacity())) out.push_back(link);
  }
}

// --- loads ------------------------------------------------------------------

MegaOps PlacementState::cpu_demand(int pid) const {
  return problem_.rho * proc(pid).work;
}

MBps PlacementState::download_load(int pid) const {
  return proc(pid).download;
}

MBps PlacementState::comm_load(int pid) const { return proc(pid).comm; }

std::vector<int> PlacementState::download_types(int pid) const {
  std::vector<int> types;
  types.reserve(proc(pid).type_count.size());
  for (const auto& [t, count] : proc(pid).type_count) {
    (void)count;
    types.push_back(t);
  }
  return types;
}

MBps PlacementState::pair_traffic(int a, int b) const {
  return pp_links_.used(a, b);
}

Dollars PlacementState::total_cost() const {
  Dollars total = 0.0;
  for (const auto& p : procs_) {
    if (p.live) total += problem_.catalog->cost(p.cfg);
  }
  return total;
}

Allocation PlacementState::to_allocation() const {
  assert(num_unassigned() == 0);
  Allocation alloc;
  std::vector<int> dense(procs_.size(), kNoNode);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const auto& p = procs_[i];
    // Live-but-empty processors can exist during exhaustive search
    // (pre-bought slots); they carry no operators and are not part of the
    // resulting purchase plan.
    if (!p.live || p.ops.empty()) continue;
    dense[i] = static_cast<int>(alloc.processors.size());
    PurchasedProcessor out;
    out.config = p.cfg;
    out.ops = p.ops;
    std::sort(out.ops.begin(), out.ops.end());
    alloc.processors.push_back(std::move(out));
  }
  alloc.op_to_proc.resize(op_to_proc_.size(), kNoNode);
  for (std::size_t op = 0; op < op_to_proc_.size(); ++op) {
    assert(op_to_proc_[op] != kNoNode);
    alloc.op_to_proc[op] = dense[static_cast<std::size_t>(op_to_proc_[op])];
  }
  return alloc;
}

} // namespace insp
