#include "core/placement_state.hpp"

#include <algorithm>
#include <cassert>

namespace insp {

PlacementState::PlacementState(Problem problem)
    : problem_(problem),
      op_to_proc_(static_cast<std::size_t>(problem.tree->num_operators()),
                  kNoNode),
      pp_links_(problem.platform->link_proc_proc()),
      num_unassigned_(problem.tree->num_operators()) {
  assert(problem.valid());
}

int PlacementState::buy(ProcessorConfig config) {
  const int pid = static_cast<int>(procs_.size());
  ProcState p;
  p.cfg = config;
  p.live = true;
  procs_.push_back(std::move(p));
  return pid;
}

void PlacementState::sell(int pid) {
  auto& p = proc(pid);
  assert(p.live && p.ops.empty());
  p.live = false;
}

bool PlacementState::is_live(int pid) const {
  return pid >= 0 && static_cast<std::size_t>(pid) < procs_.size() &&
         proc(pid).live;
}

const ProcessorConfig& PlacementState::config(int pid) const {
  assert(is_live(pid));
  return proc(pid).cfg;
}

std::vector<int> PlacementState::live_processors() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (procs_[i].live) out.push_back(static_cast<int>(i));
  }
  return out;
}

int PlacementState::num_live_processors() const {
  int n = 0;
  for (const auto& p : procs_) n += p.live ? 1 : 0;
  return n;
}

int PlacementState::proc_of(int op) const {
  return op_to_proc_[static_cast<std::size_t>(op)];
}

const std::vector<int>& PlacementState::ops_on(int pid) const {
  assert(is_live(pid));
  return proc(pid).ops;
}

std::vector<int> PlacementState::unassigned_ops() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < op_to_proc_.size(); ++i) {
    if (op_to_proc_[i] == kNoNode) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<std::pair<int, MBps>> PlacementState::neighbors(int op) const {
  const OperatorTree& tree = *problem_.tree;
  const auto& n = tree.op(op);
  std::vector<std::pair<int, MBps>> out;
  if (n.parent != kNoNode) {
    out.emplace_back(n.parent, problem_.rho * n.output_mb);
  }
  for (int c : n.children) {
    out.emplace_back(c, problem_.rho * tree.op(c).output_mb);
  }
  return out;
}

void PlacementState::assign_op(int op, int pid) {
  assert(proc_of(op) == kNoNode);
  auto& p = proc(pid);
  op_to_proc_[static_cast<std::size_t>(op)] = pid;
  p.ops.push_back(op);
  p.work += problem_.tree->op(op).work;
  for (int t : problem_.tree->object_types_of(op)) {
    if (++p.type_count[t] == 1) {
      p.download += problem_.tree->catalog().type(t).rate();
    }
  }
  for (const auto& [nb, volume] : neighbors(op)) {
    const int q = proc_of(nb);
    if (q == kNoNode || q == pid) continue;
    p.comm += volume;
    proc(q).comm += volume;
    pp_links_.add(pid, q, volume);
  }
  --num_unassigned_;
}

void PlacementState::unassign_op(int op) {
  const int pid = proc_of(op);
  assert(pid != kNoNode);
  auto& p = proc(pid);
  for (const auto& [nb, volume] : neighbors(op)) {
    const int q = proc_of(nb);
    if (q == kNoNode || q == pid) continue;
    p.comm -= volume;
    proc(q).comm -= volume;
    pp_links_.remove(pid, q, volume);
  }
  for (int t : problem_.tree->object_types_of(op)) {
    auto it = p.type_count.find(t);
    assert(it != p.type_count.end());
    if (--it->second == 0) {
      p.download -= problem_.tree->catalog().type(t).rate();
      p.type_count.erase(it);
    }
  }
  p.work -= problem_.tree->op(op).work;
  auto pos = std::find(p.ops.begin(), p.ops.end(), op);
  assert(pos != p.ops.end());
  *pos = p.ops.back();
  p.ops.pop_back();
  op_to_proc_[static_cast<std::size_t>(op)] = kNoNode;
  ++num_unassigned_;
}

void PlacementState::place_unchecked(const std::vector<int>& ops, int pid) {
  for (int op : ops) {
    if (proc_of(op) == pid) continue;
    if (proc_of(op) != kNoNode) unassign_op(op);
    assign_op(op, pid);
  }
}

bool PlacementState::feasible() const {
  const PriceCatalog& cat = *problem_.catalog;
  for (const auto& p : procs_) {
    if (!p.live) continue;
    if (!fits_within(problem_.rho * p.work, cat.speed(p.cfg))) return false;
    if (!fits_within(p.download + p.comm, cat.bandwidth(p.cfg))) return false;
  }
  return pp_links_.all_within();
}

bool PlacementState::try_place(std::vector<int> ops, int pid) {
  assert(is_live(pid));
  PlacementState trial(*this);
  trial.place_unchecked(ops, pid);
  if (!trial.feasible()) return false;
  // Sell the source processors the move emptied (Random: "this last
  // processor is sold back"; SBU: "possibly returning some processors").
  // Only sources are sold — processors that were already empty (e.g. just
  // bought by the caller) are none of this move's business.
  for (int op : ops) {
    const int src = proc_of(op);  // pre-move assignment (this, not trial)
    if (src == kNoNode || src == pid) continue;
    auto& p = trial.procs_[static_cast<std::size_t>(src)];
    if (p.live && p.ops.empty()) p.live = false;
  }
  *this = std::move(trial);
  return true;
}

bool PlacementState::can_place(std::vector<int> ops, int pid) const {
  PlacementState trial(*this);
  trial.place_unchecked(ops, pid);
  return trial.feasible();
}

MegaOps PlacementState::cpu_demand(int pid) const {
  return problem_.rho * proc(pid).work;
}

MBps PlacementState::download_load(int pid) const {
  return proc(pid).download;
}

MBps PlacementState::comm_load(int pid) const { return proc(pid).comm; }

std::vector<int> PlacementState::download_types(int pid) const {
  std::vector<int> types;
  types.reserve(proc(pid).type_count.size());
  for (const auto& [t, count] : proc(pid).type_count) {
    (void)count;
    types.push_back(t);
  }
  return types;
}

MBps PlacementState::pair_traffic(int a, int b) const {
  return pp_links_.used(a, b);
}

Dollars PlacementState::total_cost() const {
  Dollars total = 0.0;
  for (const auto& p : procs_) {
    if (p.live) total += problem_.catalog->cost(p.cfg);
  }
  return total;
}

Allocation PlacementState::to_allocation() const {
  assert(num_unassigned_ == 0);
  Allocation alloc;
  std::vector<int> dense(procs_.size(), kNoNode);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const auto& p = procs_[i];
    // Live-but-empty processors can exist during exhaustive search
    // (pre-bought slots); they carry no operators and are not part of the
    // resulting purchase plan.
    if (!p.live || p.ops.empty()) continue;
    dense[i] = static_cast<int>(alloc.processors.size());
    PurchasedProcessor out;
    out.config = p.cfg;
    out.ops = p.ops;
    std::sort(out.ops.begin(), out.ops.end());
    alloc.processors.push_back(std::move(out));
  }
  alloc.op_to_proc.resize(op_to_proc_.size(), kNoNode);
  for (std::size_t op = 0; op < op_to_proc_.size(); ++op) {
    assert(op_to_proc_[op] != kNoNode);
    alloc.op_to_proc[op] = dense[static_cast<std::size_t>(op_to_proc_[op])];
  }
  return alloc;
}

} // namespace insp
