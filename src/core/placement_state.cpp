#include "core/placement_state.hpp"

#include <algorithm>
#include <cassert>

namespace insp {

namespace {

/// Insert `v` into sorted `xs` (no duplicates expected).
void sorted_insert(std::vector<int>& xs, int v) {
  xs.insert(std::lower_bound(xs.begin(), xs.end(), v), v);
}

/// Erase `v` from sorted `xs`; it must be present.
void sorted_erase(std::vector<int>& xs, int v) {
  auto it = std::lower_bound(xs.begin(), xs.end(), v);
  assert(it != xs.end() && *it == v);
  xs.erase(it);
}

} // namespace

PlacementState::PlacementState(Problem problem)
    : problem_(problem),
      op_to_proc_(static_cast<std::size_t>(problem.tree->num_operators()),
                  kNoNode),
      pp_links_(problem.platform->link_proc_proc()) {
  assert(problem.valid());
  unassigned_ids_.resize(op_to_proc_.size());
  for (std::size_t i = 0; i < unassigned_ids_.size(); ++i) {
    unassigned_ids_[i] = static_cast<int>(i);
  }
}

int PlacementState::buy(ProcessorConfig config) {
  assert(txn_mode_ == TxnMode::kNone);
  const int pid = static_cast<int>(procs_.size());
  ProcState p;
  p.cfg = config;
  p.live = true;
  procs_.push_back(std::move(p));
  live_ids_.push_back(pid);  // pids grow monotonically: stays sorted
  return pid;
}

void PlacementState::sell(int pid) {
  assert(txn_mode_ == TxnMode::kNone);
  auto& p = proc(pid);
  assert(p.live && p.ops.empty());
  p.live = false;
  sorted_erase(live_ids_, pid);
}

bool PlacementState::is_live(int pid) const {
  return pid >= 0 && static_cast<std::size_t>(pid) < procs_.size() &&
         proc(pid).live;
}

const ProcessorConfig& PlacementState::config(int pid) const {
  assert(is_live(pid));
  return proc(pid).cfg;
}

int PlacementState::proc_of(int op) const {
  return op_to_proc_[static_cast<std::size_t>(op)];
}

const std::vector<int>& PlacementState::ops_on(int pid) const {
  assert(is_live(pid));
  return proc(pid).ops;
}

std::vector<std::pair<int, MBps>> PlacementState::neighbors(int op) const {
  std::vector<std::pair<int, MBps>> out;
  for_each_neighbor(op, [&](int nb, MBps volume) {
    out.emplace_back(nb, volume);
  });
  return out;
}

template <typename Fn>
void PlacementState::for_each_neighbor(int op, Fn&& fn) const {
  const OperatorTree& tree = *problem_.tree;
  const auto& n = tree.op(op);
  if (n.parent != kNoNode) {
    fn(n.parent, problem_.rho * n.output_mb);
  }
  for (int c : n.children) {
    fn(c, problem_.rho * tree.op(c).output_mb);
  }
}

// --- transactions ----------------------------------------------------------

void PlacementState::begin_txn(TxnMode mode) {
  assert(txn_mode_ == TxnMode::kNone);
  assert(mode != TxnMode::kNone);
  txn_mode_ = mode;
  ++txn_epoch_;
  snap_count_ = 0;
  touched_procs_.clear();
  moved_ops_.clear();
  pp_links_.begin_txn();
}

void PlacementState::touch_proc(int pid) {
  ProcState& p = proc(pid);
  if (p.touch_epoch == txn_epoch_) return;
  p.touch_epoch = txn_epoch_;
  touched_procs_.push_back(pid);
  if (txn_mode_ != TxnMode::kFull) return;
  if (snap_count_ == snaps_.size()) snaps_.emplace_back();
  ProcSnapshot& s = snaps_[snap_count_++];
  s.pid = pid;
  s.work = p.work;
  s.download = p.download;
  s.comm = p.comm;
  s.ops.assign(p.ops.begin(), p.ops.end());
  s.type_count.assign(p.type_count.begin(), p.type_count.end());
}

void PlacementState::commit_txn() {
  assert(txn_mode_ != TxnMode::kNone);
  txn_mode_ = TxnMode::kNone;
  pp_links_.commit_txn();
}

void PlacementState::rollback_txn() {
  assert(txn_mode_ == TxnMode::kFull);
  txn_mode_ = TxnMode::kNone;
  // Touched processors: restore the value snapshots verbatim.
  for (std::size_t i = snap_count_; i-- > 0;) {
    const ProcSnapshot& s = snaps_[i];
    ProcState& p = proc(s.pid);
    p.work = s.work;
    p.download = s.download;
    p.comm = s.comm;
    p.ops.assign(s.ops.begin(), s.ops.end());
    p.type_count.assign(s.type_count.begin(), s.type_count.end());
  }
  // Moved operators: reverse replay restores op_to_proc_ and the sorted
  // unassigned list (ints: exact).
  for (auto it = moved_ops_.rbegin(); it != moved_ops_.rend(); ++it) {
    const auto [op, prev] = *it;
    const int cur = op_to_proc_[static_cast<std::size_t>(op)];
    if (cur == kNoNode && prev != kNoNode) {
      sorted_erase(unassigned_ids_, op);
    } else if (cur != kNoNode && prev == kNoNode) {
      sorted_insert(unassigned_ids_, op);
    }
    op_to_proc_[static_cast<std::size_t>(op)] = prev;
  }
  pp_links_.rollback_txn();
}

bool PlacementState::touched_feasible() const {
  const PriceCatalog& cat = *problem_.catalog;
  for (int pid : touched_procs_) {
    const ProcState& p = proc(pid);
    if (!p.live) continue;
    if (!fits_within(problem_.rho * p.work, cat.speed(p.cfg))) return false;
    if (!fits_within(p.download + p.comm, cat.bandwidth(p.cfg))) return false;
  }
  return pp_links_.touched_within();
}

bool PlacementState::touched_no_worse() const {
  assert(txn_mode_ == TxnMode::kFull);
  const PriceCatalog& cat = *problem_.catalog;
  // In kFull mode touch_proc snapshots every touched processor as it
  // records it, so touched_procs_[i] and snaps_[i] describe the same
  // processor: the snapshot is the pre-transaction baseline.
  for (std::size_t i = 0; i < touched_procs_.size(); ++i) {
    const ProcState& p = proc(touched_procs_[i]);
    if (!p.live) continue;
    const ProcSnapshot& s = snaps_[i];
    assert(s.pid == touched_procs_[i]);
    const MegaOps cpu_now = problem_.rho * p.work;
    if (!fits_within(cpu_now, cat.speed(p.cfg)) &&
        !fits_within(cpu_now, problem_.rho * s.work)) {
      return false;
    }
    const MBps nic_now = p.download + p.comm;
    if (!fits_within(nic_now, cat.bandwidth(p.cfg)) &&
        !fits_within(nic_now, s.download + s.comm)) {
      return false;
    }
  }
  return pp_links_.touched_no_worse();
}

// --- assignment -------------------------------------------------------------

void PlacementState::assign_op(int op, int pid) {
  assert(proc_of(op) == kNoNode);
  if (txn_mode_ != TxnMode::kNone) {
    touch_proc(pid);
    if (txn_mode_ == TxnMode::kFull) moved_ops_.emplace_back(op, kNoNode);
  }
  auto& p = proc(pid);
  op_to_proc_[static_cast<std::size_t>(op)] = pid;
  sorted_erase(unassigned_ids_, op);
  p.ops.push_back(op);
  p.work += problem_.tree->op(op).work;
  for (int t : problem_.tree->object_types_of(op)) {
    auto it = std::lower_bound(
        p.type_count.begin(), p.type_count.end(), t,
        [](const std::pair<int, int>& e, int type) { return e.first < type; });
    if (it != p.type_count.end() && it->first == t) {
      ++it->second;
    } else {
      p.type_count.insert(it, {t, 1});
      p.download += problem_.tree->catalog().type(t).rate();
    }
  }
  for_each_neighbor(op, [&](int nb, MBps volume) {
    const int q = proc_of(nb);
    if (q == kNoNode || q == pid) return;
    if (txn_mode_ != TxnMode::kNone) touch_proc(q);
    p.comm += volume;
    proc(q).comm += volume;
    pp_links_.add(pid, q, volume);
  });
}

void PlacementState::unassign_op(int op) {
  const int pid = proc_of(op);
  assert(pid != kNoNode);
  if (txn_mode_ != TxnMode::kNone) {
    touch_proc(pid);
    if (txn_mode_ == TxnMode::kFull) moved_ops_.emplace_back(op, pid);
  }
  auto& p = proc(pid);
  for_each_neighbor(op, [&](int nb, MBps volume) {
    const int q = proc_of(nb);
    if (q == kNoNode || q == pid) return;
    if (txn_mode_ != TxnMode::kNone) touch_proc(q);
    p.comm -= volume;
    proc(q).comm -= volume;
    pp_links_.remove(pid, q, volume);
  });
  for (int t : problem_.tree->object_types_of(op)) {
    auto it = std::lower_bound(
        p.type_count.begin(), p.type_count.end(), t,
        [](const std::pair<int, int>& e, int type) { return e.first < type; });
    assert(it != p.type_count.end() && it->first == t);
    if (--it->second == 0) {
      p.download -= problem_.tree->catalog().type(t).rate();
      p.type_count.erase(it);
    }
  }
  p.work -= problem_.tree->op(op).work;
  auto pos = std::find(p.ops.begin(), p.ops.end(), op);
  assert(pos != p.ops.end());
  *pos = p.ops.back();
  p.ops.pop_back();
  op_to_proc_[static_cast<std::size_t>(op)] = kNoNode;
  sorted_insert(unassigned_ids_, op);
}

bool PlacementState::feasible() const {
  const PriceCatalog& cat = *problem_.catalog;
  for (const auto& p : procs_) {
    if (!p.live) continue;
    if (!fits_within(problem_.rho * p.work, cat.speed(p.cfg))) return false;
    if (!fits_within(p.download + p.comm, cat.bandwidth(p.cfg))) return false;
  }
  return pp_links_.all_within();
}

bool PlacementState::probe(const std::vector<int>& ops, int pid, bool commit,
                           bool relaxed) {
  // `ops` routinely aliases ops_on() of a processor the move empties, and
  // assign/unassign reshuffle those vectors — copy into reusable scratch.
  scratch_ops_.assign(ops.begin(), ops.end());
  sell_candidates_.clear();
  begin_txn(TxnMode::kFull);
  for (int op : scratch_ops_) {
    const int src = proc_of(op);
    if (src == pid) continue;
    if (src != kNoNode) {
      unassign_op(op);
      sell_candidates_.push_back(src);
    }
    assign_op(op, pid);
  }
  if (!(relaxed ? touched_no_worse() : touched_feasible())) {
    rollback_txn();
    return false;
  }
  if (!commit) {
    rollback_txn();
    return true;
  }
  commit_txn();
  // Sell the source processors the move emptied (Random: "this last
  // processor is sold back"; SBU: "possibly returning some processors").
  // Only sources are sold — processors that were already empty (e.g. just
  // bought by the caller) are none of this move's business.
  for (int src : sell_candidates_) {
    const auto& p = proc(src);
    if (p.live && p.ops.empty()) sell(src);
  }
  return true;
}

bool PlacementState::try_place(const std::vector<int>& ops, int pid) {
  assert(is_live(pid));
  return probe(ops, pid, /*commit=*/true, /*relaxed=*/false);
}

bool PlacementState::can_place(const std::vector<int>& ops, int pid) {
  return probe(ops, pid, /*commit=*/false, /*relaxed=*/false);
}

bool PlacementState::try_place_relaxed(const std::vector<int>& ops, int pid) {
  assert(is_live(pid));
  return probe(ops, pid, /*commit=*/true, /*relaxed=*/true);
}

bool PlacementState::can_place_relaxed(const std::vector<int>& ops, int pid) {
  return probe(ops, pid, /*commit=*/false, /*relaxed=*/true);
}

bool PlacementState::search_place(int op, int pid) {
  begin_txn(TxnMode::kTrack);
  assign_op(op, pid);
  const bool ok = touched_feasible();
  commit_txn();
  return ok;
}

// --- repair API -------------------------------------------------------------

bool PlacementState::try_reconfigure(int pid, ProcessorConfig config) {
  assert(txn_mode_ == TxnMode::kNone);
  assert(is_live(pid));
  const PriceCatalog& cat = *problem_.catalog;
  ProcState& p = proc(pid);
  if (!fits_within(problem_.rho * p.work, cat.speed(config))) return false;
  if (!fits_within(p.download + p.comm, cat.bandwidth(config))) return false;
  p.cfg = config;
  return true;
}

void PlacementState::refresh_op_demand(int op, MegaOps old_work,
                                       MegaBytes old_output_mb) {
  assert(txn_mode_ == TxnMode::kNone);
  const int pid = proc_of(op);
  const auto& node = problem_.tree->op(op);
  if (pid != kNoNode) {
    proc(pid).work += node.work - old_work;
  }
  // Only op's *output* edge depends on op's own delta; edges to children
  // carry the children's deltas and are refreshed by their own calls.
  const int parent = node.parent;
  if (pid == kNoNode || parent == kNoNode) return;
  const int q = proc_of(parent);
  if (q == kNoNode || q == pid) return;
  const MBps dv = problem_.rho * (node.output_mb - old_output_mb);
  if (dv == 0.0) return;
  proc(pid).comm += dv;
  proc(q).comm += dv;
  if (dv > 0.0) {
    pp_links_.add(pid, q, dv);
  } else {
    pp_links_.remove(pid, q, -dv);
  }
}

void PlacementState::refresh_object_rate(int type, MBps old_rate) {
  assert(txn_mode_ == TxnMode::kNone);
  const MBps dv = problem_.tree->catalog().type(type).rate() - old_rate;
  if (dv == 0.0) return;
  for (int pid : live_ids_) {
    ProcState& p = proc(pid);
    const auto it = std::lower_bound(
        p.type_count.begin(), p.type_count.end(), type,
        [](const std::pair<int, int>& e, int t) { return e.first < t; });
    if (it != p.type_count.end() && it->first == type) p.download += dv;
  }
}

std::vector<int> PlacementState::overloaded_processors() const {
  const PriceCatalog& cat = *problem_.catalog;
  std::vector<int> out;
  for (int pid : live_ids_) {
    const ProcState& p = proc(pid);
    if (!fits_within(problem_.rho * p.work, cat.speed(p.cfg)) ||
        !fits_within(p.download + p.comm, cat.bandwidth(p.cfg))) {
      out.push_back(pid);
    }
  }
  return out;
}

std::vector<std::pair<int, int>> PlacementState::overloaded_links() const {
  std::vector<std::pair<int, int>> out;
  for (const auto& [link, used] : pp_links_.entries()) {
    if (!fits_within(used, pp_links_.capacity())) out.push_back(link);
  }
  return out;
}

// --- loads ------------------------------------------------------------------

MegaOps PlacementState::cpu_demand(int pid) const {
  return problem_.rho * proc(pid).work;
}

MBps PlacementState::download_load(int pid) const {
  return proc(pid).download;
}

MBps PlacementState::comm_load(int pid) const { return proc(pid).comm; }

std::vector<int> PlacementState::download_types(int pid) const {
  std::vector<int> types;
  types.reserve(proc(pid).type_count.size());
  for (const auto& [t, count] : proc(pid).type_count) {
    (void)count;
    types.push_back(t);
  }
  return types;
}

MBps PlacementState::pair_traffic(int a, int b) const {
  return pp_links_.used(a, b);
}

Dollars PlacementState::total_cost() const {
  Dollars total = 0.0;
  for (const auto& p : procs_) {
    if (p.live) total += problem_.catalog->cost(p.cfg);
  }
  return total;
}

Allocation PlacementState::to_allocation() const {
  assert(num_unassigned() == 0);
  Allocation alloc;
  std::vector<int> dense(procs_.size(), kNoNode);
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    const auto& p = procs_[i];
    // Live-but-empty processors can exist during exhaustive search
    // (pre-bought slots); they carry no operators and are not part of the
    // resulting purchase plan.
    if (!p.live || p.ops.empty()) continue;
    dense[i] = static_cast<int>(alloc.processors.size());
    PurchasedProcessor out;
    out.config = p.cfg;
    out.ops = p.ops;
    std::sort(out.ops.begin(), out.ops.end());
    alloc.processors.push_back(std::move(out));
  }
  alloc.op_to_proc.resize(op_to_proc_.size(), kNoNode);
  for (std::size_t op = 0; op < op_to_proc_.size(); ++op) {
    assert(op_to_proc_[op] != kNoNode);
    alloc.op_to_proc[op] = dense[static_cast<std::size_t>(op_to_proc_[op])];
  }
  return alloc;
}

} // namespace insp
