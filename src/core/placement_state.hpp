// Mutable working state used by the operator-placement heuristics: the set
// of purchased processors, the (partial) operator assignment, and the
// incremental load accounting the feasibility checks run against.
//
// Semantics (docs/DESIGN.md §3, §13): edges to *unassigned* neighbors
// consume no bandwidth; a realized cross-processor edge is charged to both
// processor NICs and to the pairwise link.  A shared producer (several
// out-edges) sends its result ONCE per distinct destination processor —
// the charge to a destination is the max out-edge delta into it, not the
// sum (multicast dedup); for trees (single out-edge) this is exactly the
// historical per-edge charge.  Downloads are charged per processor and per
// distinct object type (two co-located operators share a download; the
// same type on two processors is downloaded twice, per the paper).
//
// `try_place` is transactional (docs/DESIGN.md §5): the move is applied
// incrementally under an undo journal, only the processors and pairwise
// links the move touched are re-validated, and on failure the journal is
// replayed in reverse — restoring the state bit for bit.  Validation and
// snapshotting therefore scale with the move's footprint, not the state
// (the one caveat: keeping unassigned_ops() sorted shifts up to
// O(#unassigned) ints per moved operator — trivial next to the deep copy
// plus full-state scan this replaces).  Heuristics can probe candidate
// moves without corrupting the state.  Probes assume the current state is
// feasible (every committed mutation preserves that invariant).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/allocation.hpp"
#include "core/placement_soa.hpp"
#include "core/problem.hpp"
#include "net/bandwidth_ledger.hpp"

namespace insp {

class PlacementState {
 public:
  /// The Problem is a small struct of pointers; it is copied so callers may
  /// pass temporaries (the pointed-to tree/platform/catalog must outlive the
  /// state, as always).
  explicit PlacementState(Problem problem);

  const Problem& problem() const { return problem_; }

  // --- processor purchases -------------------------------------------------
  /// Buys a processor of the given configuration; returns its id.
  int buy(ProcessorConfig config);
  /// Sells a processor; it must be live and empty.
  void sell(int pid);
  bool is_live(int pid) const;
  const ProcessorConfig& config(int pid) const;
  /// Ids of live processors, ascending (purchase order).  The reference is
  /// invalidated by buy/sell and by any committed try_place (which may
  /// auto-sell an emptied source); copy it before mutating the state while
  /// iterating.
  const std::vector<int>& live_processors() const { return live_ids_; }
  int num_live_processors() const {
    return static_cast<int>(live_ids_.size());
  }

  // --- assignment ----------------------------------------------------------
  int proc_of(int op) const;  ///< kNoNode if unassigned
  const std::vector<int>& ops_on(int pid) const;
  int num_unassigned() const {
    return static_cast<int>(unassigned_ids_.size());
  }
  /// Ids of unassigned operators, ascending.  Same invalidation caveat as
  /// live_processors().
  const std::vector<int>& unassigned_ops() const { return unassigned_ids_; }

  /// Moves every operator in `ops` (currently assigned anywhere, or
  /// unassigned) onto live processor `pid`, then validates every capacity
  /// the move touched (CPU, NICs including neighbor processors, pairwise
  /// links).  On success the move is committed and any processor emptied by
  /// the move — other than `pid` — is sold automatically; on failure the
  /// undo journal restores the state exactly.  `ops` may alias ops_on() of a
  /// processor the move empties (it is copied internally).
  bool try_place(const std::vector<int>& ops, int pid);
  /// Single-operator form, allocation-free (no `{op}` temporary vector —
  /// the hot first-fit scans call this thousands of times per repair).
  bool try_place(int op, int pid);

  /// try_place without the commit: reports feasibility only.  Non-const on
  /// purpose: the probe applies the move and rolls it back bit-identically,
  /// so no change is observable afterwards, but the state (journal, loads,
  /// scratch) is mutated in between — probing a shared PlacementState from
  /// several threads is a data race; give each thread its own copy.
  bool can_place(const std::vector<int>& ops, int pid);
  bool can_place(int op, int pid);

  // --- repair API (docs/DESIGN.md §8) --------------------------------------
  // After a workload event mutates demands (refresh_op_demand /
  // refresh_object_rate below), the state may be *infeasible*.  The strict
  // probes above would then reject every move that touches a violated
  // capacity — including the moves that drain it.  The relaxed probes use
  // the same undo journal but judge each touched capacity against its
  // pre-transaction snapshot: a capacity that fits passes as usual, and one
  // that was already violated may stay violated as long as the move did not
  // increase its excess.  A capacity that was fine before the move must
  // still fit — a repair move may never create a new violation.

  /// try_place under the relaxed verdict; commits exactly like try_place
  /// (including auto-selling emptied sources).
  bool try_place_relaxed(const std::vector<int>& ops, int pid);
  bool try_place_relaxed(int op, int pid);
  /// can_place under the relaxed verdict (probe + bit-exact rollback).
  bool can_place_relaxed(const std::vector<int>& ops, int pid);
  bool can_place_relaxed(int op, int pid);

  // --- batched feasibility probes (docs/DESIGN.md §10) ---------------------
  // The heuristics' inner loop asks one question many times: "which of these
  // candidate processors can host this operator group?"  The sequential
  // probes answer it by paying a full journal transaction per candidate.
  // The batch probes pay it ONCE: the group is unassigned under a single
  // journal baseline, the per-processor state is gathered into a flat SoA
  // mirror, every candidate is judged by a branch-light loop over parallel
  // arrays (core/placement_soa.hpp), and the baseline is rolled back
  // bit-exactly.  Verdicts are element-wise identical to the sequential
  // probes (candidates that host group members are resolved through the
  // sequential path, whose partial-move semantics a shared baseline cannot
  // reproduce).  Like can_place, batch probes mutate scratch state in
  // between — not thread-safe on a shared state.

  /// verdicts[i] == can_place(ops, pids[i]); resized to pids.size().
  void can_place_batch(const std::vector<int>& ops,
                       const std::vector<int>& pids,
                       std::vector<unsigned char>& verdicts);
  /// verdicts[i] == can_place_relaxed(ops, pids[i]).
  void can_place_batch_relaxed(const std::vector<int>& ops,
                               const std::vector<int>& pids,
                               std::vector<unsigned char>& verdicts);
  /// First pids[i] whose (strict or relaxed) verdict is true, else kNoNode —
  /// the batched form of the heuristics' first-fit scans.
  int first_feasible_target(const std::vector<int>& ops,
                            const std::vector<int>& pids,
                            bool relaxed = false);
  /// Single-operator form (allocation-free; verdict scratch is a member).
  int first_feasible_target(int op, const std::vector<int>& pids,
                            bool relaxed = false);
  /// Hypothetical purchases, strict verdict: verdicts[i] is true iff buying
  /// a processor of configs[i] and try_place(ops, <new pid>) would succeed —
  /// evaluated without consuming a processor id (a failed buy+sell still
  /// burns an id; the config scans of the grouping technique used to leak
  /// one id per rejected configuration).
  void can_place_on_new_batch(const std::vector<int>& ops,
                              const std::vector<ProcessorConfig>& configs,
                              std::vector<unsigned char>& verdicts);

  /// Re-prices live processor `pid` to `config` (repair upgrade, or the
  /// downgrade-equivalent consolidation step on a live state).  Fails — and
  /// changes nothing — when the current loads do not fit the new
  /// configuration.  Loads are unaffected; only capacity changes.
  bool try_reconfigure(int pid, ProcessorConfig config);

  /// Incremental demand update: the caller has already changed operator
  /// `op`'s demands in the tree (OperatorTree::set_demand) and passes the
  /// *previous* values; the per-processor work and the comm/link charges of
  /// op's parent edge are adjusted by the delta.  O(degree of op).  May
  /// leave the state infeasible — query overloaded_processors()/links().
  void refresh_op_demand(int op, MegaOps old_work, MegaBytes old_output_mb);

  /// Incremental download-rate update: the caller has already changed the
  /// type's frequency in the object catalog and passes the previous
  /// per-result rate; every live processor downloading the type is
  /// adjusted.  O(live processors).
  void refresh_object_rate(int type, MBps old_rate);

  /// Live processors violating CPU or NIC capacity, ascending.
  std::vector<int> overloaded_processors() const;
  /// Out-parameter form for hot loops: `out` is cleared and refilled, so a
  /// caller-owned scratch vector makes the scan allocation-free.
  void overloaded_processors(std::vector<int>& out) const;
  /// Processor pairs whose realized traffic exceeds the link capacity.
  std::vector<std::pair<int, int>> overloaded_links() const;
  void overloaded_links(std::vector<std::pair<int, int>>& out) const;

  /// Expert hooks for exhaustive search (ilp::ExactSolver): raw assignment
  /// updates with incremental accounting and *no* auto-selling.  `op` must
  /// be unassigned (resp. assigned).  search_place keeps the assignment
  /// unconditionally and returns the touched-set feasibility verdict —
  /// equal to feasible() whenever the pre-move state was feasible.  Because
  /// realized loads grow monotonically along a search path, a state that
  /// fails the verdict can be pruned together with all its extensions.
  bool search_place(int op, int pid);
  void search_unassign(int op) { unassign_op(op); }

  // --- loads (at the problem's rho) ----------------------------------------
  MegaOps cpu_demand(int pid) const;  ///< rho * sum w
  MBps download_load(int pid) const;
  MBps comm_load(int pid) const;
  MBps nic_load(int pid) const { return download_load(pid) + comm_load(pid); }
  /// Distinct object types downloaded by the processor (ascending).
  std::vector<int> download_types(int pid) const;
  /// Realized traffic between two live processors (both directions).
  MBps pair_traffic(int a, int b) const;

  /// Validates every live processor and link; true when all fit.
  bool feasible() const;

  Dollars total_cost() const;

  /// Finalizes into a dense Allocation (downloads left empty — filled by the
  /// server-selection phase).  Requires all operators assigned.
  Allocation to_allocation() const;

  /// Graph neighbors (consumers + operator children) of `op`, with the data
  /// volume (rho * delta) carried by the connecting edge.
  std::vector<std::pair<int, MBps>> neighbors(int op) const;

  /// Allocation-free neighbors(): calls fn(neighbor op, rho * edge volume)
  /// for each consumer (out-edges first, in order) and each operator child,
  /// in the same order neighbors() lists them.  On trees this is the
  /// historical parent-then-children order.
  template <typename Fn>
  void visit_neighbors(int op, Fn&& fn) const {
    for_each_neighbor(op, static_cast<Fn&&>(fn));
  }

 private:
  struct ProcState {
    ProcessorConfig cfg;
    bool live = false;
    std::vector<int> ops;
    MegaOps work = 0.0;  // sum of w_i (rho applied at check time)
    /// (object type, #ops here needing it), sorted by type.
    std::vector<std::pair<int, int>> type_count;
    MBps download = 0.0;
    MBps comm = 0.0;  // crossing in+out charged to this card
    std::uint64_t touch_epoch = 0;  // == txn_epoch_ when touched this txn
  };

  /// Value snapshot of one touched processor, taken on first touch inside a
  /// full transaction; rollback restores it verbatim (bit-exact, unlike
  /// replaying -= deltas on doubles).
  struct ProcSnapshot {
    int pid = -1;
    MegaOps work = 0.0;
    MBps download = 0.0;
    MBps comm = 0.0;
    std::vector<int> ops;
    std::vector<std::pair<int, int>> type_count;
  };

  /// kTrack records only the touched set (enough to validate);
  /// kFull also snapshots state for rollback.
  enum class TxnMode { kNone, kTrack, kFull };

  void begin_txn(TxnMode mode);
  void commit_txn();
  void rollback_txn();
  /// First-touch hook: records `pid` in the touched set (and snapshots it in
  /// kFull mode).  Must run before any mutation of the processor.
  void touch_proc(int pid);
  /// Capacity check over the touched processors and links only.
  bool touched_feasible() const;
  /// Relaxed variant (kFull transactions only — it compares against the
  /// snapshots): touched capacities may stay violated if already violated
  /// at snapshot time and the excess did not grow.
  bool touched_no_worse() const;
  /// Shared body of try_place/can_place and their relaxed variants.  Takes
  /// a raw span so the single-op overloads pass &op without a temporary.
  bool probe(const int* ops, std::size_t n, int pid, bool commit,
             bool relaxed);

  /// Batch-probe protocol steps 1-2 (docs/DESIGN.md §10): deduplicates the
  /// group, opens the journal baseline (group unassigned), and extracts the
  /// pid-independent footprint into fp_.  Returns false — without opening a
  /// transaction — when the group is empty (an empty move is vacuously
  /// feasible everywhere); otherwise LEAVES THE TRANSACTION OPEN so the
  /// caller can gather per-candidate baseline data before rolling back.
  bool batch_footprint(const int* ops, std::size_t n, bool relaxed);
  /// Full batch probe: footprint, SoA gather, flat verdict loop, bit-exact
  /// rollback, sequential slow path for candidates hosting group members.
  void batch_probe(const int* ops, std::size_t n, const int* pids,
                   std::size_t num, bool relaxed, unsigned char* verdicts);

  void assign_op(int op, int pid);
  void unassign_op(int op);
  /// Calls fn(neighbor op, rho * edge volume) for each consumer (out-edges
  /// in order, so the tree parent comes first) and each operator child,
  /// exactly like neighbors() but allocation-free.  Defined here so the
  /// public visit_neighbors() wrapper instantiates in every caller's TU.
  template <typename Fn>
  void for_each_neighbor(int op, Fn&& fn) const {
    const OperatorTree& tree = *problem_.tree;
    const auto& n = tree.op(op);
    for (const OutEdge& e : n.out) {
      fn(e.dst, problem_.rho * e.delta);
    }
    for (int c : n.children) {
      fn(c, problem_.rho * tree.op(c).output_mb);
    }
  }

  ProcState& proc(int pid) { return procs_[static_cast<std::size_t>(pid)]; }
  const ProcState& proc(int pid) const {
    return procs_[static_cast<std::size_t>(pid)];
  }

  Problem problem_;
  std::vector<ProcState> procs_;
  std::vector<int> op_to_proc_;
  LinkLedger pp_links_;
  std::vector<int> live_ids_;        // live pids, ascending
  std::vector<int> unassigned_ids_;  // unassigned ops, ascending

  // --- transaction scratch (reused across probes; no steady-state
  // allocation) ------------------------------------------------------------
  TxnMode txn_mode_ = TxnMode::kNone;
  std::uint64_t txn_epoch_ = 0;
  std::vector<ProcSnapshot> snaps_;  // pool; first snap_count_ are active
  std::size_t snap_count_ = 0;
  std::vector<int> touched_procs_;
  std::vector<std::pair<int, int>> moved_ops_;  // (op, previous pid)
  std::vector<int> scratch_ops_;
  std::vector<int> sell_candidates_;

  // --- batch-probe scratch (docs/DESIGN.md §10; reused across batches) -----
  PlacementSoA soa_;
  BatchFootprint fp_;
  std::vector<int> batch_group_;       // deduplicated group, original order
  std::vector<int> batch_group_pos_;   // op -> position+1 in group, 0 = absent
  std::vector<int> batch_transient_;   // sources of later-moving group members
  std::vector<unsigned char> proc_is_source_;  // pid hosts a group member
  std::vector<int> batch_ext_slot_;    // pid -> index into fp_.ext_*, -1 = none
  std::vector<unsigned char> batch_skip_;
  std::vector<unsigned char> batch_verdicts_;
  std::vector<double> batch_dl_add_;
  std::vector<double> batch_link_base_;
  std::vector<double> batch_link_pre_;
  std::vector<double> batch_speed_caps_;
  std::vector<double> batch_bw_caps_;
};

} // namespace insp
