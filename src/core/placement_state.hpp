// Mutable working state used by the operator-placement heuristics: the set
// of purchased processors, the (partial) operator assignment, and the
// incremental load accounting the feasibility checks run against.
//
// Semantics (DESIGN.md §3): tree edges to *unassigned* neighbors consume no
// bandwidth; a realized cross-processor edge is charged to both processor
// NICs and to the pairwise link.  Downloads are charged per processor and
// per distinct object type (two co-located operators share a download; the
// same type on two processors is downloaded twice, per the paper).
//
// `try_place` is transactional: it applies a move to a copy of the state,
// validates every capacity, and commits only when feasible — heuristics can
// probe candidate moves without corrupting the state.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "net/bandwidth_ledger.hpp"

namespace insp {

class PlacementState {
 public:
  /// The Problem is a small struct of pointers; it is copied so callers may
  /// pass temporaries (the pointed-to tree/platform/catalog must outlive the
  /// state, as always).
  explicit PlacementState(Problem problem);

  const Problem& problem() const { return problem_; }

  // --- processor purchases -------------------------------------------------
  /// Buys a processor of the given configuration; returns its id.
  int buy(ProcessorConfig config);
  /// Sells a processor; it must be live and empty.
  void sell(int pid);
  bool is_live(int pid) const;
  const ProcessorConfig& config(int pid) const;
  /// Ids of live processors, ascending (purchase order).
  std::vector<int> live_processors() const;
  int num_live_processors() const;

  // --- assignment ----------------------------------------------------------
  int proc_of(int op) const;  ///< kNoNode if unassigned
  const std::vector<int>& ops_on(int pid) const;
  int num_unassigned() const { return num_unassigned_; }
  std::vector<int> unassigned_ops() const;

  /// Moves every operator in `ops` (currently assigned anywhere, or
  /// unassigned) onto live processor `pid`, then validates *all* capacities
  /// (CPU, NICs including neighbor processors, pairwise links).  On success
  /// the move is committed and any processor emptied by the move — other
  /// than `pid` — is sold automatically; on failure the state is unchanged.
  /// Taken by value: callers routinely pass ops_on(p) of a processor the
  /// move itself empties.
  bool try_place(std::vector<int> ops, int pid);

  /// try_place without the commit: reports feasibility only.
  bool can_place(std::vector<int> ops, int pid) const;

  /// Expert hooks for exhaustive search (ilp::ExactSolver): raw assignment
  /// updates with incremental accounting but *no* validation and no
  /// auto-selling.  `op` must be unassigned (resp. assigned).  Because
  /// realized loads grow monotonically along a search path, a state that
  /// fails feasible() can be pruned together with all its extensions.
  void search_place(int op, int pid) { assign_op(op, pid); }
  void search_unassign(int op) { unassign_op(op); }

  // --- loads (at the problem's rho) ----------------------------------------
  MegaOps cpu_demand(int pid) const;  ///< rho * sum w
  MBps download_load(int pid) const;
  MBps comm_load(int pid) const;
  MBps nic_load(int pid) const { return download_load(pid) + comm_load(pid); }
  /// Distinct object types downloaded by the processor (ascending).
  std::vector<int> download_types(int pid) const;
  /// Realized traffic between two live processors (both directions).
  MBps pair_traffic(int a, int b) const;

  /// Validates every live processor and link; true when all fit.
  bool feasible() const;

  Dollars total_cost() const;

  /// Finalizes into a dense Allocation (downloads left empty — filled by the
  /// server-selection phase).  Requires all operators assigned.
  Allocation to_allocation() const;

  /// Tree neighbors (parent + operator children) of `op`, with the data
  /// volume (rho * delta) carried by the connecting edge.
  std::vector<std::pair<int, MBps>> neighbors(int op) const;

 private:
  struct ProcState {
    ProcessorConfig cfg;
    bool live = false;
    std::vector<int> ops;
    MegaOps work = 0.0;              // sum of w_i (rho applied at check time)
    std::map<int, int> type_count;   // object type -> #ops here needing it
    MBps download = 0.0;
    MBps comm = 0.0;                 // crossing in+out charged to this card
  };

  void assign_op(int op, int pid);
  void unassign_op(int op);
  void place_unchecked(const std::vector<int>& ops, int pid);
  ProcState& proc(int pid) { return procs_[static_cast<std::size_t>(pid)]; }
  const ProcState& proc(int pid) const {
    return procs_[static_cast<std::size_t>(pid)];
  }

  Problem problem_;
  std::vector<ProcState> procs_;
  std::vector<int> op_to_proc_;
  LinkLedger pp_links_;
  int num_unassigned_ = 0;
};

} // namespace insp
