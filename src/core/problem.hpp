// A complete allocation problem instance: the application (operator tree),
// the fixed platform (servers + links), the purchasable processor catalog,
// and the required throughput rho (paper: QoS constraint, rho = 1 in all
// experiments).
#pragma once

#include "platform/catalog.hpp"
#include "platform/platform.hpp"
#include "tree/operator_tree.hpp"
#include "util/units.hpp"

namespace insp {

struct Problem {
  const OperatorTree* tree = nullptr;
  const Platform* platform = nullptr;
  const PriceCatalog* catalog = nullptr;
  Throughput rho = 1.0;

  bool valid() const {
    return tree != nullptr && platform != nullptr && catalog != nullptr &&
           rho > 0.0 &&
           platform->num_object_types() >= tree->catalog().count();
  }
};

} // namespace insp
