#include "core/server_selection.hpp"

#include <limits>

#include <algorithm>
#include <map>
#include <sstream>

#include "net/bandwidth_ledger.hpp"

namespace insp {

namespace {

/// One outstanding download demand: processor u needs object type t.
struct Demand {
  int proc;
  int type;
};

std::vector<Demand> collect_demands(const Problem& problem,
                                    const Allocation& alloc) {
  std::vector<Demand> out;
  const auto needed = needed_types_per_processor(problem, alloc);
  for (std::size_t u = 0; u < needed.size(); ++u) {
    for (int t : needed[u]) {
      out.push_back({static_cast<int>(u), t});
    }
  }
  return out;
}

std::vector<MBps> server_capacities(const Platform& plat) {
  std::vector<MBps> caps;
  caps.reserve(static_cast<std::size_t>(plat.num_servers()));
  for (int l = 0; l < plat.num_servers(); ++l) {
    caps.push_back(plat.server(l).card_bandwidth);
  }
  return caps;
}

} // namespace

ServerSelectionResult select_servers_random(const Problem& problem,
                                            Allocation& alloc, Rng& rng) {
  const Platform& plat = *problem.platform;
  for (auto& p : alloc.processors) p.downloads.clear();

  for (const auto& d : collect_demands(problem, alloc)) {
    const auto& hosts = plat.servers_with(d.type);
    if (hosts.empty()) {
      return {false, "object type " + std::to_string(d.type) +
                         " is hosted by no server"};
    }
    const int server = hosts[rng.index(hosts.size())];
    alloc.processors[static_cast<std::size_t>(d.proc)].downloads.push_back(
        {d.type, server});
  }

  // The random policy is capacity-oblivious (paper §4.2); validate now so
  // overloads surface as heuristic failures rather than silent bad plans.
  CardLedger cards(server_capacities(plat));
  LinkLedger links(plat.link_server_proc());
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    for (const auto& dl : alloc.processors[u].downloads) {
      const MBps r = problem.tree->catalog().type(dl.object_type).rate();
      cards.add(dl.server, r);
      links.add(dl.server, static_cast<int>(u), r);
    }
  }
  for (int l = 0; l < plat.num_servers(); ++l) {
    if (!fits_within(cards.used(l), cards.capacity(l))) {
      return {false, "random server selection overloads server card S" +
                         std::to_string(l)};
    }
  }
  if (!links.all_within()) {
    return {false, "random server selection overloads a server-proc link"};
  }
  return {true, ""};
}

ServerSelectionResult select_servers_three_loop(const Problem& problem,
                                                Allocation& alloc) {
  const Platform& plat = *problem.platform;
  const ObjectCatalog& objects = problem.tree->catalog();
  for (auto& p : alloc.processors) p.downloads.clear();

  CardLedger cards(server_capacities(plat));
  LinkLedger links(plat.link_server_proc());

  auto rate_of = [&](int type) { return objects.type(type).rate(); };
  auto can_route = [&](int server, int proc, MBps r) {
    return cards.can_add(server, r) && links.can_add(server, proc, r);
  };
  auto route = [&](int server, int proc, int type) {
    const MBps r = rate_of(type);
    cards.add(server, r);
    links.add(server, proc, r);
    alloc.processors[static_cast<std::size_t>(proc)].downloads.push_back(
        {type, server});
  };

  std::vector<Demand> pending = collect_demands(problem, alloc);

  // ---- Loop 1: types with a single hosting server have no choice. --------
  {
    std::vector<Demand> still;
    for (const auto& d : pending) {
      const auto& hosts = plat.servers_with(d.type);
      if (hosts.empty()) {
        return {false, "object type " + std::to_string(d.type) +
                           " is hosted by no server"};
      }
      if (hosts.size() == 1) {
        const int s = hosts.front();
        if (!can_route(s, d.proc, rate_of(d.type))) {
          std::ostringstream ss;
          ss << "loop1: exclusive server S" << s << " cannot sustain type "
             << d.type << " for P" << d.proc;
          return {false, ss.str()};
        }
        route(s, d.proc, d.type);
      } else {
        still.push_back(d);
      }
    }
    pending = std::move(still);
  }

  // ---- Loop 2: prefer servers that host a single object type. ------------
  {
    std::vector<Demand> still;
    for (const auto& d : pending) {
      bool routed = false;
      for (int s : plat.servers_with(d.type)) {
        if (plat.server(s).object_types.size() == 1 &&
            can_route(s, d.proc, rate_of(d.type))) {
          route(s, d.proc, d.type);
          routed = true;
          break;
        }
      }
      if (!routed) still.push_back(d);
    }
    pending = std::move(still);
  }

  // ---- Loop 3: remaining demands, types by decreasing nbP/nbS. -----------
  {
    std::map<int, int> nbP;  // type -> #processors still needing it
    for (const auto& d : pending) ++nbP[d.type];
    auto nbS = [&](int type) {
      int n = 0;
      const MBps r = rate_of(type);
      for (int s : plat.servers_with(type)) {
        if (cards.can_add(s, r)) ++n;
      }
      return n;
    };
    std::vector<int> types;
    std::map<int, double> ratio;
    for (const auto& [t, np] : nbP) {
      const int ns = nbS(t);
      ratio[t] = ns == 0 ? std::numeric_limits<double>::infinity()
                         : static_cast<double>(np) / ns;
      types.push_back(t);
    }
    std::sort(types.begin(), types.end(), [&](int a, int b) {
      if (ratio[a] != ratio[b]) return ratio[a] > ratio[b];
      return a < b;
    });

    std::vector<MBps> link_headroom;
    for (int t : types) {
      const MBps r = rate_of(t);
      for (const auto& d : pending) {
        if (d.type != t) continue;
        // Pick the hosting server with the largest usable headroom
        // min(card headroom, link headroom) (paper: "servers are considered
        // in decreasing order of the minimum between the remaining bandwidth
        // capacity of the servers network card, and the bandwidth of the
        // communication link").  The link headrooms for every hosting server
        // come from one sweep of the ledger instead of a map lookup each.
        const auto& hosts = plat.servers_with(t);
        link_headroom.resize(hosts.size());
        links.batch_headroom(d.proc, hosts.data(), hosts.size(),
                             link_headroom.data());
        int best = -1;
        MBps best_headroom = -1.0;
        for (std::size_t i = 0; i < hosts.size(); ++i) {
          const int s = hosts[i];
          const MBps h = std::min(cards.headroom(s), link_headroom[i]);
          if (h > best_headroom) {
            best_headroom = h;
            best = s;
          }
        }
        if (best < 0 || !can_route(best, d.proc, r)) {
          std::ostringstream ss;
          ss << "loop3: no server can sustain type " << t << " for P"
             << d.proc;
          return {false, ss.str()};
        }
        route(best, d.proc, t);
      }
    }
  }

  // Keep download lists deterministic for output stability.
  for (auto& p : alloc.processors) {
    std::sort(p.downloads.begin(), p.downloads.end(),
              [](const DownloadRoute& a, const DownloadRoute& b) {
                if (a.object_type != b.object_type) {
                  return a.object_type < b.object_type;
                }
                return a.server < b.server;
              });
  }
  return {true, ""};
}

} // namespace insp
