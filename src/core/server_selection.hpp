// Phase 2 of every allocation heuristic (paper §4.2): decide, for every
// processor and every basic-object type it needs, which data server the
// continuous download streams from — subject to server card capacities
// (eq 3) and server->processor link capacities (eq 4).
//
// Two policies, exactly as the paper pairs them:
//  - Random server selection (used with the Random placement heuristic):
//    pick a uniformly random hosting server per (processor, type); no
//    capacity awareness — validation happens afterwards and failures are
//    heuristic failures.
//  - The "sophisticated" three-loop heuristic (used with all the others):
//      loop 1: types held by exactly one server must download from it; if
//              capacities cannot support that, the heuristic fails;
//      loop 2: route as many downloads as possible to servers that host a
//              single object type;
//      loop 3: remaining (type, processor) demands, types in decreasing
//              nbP/nbS (processors still needing the type / servers still
//              able to provide it); per demand pick the server maximizing
//              min(remaining card bandwidth, remaining link bandwidth).
#pragma once

#include <string>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "util/rng.hpp"

namespace insp {

struct ServerSelectionResult {
  bool success = false;
  std::string failure_reason;
};

ServerSelectionResult select_servers_random(const Problem& problem,
                                            Allocation& alloc, Rng& rng);

ServerSelectionResult select_servers_three_loop(const Problem& problem,
                                                Allocation& alloc);

} // namespace insp
