#include "core/strategy_registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/ablation_variants.hpp"

namespace insp {

const std::vector<PlacementStrategy>& placement_registry() {
  static const std::vector<PlacementStrategy> kRegistry = {
      {HeuristicKind::Random, "Random", "random", 'R', place_random,
       ServerSelectionKind::RandomChoice, true},
      {HeuristicKind::CompGreedy, "Comp-Greedy", "comp-greedy", 'W',
       place_comp_greedy, ServerSelectionKind::ThreeLoop, true},
      {HeuristicKind::CommGreedy, "Comm-Greedy", "comm-greedy", 'C',
       place_comm_greedy, ServerSelectionKind::ThreeLoop, true},
      {HeuristicKind::SubtreeBottomUp, "Subtree-bottom-up", "sbu", 'S',
       place_subtree_bottom_up, ServerSelectionKind::ThreeLoop, true},
      {HeuristicKind::ObjectGrouping, "Object-Grouping", "object-grouping",
       'G', place_object_grouping, ServerSelectionKind::ThreeLoop, true},
      {HeuristicKind::ObjectAvailability, "Object-Availability",
       "object-availability", 'A', place_object_availability,
       ServerSelectionKind::ThreeLoop, true},
      // Ablation variants keep their base heuristic's selection pairing.
      {HeuristicKind::SbuNoCoalesce, "SBU-No-Coalesce", "sbu-no-coalesce",
       's', place_subtree_bottom_up_no_coalesce,
       ServerSelectionKind::ThreeLoop, false},
      {HeuristicKind::RandomPairGrouping, "Random-Pair-Grouping",
       "random-pair", 'r', place_random_pair_grouping,
       ServerSelectionKind::RandomChoice, false},
  };
  return kRegistry;
}

const PlacementStrategy& strategy_for(HeuristicKind kind) {
  for (const PlacementStrategy& s : placement_registry()) {
    if (s.kind == kind) return s;
  }
  // A kind without a registry row is a programming error; silently running
  // a different strategy would corrupt experiment results, so die loudly
  // even in release builds.
  std::fprintf(stderr,
               "strategy_for: HeuristicKind %d has no registry entry\n",
               static_cast<int>(kind));
  std::abort();
}

const PlacementStrategy* strategy_by_name(const std::string& name) {
  for (const PlacementStrategy& s : placement_registry()) {
    if (name == s.name || name == s.cli_name) return &s;
  }
  return nullptr;
}

const std::vector<HeuristicKind>& all_heuristics() {
  static const std::vector<HeuristicKind> kAll = [] {
    std::vector<HeuristicKind> kinds;
    for (const PlacementStrategy& s : placement_registry()) {
      if (s.paper_core) kinds.push_back(s.kind);
    }
    return kinds;
  }();
  return kAll;
}

const char* heuristic_name(HeuristicKind kind) {
  return strategy_for(kind).name;
}

std::optional<HeuristicKind> heuristic_from_name(const std::string& name) {
  const PlacementStrategy* s = strategy_by_name(name);
  if (s == nullptr) return std::nullopt;
  return s->kind;
}

} // namespace insp
