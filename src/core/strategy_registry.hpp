// Unified catalog of operator-placement strategies: the paper's six
// heuristics (§4.1) plus the documented ablation variants (docs/DESIGN.md
// §3), each bundling the enum kind, canonical display name, CLI spelling,
// placement function, and the server-selection policy the paper pairs it
// with.  The allocator pipeline, the experiment harness, and the bench CLI
// flag parsing all consume this one table instead of maintaining parallel
// switch statements, name lists, and function maps.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/placement_heuristics.hpp"

namespace insp {

enum class HeuristicKind {
  // The paper's six, in presentation order.
  Random,
  CompGreedy,
  CommGreedy,
  SubtreeBottomUp,
  ObjectGrouping,
  ObjectAvailability,
  // Ablation variants of documented design decisions (docs/DESIGN.md §3).
  SbuNoCoalesce,
  RandomPairGrouping,
};

enum class ServerSelectionKind {
  /// Resolve to the strategy's registered pairing (paper: Random placement
  /// -> random selection; all other heuristics -> the sophisticated
  /// three-loop selection).
  PaperDefault,
  RandomChoice,
  ThreeLoop,
};

struct PlacementStrategy {
  HeuristicKind kind;
  const char* name;      ///< canonical display name (the paper's spelling)
  const char* cli_name;  ///< lower-case spelling for --heuristics flags
  char marker;           ///< single-char series marker for ASCII charts
  PlacementFn place;
  /// The server-selection phase this strategy is paired with when the
  /// caller asks for PaperDefault.  Never PaperDefault itself.
  ServerSelectionKind default_selection;
  bool paper_core;  ///< one of the paper's six (vs an ablation variant)
};

/// Every registered strategy: the paper's six first, then the ablations.
const std::vector<PlacementStrategy>& placement_registry();

/// Registry row for a kind (every enumerator is registered).
const PlacementStrategy& strategy_for(HeuristicKind kind);

/// Lookup by display or CLI name; nullptr when unknown.
const PlacementStrategy* strategy_by_name(const std::string& name);

/// The paper's six, in the paper's presentation order.
const std::vector<HeuristicKind>& all_heuristics();
const char* heuristic_name(HeuristicKind kind);
std::optional<HeuristicKind> heuristic_from_name(const std::string& name);

} // namespace insp
