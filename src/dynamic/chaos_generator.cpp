#include "dynamic/chaos_generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace insp {

const char* to_string(ChaosClass cls) {
  switch (cls) {
    case ChaosClass::RackFailure: return "rack-failure";
    case ChaosClass::Flapping: return "flapping";
    case ChaosClass::Brownout: return "brownout";
    case ChaosClass::Partition: return "partition";
  }
  return "unknown";
}

const std::vector<ChaosClass>& all_chaos_classes() {
  static const std::vector<ChaosClass> classes{
      ChaosClass::RackFailure, ChaosClass::Flapping, ChaosClass::Brownout,
      ChaosClass::Partition};
  return classes;
}

bool is_beat_loss(ChaosClass cls) { return cls != ChaosClass::Brownout; }

namespace {

bool affects(const ChaosFault& fault, int server) {
  return std::binary_search(fault.servers.begin(), fault.servers.end(),
                            server);
}

/// Visits the down phases [start, end) of a fault.  Brownout has none.
template <typename Fn>
void visit_down_phases(const ChaosFault& fault, Fn&& fn) {
  if (fault.cls == ChaosClass::Brownout) return;
  for (int i = 0; i < fault.flaps; ++i) {
    const double start =
        fault.start_s + i * (fault.down_s + fault.up_gap_s);
    fn(start, start + fault.down_s);
  }
}

} // namespace

ChaosTrace generate_chaos(Rng& rng, const ChaosGenConfig& cfg,
                          int num_servers) {
  assert(num_servers >= 2);
  const double interval = cfg.beat_interval_s;
  assert(interval > 0.0);
  ChaosTrace trace;
  trace.num_servers = num_servers;
  trace.beat_interval_s = interval;

  // Detectability floors, in beats.  A down phase must outlive the
  // detection timeout, an up gap must outlive the recovery confirmation
  // window, and consecutive faults are spaced so the recovery inference of
  // one fault always precedes the failure inference of the next — the
  // invariant behind the inferred-vs-oracle equivalence rule (DESIGN §12).
  const int down_floor = static_cast<int>(std::ceil(cfg.timeout_beats)) + 2;
  const int up_floor = cfg.recovery_beats + 2;
  const int gap_floor = static_cast<int>(std::ceil(cfg.timeout_beats)) +
                        cfg.recovery_beats + 3;

  const double weights[] = {cfg.w_rack, cfg.w_flap, cfg.w_brownout,
                            cfg.w_partition};
  double total_weight = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total_weight += w;
  }
  assert(total_weight > 0.0);

  // All scheduling happens in whole beats; seconds are produced by one
  // final multiply, so every fault instant is an exact beat multiple.
  long long cursor = cfg.start_beats;
  for (int k = 0; k < cfg.num_faults; ++k) {
    double draw = rng.uniform_real(0.0, total_weight);
    std::size_t ci = 0;
    while (ci + 1 < std::size(weights) && draw >= weights[ci]) {
      draw -= weights[ci];
      ++ci;
    }
    ChaosFault f;
    f.cls = all_chaos_classes()[ci];
    const long long down_beats =
        down_floor + rng.uniform_int(0, cfg.extra_down_beats);
    long long total_beats = down_beats;
    f.start_s = static_cast<double>(cursor) * interval;
    switch (f.cls) {
      case ChaosClass::RackFailure: {
        const int size =
            std::clamp(cfg.rack_size, 1, num_servers - 1);
        const int first =
            static_cast<int>(rng.index(static_cast<std::size_t>(
                num_servers - size + 1)));
        for (int s = 0; s < size; ++s) f.servers.push_back(first + s);
        f.down_s = static_cast<double>(down_beats) * interval;
        break;
      }
      case ChaosClass::Flapping: {
        f.servers.push_back(
            static_cast<int>(rng.index(static_cast<std::size_t>(num_servers))));
        f.flaps = static_cast<int>(rng.uniform_int(cfg.flaps_lo, cfg.flaps_hi));
        const long long up_beats =
            up_floor + rng.uniform_int(0, cfg.extra_down_beats);
        f.down_s = static_cast<double>(down_beats) * interval;
        f.up_gap_s = static_cast<double>(up_beats) * interval;
        total_beats = f.flaps * down_beats + (f.flaps - 1) * up_beats;
        break;
      }
      case ChaosClass::Brownout: {
        f.servers.push_back(
            static_cast<int>(rng.index(static_cast<std::size_t>(num_servers))));
        const long long delay_beats =
            static_cast<long long>(std::ceil(cfg.timeout_beats)) + 1 +
            rng.uniform_int(0, 2);
        f.beat_delay_s = static_cast<double>(delay_beats) * interval;
        // The window holds the full false-positive round trip: the delayed
        // silence, the recovery chain over delayed beats, and slack.
        total_beats = delay_beats + cfg.recovery_beats + 2 + down_beats;
        break;
      }
      case ChaosClass::Partition: {
        const int size =
            std::clamp(cfg.partition_size, 1, num_servers - 1);
        std::vector<int> ids(static_cast<std::size_t>(num_servers));
        for (int s = 0; s < num_servers; ++s)
          ids[static_cast<std::size_t>(s)] = s;
        rng.shuffle(ids);
        ids.resize(static_cast<std::size_t>(size));
        f.servers = std::move(ids);
        f.down_s = static_cast<double>(down_beats) * interval;
        break;
      }
    }
    std::sort(f.servers.begin(), f.servers.end());
    f.end_s = static_cast<double>(cursor + total_beats) * interval;
    trace.faults.push_back(std::move(f));
    cursor += total_beats + gap_floor + rng.uniform_int(0, cfg.extra_gap_beats);
  }
  // Enough trailing beats for the last recovery inference to complete.
  trace.horizon_s = static_cast<double>(
                        cursor + static_cast<long long>(
                                     std::ceil(cfg.timeout_beats)) +
                        cfg.recovery_beats + 4) *
                    interval;
  return trace;
}

std::vector<BeatObservation> chaos_beats(const ChaosTrace& trace) {
  const double interval = trace.beat_interval_s;
  const long long n_beats =
      static_cast<long long>(std::floor(trace.horizon_s / interval + 1e-9));
  std::vector<BeatObservation> beats;
  beats.reserve(static_cast<std::size_t>(n_beats) *
                static_cast<std::size_t>(trace.num_servers));
  for (int s = 0; s < trace.num_servers; ++s) {
    for (long long k = 1; k <= n_beats; ++k) {
      const double t = static_cast<double>(k) * interval;
      bool dropped = false;
      double delay = 0.0;
      for (const ChaosFault& f : trace.faults) {
        if (t < f.start_s || t >= f.end_s || !affects(f, s)) continue;
        if (f.cls == ChaosClass::Brownout) {
          delay = f.beat_delay_s;
        } else {
          visit_down_phases(f, [&](double start, double end) {
            if (t >= start && t < end) dropped = true;
          });
        }
      }
      if (!dropped) beats.push_back({t + delay, s});
    }
  }
  std::sort(beats.begin(), beats.end(),
            [](const BeatObservation& a, const BeatObservation& b) {
              return a.time != b.time ? a.time < b.time
                                      : a.server < b.server;
            });
  return beats;
}

EventTrace chaos_oracle_trace(const ChaosTrace& trace) {
  EventTrace oracle;
  for (const ChaosFault& f : trace.faults) {
    visit_down_phases(f, [&](double start, double end) {
      for (int s : f.servers) {
        WorkloadEvent down;
        down.time = start;
        down.kind = EventKind::ServerFailure;
        down.server = s;
        oracle.events.push_back(down);
        WorkloadEvent up;
        up.time = end;
        up.kind = EventKind::ServerRecovery;
        up.server = s;
        oracle.events.push_back(up);
      }
    });
  }
  std::sort(oracle.events.begin(), oracle.events.end(),
            [](const WorkloadEvent& a, const WorkloadEvent& b) {
              return a.time != b.time ? a.time < b.time
                                      : a.server < b.server;
            });
  return oracle;
}

std::vector<TruthTransition> chaos_transitions(const ChaosTrace& trace) {
  std::vector<TruthTransition> out;
  for (std::size_t fi = 0; fi < trace.faults.size(); ++fi) {
    const ChaosFault& f = trace.faults[fi];
    if (f.cls == ChaosClass::Brownout) {
      for (int s : f.servers) {
        out.push_back({f.start_s, s, true, static_cast<int>(fi)});
        out.push_back(
            {f.start_s + f.beat_delay_s, s, false, static_cast<int>(fi)});
      }
      continue;
    }
    visit_down_phases(f, [&](double start, double end) {
      for (int s : f.servers) {
        out.push_back({start, s, true, static_cast<int>(fi)});
        out.push_back({end, s, false, static_cast<int>(fi)});
      }
    });
  }
  std::sort(out.begin(), out.end(),
            [](const TruthTransition& a, const TruthTransition& b) {
              return a.time != b.time ? a.time < b.time
                                      : a.server < b.server;
            });
  return out;
}

std::vector<bool> servers_up_at(const ChaosTrace& trace, double time_s) {
  std::vector<bool> up(static_cast<std::size_t>(trace.num_servers), true);
  for (const ChaosFault& f : trace.faults) {
    visit_down_phases(f, [&](double start, double end) {
      if (time_s >= start && time_s < end) {
        for (int s : f.servers) up[static_cast<std::size_t>(s)] = false;
      }
    });
  }
  return up;
}

} // namespace insp
