// Seeded chaos scenario engine (docs/DESIGN.md §12).  The workload-event
// layer (workload_events.hpp) models failures as *oracle* trace events: the
// allocator is told `ServerFailure` the instant it happens.  The chaos layer
// drops that oracle: a ChaosTrace is a ground-truth fault schedule over the
// data servers, and everything the system may observe about it is the
// per-server heartbeat stream derived by chaos_beats() — the failure
// detector (src/health/) must *infer* the transitions from missed or
// delayed beats.
//
// Four fault classes, the taxonomy production stream platforms actually
// see (correlated loss, churn, gray failure, reachability):
//
//   RackFailure  a contiguous rack of servers fails at one instant and
//                recovers together (correlated beat loss);
//   Flapping     one server cycles down/up several times (churn at the
//                detection boundary);
//   Brownout     a slow node: beats are *delayed* past the detection
//                timeout, not lost — the server never actually goes down,
//                so every inference the detector makes about it is a
//                (deliberate, measured) false positive it must also undo;
//   Partition    a set of servers becomes unreachable — links down,
//                servers up — which is observationally identical to
//                failure (beats lost) but heals instantaneously.
//
// Everything is scheduled on the virtual clock in whole-beat units, faults
// are disjoint in time, and the generator enforces detectability floors
// (every down phase outlives the detection timeout, every up gap outlives
// the recovery confirmation window, faults are spaced so inferred
// transitions never reorder against ground truth).  Those floors are what
// make the inferred-vs-oracle differential test subsystem possible:
// chaos_oracle_trace() renders the same ground truth as a classic oracle
// EventTrace, and for beat-loss classes the detector-driven replay must
// reach the same final allocation and replay signature.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/workload_events.hpp"

namespace insp {

enum class ChaosClass {
  RackFailure,
  Flapping,
  Brownout,
  Partition,
};

const char* to_string(ChaosClass cls);
/// All four classes, in declaration order (bench/test sweeps).
const std::vector<ChaosClass>& all_chaos_classes();
/// True for the classes whose beats are lost outright (RackFailure,
/// Flapping, Partition) — the classes covered by the oracle-equivalence
/// rule.  Brownout delays beats instead and has no oracle transitions.
bool is_beat_loss(ChaosClass cls);

struct ChaosFault {
  ChaosClass cls = ChaosClass::RackFailure;
  std::vector<int> servers;  ///< affected servers, ascending
  double start_s = 0.0;      ///< first down-phase (or brownout) onset
  double end_s = 0.0;        ///< end of the last down phase / brownout window
  int flaps = 1;             ///< down phases (> 1 only for Flapping)
  double down_s = 0.0;       ///< length of each down phase (beat-loss classes)
  double up_gap_s = 0.0;     ///< up time between flap phases
  double beat_delay_s = 0.0; ///< Brownout: per-beat arrival delay
};

struct ChaosTrace {
  int num_servers = 0;
  double beat_interval_s = 1.0;
  double horizon_s = 0.0;  ///< beats are scheduled over (0, horizon]
  std::vector<ChaosFault> faults;  ///< disjoint in time, sorted by start
};

/// Durations below are in *beats* (multiples of beat_interval_s); the
/// generator adds them on top of the detectability floors derived from the
/// detector parameters, so any generated trace is fully detectable by a
/// detector configured with the same (timeout_beats, recovery_beats).
struct ChaosGenConfig {
  int num_faults = 6;
  double beat_interval_s = 1.0;
  double timeout_beats = 3.0;  ///< must match FailureDetectorConfig
  int recovery_beats = 2;      ///< ditto

  /// Relative class weights; a weight of 0 removes the class (the
  /// differential tests zero w_brownout to stay in the beat-loss family).
  double w_rack = 1.0;
  double w_flap = 1.0;
  double w_brownout = 1.0;
  double w_partition = 1.0;

  int rack_size = 2;       ///< servers per rack (clamped to num_servers - 1)
  int partition_size = 2;  ///< unreachable set size (ditto)
  int flaps_lo = 2;
  int flaps_hi = 3;
  int extra_down_beats = 4;  ///< uniform extra down time over the floor
  int extra_gap_beats = 6;   ///< uniform extra gap between faults
  int start_beats = 4;       ///< quiet beats before the first fault
};

/// Deterministic given the Rng state.  Requires num_servers >= 2; affected
/// sets never cover the whole platform, so a fully replicated world stays
/// feasible through any single fault.
ChaosTrace generate_chaos(Rng& rng, const ChaosGenConfig& config,
                          int num_servers);

/// One heartbeat as the monitor observes it: server `server`'s beat
/// arriving at `time` on the virtual clock.  Beats scheduled inside a down
/// phase are absent from the stream; brownout beats carry their delay.
struct BeatObservation {
  double time = 0.0;
  int server = -1;
};

/// The beat stream of a chaos trace, sorted by (arrival time, server).
std::vector<BeatObservation> chaos_beats(const ChaosTrace& trace);

/// Ground-truth availability rendered as a classic oracle EventTrace:
/// ServerFailure at every down-phase start and ServerRecovery at its end,
/// sorted by (time, server).  Brownout faults contribute nothing (the
/// server never goes down).  This is the yardstick of the differential
/// test subsystem: replaying it must land where the detector-driven
/// monitor lands.
EventTrace chaos_oracle_trace(const ChaosTrace& trace);

/// One ground-truth availability transition, for detection-latency scoring.
/// Brownout faults contribute a `down` transition at onset (the node goes
/// gray — a detector *should* flag it) and an `up` transition at onset +
/// beat_delay (the earliest instant a delayed beat can prove life).
struct TruthTransition {
  double time = 0.0;
  int server = -1;
  bool down = false;
  int fault = -1;  ///< index into ChaosTrace::faults
};

/// All transitions, sorted by (time, server).
std::vector<TruthTransition> chaos_transitions(const ChaosTrace& trace);

/// Ground-truth server availability at an instant (brownout servers are
/// up: slow, not dead).  Feeds SimPlatformView::degraded for validating
/// repaired allocations against the world as it actually is.
std::vector<bool> servers_up_at(const ChaosTrace& trace, double time_s);

} // namespace insp
