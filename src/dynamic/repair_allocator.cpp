#include "dynamic/repair_allocator.hpp"

#include <algorithm>
#include <cassert>

#include "core/constraints.hpp"
#include "core/local_search.hpp"
#include "core/server_selection.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace insp {

const char* to_string(EventError error) {
  switch (error) {
    case EventError::kNone: return "none";
    case EventError::kUnknownApp: return "unknown-app";
    case EventError::kDuplicateArrival: return "duplicate-arrival";
    case EventError::kServerOutOfRange: return "server-out-of-range";
    case EventError::kObjectOutOfRange: return "object-out-of-range";
    case EventError::kBadRate: return "bad-rate";
    case EventError::kBadRho: return "bad-rho";
    case EventError::kBadArrivalTree: return "bad-arrival-tree";
  }
  return "unknown";
}

DynamicAllocator::DynamicAllocator(std::vector<ApplicationSpec> initial_apps,
                                   Platform platform, PriceCatalog catalog,
                                   RepairOptions options)
    : opt_(options),
      catalog_(std::move(catalog)),
      base_platform_(platform),
      platform_(std::move(platform)),
      rng_(0) {
  server_up_.assign(static_cast<std::size_t>(base_platform_.num_servers()),
                    true);
  for (std::size_t a = 0; a < initial_apps.size(); ++a) {
    app_ids_.push_back(static_cast<int>(a));
    apps_.push_back(std::move(initial_apps[a]));
  }
  next_arrival_id_ = static_cast<int>(apps_.size());
}

Problem DynamicAllocator::problem() const {
  Problem p;
  p.tree = &forest_;
  p.platform = &platform_;
  p.catalog = &catalog_;
  p.rho = 1.0;  // per-app rhos are folded into the forest demands
  return p;
}

bool DynamicAllocator::has_app(int app_id) const {
  return app_slot(app_id) >= 0;
}

Throughput DynamicAllocator::rho_of(int app_id) const {
  const int slot = app_slot(app_id);
  assert(slot >= 0);
  return apps_[static_cast<std::size_t>(slot)].rho;
}

int DynamicAllocator::num_servers_down() const {
  int n = 0;
  for (bool up : server_up_) n += up ? 0 : 1;
  return n;
}

int DynamicAllocator::app_slot(int app_id) const {
  for (std::size_t s = 0; s < app_ids_.size(); ++s) {
    if (app_ids_[s] == app_id) return static_cast<int>(s);
  }
  return -1;
}

void DynamicAllocator::rebuild_platform() {
  platform_ = base_platform_.degraded(server_up_);
}

RepairReport DynamicAllocator::initialize(std::uint64_t seed) {
  assert(!initialized_);
  assert(!apps_.empty());
  rng_ = Rng(seed);
  rebuild_platform();
  RepairReport rep;
  rep.cost_before = 0.0;
  refold_and_replay({}, {}, {});
  if (fallback_scratch(rep)) {
    rep.success = true;
    initialized_ = true;
  }
  // The initial allocation is provisioning, not disruption.
  rep.ops_moved = 0;
  rep.used_fallback = false;
  rep.procs_retired = 0;
  rep.procs_bought = alloc_.num_processors();
  rep.cost_after = cost();
  return rep;
}

void DynamicAllocator::refold_and_replay(
    const std::vector<std::vector<int>>& prev_home,
    const std::vector<ProcessorConfig>& prev_configs,
    const std::vector<int>& prev_live) {
  if (apps_.empty()) {
    forest_ = OperatorTree();
    op_app_slot_.clear();
    state_.reset();
    alloc_ = Allocation{};
    return;
  }
  CombinedApplication combined = combine_applications(apps_);
  forest_ = std::move(combined.forest);
  op_app_slot_ = std::move(combined.app_of_op);
  state_.emplace(problem());

  // Re-buy the surviving processors (old pid -> new pid, purchase order
  // preserved) and replay the surviving assignment verbatim: existing
  // applications are not disrupted by a structural event.
  std::vector<int> new_pid(prev_configs.size(), -1);
  for (int old_pid : prev_live) {
    new_pid[static_cast<std::size_t>(old_pid)] =
        state_->buy(prev_configs[static_cast<std::size_t>(old_pid)]);
  }
  for (std::size_t s = 0; s < prev_home.size(); ++s) {
    const int offset = combined.op_offset_of_app[s];
    for (std::size_t i = 0; i < prev_home[s].size(); ++i) {
      const int old_pid = prev_home[s][i];
      // kNoNode: the operator was unassigned in a degraded state (a failed
      // earlier event); it stays unassigned and place_unassigned or the
      // fallback picks it up.
      if (old_pid < 0) continue;
      state_->search_place(offset + static_cast<int>(i),
                           new_pid[static_cast<std::size_t>(old_pid)]);
    }
  }
}

namespace {

/// Batched relaxed first-fit: one journal baseline judges every candidate,
/// then the committing probe re-validates the winner (falling back to the
/// scalar scan if the two ever disagree on a boundary-epsilon case).
bool first_fit_relaxed(PlacementState& state, int op,
                       const std::vector<int>& pids) {
  const int target = state.first_feasible_target(op, pids, /*relaxed=*/true);
  if (target == kNoNode) return false;
  if (state.try_place_relaxed(op, target)) return true;
  for (int pid : pids) {
    if (state.try_place_relaxed(op, pid)) return true;
  }
  return false;
}

/// Per-thread scratch for the repair loops.  repair_violations_plan is const
/// and races on several worker threads during speculative repair, so the
/// buffers must be thread_local rather than members; each worker's vectors
/// reach steady-state capacity after the first round and every later round
/// reuses them without touching the heap.
struct RepairScratch {
  std::vector<int> over_procs;
  std::vector<std::pair<int, int>> over_links;
  std::vector<std::pair<double, int>> keyed;
  std::vector<int> cands;
  std::vector<int> order;
};

RepairScratch& repair_scratch() {
  thread_local RepairScratch scratch;
  return scratch;
}

} // namespace

bool DynamicAllocator::place_unassigned(RepairReport& report) {
  // Arriving operators, bottom-up so children are seated before parents
  // (first-fit then naturally gravitates toward realized neighbors'
  // processors via the link budget).  The relaxed probe is used so an
  // earlier failed event (degraded state) cannot veto unrelated placements.
  std::vector<int>& order = repair_scratch().order;
  order.clear();
  for (int op : forest_.bottom_up_order()) {
    if (state_->proc_of(op) == kNoNode) order.push_back(op);
  }
  for (int op : order) {
    bool placed = first_fit_relaxed(*state_, op, state_->live_processors());
    if (!placed && opt_.allow_purchase) {
      const int pid = state_->buy(catalog_.most_expensive());
      if (state_->try_place_relaxed(op, pid)) {
        ++report.procs_bought;
        placed = true;
      } else {
        state_->sell(pid);
      }
    }
    if (!placed) {
      report.failure_reason = "arrival: operator " + std::to_string(op) +
                              " fits no processor";
      return false;
    }
  }
  return true;
}

bool DynamicAllocator::repair_violations_plan(PlacementState& state,
                                              RepairReport& report,
                                              int plan_index) const {
  const int max_rounds = opt_.max_repair_rounds > 0
                             ? opt_.max_repair_rounds
                             : 4 * state.num_live_processors() + 16;
  RepairScratch& sc = repair_scratch();
  for (int round = 0; round < max_rounds; ++round) {
    state.overloaded_processors(sc.over_procs);
    state.overloaded_links(sc.over_links);
    const std::vector<int>& over_procs = sc.over_procs;
    const std::vector<std::pair<int, int>>& over_links = sc.over_links;
    if (over_procs.empty() && over_links.empty()) return true;

    // Target the lowest overloaded processor; when only links are violated,
    // drain the endpoint carrying more traffic.  Speculative plans rotate
    // both choices by their index (plan 0 is the sequential engine).
    int target;
    bool proc_violation = !over_procs.empty();
    if (proc_violation) {
      target = over_procs[static_cast<std::size_t>(plan_index) %
                          over_procs.size()];
    } else {
      const auto [a, b] = over_links.front();
      const bool heavier_a = state.comm_load(a) >= state.comm_load(b);
      const bool flip = plan_index % 2 == 1;
      target = heavier_a != flip ? a : b;
    }

    // Move 1 — re-purchase in place: the cheapest catalog configuration
    // that meets the processor's new loads (no operator moves at all).
    if (proc_violation) {
      const auto cfg = catalog_.cheapest_meeting(state.cpu_demand(target),
                                                 state.nic_load(target));
      if (cfg && state.try_reconfigure(target, *cfg)) {
        ++report.reconfigures;
        continue;
      }
    }

    // Move 2 — targeted eviction: relocate one operator off the violated
    // resource via the relaxed probe (the source may stay violated, but no
    // touched capacity may get worse and no new violation may appear).
    // Order candidates by their contribution to the violated dimension.
    const std::vector<int>& candidates = state.ops_on(target);
    const MegaOps cpu_excess =
        state.cpu_demand(target) -
        catalog_.speed(state.config(target));
    std::vector<std::pair<double, int>>& keyed = sc.keyed;
    keyed.clear();
    keyed.reserve(candidates.size());
    for (int op : candidates) {
      double key;
      if (proc_violation && cpu_excess > 0.0) {
        key = forest_.op(op).work;
      } else {
        // Bandwidth violation: crossing-edge volume the operator carries.
        key = 0.0;
        state.visit_neighbors(op, [&](int nb, MBps volume) {
          const int q = state.proc_of(nb);
          if (q != kNoNode && q != target) key += volume;
        });
      }
      keyed.emplace_back(key, op);
    }
    std::sort(keyed.begin(), keyed.end(), [](const auto& x, const auto& y) {
      return x.first != y.first ? x.first > y.first : x.second < y.second;
    });
    if (plan_index > 0 && keyed.size() > 1) {
      std::rotate(keyed.begin(),
                  keyed.begin() + plan_index % static_cast<int>(keyed.size()),
                  keyed.end());
    }

    bool moved = false;
    for (const auto& [key, op] : keyed) {
      (void)key;
      std::vector<int>& cands = sc.cands;
      cands.clear();
      for (int q : state.live_processors()) {
        if (q != target) cands.push_back(q);
      }
      if (first_fit_relaxed(state, op, cands)) {
        ++report.ops_moved;
        if (!state.is_live(target)) ++report.procs_retired;
        moved = true;
        break;
      }
    }
    if (moved) continue;

    // Move 3 — bounded re-purchase: a fresh processor for the heaviest
    // evictable operator.
    if (opt_.allow_purchase) {
      const int pid = state.buy(catalog_.most_expensive());
      for (const auto& [key, op] : keyed) {
        (void)key;
        if (state.try_place_relaxed(op, pid)) {
          ++report.ops_moved;
          ++report.procs_bought;
          if (!state.is_live(target)) ++report.procs_retired;
          moved = true;
          break;
        }
      }
      if (moved) continue;
      state.sell(pid);
    }

    report.failure_reason =
        "repair: processor " + std::to_string(target) + " cannot be drained";
    return false;
  }
  report.failure_reason = "repair: round limit exhausted";
  return false;
}

bool DynamicAllocator::repair_violations(RepairReport& report) {
  if (opt_.speculative_plans <= 1) {
    return repair_violations_plan(*state_, report, 0);
  }
  // Speculative parallel repair: race k candidate plans on independent
  // copies of the live state.  Each plan is fully deterministic given its
  // index, and the winner is picked by a total order on the finished
  // results after all plans have joined — so the committed state is
  // bit-identical for any worker-thread count.
  const std::size_t k = static_cast<std::size_t>(opt_.speculative_plans);
  std::vector<PlacementState> states(k, *state_);
  std::vector<RepairReport> reports(k, report);
  std::vector<unsigned char> succeeded(k, 0);
  ThreadPool::parallel_for(
      k, ThreadPool::resolve_num_threads(opt_.speculative_threads),
      [&](std::size_t j) {
        succeeded[j] = repair_violations_plan(states[j], reports[j],
                                              static_cast<int>(j))
                           ? 1
                           : 0;
      });
  // Winner: cheapest projected fleet, then least disruption, then lowest
  // plan index (ascending scan keeps the first of equals).
  auto fleet_cost = [&](std::size_t j) {
    Dollars c = 0.0;
    for (int pid : states[j].live_processors()) {
      c += catalog_.cost(states[j].config(pid));
    }
    return c;
  };
  std::size_t best = k;
  Dollars best_cost = 0.0;
  int best_moved = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (!succeeded[j]) continue;
    const Dollars c = fleet_cost(j);
    const int moved = reports[j].ops_moved;
    if (best == k || c < best_cost - 1e-9 ||
        (c < best_cost + 1e-9 && moved < best_moved)) {
      best = j;
      best_cost = c;
      best_moved = moved;
    }
  }
  // On total failure commit plan 0's trajectory so the failure path (and
  // the scratch fallback that follows it) stays reproducible.
  const std::size_t commit = best == k ? 0 : best;
  *state_ = std::move(states[commit]);
  report = std::move(reports[commit]);
  return best != k;
}

void DynamicAllocator::consolidate(RepairReport& report) {
  // Merge pass (one sweep): fold processor pairs whose merged
  // cheapest-meeting configuration beats the pair — this is how capacity
  // released by a rho decrease or a departure turns back into dollars.
  const std::vector<int> procs = state_->live_processors();
  for (std::size_t i = 0; i < procs.size(); ++i) {
    for (std::size_t j = i + 1; j < procs.size(); ++j) {
      const int a = procs[i], b = procs[j];
      if (!state_->is_live(a) || !state_->is_live(b)) continue;
      const auto merged = projected_merged_cost(*state_, a, b);
      if (!merged) continue;
      const Dollars pair_cost = projected_processor_cost(*state_, a) +
                                projected_processor_cost(*state_, b);
      if (*merged >= pair_cost - 1e-9) continue;
      const int from =
          state_->ops_on(a).size() <= state_->ops_on(b).size() ? a : b;
      const int to = from == a ? b : a;
      const int moved_fwd = static_cast<int>(state_->ops_on(from).size());
      const int moved_rev = static_cast<int>(state_->ops_on(to).size());
      if (state_->try_place(state_->ops_on(from), to)) {
        report.ops_moved += moved_fwd;
        ++report.procs_retired;
      } else if (state_->try_place(state_->ops_on(to), from)) {
        report.ops_moved += moved_rev;
        ++report.procs_retired;
      }
    }
  }
  // Re-pricing pass: the downgrade step, applied in place to the live
  // state (strictly cheaper configurations only).
  for (int pid : state_->live_processors()) {
    const auto cfg = catalog_.cheapest_meeting(state_->cpu_demand(pid),
                                               state_->nic_load(pid));
    if (!cfg) continue;
    if (catalog_.cost(*cfg) >= catalog_.cost(state_->config(pid)) - 1e-9) {
      continue;
    }
    if (state_->try_reconfigure(pid, *cfg)) ++report.reconfigures;
  }
}

bool DynamicAllocator::finish_allocation(RepairReport& report) {
  if (state_->num_unassigned() != 0) {
    report.failure_reason = "finish: unassigned operators remain";
    return false;
  }
  if (!state_->feasible()) {
    report.failure_reason = "finish: placement infeasible";
    return false;
  }
  Allocation candidate = state_->to_allocation();
  const Problem prob = problem();
  const ServerSelectionResult sel =
      select_servers_three_loop(prob, candidate);
  if (!sel.success) {
    report.failure_reason = "server-selection: " + sel.failure_reason;
    return false;
  }
  const CheckReport chk = check_allocation(prob, candidate);
  if (!chk.ok()) {
    report.failure_reason = "validation: " + chk.summary();
    return false;
  }
  alloc_ = std::move(candidate);
  return true;
}

void DynamicAllocator::adopt_allocation(const Allocation& alloc) {
  state_.emplace(problem());
  std::vector<int> pid_of(alloc.processors.size());
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    pid_of[u] = state_->buy(alloc.processors[u].config);
  }
  for (std::size_t op = 0; op < alloc.op_to_proc.size(); ++op) {
    state_->search_place(
        static_cast<int>(op),
        pid_of[static_cast<std::size_t>(alloc.op_to_proc[op])]);
  }
}

bool DynamicAllocator::fallback_scratch(RepairReport& report) {
  const Problem prob = problem();
  const int previously_assigned =
      forest_.num_operators() - (state_ ? state_->num_unassigned() : 0);
  // Try the configured heuristic first, then every other paper heuristic:
  // a scratch failure must mean no registered pipeline can host the world.
  std::vector<HeuristicKind> kinds{opt_.fallback_heuristic};
  for (HeuristicKind k : all_heuristics()) {
    if (k != opt_.fallback_heuristic) kinds.push_back(k);
  }
  for (HeuristicKind kind : kinds) {
    Rng r = rng_.split();
    const AllocationOutcome out = allocate(prob, kind, r);
    if (!out.success) {
      report.failure_reason = "scratch: " + out.failure_reason;
      continue;
    }
    // Scratch re-allocation disrupts every running operator: the plan is
    // rebuilt with no continuity guarantee.
    report.ops_moved += previously_assigned;
    report.procs_retired +=
        state_ ? state_->num_live_processors() : 0;
    report.procs_bought += out.num_processors;
    alloc_ = out.allocation;
    adopt_allocation(alloc_);
    report.failure_reason.clear();
    return true;
  }
  return false;
}

RepairReport DynamicAllocator::apply(const WorkloadEvent& event,
                                     const EventTrace& trace) {
  RepairReport rep;
  assert(initialized_);
  rep.cost_before = cost();

  // Precondition checks (traces are external artifacts; the text loader can
  // only check what the trace itself knows, and the allocation service
  // forwards arbitrary tenant requests here).  A rejected event changes
  // nothing and reports a structured EventError.  Two deliberate
  // exceptions: RhoChange for an app that already departed stays a benign
  // no-op (a tenant's in-flight rate update racing its own departure is
  // normal stream behavior), and duplicate server failure/recovery takes
  // the idempotent already-known path below — while departing a tenant
  // that was never admitted signals a corrupted request stream.
  const auto reject = [&rep](EventError error, std::string reason) {
    rep.error = error;
    rep.failure_reason = std::move(reason);
  };
  switch (event.kind) {
    case EventKind::ObjectRateChange:
      if (event.object_type < 0 ||
          event.object_type >= platform_.num_object_types()) {
        reject(EventError::kObjectOutOfRange,
               "event: object type out of range");
        return rep;
      }
      if (event.freq_hz <= 0.0) {
        reject(EventError::kBadRate, "event: non-positive object rate");
        return rep;
      }
      break;
    case EventKind::ServerFailure:
    case EventKind::ServerRecovery:
      if (event.server < 0 || event.server >= platform_.num_servers()) {
        reject(EventError::kServerOutOfRange, "event: server out of range");
        return rep;
      }
      // Idempotent "already known" path: a duplicate failure (or a recovery
      // of a healthy server) re-asserts state the allocator already holds.
      // Failure detectors re-infer failure during in-flight recoveries as a
      // matter of course, so this is a no-op success, not a stream error.
      if (server_up_[static_cast<std::size_t>(event.server)] ==
          (event.kind == EventKind::ServerRecovery)) {
        rep.already_known = true;
        rep.success = true;
        rep.cost_after = rep.cost_before;
        return rep;
      }
      break;
    case EventKind::AppArrival:
      if (event.arrival_tree < 0 ||
          static_cast<std::size_t>(event.arrival_tree) >=
              trace.arrival_trees.size()) {
        reject(EventError::kBadArrivalTree,
               "event: arrival tree index outside the trace");
        return rep;
      }
      if (event.rho <= 0.0) {
        reject(EventError::kBadRho, "event: non-positive rho");
        return rep;
      }
      if (has_app(event.app_id)) {
        reject(EventError::kDuplicateArrival,
               "event: app " + std::to_string(event.app_id) +
                   " is already live");
        return rep;
      }
      break;
    case EventKind::RhoChange:
      if (event.rho <= 0.0) {
        reject(EventError::kBadRho, "event: non-positive rho");
        return rep;
      }
      break;
    case EventKind::AppDeparture:
      if (!has_app(event.app_id)) {
        reject(EventError::kUnknownApp,
               "event: departure of unknown app " +
                   std::to_string(event.app_id));
        return rep;
      }
      break;
  }
  // With every application departed there is no forest and no catalog to
  // update: a rate change is dropped (the object catalog lives in the
  // application trees).  Server events still flip platform state below,
  // and rho changes / departures no-op through the app_slot lookup.
  if (apps_.empty() && event.kind == EventKind::ObjectRateChange) {
    rep.success = true;
    return rep;
  }

  bool arrival = false;
  switch (event.kind) {
    case EventKind::RhoChange: {
      const int slot = app_slot(event.app_id);
      if (slot < 0) break;  // app already departed: benign no-op
      ApplicationSpec& app = apps_[static_cast<std::size_t>(slot)];
      const double factor = event.rho / app.rho;
      int offset = 0;
      for (int s = 0; s < slot; ++s) {
        offset += apps_[static_cast<std::size_t>(s)].tree.num_operators();
      }
      const int count = app.tree.num_operators();
      for (int i = offset; i < offset + count; ++i) {
        const MegaOps old_w = forest_.op(i).work;
        const MegaBytes old_d = forest_.op(i).output_mb;
        forest_.set_demand(i, old_w * factor, old_d * factor);
        state_->refresh_op_demand(i, old_w, old_d);
      }
      app.rho = event.rho;
      break;
    }
    case EventKind::ObjectRateChange: {
      const MBps old_rate =
          forest_.catalog().type(event.object_type).rate();
      forest_.mutable_catalog().set_type_frequency(event.object_type,
                                                   event.freq_hz);
      for (ApplicationSpec& app : apps_) {
        app.tree.mutable_catalog().set_type_frequency(event.object_type,
                                                      event.freq_hz);
      }
      state_->refresh_object_rate(event.object_type, old_rate);
      break;
    }
    case EventKind::ServerFailure:
    case EventKind::ServerRecovery: {
      server_up_[static_cast<std::size_t>(event.server)] =
          event.kind == EventKind::ServerRecovery;
      rebuild_platform();
      break;
    }
    case EventKind::AppArrival: {
      ApplicationSpec spec;
      spec.tree =
          trace.arrival_trees[static_cast<std::size_t>(event.arrival_tree)];
      spec.rho = event.rho;
      // The arrival tree was generated against the trace-time catalog;
      // sync its frequencies to the world's current values so the folded
      // catalogs agree.
      for (const ObjectType& t : forest_.catalog().all()) {
        spec.tree.mutable_catalog().set_type_frequency(t.id, t.freq_hz);
      }
      std::vector<std::vector<int>> prev_home(apps_.size());
      int offset = 0;
      for (std::size_t s = 0; s < apps_.size(); ++s) {
        const int count = apps_[s].tree.num_operators();
        prev_home[s].reserve(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          prev_home[s].push_back(state_->proc_of(offset + i));
        }
        offset += count;
      }
      std::vector<ProcessorConfig> prev_configs;
      std::vector<int> prev_live;
      if (state_) {  // absent only when arriving into an emptied world
        prev_live = state_->live_processors();
      }
      if (!prev_live.empty()) {
        prev_configs.resize(static_cast<std::size_t>(prev_live.back()) + 1);
        for (int pid : prev_live) {
          prev_configs[static_cast<std::size_t>(pid)] = state_->config(pid);
        }
      }
      app_ids_.push_back(event.app_id);
      apps_.push_back(std::move(spec));
      next_arrival_id_ = std::max(next_arrival_id_, event.app_id + 1);
      refold_and_replay(prev_home, prev_configs, prev_live);
      arrival = true;
      break;
    }
    case EventKind::AppDeparture: {
      const int slot = app_slot(event.app_id);
      if (slot < 0) break;
      std::vector<std::vector<int>> prev_home;
      int offset = 0;
      for (std::size_t s = 0; s < apps_.size(); ++s) {
        const int count = apps_[s].tree.num_operators();
        if (static_cast<int>(s) != slot) {
          std::vector<int> homes;
          homes.reserve(static_cast<std::size_t>(count));
          for (int i = 0; i < count; ++i) {
            homes.push_back(state_->proc_of(offset + i));
          }
          prev_home.push_back(std::move(homes));
        }
        offset += count;
      }
      std::vector<ProcessorConfig> prev_configs;
      const std::vector<int> prev_live = state_->live_processors();
      if (!prev_live.empty()) {
        prev_configs.resize(static_cast<std::size_t>(prev_live.back()) + 1);
        for (int pid : prev_live) {
          prev_configs[static_cast<std::size_t>(pid)] = state_->config(pid);
        }
      }
      const int before_procs = static_cast<int>(prev_live.size());
      app_ids_.erase(app_ids_.begin() + slot);
      apps_.erase(apps_.begin() + slot);
      refold_and_replay(prev_home, prev_configs, prev_live);
      if (state_) {
        // Sell the processors the departure emptied.
        for (int pid : std::vector<int>(state_->live_processors())) {
          if (state_->ops_on(pid).empty()) state_->sell(pid);
        }
        rep.procs_retired +=
            before_procs - state_->num_live_processors();
      }
      break;
    }
  }

  if (apps_.empty()) {
    // Nothing left to run: the empty allocation is trivially valid.
    rep.success = true;
    rep.cost_after = 0.0;
    return rep;
  }

  bool ok = true;
  if (opt_.always_fallback) {
    ok = fallback_scratch(rep);
    rep.used_fallback = true;
  } else {
    // Arrivals, and operators left unassigned by an earlier failed event.
    if (arrival || state_->num_unassigned() > 0) {
      ok = place_unassigned(rep);
    }
    rep.violations_before =
        static_cast<int>(state_->overloaded_processors().size() +
                         state_->overloaded_links().size());
    if (ok && rep.violations_before > 0) ok = repair_violations(rep);
    if (ok && opt_.consolidate) consolidate(rep);
    if (ok) ok = finish_allocation(rep);
    if (!ok) {
      INSP_DEBUG << "event " << to_string(event.kind)
                 << ": targeted repair failed (" << rep.failure_reason
                 << "); falling back to scratch re-allocation";
      rep.used_fallback = true;
      ok = fallback_scratch(rep);
    }
  }
  rep.success = ok;
  rep.cost_after = cost();
  return rep;
}

} // namespace insp
