// Online re-allocation engine (docs/DESIGN.md §8).  DynamicAllocator keeps
// a *live* multi-application allocation — the folded forest of multi/, a
// PlacementState over it, and the finished Allocation with download routes —
// and repairs it event by event instead of re-running a full heuristic:
//
//   - demand events (per-app rho, object update rates) are applied to the
//     live PlacementState through the incremental refresh hooks, then only
//     the violated processors/links are repaired with targeted moves:
//     catalog re-purchase (upgrade in place), single-operator evictions via
//     the relaxed transactional probes, and a bounded buy for load that fits
//     nowhere;
//   - structural events (application arrival/departure) rebuild the folded
//     forest but *replay* the surviving assignment verbatim, so existing
//     applications are not disrupted; arriving operators are placed by an
//     incremental first-fit;
//   - server failure/recovery re-routes downloads (server selection) without
//     touching the placement;
//   - after every event a consolidation pass (local-search merges + the
//     downgrade-equivalent cheapest-meeting re-pricing) recovers cost headroom
//     the event released.
//
// When targeted repair cannot restore feasibility the engine falls back to a
// full from-scratch re-allocation.  Every event returns a RepairReport with
// the disruption actually incurred (operators moved, processors bought /
// retired / re-priced, dollars delta) — the currency the paper's one-shot
// setting never has to account for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/allocator.hpp"
#include "core/placement_state.hpp"
#include "dynamic/workload_events.hpp"
#include "multi/multi_app.hpp"

namespace insp {

struct RepairOptions {
  /// Heuristic used for the initial allocation and the scratch fallback.
  HeuristicKind fallback_heuristic = HeuristicKind::SubtreeBottomUp;
  /// Repair rounds before giving up and falling back; 0 = auto
  /// (4 * live processors + 16).
  int max_repair_rounds = 0;
  /// Allow buying processors during repair (otherwise eviction-only).
  bool allow_purchase = true;
  /// Post-repair consolidation: one local-search merge pass plus
  /// cheapest-meeting re-pricing of every live processor.
  bool consolidate = true;
  /// Diagnostics/baseline mode: handle every event with the scratch
  /// re-allocation path, skipping incremental repair entirely.  This is the
  /// "what the static paper pipeline would do" yardstick bench_dynamic
  /// measures repair latency and disruption against.
  bool always_fallback = false;
  /// Speculative parallel repair (docs/DESIGN.md §10): evaluate this many
  /// candidate repair plans concurrently on copies of the placement state
  /// (plan j perturbs the drain target and the eviction order by its index)
  /// and commit the deterministic best, ranked by (success, projected cost,
  /// operators moved, plan index) — bit-identical for any thread count.
  /// 0 or 1 keeps the single sequential plan, byte-for-byte the
  /// pre-speculative engine.
  int speculative_plans = 0;
  /// Worker threads for the speculative evaluation; 0 = hardware
  /// concurrency.
  unsigned speculative_threads = 0;
};

/// Machine-readable verdict of the event-precondition checks apply() runs
/// before touching any state.  Traces produced by generate_trace always
/// satisfy the preconditions; hand-written or external event streams (the
/// allocation service's tenant requests) are validated here instead of
/// relying on trace-generator goodwill.  kNone covers both success and
/// repair-stage failures (no-valid-plan), which keep their textual
/// failure_reason.
enum class EventError {
  kNone = 0,
  kUnknownApp,        ///< AppDeparture for an app never admitted / already gone
  kDuplicateArrival,  ///< AppArrival with an id that is already live
  kServerOutOfRange,
  kObjectOutOfRange,
  kBadRate,           ///< ObjectRateChange with freq <= 0
  kBadRho,            ///< RhoChange / AppArrival with rho <= 0
  kBadArrivalTree,    ///< AppArrival tree index outside the trace
};

const char* to_string(EventError error);

struct RepairReport {
  bool success = false;
  EventError error = EventError::kNone;  ///< precondition verdict (see above)
  /// The event re-asserted platform state the allocator already holds: a
  /// ServerFailure for a server already down, or a ServerRecovery for a
  /// healthy server.  A failure detector legitimately re-infers failure
  /// while an earlier inference is still being repaired (flapping at the
  /// detection boundary), so these are idempotent successes — nothing is
  /// re-applied, no repair pass runs — not corrupted-stream errors.
  bool already_known = false;
  std::string failure_reason;   ///< set when the event left no valid plan
  bool used_fallback = false;   ///< targeted repair failed or was bypassed
  int violations_before = 0;    ///< overloaded processors+links post-event
  int ops_moved = 0;            ///< operators whose co-residency group changed
  int procs_bought = 0;
  int procs_retired = 0;
  int reconfigures = 0;         ///< in-place catalog re-purchases
  Dollars cost_before = 0.0;
  Dollars cost_after = 0.0;
};

class DynamicAllocator {
 public:
  /// Takes ownership of the initial world.  Call initialize() once before
  /// apply(); the object is immovable because the internal PlacementState
  /// points at the owned forest/platform/catalog.
  DynamicAllocator(std::vector<ApplicationSpec> initial_apps,
                   Platform platform, PriceCatalog catalog,
                   RepairOptions options = {});
  DynamicAllocator(const DynamicAllocator&) = delete;
  DynamicAllocator& operator=(const DynamicAllocator&) = delete;

  /// From-scratch initial allocation (fallback heuristic, then every other
  /// registered paper heuristic if it fails).  `seed` also seeds the RNG
  /// used by any later fallback run, so the whole trajectory is
  /// deterministic given (world, trace, seed).
  RepairReport initialize(std::uint64_t seed);

  /// Applies one event and repairs the allocation.  `trace` supplies
  /// arrival trees.  On failure (no valid plan exists or repair+fallback
  /// both failed) the previous allocation is kept and success=false.
  RepairReport apply(const WorkloadEvent& event, const EventTrace& trace);

  // --- current world --------------------------------------------------------
  const OperatorTree& forest() const { return forest_; }
  const Platform& platform() const { return platform_; }
  const PriceCatalog& catalog() const { return catalog_; }
  /// Folded problem (rho = 1) pointing at the internal forest/platform.
  Problem problem() const;
  /// Finished allocation (download routes included) after the last event.
  const Allocation& allocation() const { return alloc_; }
  Dollars cost() const { return alloc_.total_cost(catalog_); }
  int num_live_apps() const { return static_cast<int>(apps_.size()); }
  bool has_app(int app_id) const;
  /// Current throughput target of a live application.
  Throughput rho_of(int app_id) const;
  int num_servers_down() const;
  /// Per-server health flags (indexed by server id) — the degradation the
  /// scenario engine folds into the simulator's SimPlatformView so replay
  /// validates failure events against the world as it actually is.
  const std::vector<bool>& servers_up() const { return server_up_; }

 private:
  int app_slot(int app_id) const;  ///< index into apps_, -1 when gone
  void rebuild_platform();
  /// Rebuilds the folded forest from apps_ and re-creates the
  /// PlacementState, replaying the surviving assignment; `prev_home`
  /// optionally maps forest op -> previous processor id per app slot.
  void refold_and_replay(const std::vector<std::vector<int>>& prev_home,
                         const std::vector<ProcessorConfig>& prev_configs,
                         const std::vector<int>& prev_live);
  /// Places every unassigned operator (arrivals) first-fit; buys when
  /// nothing fits.  Returns false when some operator fits nowhere.
  bool place_unassigned(RepairReport& report);
  /// Drains overloaded processors/links with reconfigure+evict moves.
  /// Dispatches to the single sequential plan, or — with
  /// speculative_plans > 1 — to the parallel plan race.
  bool repair_violations(RepairReport& report);
  /// One candidate repair trajectory.  plan_index 0 is the sequential
  /// engine's exact move order; higher indices rotate the drain target and
  /// the eviction order.  Mutates only `state` and `report`, so plans can
  /// run concurrently on independent state copies.
  bool repair_violations_plan(PlacementState& state, RepairReport& report,
                              int plan_index) const;
  /// Merge pass + cheapest-meeting re-pricing on the feasible state.
  void consolidate(RepairReport& report);
  /// Full from-scratch re-allocation of the current problem.
  bool fallback_scratch(RepairReport& report);
  /// Re-runs server selection + full validation into alloc_.
  bool finish_allocation(RepairReport& report);
  /// Rebuilds state_ from an allocation (configs + assignment replayed).
  void adopt_allocation(const Allocation& alloc);
  /// Counts ops whose co-residency group changed vs `before` (the
  /// processor-id-agnostic disruption metric of docs/DESIGN.md §8).
  static int count_moved_ops(const Allocation& before,
                             const Allocation& after);

  RepairOptions opt_;
  PriceCatalog catalog_;
  Platform base_platform_;
  Platform platform_;
  std::vector<bool> server_up_;
  std::vector<int> app_ids_;              // stable external ids
  std::vector<ApplicationSpec> apps_;     // parallel to app_ids_
  int next_arrival_id_ = 0;
  OperatorTree forest_;                   // folded (rho baked into demands)
  std::vector<int> op_app_slot_;          // forest op -> index into apps_
  std::optional<PlacementState> state_;
  Allocation alloc_;
  Rng rng_;
  bool initialized_ = false;
};

} // namespace insp
