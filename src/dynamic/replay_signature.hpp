// FNV-1a accumulator over repair trajectories.  Extracted from the scenario
// engine so every component that replays workload events — sequential trace
// replay (scenario_engine), the sharded allocation service and its
// sequential per-shard reference (src/service/) — mixes *exactly* the same
// bytes in the same order.  Two replays are bit-identical iff their
// signatures match; the golden-signature regression test
// (tests/golden/replay_signatures.txt) pins the seed-42 smoke values.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/allocation.hpp"
#include "dynamic/repair_allocator.hpp"
#include "dynamic/workload_events.hpp"

namespace insp {

struct ReplaySignature {
  std::uint64_t h = 1469598103934665603ull;

  void mix_bytes(const void* data, std::size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  }
  void mix(std::uint64_t v) { mix_bytes(&v, sizeof v); }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<long long>(v))); }
  void mix(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }

  /// One applied event: the repair outcome fields that define the
  /// trajectory.  Wall-clock timings are deliberately excluded.
  void mix_repair(EventKind kind, const RepairReport& rep, int processors) {
    mix(static_cast<int>(kind));
    mix(rep.success ? 1 : 0);
    mix(rep.used_fallback ? 1 : 0);
    mix(rep.violations_before);
    mix(rep.ops_moved);
    mix(rep.procs_bought);
    mix(rep.procs_retired);
    mix(rep.reconfigures);
    mix(rep.cost_after);
    mix(processors);
  }

  void mix_allocation(const Allocation& alloc) {
    mix(alloc.num_processors());
    for (const PurchasedProcessor& p : alloc.processors) {
      mix(p.config.cpu);
      mix(p.config.nic);
      for (int op : p.ops) mix(op);
      for (const DownloadRoute& d : p.downloads) {
        mix(d.object_type);
        mix(d.server);
      }
    }
    for (int pid : alloc.op_to_proc) mix(pid);
  }
};

} // namespace insp
