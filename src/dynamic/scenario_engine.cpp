#include "dynamic/scenario_engine.hpp"

#include <algorithm>
#include <chrono>

#include "dynamic/replay_signature.hpp"
#include "util/thread_pool.hpp"

namespace insp {

namespace {

using Clock = std::chrono::steady_clock;

/// World snapshot a simulation needs: the folded forest as it stood when
/// the event's allocation was produced, plus the degraded platform view
/// (down servers) the simulator must honor — a repaired allocation that
/// silently kept a download route on a failed server must *fail* its
/// simulation, not sail through on the healthy uniform platform.  The
/// platform itself is not copied: everything the simulator reads about it
/// (link bandwidths, server health) travels in the self-contained view.
struct SimSnapshot {
  std::size_t outcome_index;
  OperatorTree forest;
  Allocation allocation;
  SimPlatformView view;
};

SimPlatformView degraded_view(const DynamicAllocator& engine) {
  return SimPlatformView::degraded(engine.platform(), engine.servers_up());
}

} // namespace

ScenarioResult replay_trace(const std::vector<ApplicationSpec>& initial_apps,
                            const Platform& platform,
                            const PriceCatalog& catalog,
                            const EventTrace& trace,
                            const ScenarioOptions& options) {
  ScenarioResult result;
  DynamicAllocator engine(initial_apps, platform, catalog, options.repair);
  engine.initialize(options.seed);

  std::vector<SimSnapshot> snapshots;
  result.outcomes.reserve(trace.events.size());
  for (const WorkloadEvent& event : trace.events) {
    EventOutcome out;
    out.event = event;
    const auto t0 = Clock::now();
    out.repair = engine.apply(event, trace);
    out.repair_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    out.cost = out.repair.cost_after;
    out.processors = engine.allocation().num_processors();
    if (options.simulate && out.repair.success &&
        engine.num_live_apps() > 0) {
      snapshots.push_back(SimSnapshot{result.outcomes.size(),
                                      engine.forest(), engine.allocation(),
                                      degraded_view(engine)});
    }
    result.outcomes.push_back(std::move(out));
  }
  result.final_allocation = engine.allocation();

  // Validation pass: each snapshot simulates independently into its own
  // slot, so the outcome is identical for every thread count.
  std::vector<char> sustained(snapshots.size(), 0);
  ThreadPool::parallel_for(
      snapshots.size(),
      static_cast<unsigned>(options.num_threads < 0 ? 0
                                                    : options.num_threads),
      [&](std::size_t i) {
        const SimSnapshot& s = snapshots[i];
        Problem prob;
        prob.tree = &s.forest;
        // The base platform satisfies Problem's invariant; the event-time
        // degradations the simulator acts on are all in s.view.
        prob.platform = &platform;
        prob.catalog = &catalog;
        prob.rho = 1.0;
        const EventSimResult sim =
            simulate_allocation(prob, s.allocation, s.view, options.sim);
        sustained[i] = sim.sustained ? 1 : 0;
      });
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EventOutcome& out = result.outcomes[snapshots[i].outcome_index];
    out.simulated = true;
    out.sustained = sustained[i] != 0;
  }

  // Summary + signature.
  ReplaySignature f;
  std::vector<double> repair_times;
  for (const EventOutcome& out : result.outcomes) {
    ++result.summary.events;
    if (!out.repair.success) ++result.summary.failures;
    if (out.repair.used_fallback) ++result.summary.fallbacks;
    result.summary.ops_moved += out.repair.ops_moved;
    result.summary.procs_bought += out.repair.procs_bought;
    result.summary.procs_retired += out.repair.procs_retired;
    result.summary.reconfigures += out.repair.reconfigures;
    if (out.simulated) ++result.summary.simulated;
    if (out.sustained) ++result.summary.sustained;
    repair_times.push_back(out.repair_seconds);
    f.mix_repair(out.event.kind, out.repair, out.processors);
  }
  f.mix_allocation(result.final_allocation);
  result.signature = f.h;

  result.summary.final_cost =
      result.final_allocation.total_cost(catalog);
  if (!repair_times.empty()) {
    std::sort(repair_times.begin(), repair_times.end());
    result.summary.median_repair_seconds =
        repair_times[repair_times.size() / 2];
  }
  return result;
}

} // namespace insp
