// Trace replay harness: drives a DynamicAllocator through an EventTrace,
// timing each repair, and cross-checks every repaired allocation exactly as
// the static pipeline is checked — the from-scratch constraint checker plus
// the discrete-event simulator (sim/event_sim) confirming the plan sustains
// its target throughput.
//
// Replay itself is strictly sequential and deterministic: the repair
// trajectory depends only on (initial world, trace, seed).  The expensive
// per-event validations run afterwards over snapshots, parallelized with
// the util thread pool into pre-allocated slots — so the result (and its
// signature) is bit-identical for every thread count, the same contract the
// sweep engine upholds.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/repair_allocator.hpp"
#include "dynamic/workload_events.hpp"
#include "sim/event_sim.hpp"

namespace insp {

struct ScenarioOptions {
  RepairOptions repair;
  std::uint64_t seed = 42;
  /// Cross-check each event's allocation with the event simulator (the
  /// acceptance gate: sustained == true for every successful event).
  bool simulate = true;
  EventSimConfig sim;
  /// Worker threads for the post-replay validation pass (0 = hardware
  /// concurrency, 1 = serial).  Replay itself is always sequential.
  int num_threads = 1;
};

struct EventOutcome {
  WorkloadEvent event;
  RepairReport repair;
  double repair_seconds = 0.0;  ///< wall time of apply() (excluded from the
                                ///< determinism signature)
  Dollars cost = 0.0;           ///< platform cost after the event
  int processors = 0;
  bool simulated = false;  ///< a simulation snapshot was taken and run
  bool sustained = false;  ///< simulator confirmed the target throughput
};

struct ScenarioSummary {
  int events = 0;
  int failures = 0;      ///< events that left no valid plan
  int fallbacks = 0;     ///< events resolved by scratch re-allocation
  int ops_moved = 0;
  int procs_bought = 0;
  int procs_retired = 0;
  int reconfigures = 0;
  int simulated = 0;
  int sustained = 0;
  Dollars final_cost = 0.0;
  double median_repair_seconds = 0.0;
};

struct ScenarioResult {
  std::vector<EventOutcome> outcomes;
  Allocation final_allocation;
  ScenarioSummary summary;
  /// FNV-1a over the repair trajectory and the final allocation; two
  /// replays are bit-identical iff their signatures match (used by the
  /// determinism tests and bench_dynamic).
  std::uint64_t signature = 0;
};

ScenarioResult replay_trace(const std::vector<ApplicationSpec>& initial_apps,
                            const Platform& platform,
                            const PriceCatalog& catalog,
                            const EventTrace& trace,
                            const ScenarioOptions& options = {});

} // namespace insp
