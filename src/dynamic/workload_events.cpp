#include "dynamic/workload_events.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tree/tree_io.hpp"

namespace insp {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::RhoChange: return "rho-change";
    case EventKind::ObjectRateChange: return "object-rate-change";
    case EventKind::ServerFailure: return "server-failure";
    case EventKind::ServerRecovery: return "server-recovery";
    case EventKind::AppArrival: return "app-arrival";
    case EventKind::AppDeparture: return "app-departure";
  }
  return "?";
}

namespace {

EventKind kind_from_string(const std::string& s) {
  for (EventKind k :
       {EventKind::RhoChange, EventKind::ObjectRateChange,
        EventKind::ServerFailure, EventKind::ServerRecovery,
        EventKind::AppArrival, EventKind::AppDeparture}) {
    if (s == to_string(k)) return k;
  }
  throw std::invalid_argument("trace: unknown event kind '" + s + "'");
}

/// Mirror of the replay-time world the generator keeps so every emitted
/// event's precondition holds at its position in the trace.
struct GenWorld {
  std::vector<int> live_apps;           // stable ids
  std::vector<Throughput> live_rhos;    // parallel to live_apps
  int next_app_id = 0;
  std::vector<bool> server_up;
  std::vector<Hertz> freq;              // current per-type frequency
};

int num_down(const GenWorld& w) {
  int n = 0;
  for (bool up : w.server_up) n += up ? 0 : 1;
  return n;
}

} // namespace

EventTrace generate_trace(Rng& rng, const TraceGenConfig& config,
                          int num_initial_apps, Throughput initial_rho,
                          const Platform& platform,
                          const ObjectCatalog& catalog) {
  GenWorld w;
  for (int a = 0; a < num_initial_apps; ++a) {
    w.live_apps.push_back(a);
    w.live_rhos.push_back(initial_rho);
  }
  w.next_app_id = num_initial_apps;
  w.server_up.assign(static_cast<std::size_t>(platform.num_servers()), true);
  for (const auto& t : catalog.all()) w.freq.push_back(t.freq_hz);

  EventTrace trace;
  trace.arrival_alpha = config.arrival_tree.alpha;
  trace.arrival_work_scale = config.arrival_tree.work_scale;
  double t = 0.0;
  for (int i = 0; i < config.num_events; ++i) {
    t += -config.mean_interval_s * std::log(1.0 - rng.canonical());

    // Weighted kind choice over the kinds whose precondition currently
    // holds; one rejection loop iteration per infeasible draw keeps the
    // distribution proportional to the weights of the feasible kinds.
    struct Cand {
      EventKind kind;
      double w;
      bool ok;
    };
    const int live = static_cast<int>(w.live_apps.size());
    const int down = num_down(w);
    const Cand cands[] = {
        {EventKind::RhoChange, config.w_rho_change, live > 0},
        {EventKind::ObjectRateChange, config.w_object_rate,
         catalog.count() > 0},
        {EventKind::ServerFailure, config.w_server_failure,
         down < config.max_servers_down &&
             platform.num_servers() - down > 1},
        {EventKind::ServerRecovery, config.w_server_recovery, down > 0},
        {EventKind::AppArrival, config.w_app_arrival,
         live < config.max_live_apps},
        {EventKind::AppDeparture, config.w_app_departure,
         live > config.min_live_apps},
    };
    double total = 0.0;
    for (const Cand& c : cands) total += c.ok ? c.w : 0.0;
    if (total <= 0.0) break;  // degenerate config: nothing can happen
    double draw = rng.uniform_real(0.0, total);
    EventKind kind = EventKind::RhoChange;
    for (const Cand& c : cands) {
      if (!c.ok) continue;
      if (draw < c.w) {
        kind = c.kind;
        break;
      }
      draw -= c.w;
    }

    WorkloadEvent ev;
    ev.time = t;
    ev.kind = kind;
    switch (kind) {
      case EventKind::RhoChange: {
        const std::size_t slot = rng.index(w.live_apps.size());
        const double factor =
            rng.uniform_real(config.rho_factor_lo, config.rho_factor_hi);
        double rho = w.live_rhos[slot] * factor;
        rho = std::min(std::max(rho, config.rho_min), config.rho_max);
        ev.app_id = w.live_apps[slot];
        ev.rho = rho;
        w.live_rhos[slot] = rho;
        break;
      }
      case EventKind::ObjectRateChange: {
        const int type = static_cast<int>(
            rng.index(static_cast<std::size_t>(catalog.count())));
        ev.object_type = type;
        ev.freq_hz = rng.uniform_real(config.freq_lo, config.freq_hi);
        w.freq[static_cast<std::size_t>(type)] = ev.freq_hz;
        break;
      }
      case EventKind::ServerFailure: {
        std::vector<int> up;
        for (std::size_t s = 0; s < w.server_up.size(); ++s) {
          if (w.server_up[s]) up.push_back(static_cast<int>(s));
        }
        ev.server = up[rng.index(up.size())];
        w.server_up[static_cast<std::size_t>(ev.server)] = false;
        break;
      }
      case EventKind::ServerRecovery: {
        std::vector<int> downs;
        for (std::size_t s = 0; s < w.server_up.size(); ++s) {
          if (!w.server_up[s]) downs.push_back(static_cast<int>(s));
        }
        ev.server = downs[rng.index(downs.size())];
        w.server_up[static_cast<std::size_t>(ev.server)] = true;
        break;
      }
      case EventKind::AppArrival: {
        ev.app_id = w.next_app_id++;
        ev.rho = rng.uniform_real(config.rho_min,
                                  std::max(config.rho_min, initial_rho));
        ev.arrival_tree = static_cast<int>(trace.arrival_trees.size());
        trace.arrival_trees.push_back(
            generate_random_tree(rng, config.arrival_tree, catalog));
        w.live_apps.push_back(ev.app_id);
        w.live_rhos.push_back(ev.rho);
        break;
      }
      case EventKind::AppDeparture: {
        const std::size_t slot = rng.index(w.live_apps.size());
        ev.app_id = w.live_apps[slot];
        w.live_apps.erase(w.live_apps.begin() + static_cast<long>(slot));
        w.live_rhos.erase(w.live_rhos.begin() + static_cast<long>(slot));
        break;
      }
    }
    trace.events.push_back(ev);
  }
  return trace;
}

// --- text round-trip --------------------------------------------------------
//
//   cinsp-trace 1
//   arrival_alpha <alpha>
//   tree <index>            (followed by the tree_io text, then `end_tree`)
//   ...
//   event <time> <kind> <app_id> <rho> <object_type> <freq_hz> <server> <tree>
//
// Doubles are printed with %.17g so the round-trip is value-exact.

std::string trace_to_text(const EventTrace& trace) {
  std::ostringstream out;
  char buf[64];
  out << "cinsp-trace 1\n";
  std::snprintf(buf, sizeof buf, "%.17g", trace.arrival_alpha);
  out << "arrival_alpha " << buf << "\n";
  std::snprintf(buf, sizeof buf, "%.17g", trace.arrival_work_scale);
  out << "arrival_work_scale " << buf << "\n";
  for (std::size_t i = 0; i < trace.arrival_trees.size(); ++i) {
    out << "tree " << i << "\n"
        << to_text(trace.arrival_trees[i], trace.arrival_alpha,
                   trace.arrival_work_scale)
        << "end_tree\n";
  }
  for (const WorkloadEvent& e : trace.events) {
    std::snprintf(buf, sizeof buf, "%.17g", e.time);
    out << "event " << buf << ' ' << to_string(e.kind) << ' ' << e.app_id;
    std::snprintf(buf, sizeof buf, " %.17g %d", e.rho, e.object_type);
    out << buf;
    std::snprintf(buf, sizeof buf, " %.17g", e.freq_hz);
    out << buf << ' ' << e.server << ' ' << e.arrival_tree << "\n";
  }
  return out.str();
}

EventTrace trace_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  EventTrace trace;
  if (!std::getline(in, line) || line != "cinsp-trace 1") {
    throw std::invalid_argument("trace: missing 'cinsp-trace 1' header");
  }
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "arrival_alpha") {
      ls >> trace.arrival_alpha;
    } else if (tag == "arrival_work_scale") {
      ls >> trace.arrival_work_scale;
    } else if (tag == "tree") {
      std::size_t index = 0;
      ls >> index;
      if (index != trace.arrival_trees.size()) {
        throw std::invalid_argument("trace: tree indices out of order");
      }
      std::string tree_text, tl;
      bool closed = false;
      while (std::getline(in, tl)) {
        if (tl == "end_tree") {
          closed = true;
          break;
        }
        tree_text += tl;
        tree_text += '\n';
      }
      if (!closed) throw std::invalid_argument("trace: unterminated tree");
      trace.arrival_trees.push_back(from_text(tree_text));
    } else if (tag == "event") {
      WorkloadEvent e;
      std::string kind;
      ls >> e.time >> kind >> e.app_id >> e.rho >> e.object_type >>
          e.freq_hz >> e.server >> e.arrival_tree;
      if (ls.fail()) {
        throw std::invalid_argument("trace: malformed event line: " + line);
      }
      e.kind = kind_from_string(kind);
      // Structural range checks for the fields each kind will actually use
      // — a hand-edited index must fail here, not corrupt the replay.
      // (World-dependent ranges — server count, object-type count — are
      // checked again by DynamicAllocator::apply against the live world.)
      switch (e.kind) {
        case EventKind::RhoChange:
        case EventKind::AppDeparture:
          if (e.app_id < 0) {
            throw std::invalid_argument("trace: negative app id: " + line);
          }
          break;
        case EventKind::ObjectRateChange:
          if (e.object_type < 0 || e.freq_hz <= 0.0) {
            throw std::invalid_argument("trace: bad rate change: " + line);
          }
          break;
        case EventKind::ServerFailure:
        case EventKind::ServerRecovery:
          if (e.server < 0) {
            throw std::invalid_argument("trace: negative server: " + line);
          }
          break;
        case EventKind::AppArrival:
          if (e.app_id < 0 || e.arrival_tree < 0 || e.rho <= 0.0) {
            throw std::invalid_argument("trace: bad arrival: " + line);
          }
          break;
      }
      trace.events.push_back(e);
    } else {
      throw std::invalid_argument("trace: unknown line: " + line);
    }
  }
  for (const WorkloadEvent& e : trace.events) {
    if (e.kind == EventKind::AppArrival &&
        static_cast<std::size_t>(e.arrival_tree) >=
            trace.arrival_trees.size()) {
      throw std::invalid_argument("trace: arrival tree index out of range");
    }
  }
  return trace;
}

void save_trace(const EventTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << trace_to_text(trace);
  if (!out) throw std::runtime_error("write failed: " + path);
}

EventTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return trace_from_text(buf.str());
}

} // namespace insp
