// Dynamic-workload event model (docs/DESIGN.md §8).  The paper allocates
// once for a fixed target throughput; in practice throughput targets drift,
// object update rates fluctuate, purchased servers fail, and applications
// come and go.  A WorkloadEvent is one such change; an EventTrace is a
// time-ordered sequence of them replayed against a live allocation by the
// repair engine (repair_allocator.hpp / scenario_engine.hpp).
//
// Traces are deterministic artifacts: generate_trace is a pure function of
// (rng, config, initial world), and save/load round-trips a trace through a
// line-oriented text format (arrival trees serialized via tree/tree_io) so
// benchmark traces can be bundled and replayed bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "multi/multi_app.hpp"
#include "platform/platform.hpp"
#include "tree/tree_generator.hpp"

namespace insp {

enum class EventKind {
  RhoChange,        ///< application `app_id` now targets throughput `rho`
  ObjectRateChange, ///< object `object_type` now updates at `freq_hz`
  ServerFailure,    ///< data server `server` goes down (its replicas with it)
  ServerRecovery,   ///< data server `server` comes back
  AppArrival,       ///< `arrival_trees[arrival_tree]` arrives, targeting `rho`
  AppDeparture,     ///< application `app_id` departs
};

const char* to_string(EventKind kind);

struct WorkloadEvent {
  double time = 0.0;  ///< seconds since trace start; non-decreasing
  EventKind kind = EventKind::RhoChange;
  int app_id = -1;       ///< RhoChange / AppDeparture / AppArrival (new id)
  Throughput rho = 1.0;  ///< RhoChange / AppArrival
  int object_type = -1;  ///< ObjectRateChange
  Hertz freq_hz = 0.0;   ///< ObjectRateChange
  int server = -1;       ///< ServerFailure / ServerRecovery
  int arrival_tree = -1; ///< AppArrival: index into EventTrace::arrival_trees
};

struct EventTrace {
  std::vector<WorkloadEvent> events;       ///< non-decreasing time
  std::vector<OperatorTree> arrival_trees; ///< bodies of AppArrival events
  double arrival_alpha = 1.0;      ///< alpha the arrival trees were built with
  double arrival_work_scale = 1.0; ///< work_scale ditto (both serialized)
};

/// Relative weights of the event kinds in a generated trace; a kind whose
/// precondition cannot be met at some point in the trace (no app left to
/// depart, every server up, ...) is skipped for that draw.
struct TraceGenConfig {
  int num_events = 200;
  double mean_interval_s = 10.0;  ///< exponential inter-event gaps

  double w_rho_change = 4.0;
  double w_object_rate = 2.0;
  double w_server_failure = 1.0;
  double w_server_recovery = 1.0;
  double w_app_arrival = 1.0;
  double w_app_departure = 1.0;

  /// RhoChange multiplies the app's current rho by a factor drawn uniformly
  /// from [factor_lo, factor_hi], clamped to [rho_min, rho_max].
  double rho_factor_lo = 0.6;
  double rho_factor_hi = 1.5;
  Throughput rho_min = 0.01;
  Throughput rho_max = 4.0;

  /// ObjectRateChange draws a new frequency uniformly from [freq_lo, freq_hi].
  Hertz freq_lo = 0.1;
  Hertz freq_hi = 1.0;

  /// World limits the generator respects.
  int max_live_apps = 6;
  int min_live_apps = 1;
  int max_servers_down = 1;  ///< keep at least replication alive

  /// Shape of arriving applications (catalog is inherited from the world).
  TreeGenConfig arrival_tree;
};

/// Generates a trace against an initial world of `num_initial_apps`
/// applications (ids 0..n-1, each at `initial_rho`) over `platform`, whose
/// object catalog is `catalog`.  Deterministic given the Rng state.  The
/// generator tracks live apps / down servers so every event's precondition
/// holds when the trace is replayed in order from the same initial world.
EventTrace generate_trace(Rng& rng, const TraceGenConfig& config,
                          int num_initial_apps, Throughput initial_rho,
                          const Platform& platform,
                          const ObjectCatalog& catalog);

/// Text round-trip (format documented in workload_events.cpp).  Throws
/// std::invalid_argument on malformed input.
std::string trace_to_text(const EventTrace& trace);
EventTrace trace_from_text(const std::string& text);

/// File helpers (throw std::runtime_error on IO failure).
void save_trace(const EventTrace& trace, const std::string& path);
EventTrace load_trace(const std::string& path);

} // namespace insp
