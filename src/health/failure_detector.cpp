#include "health/failure_detector.hpp"

#include <algorithm>

namespace insp {

FailureDetector::FailureDetector(const FailureDetectorConfig& config,
                                 int num_servers, double start_time)
    : config_(config), now_(start_time) {
  assert(num_servers > 0);
  assert(config.beat_interval_s > 0.0);
  assert(config.timeout_beats > 0.0);
  assert(config.recovery_beats >= 1);
  state_.resize(static_cast<std::size_t>(num_servers));
  for (ServerState& s : state_) s.last_beat = start_time;
}

std::vector<InferredTransition> FailureDetector::advance_to(double now) {
  assert(now >= now_);
  std::vector<InferredTransition> out;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    ServerState& s = state_[i];
    if (!s.up) continue;
    const double deadline = config_.deadline_after(s.last_beat);
    if (deadline < now) {
      s.up = false;
      s.chain = 0;
      out.push_back({deadline, static_cast<int>(i), true});
    }
  }
  now_ = now;
  std::sort(out.begin(), out.end(),
            [](const InferredTransition& a, const InferredTransition& b) {
              return a.time != b.time ? a.time < b.time
                                      : a.server < b.server;
            });
  return out;
}

std::vector<InferredTransition> FailureDetector::beat(double time,
                                                      int server) {
  // Expire first: anything whose deadline lies strictly before this beat's
  // arrival — possibly the sender itself — is conclusive by now.  A beat
  // landing exactly on its deadline is timely and expires nothing.
  std::vector<InferredTransition> out = advance_to(time);
  ServerState& s = state_[static_cast<std::size_t>(server)];
  if (s.up) {
    // After the advance every surviving up server has deadline >= time,
    // so this beat is timely by construction: just move the deadline.
    s.last_beat = time;
    return out;
  }
  // Down: grow or restart the recovery chain.  The beat is consecutive
  // with the previous one iff it arrived within the previous beat's
  // tolerance window — the same canonical deadline expression.
  s.chain = time <= config_.deadline_after(s.last_beat) ? s.chain + 1 : 1;
  s.last_beat = time;
  if (s.chain >= config_.recovery_beats) {
    s.up = true;
    s.chain = 0;
    out.push_back({time, server, false});
  }
  return out;
}

std::vector<bool> FailureDetector::servers_up() const {
  std::vector<bool> up(state_.size());
  for (std::size_t i = 0; i < state_.size(); ++i) up[i] = state_[i].up;
  return up;
}

} // namespace insp
