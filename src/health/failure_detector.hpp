// Deterministic heartbeat failure detector (docs/DESIGN.md §12).  Every
// data server beats on the virtual clock; the detector owns one tiny state
// machine per server and turns the beat stream into *inferred* availability
// transitions — the only failure/recovery knowledge the self-healing
// control loop (health_monitor.hpp) is allowed to act on.  No oracle.
//
// Per-server state machine:
//
//        beat (t <= deadline)                     poll past deadline
//   UP ────────────────────────▶ UP          UP ────────────────────▶ DOWN
//        last_beat = t, deadline moves            transition at `deadline`
//
//        beat                                   chain == recovery_beats
//   DOWN ───────────▶ DOWN (chain grows)    DOWN ──────────────────▶ UP
//        chain = consecutive timely beats         transition at beat time
//
// Determinism contract:
//
//   - the expiry deadline is one canonical fp expression,
//     FailureDetectorConfig::deadline_after(last_beat); a beat is timely
//     iff t <= deadline.  The fuzz test's naive recompute-from-history
//     oracle evaluates the *same* expression, so timeout-boundary cases
//     compare exactly, not approximately;
//   - a failure is reported the first time the clock is polled strictly
//     past the deadline, but the transition carries time = deadline — the
//     instant the silence became conclusive — so the inferred stream is
//     independent of poll granularity;
//   - advance_to() emits expiries sorted by (deadline, server), and the
//     overall emission sequence is nondecreasing in transition time.
#pragma once

#include <cassert>
#include <vector>

namespace insp {

struct FailureDetectorConfig {
  double beat_interval_s = 1.0;
  /// Silence tolerated before a server is declared down, in beats.
  double timeout_beats = 3.0;
  /// Consecutive timely beats required before a down server is trusted
  /// again (flap damping).
  int recovery_beats = 2;

  /// The canonical expiry instant after a beat at `last_beat`.  Detector
  /// and differential oracles must all call this — one expression, one
  /// rounding — so boundary beats land on the same side everywhere.
  double deadline_after(double last_beat) const {
    return last_beat + timeout_beats * beat_interval_s;
  }
};

/// One inferred availability transition on the virtual clock.
struct InferredTransition {
  double time = 0.0;
  int server = -1;
  bool down = false;
};

class FailureDetector {
 public:
  /// All servers start trusted, as if each had beaten at `start_time`.
  FailureDetector(const FailureDetectorConfig& config, int num_servers,
                  double start_time = 0.0);

  /// Advances the clock to `now`, expiring every up server whose deadline
  /// lies strictly in the past.  Transitions are sorted by
  /// (deadline, server) and carry the deadline as their time.
  std::vector<InferredTransition> advance_to(double now);

  /// Observes a beat from `server` arriving at `time` (nondecreasing
  /// across calls).  Internally advances the clock to `time` first, so the
  /// returned transitions may include expiries of *other* servers — and of
  /// this server itself when the beat arrives past its own deadline (a
  /// brownout beat both convicts and begins to pardon its sender).
  std::vector<InferredTransition> beat(double time, int server);

  int num_servers() const { return static_cast<int>(state_.size()); }
  bool is_up(int server) const {
    return state_[static_cast<std::size_t>(server)].up;
  }
  /// Detector's current belief, densely indexed by server id.
  std::vector<bool> servers_up() const;
  /// Phi-accrual-style suspicion level: silence since the last beat in
  /// beat intervals.  Crosses timeout_beats exactly when the server
  /// expires; the bench reports it, the state machine thresholds on it.
  double suspicion(int server, double now) const {
    return (now - state_[static_cast<std::size_t>(server)].last_beat) /
           config_.beat_interval_s;
  }
  const FailureDetectorConfig& config() const { return config_; }

 private:
  struct ServerState {
    bool up = true;
    double last_beat = 0.0;
    int chain = 0;  ///< consecutive timely beats while down
  };

  FailureDetectorConfig config_;
  std::vector<ServerState> state_;
  double now_ = 0.0;
};

} // namespace insp
