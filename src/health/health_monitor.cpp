#include "health/health_monitor.hpp"

#include <algorithm>
#include <chrono>

#include "dynamic/replay_signature.hpp"
#include "util/thread_pool.hpp"

namespace insp {

namespace {

using Clock = std::chrono::steady_clock;

/// Same snapshot the scenario engine takes: the world as it stood when the
/// event's allocation was produced, with the believed degradations folded
/// into the self-contained simulator view.
struct SimSnapshot {
  std::size_t outcome_index;
  OperatorTree forest;
  Allocation allocation;
  SimPlatformView view;
};

} // namespace

HealthMonitorResult run_health_monitor(
    const std::vector<ApplicationSpec>& initial_apps, const Platform& platform,
    const PriceCatalog& catalog, const ChaosTrace& trace,
    const HealthMonitorOptions& options) {
  HealthMonitorResult result;
  DynamicAllocator engine(initial_apps, platform, catalog, options.repair);
  engine.initialize(options.seed);
  FailureDetector detector(options.detector, trace.num_servers, 0.0);
  const EventTrace no_trace;  // server events never read arrival trees

  // Control loop: strictly sequential, like scenario_engine replay — the
  // trajectory depends only on (world, trace, seed).
  std::vector<SimSnapshot> snapshots;
  const auto handle = [&](const InferredTransition& tr) {
    result.inferred.push_back(tr);
    WorkloadEvent event;
    event.time = tr.time;
    event.kind =
        tr.down ? EventKind::ServerFailure : EventKind::ServerRecovery;
    event.server = tr.server;
    EventOutcome out;
    out.event = event;
    const auto t0 = Clock::now();
    out.repair = engine.apply(event, no_trace);
    out.repair_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    out.cost = out.repair.cost_after;
    out.processors = engine.allocation().num_processors();
    if (options.simulate && out.repair.success && engine.num_live_apps() > 0) {
      snapshots.push_back(SimSnapshot{
          result.outcomes.size(), engine.forest(), engine.allocation(),
          SimPlatformView::degraded(engine.platform(), engine.servers_up())});
    }
    result.outcomes.push_back(std::move(out));
  };

  for (const BeatObservation& b : chaos_beats(trace)) {
    for (const InferredTransition& tr : detector.beat(b.time, b.server)) {
      handle(tr);
    }
  }
  // Trailing expiries past the last beat (none for generated traces — the
  // horizon floor guarantees quiet tail beats — but the loop must not rely
  // on generator goodwill).
  for (const InferredTransition& tr : detector.advance_to(trace.horizon_s)) {
    handle(tr);
  }
  result.final_allocation = engine.allocation();

  // Validation pass, parallel into pre-allocated slots.
  std::vector<char> sustained(snapshots.size(), 0);
  ThreadPool::parallel_for(
      snapshots.size(),
      static_cast<unsigned>(options.num_threads < 0 ? 0
                                                    : options.num_threads),
      [&](std::size_t i) {
        const SimSnapshot& s = snapshots[i];
        Problem prob;
        prob.tree = &s.forest;
        prob.platform = &platform;
        prob.catalog = &catalog;
        prob.rho = 1.0;
        const EventSimResult sim =
            simulate_allocation(prob, s.allocation, s.view, options.sim);
        sustained[i] = sim.sustained ? 1 : 0;
      });
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EventOutcome& out = result.outcomes[snapshots[i].outcome_index];
    out.simulated = true;
    out.sustained = sustained[i] != 0;
  }

  // Summary + signature, byte-for-byte the scenario engine's accumulation.
  ReplaySignature f;
  std::vector<double> repair_times;
  for (const EventOutcome& out : result.outcomes) {
    ++result.summary.events;
    if (!out.repair.success) ++result.summary.failures;
    if (out.repair.used_fallback) ++result.summary.fallbacks;
    result.summary.ops_moved += out.repair.ops_moved;
    result.summary.procs_bought += out.repair.procs_bought;
    result.summary.procs_retired += out.repair.procs_retired;
    result.summary.reconfigures += out.repair.reconfigures;
    if (out.simulated) ++result.summary.simulated;
    if (out.sustained) ++result.summary.sustained;
    repair_times.push_back(out.repair_seconds);
    f.mix_repair(out.event.kind, out.repair, out.processors);
  }
  f.mix_allocation(result.final_allocation);
  result.signature = f.h;
  result.summary.final_cost = result.final_allocation.total_cost(catalog);
  if (!repair_times.empty()) {
    std::sort(repair_times.begin(), repair_times.end());
    result.summary.median_repair_seconds =
        repair_times[repair_times.size() / 2];
  }

  // Scorecard: greedy 1:1 matching of ground-truth transitions to inferred
  // ones (same server, same direction, inferred at or after the truth
  // instant).  The generator's spacing floors make greedy matching exact:
  // each transition's inference lands before the server's next truth
  // transition.
  const double interval = trace.beat_interval_s;
  ChaosScore& score = result.score;
  std::vector<char> used(result.inferred.size(), 0);
  double det_sum = 0.0;
  double rec_sum = 0.0;
  for (const TruthTransition& t : chaos_transitions(trace)) {
    (t.down ? score.truth_down : score.truth_up) += 1;
    for (std::size_t i = 0; i < result.inferred.size(); ++i) {
      const InferredTransition& tr = result.inferred[i];
      if (used[i] || tr.server != t.server || tr.down != t.down ||
          tr.time < t.time) {
        continue;
      }
      used[i] = 1;
      const double lag_beats = (tr.time - t.time) / interval;
      if (t.down) {
        ++score.detected;
        det_sum += lag_beats;
        score.max_detection_beats =
            std::max(score.max_detection_beats, lag_beats);
        if (result.outcomes[i].repair.success) ++score.repaired;
      } else {
        ++score.recovered;
        rec_sum += lag_beats;
        score.max_recovery_beats =
            std::max(score.max_recovery_beats, lag_beats);
      }
      break;
    }
  }
  if (score.detected > 0) score.mean_detection_beats = det_sum / score.detected;
  if (score.recovered > 0) score.mean_recovery_beats = rec_sum / score.recovered;
  return result;
}

} // namespace insp
