// Self-healing control loop (docs/DESIGN.md §12): heartbeat stream in,
// repaired allocations out.  The monitor replays the beat stream of a
// ChaosTrace through the FailureDetector and feeds every *inferred*
// transition — never the ground truth — into DynamicAllocator repair as a
// ServerFailure / ServerRecovery event, mirroring the scenario engine's
// replay loop: sequential repair (the trajectory depends only on the world,
// the trace and the seed), then a parallel post-validation pass into
// pre-allocated slots, so the result and its replay signature are
// bit-identical for every thread count.
//
// The signature mixes exactly the bytes ReplaySignature mixes for
// scenario_engine::replay_trace.  That is the differential-test contract:
// for a beat-loss-only chaos trace the inferred transitions are 1:1 with
// the ground-truth transitions and arrive in the same order, so the
// monitor's signature must equal replay_trace's signature on
// chaos_oracle_trace() — detection latency shifts *when* repairs happen,
// never *what* they do.
//
// Validation folds the detector's belief (== the allocator's server
// health, since the allocator is driven by the inferred stream) into the
// simulator's platform view — the scenario engine's convention: the
// simulator must honor exactly the degradations the repair was answering.
// The ground truth is used for *scoring* (detection / recovery latency,
// ChaosScore), never for repair or validation.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/chaos_generator.hpp"
#include "dynamic/scenario_engine.hpp"
#include "health/failure_detector.hpp"

namespace insp {

struct HealthMonitorOptions {
  FailureDetectorConfig detector;
  RepairOptions repair;
  std::uint64_t seed = 42;
  /// Simulate each successful repair against the ground-truth platform
  /// view (the sim-sustained acceptance gate).
  bool simulate = true;
  EventSimConfig sim;
  /// Worker threads for post-replay validation (0 = hardware concurrency,
  /// 1 = serial).  The control loop itself is always sequential.
  int num_threads = 1;
};

/// Chaos scorecard: how fast the loop noticed, repaired and recovered.
/// All latencies are in beats (multiples of the beat interval).
struct ChaosScore {
  int truth_down = 0;       ///< ground-truth down transitions
  int truth_up = 0;         ///< ground-truth up transitions
  int detected = 0;         ///< down transitions matched by an inference
  int recovered = 0;        ///< up transitions matched by an inference
  int repaired = 0;         ///< matched down inferences whose repair succeeded
  double mean_detection_beats = 0.0;  ///< inferred down lag behind truth
  double max_detection_beats = 0.0;
  double mean_recovery_beats = 0.0;   ///< inferred up lag behind truth heal
  double max_recovery_beats = 0.0;
};

struct HealthMonitorResult {
  /// Every inferred transition, in emission order.
  std::vector<InferredTransition> inferred;
  /// One outcome per inferred transition (the event the control loop
  /// synthesized from it, its repair report, validation verdict).
  std::vector<EventOutcome> outcomes;
  Allocation final_allocation;
  ScenarioSummary summary;
  ChaosScore score;
  /// Same FNV-1a accumulation as ScenarioResult::signature.
  std::uint64_t signature = 0;
};

HealthMonitorResult run_health_monitor(
    const std::vector<ApplicationSpec>& initial_apps, const Platform& platform,
    const PriceCatalog& catalog, const ChaosTrace& trace,
    const HealthMonitorOptions& options = {});

} // namespace insp
