#include "ilp/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace insp {

int processor_count_lower_bound(const Problem& problem) {
  const OperatorTree& tree = *problem.tree;
  const PriceCatalog& cat = *problem.catalog;

  // CPU volume.
  MegaOps total_work = 0.0;
  for (const auto& n : tree.operators()) total_work += n.work;
  const double by_cpu =
      std::ceil(problem.rho * total_work / cat.max_speed() - kCapacityEpsilon);

  // Download volume: each distinct type needed by the application must be
  // streamed into at least one processor card.
  std::set<int> types;
  for (const auto& l : tree.leaf_refs()) types.insert(l.object_type);
  MBps total_rate = 0.0;
  for (int t : types) total_rate += tree.catalog().type(t).rate();
  const double by_nic =
      std::ceil(total_rate / cat.max_bandwidth() - kCapacityEpsilon);

  return std::max({1, static_cast<int>(by_cpu), static_cast<int>(by_nic)});
}

CostLowerBound cost_lower_bound(const Problem& problem) {
  const OperatorTree& tree = *problem.tree;
  const PriceCatalog& cat = *problem.catalog;
  const Dollars cheapest = cat.cost(cat.cheapest());

  CostLowerBound lb{cheapest, "one-processor"};

  const int nproc = processor_count_lower_bound(problem);
  if (nproc * cheapest > lb.value) {
    lb.value = nproc * cheapest;
    lb.binding = "processor-count";
  }

  // The heaviest operator must fit some CPU; charge the cheapest config
  // that can host it alone (infeasible instances get +inf).
  MegaOps w_max = 0.0;
  for (const auto& n : tree.operators()) w_max = std::max(w_max, n.work);
  const auto cfg = cat.cheapest_meeting(problem.rho * w_max, 0.0);
  if (!cfg) {
    lb.value = std::numeric_limits<double>::infinity();
    lb.binding = "heaviest-operator-unplaceable";
    return lb;
  }
  if (cat.cost(*cfg) > lb.value) {
    lb.value = cat.cost(*cfg);
    lb.binding = "heaviest-operator";
  }
  return lb;
}

} // namespace insp
