#include "ilp/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

namespace insp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

int ceil_count(double x) {
  return static_cast<int>(std::ceil(x - kCapacityEpsilon));
}

/// rho-scaled total operator work (CPU volume any allocation must supply).
MegaOps total_cpu_volume(const Problem& problem) {
  MegaOps total = 0.0;
  for (const auto& n : problem.tree->operators()) total += n.work;
  return problem.rho * total;
}

/// Every distinct object type some leaf references must stream into at
/// least one processor card; constraint (2) charges downloads at the raw
/// type rate (not rho-scaled).
MBps distinct_download_volume(const Problem& problem) {
  const OperatorTree& tree = *problem.tree;
  std::set<int> types;
  for (const auto& l : tree.leaf_refs()) types.insert(l.object_type);
  MBps total = 0.0;
  for (int t : types) total += tree.catalog().type(t).rate();
  return total;
}

int uf_find(std::vector<int>& parent, int x) {
  while (parent[static_cast<std::size_t>(x)] != x) {
    parent[static_cast<std::size_t>(x)] =
        parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    x = parent[static_cast<std::size_t>(x)];
  }
  return x;
}

} // namespace

MBps forced_communication_volume(const Problem& problem) {
  const OperatorTree& tree = *problem.tree;
  const int n = tree.num_operators();
  const MopsPerSec s_max = problem.catalog->max_speed();
  if (n == 0 || s_max <= 0.0) return 0.0;

  // Whole-forest certificate.  If the operators of the forest end up on q
  // distinct processors, contracting each weakly-connected component onto
  // its processors leaves at least q - (#components) distinct crossing
  // (processor, processor) pairs; each pair carries at least one
  // deduplicated shipment — a distinct (producer, destination-processor)
  // key — of volume >= rho * (smallest edge delta), charged to the
  // producer's and the consumer's NIC.  q >= ceil(rho*W / s_max) because
  // only hosting processors supply work.
  std::vector<int> parent(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  MegaBytes min_delta_global = kInf;
  int num_edges = 0;
  MegaOps total_work = 0.0;
  for (const auto& node : tree.operators()) {
    total_work += node.work;
    for (const OutEdge& e : node.out) {
      min_delta_global = std::min(min_delta_global, e.delta);
      ++num_edges;
      parent[static_cast<std::size_t>(uf_find(parent, node.id))] =
          uf_find(parent, e.dst);
    }
  }
  int components = 0;
  for (int i = 0; i < n; ++i) {
    if (uf_find(parent, i) == i) ++components;
  }

  MBps best = 0.0;
  const int k_all = ceil_count(problem.rho * total_work / s_max);
  if (num_edges > 0 && k_all > components) {
    best = 2.0 * (k_all - components) * problem.rho * min_delta_global;
  }

  // Per-closure refinement: the closure of v (v plus everything reachable
  // through children edges) is connected via closure-internal edges, so
  // its k_v - 1 forced crossings all carry closure-internal deltas —
  // usually far larger than the global minimum, and unaffected by cheap
  // edges elsewhere in the forest.
  std::vector<char> in_closure(static_cast<std::size_t>(n), 0);
  std::vector<int> stack;
  for (int v = 0; v < n; ++v) {
    std::fill(in_closure.begin(), in_closure.end(), 0);
    stack.assign(1, v);
    in_closure[static_cast<std::size_t>(v)] = 1;
    MegaOps w_closure = 0.0;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      w_closure += tree.op(u).work;
      for (int c : tree.op(u).children) {
        if (!in_closure[static_cast<std::size_t>(c)]) {
          in_closure[static_cast<std::size_t>(c)] = 1;
          stack.push_back(c);
        }
      }
    }
    const int k_v = ceil_count(problem.rho * w_closure / s_max);
    if (k_v < 2) continue;
    MegaBytes min_delta = kInf;
    for (int u = 0; u < n; ++u) {
      if (!in_closure[static_cast<std::size_t>(u)]) continue;
      for (const OutEdge& e : tree.op(u).out) {
        if (in_closure[static_cast<std::size_t>(e.dst)]) {
          min_delta = std::min(min_delta, e.delta);
        }
      }
    }
    if (min_delta == kInf) continue;  // k_v >= 2 needs >= 2 ops, so a
                                      // closure this heavy has edges
    best = std::max(best, 2.0 * (k_v - 1) * problem.rho * min_delta);
  }
  return best;
}

Dollars fractional_packing_cost(const PriceCatalog& catalog,
                                MegaOps cpu_volume, MBps nic_volume) {
  if (cpu_volume <= 0.0 && nic_volume <= 0.0) return 0.0;
  const auto& configs = catalog.by_cost();
  Dollars best = kInf;

  // Single configuration: scale until the binding constraint is tight.
  for (const auto& c : configs) {
    double x = 0.0;
    if (cpu_volume > 0.0) {
      if (catalog.speed(c) <= 0.0) continue;
      x = std::max(x, cpu_volume / catalog.speed(c));
    }
    if (nic_volume > 0.0) {
      if (catalog.bandwidth(c) <= 0.0) continue;
      x = std::max(x, nic_volume / catalog.bandwidth(c));
    }
    best = std::min(best, x * catalog.cost(c));
  }

  // Configuration pairs with both constraints tight (the only other basic
  // feasible solutions of a 2-row covering LP).
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const double si = catalog.speed(configs[i]);
    const double bi = catalog.bandwidth(configs[i]);
    for (std::size_t j = i + 1; j < configs.size(); ++j) {
      const double sj = catalog.speed(configs[j]);
      const double bj = catalog.bandwidth(configs[j]);
      const double det = si * bj - sj * bi;
      if (std::abs(det) < 1e-12) continue;
      const double xi = (cpu_volume * bj - nic_volume * sj) / det;
      const double xj = (si * nic_volume - bi * cpu_volume) / det;
      if (xi < 0.0 || xj < 0.0) continue;
      best = std::min(best, xi * catalog.cost(configs[i]) +
                                xj * catalog.cost(configs[j]));
    }
  }
  // Shave one relative ulp-cushion: the vertex arithmetic may round a hair
  // ABOVE the true LP optimum, and a lower bound must never exceed a
  // feasible cost it is exactly tight against.
  return best * (1.0 - 1e-9);
}

int processor_count_lower_bound(const Problem& problem) {
  const PriceCatalog& cat = *problem.catalog;
  const int by_cpu = ceil_count(total_cpu_volume(problem) / cat.max_speed());
  // NIC volume: every distinct type downloads at least once, and forced
  // inter-processor shipments consume NIC on top of that.
  const MBps nic_volume =
      distinct_download_volume(problem) + forced_communication_volume(problem);
  const int by_nic = ceil_count(nic_volume / cat.max_bandwidth());
  return std::max({1, by_cpu, by_nic});
}

CostLowerBound cost_lower_bound(const Problem& problem) {
  const OperatorTree& tree = *problem.tree;
  const PriceCatalog& cat = *problem.catalog;
  const Dollars cheapest = cat.cost(cat.cheapest());

  CostLowerBound lb{cheapest, "one-processor"};

  // The heaviest operator must fit some CPU; infeasible instances get +inf.
  MegaOps w_max = 0.0;
  for (const auto& n : tree.operators()) w_max = std::max(w_max, n.work);
  const auto heavy = cat.cheapest_meeting(problem.rho * w_max, 0.0);
  if (!heavy) {
    lb.value = kInf;
    lb.binding = "heaviest-operator-unplaceable";
    return lb;
  }

  const int nproc = processor_count_lower_bound(problem);
  if (nproc * cheapest > lb.value) {
    lb.value = nproc * cheapest;
    lb.binding = "processor-count";
  }
  if (cat.cost(*heavy) > lb.value) {
    lb.value = cat.cost(*heavy);
    lb.binding = "heaviest-operator";
  }

  const MegaOps cpu_volume = total_cpu_volume(problem);
  const MBps downloads = distinct_download_volume(problem);
  const MBps forced = forced_communication_volume(problem);
  const Dollars frac_plain = fractional_packing_cost(cat, cpu_volume, downloads);
  const Dollars frac_forced =
      forced > 0.0 ? fractional_packing_cost(cat, cpu_volume, downloads + forced)
                   : frac_plain;
  if (frac_forced > lb.value) {
    lb.value = frac_forced;
    lb.binding =
        frac_forced > frac_plain + 1e-9 ? "forced-communication"
                                        : "fractional-packing";
  }
  return lb;
}

} // namespace insp
