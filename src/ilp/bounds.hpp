// Coarse but provable lower bounds on the optimal platform cost, used by
// the exact solver for pruning and by the experiment reports as the
// "theoretical bound" the paper compares against.
#pragma once

#include "core/problem.hpp"

namespace insp {

struct CostLowerBound {
  Dollars value = 0.0;
  /// Which argument achieved the max (for reports).
  const char* binding = "";
};

/// max of:
///  - one cheapest processor (at least one must be bought),
///  - CPU packing: ceil(rho * sum w / s_max) processors, each at least the
///    cheapest configuration whose CPU can take an equal share,
///  - per-operator requirement: the most demanding single operator needs a
///    configuration with speed >= rho * w_i (infinite when none exists —
///    the instance is infeasible),
///  - download volume: every distinct object type needed by the tree flows
///    through processor cards at least once, so
///    ceil(total_distinct_rate / B_max) processors are needed.
CostLowerBound cost_lower_bound(const Problem& problem);

/// Lower bound on the number of processors (homogeneous reasoning with the
/// catalog's best models); >= 1 for any non-empty tree.
int processor_count_lower_bound(const Problem& problem);

} // namespace insp
