// Provable lower bounds on the optimal platform cost, used by the exact
// solver for pruning and by the experiment reports as the "theoretical
// bound" the paper compares against.  Three families are combined
// (docs/DESIGN.md §14):
//
//  - combinatorial: one cheapest processor, processor-count x cheapest,
//    and the cheapest configuration hosting the heaviest single operator;
//  - fractional packing: the exact optimum of the 2-constraint covering LP
//    "buy fractional configurations whose summed CPU covers rho*sum(w) and
//    whose summed NIC covers the download + forced-communication volume"
//    (solved by vertex enumeration over configuration pairs);
//  - forced communication: when a connected (sub)graph's work cannot fit
//    the fastest CPU, its operators span k >= 2 processors and at least
//    k-1 deduplicated shipments must cross, each consuming producer and
//    consumer NIC — multicast-dedup-aware, so valid on shared DAGs.
#pragma once

#include "core/problem.hpp"

namespace insp {

struct CostLowerBound {
  Dollars value = 0.0;
  /// Which argument achieved the max (for reports): "one-processor",
  /// "processor-count", "heaviest-operator" ("-unplaceable" when no CPU can
  /// host it: the instance is infeasible and the bound is +inf),
  /// "fractional-packing", or "forced-communication" (fractional packing
  /// where the forced shipment volume is what pushed it past every other
  /// term).
  const char* binding = "";
};

/// max of the combinatorial terms, the fractional packing relaxation, and
/// the forced-communication strengthening; see the header comment.
CostLowerBound cost_lower_bound(const Problem& problem);

/// Lower bound on the number of processors any feasible allocation buys:
/// CPU volume over the fastest model, and download + forced-communication
/// volume over the widest NIC; >= 1 for any non-empty tree.
int processor_count_lower_bound(const Problem& problem);

/// Exact optimum of the fractional covering relaxation
///   min sum_c cost(c) * x_c
///   s.t. sum_c speed(c) * x_c >= cpu_volume,
///        sum_c bandwidth(c) * x_c >= nic_volume,  x >= 0,
/// a valid lower bound on the cost of any processor multiset that jointly
/// supplies the two volumes.  An optimal basic solution uses at most two
/// configurations, so the LP is solved exactly by enumerating single
/// configurations and configuration pairs with both constraints tight.
Dollars fractional_packing_cost(const PriceCatalog& catalog,
                                MegaOps cpu_volume, MBps nic_volume);

/// Multicast-dedup-aware lower bound on the total NIC bandwidth (producer
/// and consumer endpoints summed) consumed by inter-processor shipments in
/// ANY feasible allocation.  For the whole forest and for every operator's
/// closure (the operator plus everything reachable through children
/// edges), if the contained work w forces k = ceil(rho*w / s_max) >= 2
/// processors, connectivity forces at least k-1 distinct crossing
/// (producer, destination-processor) shipments, each of at least the
/// smallest internal edge delta; the best such certificate is returned.
MBps forced_communication_volume(const Problem& problem);

} // namespace insp
