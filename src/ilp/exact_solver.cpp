#include "ilp/exact_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "core/allocator.hpp"
#include "core/placement_common.hpp"
#include "core/placement_state.hpp"
#include "core/server_selection.hpp"
#include "core/strategy_registry.hpp"
#include "ilp/bounds.hpp"
#include "net/bandwidth_ledger.hpp"
#include "util/rng.hpp"

namespace insp {

std::string ExactResult::describe() const {
  std::ostringstream out;
  switch (status) {
    case ExactStatus::Optimal: out << "optimal"; break;
    case ExactStatus::Infeasible: out << "infeasible"; break;
    case ExactStatus::BudgetExhausted: out << "budget-exhausted"; break;
  }
  if (cost) out << " cost=$" << *cost;
  out << " nodes=" << nodes_visited;
  return out.str();
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Backtracking router over (processor, type) download demands.
class ExactRouter {
 public:
  ExactRouter(const Problem& problem, const Allocation& alloc)
      : problem_(problem), alloc_(alloc) {
    const auto needed = needed_types_per_processor(problem, alloc);
    for (std::size_t u = 0; u < needed.size(); ++u) {
      for (int t : needed[u]) {
        demands_.push_back({static_cast<int>(u), t});
      }
    }
    // Hardest demands first: fewest hosting servers, then largest rate.
    std::sort(demands_.begin(), demands_.end(), [&](const auto& a,
                                                    const auto& b) {
      const std::size_t ha = problem_.platform->servers_with(a.second).size();
      const std::size_t hb = problem_.platform->servers_with(b.second).size();
      if (ha != hb) return ha < hb;
      const MBps ra = rate(a.second), rb = rate(b.second);
      if (ra != rb) return ra > rb;
      if (a.second != b.second) return a.second < b.second;
      return a.first < b.first;
    });
    std::vector<MBps> caps;
    for (int l = 0; l < problem_.platform->num_servers(); ++l) {
      caps.push_back(problem_.platform->server(l).card_bandwidth);
    }
    cards_ = CardLedger(std::move(caps));
    links_ = LinkLedger(problem_.platform->link_server_proc());
  }

  bool solve(std::vector<int>* out_servers) {
    out_servers->assign(demands_.size(), -1);
    return dfs(0, out_servers);
  }

  const std::vector<std::pair<int, int>>& demands() const { return demands_; }

 private:
  MBps rate(int type) const {
    return problem_.tree->catalog().type(type).rate();
  }

  bool dfs(std::size_t i, std::vector<int>* out) {
    if (i == demands_.size()) return true;
    const auto [proc, type] = demands_[i];
    const MBps r = rate(type);
    for (int s : problem_.platform->servers_with(type)) {
      if (!cards_.can_add(s, r) || !links_.can_add(s, proc, r)) continue;
      cards_.add(s, r);
      links_.add(s, proc, r);
      (*out)[i] = s;
      if (dfs(i + 1, out)) return true;
      cards_.remove(s, r);
      links_.remove(s, proc, r);
      (*out)[i] = -1;
    }
    return false;
  }

  const Problem& problem_;
  const Allocation& alloc_;
  std::vector<std::pair<int, int>> demands_;  // (proc, type)
  CardLedger cards_;
  LinkLedger links_;
};

/// Exact cost of a complete partition: cheapest configuration meeting each
/// processor's full load (CPU + NIC including downloads and comm).
std::optional<Dollars> complete_partition_cost(const Problem& problem,
                                               const PlacementState& state,
                                               int opened) {
  Dollars total = 0.0;
  for (int u = 0; u < opened; ++u) {
    const auto cfg = problem.catalog->cheapest_meeting(state.cpu_demand(u),
                                                       state.nic_load(u));
    if (!cfg) return std::nullopt;
    total += problem.catalog->cost(*cfg);
  }
  return total;
}

/// Shared leaf handler of both searches: price the complete partition,
/// route servers exactly, and install the allocation as the new incumbent
/// when strictly better.
void try_complete_partition(const Problem& problem, const PlacementState& state,
                            int opened, Dollars* best_cost,
                            std::optional<Allocation>* best_alloc) {
  const auto cost = complete_partition_cost(problem, state, opened);
  if (!cost || *cost >= *best_cost - 1e-9) return;

  Allocation alloc = state.to_allocation();
  // Server routing: fast path, then exact.
  if (!route_downloads_exact(problem, alloc)) return;

  // Apply cheapest-meeting configs now that routes exist (routes do not
  // change NIC loads — rates are server-independent).
  const auto loads = compute_processor_loads(problem, alloc);
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    const auto cfg = problem.catalog->cheapest_meeting(loads[u].cpu_demand,
                                                       loads[u].nic_total());
    assert(cfg.has_value());
    alloc.processors[u].config = *cfg;
  }
  *best_cost = *cost;
  *best_alloc = std::move(alloc);
}

/// The pre-incremental search, kept verbatim as the differential oracle:
/// copy-era pruning (per-processor CPU demand only), no incumbent seeding.
class ReferenceSearch {
 public:
  ReferenceSearch(const Problem& problem, const ExactSolverConfig& config)
      : problem_(problem),
        config_(config),
        state_(problem),
        order_(ops_by_work_desc(*problem.tree)) {}

  ExactResult run() {
    ExactResult result;
    if (config_.incumbent) best_cost_ = *config_.incumbent;

    // Pre-buy the maximum number of processors; only the first `opened`
    // count toward cost and candidate targets.
    const int n = problem_.tree->num_operators();
    for (int i = 0; i < n; ++i) {
      state_.buy(problem_.catalog->most_expensive());
    }

    budget_ok_ = true;
    dfs(0, 0);

    result.nodes_visited = nodes_;
    if (!budget_ok_) {
      result.status = ExactStatus::BudgetExhausted;
    } else if (best_alloc_.has_value()) {
      result.status = ExactStatus::Optimal;
    } else {
      result.status = ExactStatus::Infeasible;
    }
    if (best_alloc_) {
      result.cost = best_cost_;
      result.allocation = std::move(best_alloc_);
    }
    return result;
  }

 private:
  /// Cost of the partition if completed as-is: per opened processor the
  /// cheapest configuration covering its *current* CPU demand only (the
  /// historical bound; the incremental search proves NIC loads are monotone
  /// too and charges them — see IncrementalSearch::partial_cost_bound).
  Dollars partial_cost_bound(int opened) const {
    Dollars total = 0.0;
    for (int u = 0; u < opened; ++u) {
      const auto cfg =
          problem_.catalog->cheapest_meeting(state_.cpu_demand(u), 0.0);
      if (!cfg) return kInf;
      total += problem_.catalog->cost(*cfg);
    }
    return total;
  }

  void dfs(std::size_t depth, int opened) {
    if (!budget_ok_) return;
    if (config_.node_budget && nodes_ >= config_.node_budget) {
      budget_ok_ = false;
      return;
    }
    ++nodes_;

    if (depth == order_.size()) {
      try_complete_partition(problem_, state_, opened, &best_cost_,
                             &best_alloc_);
      return;
    }
    if (partial_cost_bound(opened) >= best_cost_ - 1e-9) return;

    const int op = order_[depth];
    const int max_target = std::min(opened + 1,
                                    problem_.tree->num_operators());
    for (int u = 0; u < max_target; ++u) {
      // search_place validates only the capacities the assignment touched —
      // equivalent to a full feasible() scan here because every state on the
      // search path was feasible when it was extended.
      if (state_.search_place(op, u)) {
        dfs(depth + 1, std::max(opened, u + 1));
      }
      state_.search_unassign(op);
      if (!budget_ok_) return;
    }
  }

  const Problem& problem_;
  const ExactSolverConfig& config_;
  PlacementState state_;
  std::vector<int> order_;
  Dollars best_cost_ = kInf;
  std::optional<Allocation> best_alloc_;
  std::uint64_t nodes_ = 0;
  bool budget_ok_ = true;
};

/// The incremental branch-and-bound (docs/DESIGN.md §14): one live
/// PlacementState, SoA batch probes for child expansion, composite root
/// bound plus a CPU+NIC partial bound with a remaining-work processor
/// charge, and registry-heuristic incumbent seeding.
class IncrementalSearch {
 public:
  IncrementalSearch(const Problem& problem, const ExactSolverConfig& config)
      : problem_(problem),
        config_(config),
        state_(problem),
        order_(ops_by_work_desc(*problem.tree)) {
    const std::size_t n = order_.size();
    // suffix_work_[d] = total (unscaled) work of order_[d..): how much CPU
    // demand the not-yet-assigned operators will add, whatever the shape of
    // the completion.
    suffix_work_.assign(n + 1, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      suffix_work_[i] =
          suffix_work_[i + 1] + problem.tree->op(order_[i]).work;
    }
    frames_.resize(n);
  }

  ExactResult run() {
    ExactResult result;
    root_lb_ = cost_lower_bound(problem_).value;
    if (config_.incumbent) best_cost_ = *config_.incumbent;
    if (config_.seed_with_heuristics) seed_incumbent();

    // Proof by bound: a seeded incumbent meeting the root lower bound is
    // already optimal; no node needs visiting.
    if (best_alloc_ && best_cost_ <= root_lb_ + 1e-9) {
      result.status = ExactStatus::Optimal;
      result.cost = best_cost_;
      result.allocation = std::move(best_alloc_);
      result.nodes_visited = 0;
      return result;
    }

    // Pre-buy the maximum number of processors; only the first `opened`
    // count toward cost and candidate targets.
    const int n = problem_.tree->num_operators();
    for (int i = 0; i < n; ++i) {
      state_.buy(problem_.catalog->most_expensive());
    }

    budget_ok_ = true;
    dfs(0, 0);

    result.nodes_visited = nodes_;
    if (!budget_ok_) {
      result.status = ExactStatus::BudgetExhausted;
    } else if (best_alloc_.has_value()) {
      result.status = ExactStatus::Optimal;
    } else {
      result.status = ExactStatus::Infeasible;
    }
    if (best_alloc_) {
      result.cost = best_cost_;
      result.allocation = std::move(best_alloc_);
    }
    return result;
  }

 private:
  struct Frame {
    std::vector<int> group;                // the one operator being placed
    std::vector<int> pids;                 // candidate targets
    std::vector<unsigned char> verdicts;   // batch feasibility answers
  };

  void seed_incumbent() {
    for (const PlacementStrategy& s : placement_registry()) {
      // Fixed per-strategy seed: the solver's result must not depend on any
      // caller RNG state.
      Rng rng(0xB0B5'0000ull + static_cast<std::uint64_t>(s.kind));
      const AllocationOutcome out = allocate(problem_, s.kind, rng);
      if (!out.success) continue;
      if (out.cost < best_cost_ - 1e-9 || (!best_alloc_ && out.cost <= best_cost_)) {
        best_cost_ = out.cost;
        best_alloc_ = out.allocation;
      }
    }
  }

  /// Lower bound on any completion of the current partial partition.  Every
  /// load is monotone non-decreasing along a descent (operators are only
  /// ever added; multicast dedup takes a max over edges, which never
  /// shrinks), so each opened processor costs at least the cheapest
  /// configuration meeting its CURRENT CPU demand and NIC load.  The
  /// remaining operators add rho * suffix_work_[depth] CPU demand; whatever
  /// does not fit the opened processors' residual CPU headroom forces new
  /// processors at the cheapest configuration each.
  Dollars partial_cost_bound(int opened, std::size_t depth) const {
    const PriceCatalog& cat = *problem_.catalog;
    const MopsPerSec s_max = cat.max_speed();
    Dollars total = 0.0;
    MopsPerSec headroom = 0.0;
    for (int u = 0; u < opened; ++u) {
      const MegaOps cpu = state_.cpu_demand(u);
      const auto cfg = cat.cheapest_meeting(cpu, state_.nic_load(u));
      if (!cfg) return kInf;
      total += cat.cost(*cfg);
      headroom += std::max(0.0, s_max - cpu);
    }
    const MegaOps overflow = problem_.rho * suffix_work_[depth] - headroom;
    if (overflow > kCapacityEpsilon) {
      const double extra = std::ceil(overflow / s_max - kCapacityEpsilon);
      total += extra * cat.cost(cat.cheapest());
    }
    return total;
  }

  void dfs(std::size_t depth, int opened) {
    if (!budget_ok_) return;
    if (config_.node_budget && nodes_ >= config_.node_budget) {
      budget_ok_ = false;
      return;
    }
    ++nodes_;

    if (depth == order_.size()) {
      try_complete_partition(problem_, state_, opened, &best_cost_,
                             &best_alloc_);
      return;
    }
    const Dollars bound =
        std::max(partial_cost_bound(opened, depth), root_lb_);
    if (bound >= best_cost_ - 1e-9) return;

    const int op = order_[depth];
    const int max_target = std::min(opened + 1,
                                    problem_.tree->num_operators());
    // One SoA batch probe screens every child: infeasible targets never pay
    // a journal transaction.  Verdicts equal search_place's touched-set
    // answer because every state on the search path is feasible.
    Frame& f = frames_[depth];
    f.group.assign(1, op);
    f.pids.resize(static_cast<std::size_t>(max_target));
    for (int u = 0; u < max_target; ++u) {
      f.pids[static_cast<std::size_t>(u)] = u;
    }
    state_.can_place_batch(f.group, f.pids, f.verdicts);
    for (int u = 0; u < max_target; ++u) {
      if (!f.verdicts[static_cast<std::size_t>(u)]) continue;
      const bool ok = state_.search_place(op, u);
      assert(ok);
      (void)ok;
      dfs(depth + 1, std::max(opened, u + 1));
      state_.search_unassign(op);
      if (!budget_ok_) return;
    }
  }

  const Problem& problem_;
  const ExactSolverConfig& config_;
  PlacementState state_;
  std::vector<int> order_;
  std::vector<MegaOps> suffix_work_;
  std::vector<Frame> frames_;
  Dollars root_lb_ = 0.0;
  Dollars best_cost_ = kInf;
  std::optional<Allocation> best_alloc_;
  std::uint64_t nodes_ = 0;
  bool budget_ok_ = true;
};

} // namespace

bool route_downloads_exact(const Problem& problem, Allocation& alloc) {
  // Fast path: the paper's three-loop heuristic.
  {
    Allocation trial = alloc;
    if (select_servers_three_loop(problem, trial).success) {
      alloc = std::move(trial);
      return true;
    }
  }
  // Exact backtracking.
  ExactRouter router(problem, alloc);
  std::vector<int> servers;
  if (!router.solve(&servers)) return false;
  for (auto& p : alloc.processors) p.downloads.clear();
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const auto [proc, type] = router.demands()[i];
    alloc.processors[static_cast<std::size_t>(proc)].downloads.push_back(
        {type, servers[i]});
  }
  for (auto& p : alloc.processors) {
    std::sort(p.downloads.begin(), p.downloads.end(),
              [](const DownloadRoute& a, const DownloadRoute& b) {
                return a.object_type < b.object_type;
              });
  }
  return true;
}

ExactResult solve_exact(const Problem& problem,
                        const ExactSolverConfig& config) {
  return IncrementalSearch(problem, config).run();
}

ExactResult solve_exact_reference(const Problem& problem,
                                  const ExactSolverConfig& config) {
  return ReferenceSearch(problem, config).run();
}

} // namespace insp
