// Exact optimal-cost solver, standing in for the paper's CPLEX runs
// (docs/DESIGN.md §4, §14).  Incremental branch-and-bound over
// operator->processor partitions, walking ONE live PlacementState through
// the transactional engine instead of copying and re-provisioning:
//
//  - operators are assigned in non-increasing w order; a new processor may
//    only be opened as the next unused index (symmetry breaking);
//  - every processor is pre-provisioned with the catalog's most expensive
//    configuration; descent uses `search_place`/`search_unassign` (journal
//    rollback, touched-set verdicts), and child targets are screened in one
//    SoA batch probe (`can_place_batch`) per node — realized loads grow
//    monotonically along a search path, so a failed touched verdict prunes
//    the whole subtree;
//  - the incumbent is seeded from every registry heuristic before the
//    search starts, and nodes prune against the composite lower bound
//    (ilp/bounds.hpp: fractional packing + forced communication) plus a
//    partial-state bound: per opened processor the cheapest configuration
//    covering its CURRENT CPU and NIC load (both monotone under descent —
//    including multicast-dedup comm, since descent never unassigns), plus
//    cheapest-configuration charges for the processors the remaining work
//    cannot avoid opening;
//  - at a complete partition the per-processor configuration choice is
//    independent: the optimal cost is the sum of cheapest-meeting configs;
//  - server selection feasibility is decided exactly by a backtracking
//    router over (processor, type) demands (the three-loop heuristic is
//    tried first as a fast path).
//
// Practical for the paper's comparison sizes (N <= ~16, where CPLEX itself
// topped out at 20); a node budget turns the result into a lower-bound
// status instead of hanging.  `solve_exact_reference` keeps the previous
// copy-era search (CPU-only bound, no seeding) alive as the differential
// oracle for tests/ilp and the node-count baseline for bench_ilp_comparison.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/allocation.hpp"
#include "core/problem.hpp"

namespace insp {

struct ExactSolverConfig {
  /// Abort after this many search nodes (0 = unlimited).
  std::uint64_t node_budget = 20'000'000;
  /// Optional upper bound seed (e.g. a heuristic's cost) to prune earlier.
  std::optional<Dollars> incumbent;
  /// Run every registry heuristic first and adopt the best feasible result
  /// as the starting incumbent (and as the answer, when it meets the root
  /// lower bound).  The reference solver ignores this.
  bool seed_with_heuristics = true;
};

enum class ExactStatus {
  Optimal,          ///< search exhausted: cost is the true optimum
  Infeasible,       ///< search exhausted: no feasible allocation exists
  BudgetExhausted,  ///< best-found cost (if any) is only an upper bound
};

struct ExactResult {
  ExactStatus status = ExactStatus::Infeasible;
  std::optional<Dollars> cost;
  std::optional<Allocation> allocation;
  std::uint64_t nodes_visited = 0;
  std::string describe() const;
};

ExactResult solve_exact(const Problem& problem,
                        const ExactSolverConfig& config = {});

/// The pre-incremental branch-and-bound (copy-era pruning: CPU-only partial
/// bound, no incumbent seeding, no composite root bound).  Kept verbatim as
/// a differential oracle: tests/ilp assert cost/status agreement with
/// solve_exact, and bench_ilp_comparison reports the node-count ratio.
ExactResult solve_exact_reference(const Problem& problem,
                                  const ExactSolverConfig& config = {});

/// Exact feasibility of server selection for a fixed operator placement:
/// backtracking over per-(processor, type) demands.  Fills `alloc`'s
/// download routes on success.  DAG semantics: demands are the distinct
/// object types each processor's operators reference (shared types
/// deduplicate per processor, exactly as constraint (2) charges them);
/// operator->operator edges and multicast shipments never touch servers,
/// so shared-subexpression DAGs need no extra routing work.
bool route_downloads_exact(const Problem& problem, Allocation& alloc);

} // namespace insp
