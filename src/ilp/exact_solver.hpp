// Exact optimal-cost solver, standing in for the paper's CPLEX runs
// (docs/DESIGN.md §4).  Branch-and-bound over operator->processor partitions:
//
//  - operators are assigned in non-increasing w order; a new processor may
//    only be opened as the next unused index (symmetry breaking);
//  - during the search every processor is provisioned with the catalog's
//    most expensive configuration; realized loads grow monotonically along
//    a search path, so an infeasible partial state prunes its whole subtree;
//  - at a complete partition the per-processor configuration choice is
//    independent: the optimal cost is the sum of cheapest-meeting configs;
//  - server selection feasibility is decided exactly by a backtracking
//    router over (processor, type) demands (the three-loop heuristic is
//    tried first as a fast path);
//  - the cost lower bound (opened processors at cheapest-meeting CPU cost)
//    prunes against the incumbent.
//
// Practical for the paper's comparison sizes (N <= ~16, where CPLEX itself
// topped out at 20); a node budget turns the result into a lower-bound
// status instead of hanging.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/allocation.hpp"
#include "core/problem.hpp"

namespace insp {

struct ExactSolverConfig {
  /// Abort after this many search nodes (0 = unlimited).
  std::uint64_t node_budget = 20'000'000;
  /// Optional upper bound seed (e.g. a heuristic's cost) to prune earlier.
  std::optional<Dollars> incumbent;
};

enum class ExactStatus {
  Optimal,          ///< search exhausted: cost is the true optimum
  Infeasible,       ///< search exhausted: no feasible allocation exists
  BudgetExhausted,  ///< best-found cost (if any) is only an upper bound
};

struct ExactResult {
  ExactStatus status = ExactStatus::Infeasible;
  std::optional<Dollars> cost;
  std::optional<Allocation> allocation;
  std::uint64_t nodes_visited = 0;
  std::string describe() const;
};

ExactResult solve_exact(const Problem& problem,
                        const ExactSolverConfig& config = {});

/// Exact feasibility of server selection for a fixed operator placement:
/// backtracking over per-(processor, type) demands.  Fills `alloc`'s
/// download routes on success.
bool route_downloads_exact(const Problem& problem, Allocation& alloc);

} // namespace insp
