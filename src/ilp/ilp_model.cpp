#include "ilp/ilp_model.hpp"

#include <algorithm>

#include <set>
#include <sstream>
#include <vector>

namespace insp {

namespace {

std::string y(int u, int c) {
  return "y_" + std::to_string(u) + "_" + std::to_string(c);
}
std::string x(int i, int u) {
  return "x_" + std::to_string(i) + "_" + std::to_string(u);
}
std::string z(int e, int u, int v) {
  return "z_" + std::to_string(e) + "_" + std::to_string(u) + "_" +
         std::to_string(v);
}
std::string need(int k, int u) {
  return "need_" + std::to_string(k) + "_" + std::to_string(u);
}
std::string d(int k, int l, int u) {
  return "d_" + std::to_string(k) + "_" + std::to_string(l) + "_" +
         std::to_string(u);
}

} // namespace

std::string build_ilp_lp_format(const Problem& problem,
                                const IlpModelConfig& config,
                                IlpModelStats* stats) {
  const OperatorTree& tree = *problem.tree;
  const Platform& plat = *problem.platform;
  const PriceCatalog& cat = *problem.catalog;
  const double rho = problem.rho;

  const int N = tree.num_operators();
  const int U = config.num_slots > 0 ? config.num_slots : N;
  const int C = cat.num_configs();
  const int S = plat.num_servers();

  // Edges: one (child, parent) pair per out-edge, in operator order then
  // out-edge order — the historical child-id order on trees.  NOTE: the
  // model charges each edge independently; it does not apply the multicast
  // dedup of docs/DESIGN.md §13, so on shared-subexpression DAGs the ILP
  // bandwidth rows are a conservative over-estimate (any ILP-feasible
  // placement remains feasible under the deduped semantics).
  struct IlpEdge {
    int child;
    int parent;
    double delta;
  };
  std::vector<IlpEdge> edges;
  for (const auto& n : tree.operators()) {
    for (const OutEdge& oe : n.out) {
      edges.push_back(IlpEdge{n.id, oe.dst, oe.delta});
    }
  }
  // Types actually needed by the application.
  std::set<int> types;
  for (const auto& l : tree.leaf_refs()) types.insert(l.object_type);

  int n_constraints = 0;
  std::ostringstream obj, rows, bounds, bins;

  auto row = [&](const std::string& body) {
    rows << " c" << ++n_constraints << ": " << body << "\n";
  };

  // ---- Objective -----------------------------------------------------------
  obj << "Minimize\n obj:";
  {
    bool first = true;
    for (int u = 0; u < U; ++u) {
      int c = 0;
      for (const auto& cfg : cat.by_cost()) {
        obj << (first ? " " : " + ") << cat.cost(cfg) << " " << y(u, c);
        first = false;
        ++c;
      }
    }
  }
  obj << "\n";

  rows << "Subject To\n";

  // ---- Assignment: every operator on exactly one slot. ---------------------
  for (int i = 0; i < N; ++i) {
    std::ostringstream body;
    for (int u = 0; u < U; ++u) {
      body << (u ? " + " : "") << x(i, u);
    }
    body << " = 1";
    row(body.str());
  }

  // ---- Config rows: at most one config per slot; x implies bought. ---------
  for (int u = 0; u < U; ++u) {
    std::ostringstream body;
    for (int c = 0; c < C; ++c) body << (c ? " + " : "") << y(u, c);
    body << " <= 1";
    row(body.str());
  }
  for (int i = 0; i < N; ++i) {
    for (int u = 0; u < U; ++u) {
      std::ostringstream body;
      body << x(i, u);
      for (int c = 0; c < C; ++c) body << " - " << y(u, c);
      body << " <= 0";
      row(body.str());
    }
  }

  // ---- z linking: z >= xc + xp - 1, z <= xc, z <= xp. ----------------------
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const int child = edges[e].child;
    const int parent = edges[e].parent;
    for (int u = 0; u < U; ++u) {
      for (int v = 0; v < U; ++v) {
        if (u == v) continue;
        const std::string zv = z(static_cast<int>(e), u, v);
        row(zv + " - " + x(child, u) + " - " + x(parent, v) + " >= -1");
        row(zv + " - " + x(child, u) + " <= 0");
        row(zv + " - " + x(parent, v) + " <= 0");
      }
    }
  }

  // ---- need linking: need[k,u] >= x[i,u] for ops i needing k. --------------
  for (int k : types) {
    for (int u = 0; u < U; ++u) {
      for (const auto& n : tree.operators()) {
        const auto ts = tree.object_types_of(n.id);
        if (std::find(ts.begin(), ts.end(), k) == ts.end()) continue;
        row(need(k, u) + " - " + x(n.id, u) + " >= 0");
      }
      // Downloads satisfy the need from hosting servers only.
      std::ostringstream body;
      bool first = true;
      for (int l : plat.servers_with(k)) {
        body << (first ? "" : " + ") << d(k, l, u);
        first = false;
      }
      if (first) {
        // Un-hosted type: force need = 0 (instance infeasible if required).
        row(need(k, u) + " = 0");
      } else {
        body << " - " << need(k, u) << " = 0";
        row(body.str());
      }
    }
  }

  // ---- (1) CPU capacity. ----------------------------------------------------
  for (int u = 0; u < U; ++u) {
    std::ostringstream body;
    for (int i = 0; i < N; ++i) {
      body << (i ? " + " : "") << rho * tree.op(i).work << " " << x(i, u);
    }
    int c = 0;
    for (const auto& cfg : cat.by_cost()) {
      body << " - " << cat.speed(cfg) << " " << y(u, c);
      ++c;
    }
    body << " <= 0";
    row(body.str());
  }

  // ---- (2) processor NIC. ----------------------------------------------------
  for (int u = 0; u < U; ++u) {
    std::ostringstream body;
    bool first = true;
    for (int k : types) {
      for (int l : plat.servers_with(k)) {
        body << (first ? "" : " + ") << tree.catalog().type(k).rate() << " "
             << d(k, l, u);
        first = false;
      }
    }
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const double vol = rho * edges[e].delta;
      for (int v = 0; v < U; ++v) {
        if (v == u) continue;
        // outbound (child here) and inbound (parent here).
        body << (first ? "" : " + ") << vol << " "
             << z(static_cast<int>(e), u, v);
        first = false;
        body << " + " << vol << " " << z(static_cast<int>(e), v, u);
      }
    }
    int c = 0;
    for (const auto& cfg : cat.by_cost()) {
      body << " - " << cat.bandwidth(cfg) << " " << y(u, c);
      ++c;
    }
    body << " <= 0";
    row(body.str());
  }

  // ---- (3) server cards. ------------------------------------------------------
  for (int l = 0; l < S; ++l) {
    std::ostringstream body;
    bool first = true;
    for (int k : types) {
      if (!plat.server(l).hosts(k)) continue;
      for (int u = 0; u < U; ++u) {
        body << (first ? "" : " + ") << tree.catalog().type(k).rate() << " "
             << d(k, l, u);
        first = false;
      }
    }
    if (first) continue;  // server irrelevant to this instance
    body << " <= " << plat.server(l).card_bandwidth;
    row(body.str());
  }

  // ---- (4) server->processor links. -------------------------------------------
  for (int l = 0; l < S; ++l) {
    for (int u = 0; u < U; ++u) {
      std::ostringstream body;
      bool first = true;
      for (int k : types) {
        if (!plat.server(l).hosts(k)) continue;
        body << (first ? "" : " + ") << tree.catalog().type(k).rate() << " "
             << d(k, l, u);
        first = false;
      }
      if (first) continue;
      body << " <= " << plat.link_server_proc();
      row(body.str());
    }
  }

  // ---- (5) processor<->processor links. ----------------------------------------
  for (int u = 0; u < U; ++u) {
    for (int v = u + 1; v < U; ++v) {
      std::ostringstream body;
      bool first = true;
      for (std::size_t e = 0; e < edges.size(); ++e) {
        const double vol = rho * edges[e].delta;
        body << (first ? "" : " + ") << vol << " "
             << z(static_cast<int>(e), u, v) << " + " << vol << " "
             << z(static_cast<int>(e), v, u);
        first = false;
      }
      if (first) continue;
      body << " <= " << plat.link_proc_proc();
      row(body.str());
    }
  }

  // ---- Binaries. -----------------------------------------------------------------
  bins << "Binary\n";
  int n_vars = 0;
  auto bin = [&](const std::string& v) {
    bins << " " << v << "\n";
    ++n_vars;
  };
  for (int u = 0; u < U; ++u) {
    for (int c = 0; c < C; ++c) bin(y(u, c));
  }
  for (int i = 0; i < N; ++i) {
    for (int u = 0; u < U; ++u) bin(x(i, u));
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    for (int u = 0; u < U; ++u) {
      for (int v = 0; v < U; ++v) {
        if (u != v) bin(z(static_cast<int>(e), u, v));
      }
    }
  }
  for (int k : types) {
    for (int u = 0; u < U; ++u) {
      bin(need(k, u));
      for (int l : plat.servers_with(k)) bin(d(k, l, u));
    }
  }

  if (stats) {
    stats->num_variables = n_vars;
    stats->num_binaries = n_vars;
    stats->num_constraints = n_constraints;
  }

  std::ostringstream out;
  out << "\\ CINSP operator-placement ILP (constraints 1-5)\n"
      << "\\ operators=" << N << " slots=" << U << " configs=" << C
      << " servers=" << S << " rho=" << rho << "\n"
      << obj.str() << rows.str() << bins.str() << "End\n";
  return out.str();
}

} // namespace insp
