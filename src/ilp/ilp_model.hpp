// Integer linear program formulation of the operator-placement problem
// (paper §3 sketches one; the detailed version lived in research report
// RR-2008-20).  This builder derives a complete formulation from constraints
// (1)-(5) and exports it in CPLEX LP text format, so any LP/MIP solver can
// consume it — the repo's exact branch-and-bound solves the same model
// natively (exact_solver.hpp).
//
// Variables (processor slots u in 0..U-1, configs c, operators i, object
// types k, servers l, tree edges e identified by their child operator):
//   y[u,c]   in {0,1}  slot u is bought with configuration c
//   x[i,u]   in {0,1}  operator i runs on slot u
//   z[e,u,v] in {0,1}  edge e crosses from slot u (child) to slot v (parent),
//                      u != v; linearized product x[child(e),u]*x[par(e),v]
//   need[k,u]in {0,1}  slot u needs object type k
//   d[k,l,u] in {0,1}  slot u downloads type k from server l (hosting only)
//
// Objective: minimize sum cost[c] * y[u,c].
// Constraints: assignment rows, config rows, z/need linking rows, and the
// capacity rows (1)-(5) with rho folded into the coefficients.
#pragma once

#include <string>

#include "core/problem.hpp"

namespace insp {

struct IlpModelConfig {
  /// Number of processor slots U; defaults (0) to the number of operators
  /// (never beneficial to buy more processors than operators).
  int num_slots = 0;
};

struct IlpModelStats {
  int num_variables = 0;
  int num_constraints = 0;
  int num_binaries = 0;
};

/// Renders the LP text; fills `stats` when non-null.
std::string build_ilp_lp_format(const Problem& problem,
                                const IlpModelConfig& config = {},
                                IlpModelStats* stats = nullptr);

} // namespace insp
