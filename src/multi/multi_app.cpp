#include "multi/multi_app.hpp"

#include <cmath>
#include <stdexcept>

namespace insp {

namespace {

void require_same_catalog(const ObjectCatalog& a, const ObjectCatalog& b) {
  if (a.count() != b.count()) {
    throw std::invalid_argument(
        "combine_applications: applications use different object catalogs");
  }
  for (int t = 0; t < a.count(); ++t) {
    if (std::abs(a.type(t).size_mb - b.type(t).size_mb) > 1e-9 ||
        std::abs(a.type(t).freq_hz - b.type(t).freq_hz) > 1e-12) {
      throw std::invalid_argument(
          "combine_applications: object type " + std::to_string(t) +
          " differs between applications");
    }
  }
}

} // namespace

CombinedApplication combine_applications(
    const std::vector<ApplicationSpec>& apps) {
  if (apps.empty()) {
    throw std::invalid_argument("combine_applications: no applications");
  }
  for (const auto& app : apps) {
    if (app.tree.num_operators() == 0) {
      throw std::invalid_argument("combine_applications: empty application");
    }
    if (app.rho <= 0.0) {
      throw std::invalid_argument(
          "combine_applications: non-positive throughput");
    }
    require_same_catalog(apps.front().tree.catalog(), app.tree.catalog());
  }

  CombinedApplication out;
  std::vector<OperatorNode> ops;
  std::vector<LeafRef> leaves;
  std::vector<int> roots;

  for (std::size_t a = 0; a < apps.size(); ++a) {
    const OperatorTree& tree = apps[a].tree;
    const double rho = apps[a].rho;
    const int op_offset = static_cast<int>(ops.size());
    const int leaf_offset = static_cast<int>(leaves.size());
    out.op_offset_of_app.push_back(op_offset);

    for (const auto& n : tree.operators()) {
      OperatorNode copy = n;
      copy.id = n.id + op_offset;
      for (OutEdge& e : copy.out) e.dst += op_offset;
      for (int& c : copy.children) c += op_offset;
      for (int& l : copy.leaves) l += leaf_offset;
      // Fold the application's throughput into its demands: constraint (1)
      // charges rho*w, (2)/(5) charge rho*delta; the folded forest is then
      // solved at rho = 1.  Download rates are not folded (eq. rate_k).
      copy.work = rho * n.work;
      copy.output_mb = rho * n.output_mb;
      for (OutEdge& e : copy.out) e.delta = rho * e.delta;
      ops.push_back(std::move(copy));
      out.app_of_op.push_back(static_cast<int>(a));
    }
    for (const auto& l : tree.leaf_refs()) {
      leaves.push_back(LeafRef{l.object_type, l.parent_op + op_offset});
    }
    for (int r : tree.roots()) {
      roots.push_back(r + op_offset);
      out.root_of_app.push_back(r + op_offset);
    }
  }

  out.forest = OperatorTree(std::move(ops), std::move(leaves),
                            std::move(roots), apps.front().tree.catalog());
  if (auto err = out.forest.validate()) {
    throw std::invalid_argument("combine_applications: " + *err);
  }
  return out;
}

AllocationOutcome allocate_joint(const CombinedApplication& combined,
                                 const Platform& platform,
                                 const PriceCatalog& catalog,
                                 HeuristicKind kind, Rng& rng,
                                 const AllocatorOptions& options) {
  Problem problem;
  problem.tree = &combined.forest;
  problem.platform = &platform;
  problem.catalog = &catalog;
  problem.rho = 1.0;  // folded
  return allocate(problem, kind, rng, options);
}

SeparateAllocationOutcome allocate_separate(
    const std::vector<ApplicationSpec>& apps, const Platform& platform,
    const PriceCatalog& catalog, HeuristicKind kind, Rng& rng,
    const AllocatorOptions& options) {
  SeparateAllocationOutcome out;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    Problem problem;
    problem.tree = &apps[a].tree;
    problem.platform = &platform;
    problem.catalog = &catalog;
    problem.rho = apps[a].rho;
    AllocationOutcome one = allocate(problem, kind, rng, options);
    if (!one.success) {
      out.failure_reason = "application " + std::to_string(a) + ": " +
                           one.failure_reason;
      out.per_app.push_back(std::move(one));
      return out;
    }
    out.total_cost += one.cost;
    out.total_processors += one.num_processors;
    out.per_app.push_back(std::move(one));
  }
  out.success = true;
  return out;
}

} // namespace insp
