// Multiple simultaneous applications (the paper's §6 future work): several
// operator trees, each with its own target throughput rho_a, provisioned on
// ONE purchased platform so processors can be shared across applications.
//
// The reduction to the single-application machinery is exact: fold each
// application's rho_a into its operators (w <- rho_a * w, delta <- rho_a *
// delta; download rates are freshness-driven and unchanged) and combine the
// trees into a *forest* OperatorTree solved at rho = 1.  Constraints (1),
// (2) and (5) are linear in rho * w and rho * delta, so the folded forest's
// constraint system is identical to solving each application at its own
// rho — with the added freedom that one processor may host operators of
// several applications (and share downloads of common object types).
//
// All applications must draw their basic objects from the same catalog
// (the platform hosts one universe of objects).
#pragma once

#include <vector>

#include "core/allocator.hpp"
#include "tree/operator_tree.hpp"

namespace insp {

struct ApplicationSpec {
  OperatorTree tree;
  Throughput rho = 1.0;
};

struct CombinedApplication {
  /// Forest over the shared catalog, demands folded (solve at rho = 1).
  OperatorTree forest;
  /// Forest operator id -> application index.
  std::vector<int> app_of_op;
  /// Application index -> forest id of its root.
  std::vector<int> root_of_app;
  /// Application index -> first forest id of its operators (ids are
  /// contiguous per application).
  std::vector<int> op_offset_of_app;
};

/// Combines applications into one folded forest.  Throws
/// std::invalid_argument when catalogs differ or an application is empty.
CombinedApplication combine_applications(
    const std::vector<ApplicationSpec>& apps);

/// Joint allocation: one purchase plan serving every application at its
/// own throughput.  Equivalent to allocate() on the combined forest.
AllocationOutcome allocate_joint(const CombinedApplication& combined,
                                 const Platform& platform,
                                 const PriceCatalog& catalog,
                                 HeuristicKind kind, Rng& rng,
                                 const AllocatorOptions& options = {});

/// Baseline: allocate each application on its own dedicated processors
/// (no sharing); returns the summed cost, or failure if any application
/// fails.  The gap to allocate_joint is the benefit the paper's future-work
/// section anticipates.
struct SeparateAllocationOutcome {
  bool success = false;
  std::string failure_reason;
  Dollars total_cost = 0.0;
  int total_processors = 0;
  std::vector<AllocationOutcome> per_app;
};
SeparateAllocationOutcome allocate_separate(
    const std::vector<ApplicationSpec>& apps, const Platform& platform,
    const PriceCatalog& catalog, HeuristicKind kind, Rng& rng,
    const AllocatorOptions& options = {});

} // namespace insp
