#include "multi/subexpression.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace insp {

namespace {

/// Canonical signature of the subtree rooted at `op`: leaf object types and
/// child signatures, each sorted (commutativity).
std::string signature(const OperatorTree& tree, int op,
                      std::vector<std::string>& memo) {
  auto& cached = memo[static_cast<std::size_t>(op)];
  if (!cached.empty()) return cached;
  const auto& n = tree.op(op);
  std::vector<std::string> parts;
  for (int l : n.leaves) {
    parts.push_back("o" + std::to_string(tree.leaf(l).object_type));
  }
  for (int c : n.children) {
    parts.push_back(signature(tree, c, memo));
  }
  std::sort(parts.begin(), parts.end());
  std::ostringstream ss;
  ss << "(";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    ss << (i ? " " : "") << parts[i];
  }
  ss << ")";
  cached = ss.str();
  return cached;
}

MegaOps subtree_work(const OperatorTree& tree, int op) {
  MegaOps w = tree.op(op).work;
  for (int c : tree.op(op).children) w += subtree_work(tree, c);
  return w;
}

int subtree_size(const OperatorTree& tree, int op) {
  int n = 1;
  for (int c : tree.op(op).children) n += subtree_size(tree, c);
  return n;
}

MBps subtree_download_rate(const OperatorTree& tree, int op) {
  std::set<int> types;
  std::vector<int> stack = {op};
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    for (int t : tree.object_types_of(cur)) types.insert(t);
    for (int c : tree.op(cur).children) stack.push_back(c);
  }
  MBps rate = 0.0;
  for (int t : types) rate += tree.catalog().type(t).rate();
  return rate;
}

} // namespace

std::vector<SharedSubexpression> find_common_subexpressions(
    const std::vector<ApplicationSpec>& apps) {
  // Group every subtree by signature.
  std::map<std::string, std::vector<SubexprOccurrence>> groups;
  std::vector<std::vector<std::string>> memos;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const OperatorTree& tree = apps[a].tree;
    std::vector<std::string> memo(
        static_cast<std::size_t>(tree.num_operators()));
    for (int op = 0; op < tree.num_operators(); ++op) {
      groups[signature(tree, op, memo)].push_back(
          {static_cast<int>(a), op});
    }
    memos.push_back(std::move(memo));
  }

  // A subtree occurrence is *covered* when its parent's subtree is itself
  // duplicated (the parent group already accounts for the sharing).
  auto parent_duplicated = [&](const SubexprOccurrence& occ) {
    const OperatorTree& tree = apps[static_cast<std::size_t>(occ.app)].tree;
    const int parent = tree.op(occ.op).parent();
    if (parent == kNoNode) return false;
    const auto& psig =
        memos[static_cast<std::size_t>(occ.app)][static_cast<std::size_t>(
            parent)];
    auto it = groups.find(psig);
    return it != groups.end() && it->second.size() >= 2;
  };

  std::vector<SharedSubexpression> out;
  for (const auto& [sig, occs] : groups) {
    if (occs.size() < 2) continue;
    // Keep only maximal duplicates: every occurrence whose parent subtree
    // is duplicated too is subsumed by the parent's group.
    bool all_covered = true;
    for (const auto& occ : occs) {
      all_covered = all_covered && parent_duplicated(occ);
    }
    if (all_covered) continue;

    const auto& first = occs.front();
    const OperatorTree& tree = apps[static_cast<std::size_t>(first.app)].tree;
    SharedSubexpression shared;
    shared.signature = sig;
    shared.num_operators = subtree_size(tree, first.op);
    shared.work = subtree_work(tree, first.op);
    shared.download_rate = subtree_download_rate(tree, first.op);
    shared.occurrences = occs;
    out.push_back(std::move(shared));
  }
  std::sort(out.begin(), out.end(),
            [](const SharedSubexpression& a, const SharedSubexpression& b) {
              if (a.work_saved() != b.work_saved()) {
                return a.work_saved() > b.work_saved();
              }
              return a.signature < b.signature;
            });
  return out;
}

SharingSavings estimate_sharing_savings(
    const std::vector<ApplicationSpec>& apps, const PriceCatalog& catalog) {
  SharingSavings s;
  for (const auto& shared : find_common_subexpressions(apps)) {
    const double extra = static_cast<double>(shared.occurrences.size() - 1);
    s.work_saved += extra * shared.work;
    s.download_saved += extra * shared.download_rate;
  }
  // Best Mops-per-dollar across the catalog (speed / config cost).
  double best_ratio = 0.0;
  for (const auto& cfg : catalog.by_cost()) {
    best_ratio = std::max(best_ratio, catalog.speed(cfg) / catalog.cost(cfg));
  }
  if (best_ratio > 0.0) {
    s.cost_bound = s.work_saved / best_ratio;
  }
  return s;
}

} // namespace insp
