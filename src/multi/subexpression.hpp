// Common-subexpression analysis across applications (paper §6: "a clear
// opportunity for higher performance with a reduced cost is the reuse of
// common sub-expressions between trees", citing Pandit & Ji and Munagala
// et al.).
//
// Two subtrees are *equivalent* when their canonical signatures match:
// same multiset of basic-object types at the leaves and same child-subtree
// signatures, compared order-insensitively (operators are assumed
// commutative, as in the paper's "mutable applications" discussion).
//
// Executing merged subexpressions requires a DAG execution model (an
// operator output feeding several parents).  The application model supports
// exactly that — tree/operator_tree.hpp gives every operator an explicit
// out-edge list — so this module's *analysis* (find every shared
// subexpression, bound the CPU work and download bandwidth sharing could
// save) is paired with the *transform* in multi/subexpression_fold.hpp,
// which rewrites a combined forest into a shared-subexpression DAG and
// turns the predicted savings into realized fleet-cost reduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "multi/multi_app.hpp"

namespace insp {

/// One occurrence of a shared subexpression.
struct SubexprOccurrence {
  int app = -1;
  int op = -1;  ///< subtree root, id within the application's tree
};

struct SharedSubexpression {
  std::string signature;    ///< canonical form (human-readable)
  int num_operators = 0;    ///< size of one instance of the subtree
  MegaOps work = 0.0;       ///< per-instance total work (unfolded)
  MBps download_rate = 0.0; ///< per-instance distinct-type download rate
  std::vector<SubexprOccurrence> occurrences;  ///< >= 2, distinct subtrees

  /// Work a DAG engine would save by computing this expression once
  /// (keeps one instance, drops the rest).
  MegaOps work_saved() const {
    return work * static_cast<double>(occurrences.size() - 1);
  }
};

/// All maximal shared subexpressions across (and within) the applications.
/// Nested duplicates are suppressed: if subtrees S and T are duplicates and
/// S is inside a larger duplicated subtree, only the larger pair is
/// reported.  Sorted by non-increasing work_saved().
std::vector<SharedSubexpression> find_common_subexpressions(
    const std::vector<ApplicationSpec>& apps);

struct SharingSavings {
  MegaOps work_saved = 0.0;      ///< total CPU work avoidable per result
  MBps download_saved = 0.0;     ///< download bandwidth avoidable (upper bd)
  /// Lower bound on the platform-cost reduction: the saved CPU volume
  /// re-priced at the catalog's best Mops-per-dollar rate.
  Dollars cost_bound = 0.0;
};

SharingSavings estimate_sharing_savings(
    const std::vector<ApplicationSpec>& apps, const PriceCatalog& catalog);

} // namespace insp
