#include "multi/subexpression_fold.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace insp {

FoldResult fold_shared_subexpressions(const OperatorTree& forest) {
  const int n = forest.num_operators();
  const auto nn = static_cast<std::size_t>(n);

  FoldResult out;
  out.stats.operators_before = n;
  out.old_to_new.assign(nn, kNoNode);
  if (n == 0) {
    out.dag = forest;
    return out;
  }

  // Pass 1 — canonicalize bottom-up.  canon[i] is the first-seen operator
  // with operator i's signature (leaf-type multiset + canonical-child-id
  // multiset, order-insensitive).  Roots never join a group and never act
  // as a representative: each application keeps its own result stream, and
  // a root gaining out-edges would stop being a root.
  std::vector<int> canon(nn, kNoNode);
  std::map<std::string, int> first_seen;
  for (int op : forest.bottom_up_order()) {
    const OperatorNode& node = forest.op(op);
    if (node.out.empty()) {  // declared root
      canon[static_cast<std::size_t>(op)] = op;
      continue;
    }
    std::vector<std::string> parts;
    parts.reserve(node.leaves.size() + node.children.size());
    for (int l : node.leaves) {
      parts.push_back("o" + std::to_string(forest.leaf(l).object_type));
    }
    for (int c : node.children) {
      parts.push_back(
          "#" + std::to_string(canon[static_cast<std::size_t>(c)]));
    }
    std::sort(parts.begin(), parts.end());
    std::string sig;
    for (const std::string& p : parts) {
      sig += p;
      sig += ' ';
    }
    const auto [it, inserted] = first_seen.emplace(sig, op);
    canon[static_cast<std::size_t>(op)] = it->second;
    if (!inserted) {
      ++out.stats.merged_occurrences;
      out.stats.work_saved += node.work;
    }
  }

  // Pass 2 — renumber survivors densely, preserving id order.
  std::vector<int> new_id(nn, kNoNode);
  int next = 0;
  for (int i = 0; i < n; ++i) {
    if (canon[static_cast<std::size_t>(i)] == i) {
      new_id[static_cast<std::size_t>(i)] = next++;
    }
  }
  out.stats.operators_after = next;
  for (int i = 0; i < n; ++i) {
    out.old_to_new[static_cast<std::size_t>(i)] =
        new_id[static_cast<std::size_t>(canon[static_cast<std::size_t>(i)])];
  }

  // Pass 3 — build the folded node set.  A representative's demands are the
  // max over its merged occurrences; out-edges are rebuilt from the
  // surviving consumers' child lists so each consumer edge carries the
  // occurrence's own folded output_mb.
  std::vector<OperatorNode> ops(static_cast<std::size_t>(next));
  std::vector<LeafRef> leaves;
  for (int i = 0; i < n; ++i) {
    const OperatorNode& src = forest.op(i);
    const int rep = canon[static_cast<std::size_t>(i)];
    OperatorNode& dst =
        ops[static_cast<std::size_t>(new_id[static_cast<std::size_t>(rep)])];
    if (rep == i) {
      dst.id = new_id[static_cast<std::size_t>(i)];
      dst.work = src.work;
      dst.output_mb = src.output_mb;
      for (int c : src.children) {
        dst.children.push_back(out.old_to_new[static_cast<std::size_t>(c)]);
      }
      for (int l : src.leaves) {
        dst.leaves.push_back(static_cast<int>(leaves.size()));
        leaves.push_back(
            LeafRef{forest.leaf(l).object_type, dst.id});
      }
    } else {
      dst.work = std::max(dst.work, src.work);
      dst.output_mb = std::max(dst.output_mb, src.output_mb);
    }
  }
  // Consumer edges, survivors in id order, children in declaration order.
  for (int p = 0; p < n; ++p) {
    if (canon[static_cast<std::size_t>(p)] != p) continue;
    const int pnew = new_id[static_cast<std::size_t>(p)];
    for (int c : forest.op(p).children) {
      OperatorNode& producer = ops[static_cast<std::size_t>(
          out.old_to_new[static_cast<std::size_t>(c)])];
      producer.out.push_back(
          OutEdge{pnew, forest.op(c).output_mb});
    }
  }
  for (OperatorNode& node : ops) {
    if (node.out.size() > 1) ++out.stats.shared_nodes;
  }

  std::vector<int> roots;
  roots.reserve(forest.roots().size());
  for (int r : forest.roots()) {
    roots.push_back(out.old_to_new[static_cast<std::size_t>(r)]);
  }

  out.dag = OperatorTree(std::move(ops), std::move(leaves), std::move(roots),
                         forest.catalog());
  if (auto err = out.dag.validate()) {
    throw std::invalid_argument("fold_shared_subexpressions: " + *err);
  }
  return out;
}

} // namespace insp
