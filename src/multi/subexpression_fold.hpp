// Shared-subexpression folding: rewrite a (combined) operator forest so
// that structurally equivalent subtrees are computed ONCE and their output
// fans out to every consumer over explicit out-edges — the executable
// counterpart of the analysis in multi/subexpression.hpp, enabled by the
// DAG application model of tree/operator_tree.hpp.
//
// Equivalence is the same canonical-signature relation the analysis uses:
// same multiset of leaf object types, same multiset of (canonicalized)
// child subexpressions, compared order-insensitively (operators are
// commutative).  Folding runs bottom-up, so nested duplicates collapse
// into maximal shared nodes.
//
// Semantics of a merged node:
//  - its work and output_mb are the elementwise MAX over the merged
//    occurrences (a shared result must be produced at the rate and size of
//    the most demanding application once per-app rho folding is applied);
//  - each rewired consumer edge keeps the dropped occurrence's own folded
//    output_mb as its per-edge delta, so a consumer is charged exactly what
//    its application would have shipped;
//  - declared roots are never folded (each application keeps its own
//    result stream), but everything below them may be.
//
// On a forest with no duplicate subexpressions the result is the input,
// ids unchanged.
#pragma once

#include <vector>

#include "tree/operator_tree.hpp"

namespace insp {

struct FoldStats {
  int operators_before = 0;
  int operators_after = 0;
  /// Duplicate operator occurrences merged away (counted per node, so one
  /// k-operator subtree duplicated once contributes k).
  int merged_occurrences = 0;
  /// Surviving operators whose output now feeds more than one consumer.
  int shared_nodes = 0;
  /// Total folded work of the merged-away occurrences — the CPU volume the
  /// folded DAG no longer has to buy (the realized twin of
  /// SharingSavings::work_saved, which predicts it on the unfolded trees).
  MegaOps work_saved = 0.0;
};

struct FoldResult {
  /// The folded DAG (a forest with one root per input root; generally not
  /// tree-shaped).  Demands are preserved, not recomputed.
  OperatorTree dag;
  /// Input operator id -> folded operator id (surjective; merged
  /// occurrences map to their surviving representative).
  std::vector<int> old_to_new;
  FoldStats stats;
};

/// Folds equivalent subtrees of `forest` (typically
/// CombinedApplication::forest, demands already rho-folded) into shared DAG
/// nodes.  Throws std::invalid_argument if the folded graph fails
/// validation (cannot happen for a valid input).
FoldResult fold_shared_subexpressions(const OperatorTree& forest);

} // namespace insp
