#include "net/bandwidth_ledger.hpp"

#include <algorithm>
#include <cassert>

namespace insp {

CardLedger::CardLedger(std::vector<MBps> capacities)
    : capacity_(std::move(capacities)), used_(capacity_.size(), 0.0) {}

void CardLedger::add(int r, MBps amount) {
  assert(r >= 0 && static_cast<std::size_t>(r) < used_.size());
  used_[static_cast<std::size_t>(r)] += amount;
}

void CardLedger::remove(int r, MBps amount) {
  assert(r >= 0 && static_cast<std::size_t>(r) < used_.size());
  auto& u = used_[static_cast<std::size_t>(r)];
  u -= amount;
  // Cancel rounding drift so add/remove sequences return exactly to zero.
  if (u < kCapacityEpsilon && u > -kCapacityEpsilon) u = 0.0;
  assert(u >= 0.0);
}

void CardLedger::set_capacity(int r, MBps capacity) {
  assert(r >= 0 && static_cast<std::size_t>(r) < capacity_.size());
  capacity_[static_cast<std::size_t>(r)] = capacity;
  assert(fits_within(used_[static_cast<std::size_t>(r)], capacity));
}

LinkLedger::LinkLedger(MBps uniform_capacity) : capacity_(uniform_capacity) {}

std::pair<int, int> LinkLedger::key(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}

MBps LinkLedger::used(int a, int b) const {
  auto it = used_.find(key(a, b));
  return it == used_.end() ? 0.0 : it->second;
}

void LinkLedger::add(int a, int b, MBps amount) {
  const auto k = key(a, b);
  // Single map traversal: journal the prior value off the emplaced node.
  auto [it, inserted] = used_.try_emplace(k, 0.0);
  if (in_txn_) {
    journal_.push_back({k, inserted ? 0.0 : it->second, !inserted});
  }
  it->second += amount;
}

bool LinkLedger::all_within() const {
  for (const auto& [k, v] : used_) {
    (void)k;
    if (!fits_within(v, capacity_)) return false;
  }
  return true;
}

void LinkLedger::remove(int a, int b, MBps amount) {
  const auto k = key(a, b);
  auto it = used_.find(k);
  assert(it != used_.end());
  if (in_txn_) journal_.push_back({k, it->second, true});
  it->second -= amount;
  if (it->second < kCapacityEpsilon) {
    assert(it->second > -kCapacityEpsilon);
    used_.erase(it);
  }
}

void LinkLedger::clear() {
  assert(!in_txn_);
  used_.clear();
}

void LinkLedger::begin_txn() {
  assert(!in_txn_);
  in_txn_ = true;
  journal_.clear();
}

void LinkLedger::commit_txn() {
  assert(in_txn_);
  in_txn_ = false;
  journal_.clear();
}

void LinkLedger::rollback_txn() {
  assert(in_txn_);
  in_txn_ = false;
  // Reverse replay: each entry restores its key to the state immediately
  // before the journaled call, so the whole replay restores the
  // pre-transaction map exactly (values bit for bit, absences included).
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    if (it->existed) {
      used_[it->key] = it->old_value;
    } else {
      used_.erase(it->key);
    }
  }
  journal_.clear();
}

bool LinkLedger::touched_within() const {
  for (const auto& e : journal_) {
    auto it = used_.find(e.key);
    if (it != used_.end() && !fits_within(it->second, capacity_)) return false;
  }
  return true;
}

MBps LinkLedger::pre_txn_value(int a, int b) const {
  assert(in_txn_);
  const auto k = key(a, b);
  for (const auto& e : journal_) {
    if (e.key == k) return e.existed ? e.old_value : 0.0;
  }
  return used(a, b);
}

void LinkLedger::batch_headroom(int fixed, const int* others, std::size_t n,
                                MBps* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = capacity_;
  for (const auto& [k, v] : used_) {
    int other;
    if (k.first == fixed) {
      other = k.second;
    } else if (k.second == fixed) {
      other = k.first;
    } else {
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (others[i] == other) out[i] = capacity_ - v;
    }
  }
}

bool LinkLedger::touched_no_worse() const {
  // The journal may hold several entries per key; the *first* one records
  // the pre-transaction value, which is the baseline the relaxed check
  // compares against.  Later entries for the same key pass trivially
  // because their stored old_value is at least as permissive a baseline as
  // any intermediate state — checking every entry against its own recorded
  // value would wrongly accept a link whose usage grew in two steps, so
  // each key is judged once, against its first entry.
  for (std::size_t i = 0; i < journal_.size(); ++i) {
    const JournalEntry& e = journal_[i];
    bool first = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (journal_[j].key == e.key) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    auto it = used_.find(e.key);
    const MBps now = it == used_.end() ? 0.0 : it->second;
    if (fits_within(now, capacity_)) continue;
    const MBps before = e.existed ? e.old_value : 0.0;
    if (!fits_within(now, before)) return false;
  }
  return true;
}

} // namespace insp
