#include "net/bandwidth_ledger.hpp"

#include <algorithm>
#include <cassert>

namespace insp {

CardLedger::CardLedger(std::vector<MBps> capacities)
    : capacity_(std::move(capacities)), used_(capacity_.size(), 0.0) {}

void CardLedger::add(int r, MBps amount) {
  assert(r >= 0 && static_cast<std::size_t>(r) < used_.size());
  used_[static_cast<std::size_t>(r)] += amount;
}

void CardLedger::remove(int r, MBps amount) {
  assert(r >= 0 && static_cast<std::size_t>(r) < used_.size());
  auto& u = used_[static_cast<std::size_t>(r)];
  u -= amount;
  // Cancel rounding drift so add/remove sequences return exactly to zero.
  if (u < kCapacityEpsilon && u > -kCapacityEpsilon) u = 0.0;
  assert(u >= 0.0);
}

void CardLedger::set_capacity(int r, MBps capacity) {
  assert(r >= 0 && static_cast<std::size_t>(r) < capacity_.size());
  capacity_[static_cast<std::size_t>(r)] = capacity;
  assert(fits_within(used_[static_cast<std::size_t>(r)], capacity));
}

LinkLedger::LinkLedger(MBps uniform_capacity) : capacity_(uniform_capacity) {}

std::pair<int, int> LinkLedger::key(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}

std::vector<LinkLedger::Entry>::iterator LinkLedger::lower(
    const std::pair<int, int>& k) {
  return std::lower_bound(
      used_.begin(), used_.end(), k,
      [](const Entry& e, const std::pair<int, int>& v) { return e.first < v; });
}

std::vector<LinkLedger::Entry>::const_iterator LinkLedger::lower(
    const std::pair<int, int>& k) const {
  return std::lower_bound(
      used_.begin(), used_.end(), k,
      [](const Entry& e, const std::pair<int, int>& v) { return e.first < v; });
}

MBps LinkLedger::used(int a, int b) const {
  const auto k = key(a, b);
  auto it = lower(k);
  return it == used_.end() || it->first != k ? 0.0 : it->second;
}

void LinkLedger::add(int a, int b, MBps amount) {
  const auto k = key(a, b);
  // Single binary search: journal the prior value at the found position.
  auto it = lower(k);
  const bool existed = it != used_.end() && it->first == k;
  if (in_txn_) {
    journal_.push_back({k, existed ? it->second : 0.0, existed});
  }
  if (existed) {
    it->second += amount;
  } else {
    used_.insert(it, {k, amount});  // shifts the tail; reuses capacity
  }
}

bool LinkLedger::all_within() const {
  for (const auto& [k, v] : used_) {
    (void)k;
    if (!fits_within(v, capacity_)) return false;
  }
  return true;
}

void LinkLedger::remove(int a, int b, MBps amount) {
  const auto k = key(a, b);
  auto it = lower(k);
  assert(it != used_.end() && it->first == k);
  if (in_txn_) journal_.push_back({k, it->second, true});
  it->second -= amount;
  if (it->second < kCapacityEpsilon) {
    assert(it->second > -kCapacityEpsilon);
    used_.erase(it);
  }
}

void LinkLedger::clear() {
  assert(!in_txn_);
  used_.clear();
}

void LinkLedger::begin_txn() {
  assert(!in_txn_);
  in_txn_ = true;
  journal_.clear();
}

void LinkLedger::commit_txn() {
  assert(in_txn_);
  in_txn_ = false;
  journal_.clear();
}

void LinkLedger::rollback_txn() {
  assert(in_txn_);
  in_txn_ = false;
  // Reverse replay: each entry restores its key to the state immediately
  // before the journaled call, so the whole replay restores the
  // pre-transaction ledger exactly (values bit for bit, absences included).
  for (auto it = journal_.rbegin(); it != journal_.rend(); ++it) {
    auto pos = lower(it->key);
    const bool present = pos != used_.end() && pos->first == it->key;
    if (it->existed) {
      if (present) {
        pos->second = it->old_value;
      } else {
        used_.insert(pos, {it->key, it->old_value});
      }
    } else if (present) {
      used_.erase(pos);
    }
  }
  journal_.clear();
}

bool LinkLedger::touched_within() const {
  for (const auto& e : journal_) {
    auto it = lower(e.key);
    if (it != used_.end() && it->first == e.key &&
        !fits_within(it->second, capacity_)) {
      return false;
    }
  }
  return true;
}

MBps LinkLedger::pre_txn_value(int a, int b) const {
  assert(in_txn_);
  const auto k = key(a, b);
  for (const auto& e : journal_) {
    if (e.key == k) return e.existed ? e.old_value : 0.0;
  }
  return used(a, b);
}

void LinkLedger::batch_headroom(int fixed, const int* others, std::size_t n,
                                MBps* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = capacity_;
  for (const auto& [k, v] : used_) {
    int other;
    if (k.first == fixed) {
      other = k.second;
    } else if (k.second == fixed) {
      other = k.first;
    } else {
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (others[i] == other) out[i] = capacity_ - v;
    }
  }
}

bool LinkLedger::touched_no_worse() const {
  // The journal may hold several entries per key; the *first* one records
  // the pre-transaction value, which is the baseline the relaxed check
  // compares against.  Later entries for the same key pass trivially
  // because their stored old_value is at least as permissive a baseline as
  // any intermediate state — checking every entry against its own recorded
  // value would wrongly accept a link whose usage grew in two steps, so
  // each key is judged once, against its first entry.
  for (std::size_t i = 0; i < journal_.size(); ++i) {
    const JournalEntry& e = journal_[i];
    bool first = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (journal_[j].key == e.key) {
        first = false;
        break;
      }
    }
    if (!first) continue;
    auto it = lower(e.key);
    const MBps now =
        it == used_.end() || it->first != e.key ? 0.0 : it->second;
    if (fits_within(now, capacity_)) continue;
    const MBps before = e.existed ? e.old_value : 0.0;
    if (!fits_within(now, before)) return false;
  }
  return true;
}

} // namespace insp
