#include "net/bandwidth_ledger.hpp"

#include <algorithm>
#include <cassert>

namespace insp {

CardLedger::CardLedger(std::vector<MBps> capacities)
    : capacity_(std::move(capacities)), used_(capacity_.size(), 0.0) {}

void CardLedger::add(int r, MBps amount) {
  assert(r >= 0 && static_cast<std::size_t>(r) < used_.size());
  used_[static_cast<std::size_t>(r)] += amount;
}

void CardLedger::remove(int r, MBps amount) {
  assert(r >= 0 && static_cast<std::size_t>(r) < used_.size());
  auto& u = used_[static_cast<std::size_t>(r)];
  u -= amount;
  // Cancel rounding drift so add/remove sequences return exactly to zero.
  if (u < kCapacityEpsilon && u > -kCapacityEpsilon) u = 0.0;
  assert(u >= 0.0);
}

void CardLedger::set_capacity(int r, MBps capacity) {
  assert(r >= 0 && static_cast<std::size_t>(r) < capacity_.size());
  capacity_[static_cast<std::size_t>(r)] = capacity;
  assert(fits_within(used_[static_cast<std::size_t>(r)], capacity));
}

LinkLedger::LinkLedger(MBps uniform_capacity) : capacity_(uniform_capacity) {}

std::pair<int, int> LinkLedger::key(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}

MBps LinkLedger::used(int a, int b) const {
  auto it = used_.find(key(a, b));
  return it == used_.end() ? 0.0 : it->second;
}

void LinkLedger::add(int a, int b, MBps amount) {
  used_[key(a, b)] += amount;
}

bool LinkLedger::all_within() const {
  for (const auto& [k, v] : used_) {
    (void)k;
    if (!fits_within(v, capacity_)) return false;
  }
  return true;
}

void LinkLedger::remove(int a, int b, MBps amount) {
  auto it = used_.find(key(a, b));
  assert(it != used_.end());
  it->second -= amount;
  if (it->second < kCapacityEpsilon) {
    assert(it->second > -kCapacityEpsilon);
    used_.erase(it);
  }
}

} // namespace insp
