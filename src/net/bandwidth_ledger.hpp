// Bandwidth accounting for the bounded multi-port model (paper §2.2,
// after Hong & Prasanna): a resource can send and receive on many links
// simultaneously, but the sum of the transfer rates through its card is
// bounded by the card bandwidth; each individual link additionally bounds
// the sum of transfers routed through it.
//
// The ledger tracks card usage per resource and usage per (a,b) link with a
// uniform per-kind capacity, supports reserve/release, and reports headroom.
// It is the single accounting structure shared by the server-selection
// heuristics and the constraint checker.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace insp {

/// Card (NIC) accounts for a set of resources indexed 0..n-1.
class CardLedger {
 public:
  explicit CardLedger(std::vector<MBps> capacities);
  CardLedger() = default;

  std::size_t size() const { return capacity_.size(); }
  MBps capacity(int r) const { return capacity_[static_cast<std::size_t>(r)]; }
  MBps used(int r) const { return used_[static_cast<std::size_t>(r)]; }
  MBps headroom(int r) const { return capacity(r) - used(r); }
  bool can_add(int r, MBps amount) const {
    return fits_within(used(r) + amount, capacity(r));
  }
  void add(int r, MBps amount);
  void remove(int r, MBps amount);
  /// Changing capacity (processor downgrade) keeps usage; caller must ensure
  /// the new capacity still fits (checked in debug builds).
  void set_capacity(int r, MBps capacity);

 private:
  std::vector<MBps> capacity_;
  std::vector<MBps> used_;
};

/// Usage per unordered pair of endpoints with one uniform capacity
/// (the paper's platforms have identical bandwidth on every link of a kind).
/// Endpoints are opaque ints; processor<->processor links use processor ids
/// on both sides, server->processor links use (server, processor).
///
/// Transactions (docs/DESIGN.md §5): between begin_txn() and commit_txn() /
/// rollback_txn() every add/remove journals the link's prior value, so a
/// rollback restores the pre-transaction state bit for bit, and
/// touched_within() validates only the links the transaction touched — the
/// delta API the incremental placement probes are built on.
class LinkLedger {
 public:
  /// One active link: ((min endpoint, max endpoint), usage).  Storage is a
  /// FLAT SORTED VECTOR, not a map: lookups are a contiguous binary search,
  /// inserts/erases shift elements but reuse capacity, so the probe/rollback
  /// hot paths make zero heap allocations in steady state (a map pays a
  /// node allocation on every transient try_emplace/erase).  Iteration
  /// order is identical to the old map's (sorted by key), which keeps every
  /// whole-ledger walk deterministic and byte-compatible.
  using Entry = std::pair<std::pair<int, int>, MBps>;

  explicit LinkLedger(MBps uniform_capacity);
  LinkLedger() = default;

  MBps capacity() const { return capacity_; }
  MBps used(int a, int b) const;
  MBps headroom(int a, int b) const { return capacity_ - used(a, b); }
  bool can_add(int a, int b, MBps amount) const {
    return fits_within(used(a, b) + amount, capacity_);
  }
  void add(int a, int b, MBps amount);
  void remove(int a, int b, MBps amount);
  void clear();
  std::size_t active_links() const { return used_.size(); }
  /// All links with non-zero usage, sorted by key (for whole-state
  /// validation).
  const std::vector<Entry>& entries() const { return used_; }
  /// True when every active link is within capacity.
  bool all_within() const;

  // --- transactions --------------------------------------------------------
  /// Starts journaling add/remove deltas.  Transactions do not nest.
  void begin_txn();
  /// Keeps all changes made since begin_txn() and drops the journal.
  void commit_txn();
  /// Undoes every journaled change in reverse order, restoring each touched
  /// link to its exact pre-transaction value (absent links stay absent).
  void rollback_txn();
  bool in_txn() const { return in_txn_; }
  /// Links touched since begin_txn() (journal entries; a link touched twice
  /// appears twice).
  std::size_t touched_links() const { return journal_.size(); }
  /// all_within() restricted to the links the open transaction touched.
  bool touched_within() const;
  /// Value the link carried when the open transaction began: the first
  /// journal entry for the key records it; an untouched link is still at it.
  MBps pre_txn_value(int a, int b) const;
  /// Batched headroom against one fixed endpoint: out[i] = capacity -
  /// used(fixed, others[i]), gathered in a single pass over the ledger map
  /// instead of one map lookup per candidate (the server-selection scan).
  void batch_headroom(int fixed, const int* others, std::size_t n,
                      MBps* out) const;
  /// Relaxed variant for the repair engine (docs/DESIGN.md §8): every
  /// touched link must either fit its capacity or carry no more than it did
  /// before the transaction began — a link that was already over capacity
  /// may stay over, but no touched link's excess may grow.
  bool touched_no_worse() const;

 private:
  struct JournalEntry {
    std::pair<int, int> key;
    MBps old_value;  ///< meaningful only when existed
    bool existed;    ///< key had an entry before the journaled call
  };

  static std::pair<int, int> key(int a, int b);
  /// First entry with key >= k (sorted-vector lower bound).
  std::vector<Entry>::iterator lower(const std::pair<int, int>& k);
  std::vector<Entry>::const_iterator lower(const std::pair<int, int>& k) const;

  MBps capacity_ = 0.0;
  std::vector<Entry> used_;  ///< sorted by key
  bool in_txn_ = false;
  std::vector<JournalEntry> journal_;
};

} // namespace insp
