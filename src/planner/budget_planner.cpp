#include "planner/budget_planner.hpp"

#include "sim/flow_analyzer.hpp"

namespace insp {

namespace {

/// Runs the pipeline at the probe rho; success means "within budget".
std::optional<AllocationOutcome> probe(const Problem& base,
                                       const BudgetPlanConfig& cfg,
                                       double rho, Rng& rng) {
  Problem p = base;
  p.rho = rho;
  Rng local = rng;  // identical stream per probe: rho is the only variable
  AllocationOutcome out = allocate(p, cfg.heuristic, local,
                                   cfg.allocator_options);
  if (!out.success || out.cost > cfg.budget + 1e-9) return std::nullopt;
  return out;
}

} // namespace

BudgetPlanResult plan_for_budget(const Problem& problem,
                                 const BudgetPlanConfig& config, Rng& rng) {
  BudgetPlanResult result;

  auto lowest = probe(problem, config, config.rho_min, rng);
  if (!lowest) return result;  // not even the minimum rate fits
  result.feasible = true;
  result.planned_rho = config.rho_min;
  result.outcome = std::move(*lowest);

  // Exponential growth to bracket the infeasible side.
  double lo = config.rho_min;
  double hi = lo;
  while (hi < config.rho_max) {
    hi = std::min(config.rho_max, hi * 2.0);
    auto out = probe(problem, config, hi, rng);
    if (out) {
      lo = hi;
      result.planned_rho = hi;
      result.outcome = std::move(*out);
      if (hi >= config.rho_max) break;  // everything fits; stop at the cap
    } else {
      break;
    }
  }

  // Bisection between the last feasible lo and the first infeasible hi.
  if (hi > lo) {
    for (int i = 0; i < config.max_iterations &&
                    (hi - lo) > config.relative_tolerance * lo;
         ++i) {
      const double mid = 0.5 * (lo + hi);
      auto out = probe(problem, config, mid, rng);
      if (out) {
        lo = mid;
        result.planned_rho = mid;
        result.outcome = std::move(*out);
      } else {
        hi = mid;
      }
    }
  }

  // The chosen plan's true capability (discrete plans often exceed the
  // probed rho).
  Problem at_plan = problem;
  at_plan.rho = result.planned_rho;
  result.sustainable_rho =
      analyze_flow(at_plan, result.outcome.allocation).max_throughput;
  return result;
}

} // namespace insp
