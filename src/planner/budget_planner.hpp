// Budget-dual of the paper's problem: the paper fixes the throughput rho
// and minimizes platform cost; an operator with a fixed budget wants the
// converse — the largest sustainable rho whose cheapest heuristic plan
// stays within budget.
//
// Cost as a function of rho is a non-decreasing step function (every
// constraint tightens with rho), so bisection over rho with the allocation
// pipeline as the oracle converges; the flow analyzer then reports the
// exact sustainable throughput of the winning plan (which can exceed the
// probed rho — plans are discrete).
#pragma once

#include <optional>

#include "core/allocator.hpp"

namespace insp {

struct BudgetPlanConfig {
  Dollars budget = 0.0;
  HeuristicKind heuristic = HeuristicKind::SubtreeBottomUp;
  AllocatorOptions allocator_options;
  /// Bisection control.
  double rho_min = 1e-3;
  double rho_max = 1024.0;
  int max_iterations = 40;
  double relative_tolerance = 1e-3;
};

struct BudgetPlanResult {
  bool feasible = false;        ///< some plan fits the budget at rho_min
  double planned_rho = 0.0;     ///< largest probed rho within budget
  double sustainable_rho = 0.0; ///< flow-analyzer rho* of the chosen plan
  AllocationOutcome outcome;    ///< the chosen plan (at planned_rho)
};

/// `problem.rho` is ignored; the probe overrides it.
BudgetPlanResult plan_for_budget(const Problem& problem,
                                 const BudgetPlanConfig& config, Rng& rng);

} // namespace insp
