#include "platform/catalog.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace insp {

PriceCatalog::PriceCatalog(Dollars base, std::vector<CpuModel> cpus,
                           std::vector<NicModel> nics)
    : base_(base), cpus_(std::move(cpus)), nics_(std::move(nics)) {
  if (cpus_.empty() || nics_.empty()) {
    throw std::invalid_argument("PriceCatalog: empty CPU or NIC list");
  }
  auto cpu_lt = [](const CpuModel& a, const CpuModel& b) {
    return a.speed < b.speed;
  };
  auto nic_lt = [](const NicModel& a, const NicModel& b) {
    return a.bandwidth < b.bandwidth;
  };
  std::sort(cpus_.begin(), cpus_.end(), cpu_lt);
  std::sort(nics_.begin(), nics_.end(), nic_lt);

  by_cost_.reserve(cpus_.size() * nics_.size());
  for (int c = 0; c < static_cast<int>(cpus_.size()); ++c) {
    for (int n = 0; n < static_cast<int>(nics_.size()); ++n) {
      by_cost_.push_back(ProcessorConfig{c, n});
    }
  }
  std::sort(by_cost_.begin(), by_cost_.end(),
            [this](const ProcessorConfig& a, const ProcessorConfig& b) {
              const Dollars ca = cost(a), cb = cost(b);
              if (ca != cb) return ca < cb;
              if (speed(a) != speed(b)) return speed(a) > speed(b);
              return bandwidth(a) > bandwidth(b);
            });
}

PriceCatalog PriceCatalog::paper_default() {
  using namespace units;
  return PriceCatalog(
      7548.0,
      {
          {ghz(11.72), 0.0},
          {ghz(19.20), 1550.0},
          {ghz(25.60), 2399.0},
          {ghz(38.40), 3949.0},
          {ghz(46.88), 5299.0},
      },
      {
          {gbps(1), 0.0},
          {gbps(2), 399.0},
          {gbps(4), 1197.0},
          {gbps(10), 2800.0},
          {gbps(20), 5999.0},
      });
}

PriceCatalog PriceCatalog::homogeneous() {
  using namespace units;
  return homogeneous(CpuModel{ghz(46.88), 5299.0}, NicModel{gbps(20), 5999.0},
                     7548.0);
}

PriceCatalog PriceCatalog::homogeneous(CpuModel cpu, NicModel nic,
                                       Dollars base) {
  return PriceCatalog(base, {cpu}, {nic});
}

ProcessorConfig PriceCatalog::most_expensive() const {
  return *std::max_element(
      by_cost_.begin(), by_cost_.end(),
      [this](const ProcessorConfig& a, const ProcessorConfig& b) {
        const Dollars ca = cost(a), cb = cost(b);
        if (ca != cb) return ca < cb;
        if (speed(a) != speed(b)) return speed(a) < speed(b);
        return bandwidth(a) < bandwidth(b);
      });
}

ProcessorConfig PriceCatalog::cheapest() const { return by_cost_.front(); }

std::optional<ProcessorConfig> PriceCatalog::cheapest_meeting(
    MopsPerSec min_speed, MBps min_bw) const {
  for (const auto& c : by_cost_) {
    if (fits_within(min_speed, speed(c)) && fits_within(min_bw, bandwidth(c))) {
      return c;
    }
  }
  return std::nullopt;
}

std::string PriceCatalog::describe(const ProcessorConfig& c) const {
  std::ostringstream ss;
  ss << speed(c) / 1000.0 << "GHz/" << bandwidth(c) / 125.0 << "Gbps ($"
     << cost(c) << ")";
  return ss.str();
}

} // namespace insp
