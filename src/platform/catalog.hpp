// Purchasable processor catalog (paper Table 1, Dell PowerEdge R900 pricing,
// March 2008).  A processor purchase is one CPU model plus one NIC model;
// cost = chassis base price + CPU upgrade + NIC upgrade.
//
// CONSTR-LAN (heterogeneous): full 5x5 catalog.
// CONSTR-HOM (homogeneous): a single CPU and NIC model.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace insp {

struct CpuModel {
  MopsPerSec speed = 0.0;   ///< s_u
  Dollars upgrade = 0.0;    ///< price on top of the chassis base
};

struct NicModel {
  MBps bandwidth = 0.0;     ///< Bp_u
  Dollars upgrade = 0.0;
};

/// One buyable configuration: indices into the catalog's CPU/NIC lists.
struct ProcessorConfig {
  int cpu = -1;
  int nic = -1;
  bool valid() const { return cpu >= 0 && nic >= 0; }
  bool operator==(const ProcessorConfig&) const = default;
};

class PriceCatalog {
 public:
  PriceCatalog(Dollars base, std::vector<CpuModel> cpus,
               std::vector<NicModel> nics);

  /// Paper Table 1.
  static PriceCatalog paper_default();

  /// Single-configuration catalog (CONSTR-HOM). Defaults to the paper's
  /// largest CPU and NIC at the corresponding Table 1 price.
  static PriceCatalog homogeneous();
  static PriceCatalog homogeneous(CpuModel cpu, NicModel nic, Dollars base);

  Dollars base_price() const { return base_; }
  const std::vector<CpuModel>& cpus() const { return cpus_; }
  const std::vector<NicModel>& nics() const { return nics_; }
  int num_configs() const {
    return static_cast<int>(cpus_.size() * nics_.size());
  }
  bool is_homogeneous() const { return num_configs() == 1; }

  MopsPerSec speed(const ProcessorConfig& c) const {
    return cpus_[static_cast<std::size_t>(c.cpu)].speed;
  }
  MBps bandwidth(const ProcessorConfig& c) const {
    return nics_[static_cast<std::size_t>(c.nic)].bandwidth;
  }
  Dollars cost(const ProcessorConfig& c) const {
    return base_ + cpus_[static_cast<std::size_t>(c.cpu)].upgrade +
           nics_[static_cast<std::size_t>(c.nic)].upgrade;
  }

  MopsPerSec max_speed() const { return cpus_.back().speed; }
  MBps max_bandwidth() const { return nics_.back().bandwidth; }

  /// The highest-cost configuration (fastest CPU + widest NIC under
  /// Table 1's monotone pricing); what most heuristics buy first.
  ProcessorConfig most_expensive() const;
  /// The lowest-cost configuration.
  ProcessorConfig cheapest() const;

  /// Cheapest configuration with speed >= min_speed and bandwidth >= min_bw;
  /// ties broken toward higher speed, then higher bandwidth.  nullopt when
  /// no model satisfies the requirement.
  std::optional<ProcessorConfig> cheapest_meeting(MopsPerSec min_speed,
                                                  MBps min_bw) const;

  /// All configurations ordered by non-decreasing cost (ties: speed desc,
  /// bandwidth desc) — the order in which "cheapest first" searches proceed.
  const std::vector<ProcessorConfig>& by_cost() const { return by_cost_; }

  std::string describe(const ProcessorConfig& c) const;

 private:
  Dollars base_;
  std::vector<CpuModel> cpus_;  ///< sorted by speed ascending
  std::vector<NicModel> nics_;  ///< sorted by bandwidth ascending
  std::vector<ProcessorConfig> by_cost_;
};

} // namespace insp
