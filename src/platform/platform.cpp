#include "platform/platform.hpp"

#include <algorithm>
#include <stdexcept>

namespace insp {

bool DataServer::hosts(int type) const {
  return std::binary_search(object_types.begin(), object_types.end(), type);
}

Platform::Platform(std::vector<DataServer> servers, MBps link_server_proc,
                   MBps link_proc_proc, int num_object_types)
    : servers_(std::move(servers)),
      link_server_proc_(link_server_proc),
      link_proc_proc_(link_proc_proc),
      num_object_types_(num_object_types) {
  if (servers_.empty()) {
    throw std::invalid_argument("Platform: no servers");
  }
  if (num_object_types_ <= 0) {
    throw std::invalid_argument("Platform: num_object_types must be > 0");
  }
  servers_by_type_.assign(static_cast<std::size_t>(num_object_types_), {});
  for (auto& s : servers_) {
    std::sort(s.object_types.begin(), s.object_types.end());
    s.object_types.erase(
        std::unique(s.object_types.begin(), s.object_types.end()),
        s.object_types.end());
    for (int t : s.object_types) {
      if (t < 0 || t >= num_object_types_) {
        throw std::invalid_argument("Platform: server hosts unknown type");
      }
      servers_by_type_[static_cast<std::size_t>(t)].push_back(s.id);
    }
  }
}

Platform Platform::paper_default(std::vector<std::vector<int>> hosted_types,
                                 int num_object_types) {
  using namespace units;
  std::vector<DataServer> servers;
  servers.reserve(hosted_types.size());
  for (std::size_t l = 0; l < hosted_types.size(); ++l) {
    servers.push_back(DataServer{static_cast<int>(l),
                                 gigabytes_per_sec(10.0),
                                 std::move(hosted_types[l])});
  }
  return Platform(std::move(servers), gigabytes_per_sec(1.0),
                  gigabytes_per_sec(1.0), num_object_types);
}

Platform Platform::degraded(const std::vector<bool>& server_up) const {
  std::vector<DataServer> servers = servers_;
  for (std::size_t s = 0; s < servers.size(); ++s) {
    if (s < server_up.size() && !server_up[s]) servers[s].object_types.clear();
  }
  return Platform(std::move(servers), link_server_proc_, link_proc_proc_,
                  num_object_types_);
}

bool Platform::all_types_hosted() const {
  for (const auto& hosts : servers_by_type_) {
    if (hosts.empty()) return false;
  }
  return true;
}

} // namespace insp
