// The fixed part of the target platform (paper §2.2): data servers holding
// replicated basic objects, and the interconnect (fully connected; uniform
// link bandwidths).  Processors are *not* part of the fixed platform — they
// are purchased from the PriceCatalog by the allocation heuristics.
#pragma once

#include <cassert>
#include <vector>

#include "util/units.hpp"

namespace insp {

struct DataServer {
  int id = -1;
  MBps card_bandwidth = 0.0;        ///< Bs_l
  std::vector<int> object_types;    ///< types this server hosts (sorted)

  bool hosts(int type) const;
};

class Platform {
 public:
  Platform(std::vector<DataServer> servers, MBps link_server_proc,
           MBps link_proc_proc, int num_object_types);

  /// Paper defaults: 6 servers with 10 GB/s cards; all links 1 GB/s.
  /// The hosted-type sets must be filled in by a server distribution
  /// (see server_distribution.hpp).
  static Platform paper_default(std::vector<std::vector<int>> hosted_types,
                                int num_object_types);

  /// The platform with the given servers failed: a down server keeps its
  /// slot (ids stay stable) but hosts nothing, so servers_with() excludes
  /// it and the selection heuristics route around it.  `server_up` is
  /// indexed by server id; ids beyond its size are treated as up.  Used by
  /// the dynamic layer on ServerFailure/ServerRecovery events.
  Platform degraded(const std::vector<bool>& server_up) const;

  int num_servers() const { return static_cast<int>(servers_.size()); }
  const DataServer& server(int l) const {
    assert(l >= 0 && l < num_servers());
    return servers_[static_cast<std::size_t>(l)];
  }
  const std::vector<DataServer>& servers() const { return servers_; }

  MBps link_server_proc() const { return link_server_proc_; }  ///< bs
  MBps link_proc_proc() const { return link_proc_proc_; }      ///< bp

  int num_object_types() const { return num_object_types_; }

  /// Servers hosting the given type (possibly empty: un-hosted type).
  const std::vector<int>& servers_with(int type) const {
    assert(type >= 0 && type < num_object_types_);
    return servers_by_type_[static_cast<std::size_t>(type)];
  }
  /// av_k of the Object-Availability heuristic.
  int availability(int type) const {
    return static_cast<int>(servers_with(type).size());
  }
  /// True when every type is hosted by at least one server.
  bool all_types_hosted() const;

 private:
  std::vector<DataServer> servers_;
  MBps link_server_proc_;
  MBps link_proc_proc_;
  int num_object_types_;
  std::vector<std::vector<int>> servers_by_type_;
};

} // namespace insp
