#include "platform/server_distribution.hpp"

#include <stdexcept>

namespace insp {

std::vector<std::vector<int>> distribute_objects(Rng& rng,
                                                 const ServerDistConfig& cfg) {
  if (cfg.num_servers <= 0 || cfg.num_object_types <= 0) {
    throw std::invalid_argument("distribute_objects: non-positive counts");
  }
  std::vector<std::vector<int>> hosted(
      static_cast<std::size_t>(cfg.num_servers));
  for (int t = 0; t < cfg.num_object_types; ++t) {
    const std::size_t primary = rng.index(
        static_cast<std::size_t>(cfg.num_servers));
    hosted[primary].push_back(t);
    for (int l = 0; l < cfg.num_servers; ++l) {
      if (static_cast<std::size_t>(l) == primary) continue;
      if (rng.bernoulli(cfg.replication_prob)) {
        hosted[static_cast<std::size_t>(l)].push_back(t);
      }
    }
  }
  return hosted;
}

Platform make_paper_platform(Rng& rng, const ServerDistConfig& cfg) {
  return Platform::paper_default(distribute_objects(rng, cfg),
                                 cfg.num_object_types);
}

} // namespace insp
