// Random placement of object types onto data servers (paper §5: "The 15
// different types of objects are randomly distributed over the 6 servers").
// Replication level is configurable; the paper implies replication exists
// (the Object-Availability heuristic keys on av_k, the number of servers
// holding object k).
#pragma once

#include <vector>

#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace insp {

struct ServerDistConfig {
  int num_servers = 6;
  int num_object_types = 15;
  /// Probability that each *additional* server (beyond the mandatory one)
  /// also hosts a given type.  0 = no replication, each type on exactly one
  /// uniformly random server.
  double replication_prob = 0.25;
};

/// hosted[l] = sorted list of types hosted by server l. Every type is hosted
/// by at least one server.
std::vector<std::vector<int>> distribute_objects(Rng& rng,
                                                 const ServerDistConfig& cfg);

/// Convenience: paper-default platform with a fresh random distribution.
Platform make_paper_platform(Rng& rng, const ServerDistConfig& cfg);

} // namespace insp
