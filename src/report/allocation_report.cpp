#include "report/allocation_report.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "sim/flow_analyzer.hpp"

namespace insp {

namespace {

std::string pct(double used, double cap) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", cap > 0 ? 100.0 * used / cap : 0);
  return buf;
}

} // namespace

std::string allocation_to_dot(const Problem& problem,
                              const Allocation& alloc) {
  const OperatorTree& tree = *problem.tree;
  const PriceCatalog& cat = *problem.catalog;
  const auto loads = compute_processor_loads(problem, alloc);

  std::ostringstream out;
  out << "digraph allocation {\n  rankdir=BT;\n  compound=true;\n";

  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    const auto& p = alloc.processors[u];
    out << "  subgraph cluster_P" << u << " {\n"
        << "    label=\"P" << u << " " << cat.describe(p.config)
        << "\\ncpu " << loads[u].cpu_demand << "/" << cat.speed(p.config)
        << " nic " << loads[u].nic_total() << "/"
        << cat.bandwidth(p.config) << "\";\n";
    for (int op : p.ops) {
      out << "    n" << op << " [shape=box,label=\"n" << op << "\\nw="
          << tree.op(op).work << "\"];\n";
    }
    out << "  }\n";
  }

  // Data servers.
  for (int l = 0; l < problem.platform->num_servers(); ++l) {
    out << "  S" << l << " [shape=house,label=\"S" << l << "\"];\n";
  }

  // Dataflow edges (one arrow per out-edge); crossing edges carry a
  // bandwidth label.
  for (const auto& n : tree.operators()) {
    const int uc = alloc.op_to_proc[static_cast<std::size_t>(n.id)];
    for (const OutEdge& e : n.out) {
      const int up = alloc.op_to_proc[static_cast<std::size_t>(e.dst)];
      out << "  n" << n.id << " -> n" << e.dst;
      if (uc != up) {
        out << " [label=\"" << problem.rho * e.delta
            << " MB/s\",color=red,penwidth=2]";
      }
      out << ";\n";
    }
  }

  // Download streams.
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    for (const auto& dl : alloc.processors[u].downloads) {
      // Attach to the first operator on the processor needing the type.
      int anchor = alloc.processors[u].ops.front();
      for (int op : alloc.processors[u].ops) {
        const auto types = tree.object_types_of(op);
        if (std::find(types.begin(), types.end(), dl.object_type) !=
            types.end()) {
          anchor = op;
          break;
        }
      }
      out << "  S" << dl.server << " -> n" << anchor << " [style=dashed,"
          << "label=\"o" << dl.object_type << " "
          << tree.catalog().type(dl.object_type).rate() << " MB/s\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string utilization_table(const Problem& problem,
                              const Allocation& alloc) {
  const PriceCatalog& cat = *problem.catalog;
  const Platform& plat = *problem.platform;
  const auto loads = compute_processor_loads(problem, alloc);

  std::ostringstream out;
  out << "resource      utilization\n";
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    const auto& cfg = alloc.processors[u].config;
    out << "P" << u << " cpu      " << pct(loads[u].cpu_demand, cat.speed(cfg))
        << "   (" << loads[u].cpu_demand << " / " << cat.speed(cfg)
        << " Mops/s)\n";
    out << "P" << u << " nic      "
        << pct(loads[u].nic_total(), cat.bandwidth(cfg)) << "   ("
        << loads[u].nic_total() << " / " << cat.bandwidth(cfg) << " MB/s)\n";
  }

  std::vector<MBps> server_load(static_cast<std::size_t>(plat.num_servers()),
                                0.0);
  std::map<std::pair<int, int>, MBps> sp_links;
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    for (const auto& dl : alloc.processors[u].downloads) {
      const MBps r = problem.tree->catalog().type(dl.object_type).rate();
      server_load[static_cast<std::size_t>(dl.server)] += r;
      sp_links[{dl.server, static_cast<int>(u)}] += r;
    }
  }
  for (int l = 0; l < plat.num_servers(); ++l) {
    out << "S" << l << " card     "
        << pct(server_load[static_cast<std::size_t>(l)],
               plat.server(l).card_bandwidth)
        << "   (" << server_load[static_cast<std::size_t>(l)] << " / "
        << plat.server(l).card_bandwidth << " MB/s)\n";
  }
  for (const auto& [key, load] : sp_links) {
    out << "link S" << key.first << "->P" << key.second << "  "
        << pct(load, plat.link_server_proc()) << "   (" << load << " / "
        << plat.link_server_proc() << " MB/s)\n";
  }
  return out.str();
}

std::string plan_summary(const Problem& problem, const Allocation& alloc) {
  const PriceCatalog& cat = *problem.catalog;
  std::ostringstream out;
  out << "PURCHASE PLAN — " << alloc.num_processors()
      << " processor(s), total $" << alloc.total_cost(cat) << "\n";
  std::map<std::string, int> counts;
  for (const auto& p : alloc.processors) {
    ++counts[cat.describe(p.config)];
  }
  for (const auto& [desc, n] : counts) {
    out << "  " << n << " x " << desc << "\n";
  }
  const FlowAnalysis flow = analyze_flow(problem, alloc);
  out << "sustainable throughput: " << flow.max_throughput
      << " results/s (target " << problem.rho << ", headroom "
      << (problem.rho > 0 ? flow.max_throughput / problem.rho : 0)
      << "x)\n";
  out << "bottleneck: " << flow.bottleneck_detail << " ["
      << to_string(flow.bottleneck) << "]\n";
  out << "\n" << utilization_table(problem, alloc);
  return out.str();
}

} // namespace insp
