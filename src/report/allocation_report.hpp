// Human-facing views of an allocation: a Graphviz rendering (processors as
// clusters, crossing edges and download streams annotated with their
// bandwidth), a per-resource utilization table, and a one-page plan
// summary.  These are what an operator pastes into a ticket when ordering
// the hardware.
#pragma once

#include <string>

#include "core/allocation.hpp"
#include "core/problem.hpp"

namespace insp {

/// Graphviz DOT: one cluster per purchased processor (labeled with its
/// configuration and load), operators inside, data servers as house-shaped
/// nodes, download streams and crossing tree edges labeled in MB/s.
std::string allocation_to_dot(const Problem& problem, const Allocation& alloc);

/// Fixed-width utilization table: one row per processor (CPU %, NIC %) and
/// per data server (card %), plus every active link above a threshold.
std::string utilization_table(const Problem& problem, const Allocation& alloc);

/// One-page summary: purchase list with prices, aggregate utilization,
/// sustainable throughput and bottleneck (from the flow analyzer).
std::string plan_summary(const Problem& problem, const Allocation& alloc);

} // namespace insp
