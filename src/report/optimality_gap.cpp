#include "report/optimality_gap.hpp"

#include <limits>

namespace insp {

double OptimalityGap::ratio() const {
  if (!measured() || !exact_cost || *exact_cost <= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return observed_cost / *exact_cost;
}

double OptimalityGap::percent() const { return 100.0 * (ratio() - 1.0); }

OptimalityGap measure_gap(const Problem& problem, Dollars observed_cost,
                          const ExactSolverConfig& config) {
  const ExactResult r = solve_exact(problem, config);
  OptimalityGap gap;
  gap.exact_status = r.status;
  gap.exact_cost = r.cost;
  gap.observed_cost = observed_cost;
  gap.nodes_visited = r.nodes_visited;
  return gap;
}

} // namespace insp
