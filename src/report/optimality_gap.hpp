// Optimality-gap accounting (docs/DESIGN.md §14): how far an observed
// allocation cost sits above the exact optimum of the same problem.  The
// exact anchor is solve_exact (incremental branch-and-bound); when its node
// budget runs out the gap is reported as unmeasured rather than against an
// unproved incumbent — a gap column must never silently compare against a
// non-optimal anchor.
#pragma once

#include <cstdint>
#include <optional>

#include "core/problem.hpp"
#include "ilp/exact_solver.hpp"

namespace insp {

struct OptimalityGap {
  ExactStatus exact_status = ExactStatus::BudgetExhausted;
  /// The proved optimum (Optimal), or the solver's best upper bound
  /// (BudgetExhausted, if any); absent when Infeasible and nothing found.
  std::optional<Dollars> exact_cost;
  /// The cost whose gap is being measured (heuristic / repair / scratch).
  Dollars observed_cost = 0.0;
  std::uint64_t nodes_visited = 0;

  /// True when the anchor is a PROVED optimum.
  bool measured() const { return exact_status == ExactStatus::Optimal; }
  /// observed / optimal; 1.0 means the observed allocation is optimal.
  /// Quiet NaN when the gap is not measured.
  double ratio() const;
  /// 100 * (ratio() - 1): percent above the optimum.
  double percent() const;
};

/// Solves `problem` exactly and relates `observed_cost` to the result.
OptimalityGap measure_gap(const Problem& problem, Dollars observed_cost,
                          const ExactSolverConfig& config = {});

} // namespace insp
