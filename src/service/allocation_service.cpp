#include "service/allocation_service.hpp"

#include <algorithm>
#include <cassert>

#include "service/batch_planner.hpp"
#include "util/thread_pool.hpp"

namespace insp {

AllocationService::AllocationService(std::vector<ShardSpec> shards,
                                     ServiceOptions options)
    : opt_(options), queue_(options.queue_capacity) {
  shards_.reserve(shards.size());
  for (ShardSpec& spec : shards) {
    shards_.push_back(std::make_unique<Shard>(std::move(spec)));
  }
}

AllocationService::~AllocationService() {
  if (started_ && !finished_) {
    queue_.close();
    for (std::thread& t : workers_) t.join();
  }
}

void AllocationService::start() {
  assert(!started_);
  started_ = true;
  // Sequential initialization: the initial from-scratch allocations are
  // part of the deterministic trajectory, and a few hundred milliseconds
  // of startup is not what the service optimizes.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    shard.engine = std::make_unique<DynamicAllocator>(
        shard.spec.apps, shard.spec.platform, shard.spec.catalog,
        opt_.repair);
    const RepairReport init =
        shard.engine->initialize(shard_seed(opt_.seed, static_cast<int>(i)));
    shard.initialized = init.success;
    if (!init.success) ++shard.failures;
    publish_snapshot(shard);
  }
  const unsigned n = ThreadPool::resolve_num_threads(
      opt_.num_workers < 0 ? 0 : static_cast<unsigned>(opt_.num_workers));
  workers_.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

bool AllocationService::submit(int shard, const WorkloadEvent& event) {
  if (shard < 0 || shard >= num_shards()) return false;
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  ServiceRequest req;
  req.shard = shard;
  req.seq = sh.submit_seq.fetch_add(1);
  req.event = event;
  req.enqueued_at = std::chrono::steady_clock::now();
  if (queue_.push(std::move(req))) return true;
  // Refused (service finishing): hand the sequence number back, or the gap
  // would strand every later request of this shard at drain time.  Exact
  // under the one-producer-per-shard contract submit() documents.
  sh.submit_seq.fetch_sub(1);
  return false;
}

const ShardSnapshot* AllocationService::snapshot(int shard) const {
  if (shard < 0 || shard >= num_shards()) return nullptr;
  return shards_[static_cast<std::size_t>(shard)]->snapshot.load(
      std::memory_order_acquire);
}

void AllocationService::worker_loop() {
  ServiceRequest req;
  while (queue_.pop(req)) {
    Shard& shard = *shards_[static_cast<std::size_t>(req.shard)];
    Pending item;
    item.seq = req.seq;
    // Batching disabled: every request is its own epoch (and thus its own
    // singleton batch), otherwise a worker that extracts several requests
    // at once would coalesce across them — a timing-dependent batch shape.
    item.epoch = opt_.batch_window_s > 0.0
                     ? batch_epoch(req.event.time, opt_.batch_window_s)
                     : static_cast<std::int64_t>(req.seq);
    item.event = req.event;
    item.enqueued_at = req.enqueued_at;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      // Insert keeping seq order; a request travels the queue out of order
      // only when another worker overtook us, so scanning from the back
      // terminates almost immediately.
      auto pos = shard.pending.end();
      while (pos != shard.pending.begin() && (pos - 1)->seq > item.seq) {
        --pos;
      }
      shard.pending.insert(pos, std::move(item));
    }
    run_shard(shard);
  }
}

std::size_t AllocationService::ready_count_locked(const Shard& shard) const {
  // Contiguous-by-seq prefix: everything submitted before it has arrived.
  std::size_t m = 0;
  std::uint64_t expect = shard.next_seq;
  while (m < shard.pending.size() && shard.pending[m].seq == expect) {
    ++m;
    ++expect;
  }
  if (m == 0) return 0;
  std::size_t cut = m;
  if (!draining_.load() && opt_.batch_window_s > 0.0) {
    // The final epoch group in the prefix may still grow (a same-epoch
    // request can arrive later); hold it back until a later-epoch request
    // closes it.  Earlier groups are closed by the events after them.
    const std::int64_t last_epoch = shard.pending[cut - 1].epoch;
    while (cut > 0 && shard.pending[cut - 1].epoch == last_epoch) --cut;
  }
  return cut;
}

std::vector<AllocationService::Pending> AllocationService::extract_ready(
    Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.mu);
  const std::size_t cut = ready_count_locked(shard);
  if (cut == 0) return {};
  std::vector<Pending> out;
  out.reserve(cut);
  for (std::size_t i = 0; i < cut; ++i) {
    out.push_back(std::move(shard.pending[i]));
  }
  shard.pending.erase(shard.pending.begin(),
                      shard.pending.begin() + static_cast<std::ptrdiff_t>(cut));
  shard.next_seq += cut;
  return out;
}

bool AllocationService::has_ready(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.mu);
  return ready_count_locked(shard) > 0;
}

void AllocationService::run_shard(Shard& shard) {
  while (true) {
    if (shard.owned.exchange(true)) return;  // another worker drives it
    for (std::vector<Pending> items = extract_ready(shard); !items.empty();
         items = extract_ready(shard)) {
      // The extracted prefix may span several epoch groups; each group is
      // one batch with its own repair pass and snapshot.
      std::size_t first = 0;
      for (std::size_t i = 1; i <= items.size(); ++i) {
        if (i == items.size() || items[i].epoch != items[first].epoch) {
          apply_group(shard, items.data() + first, i - first);
          first = i;
        }
      }
    }
    shard.owned.store(false);
    // Re-check after releasing: a worker that failed the exchange while we
    // were past our last extract left work behind (lost-wakeup guard).
    if (!has_ready(shard)) return;
  }
}

void AllocationService::apply_group(Shard& shard, const Pending* items,
                                    std::size_t count) {
  std::vector<WorkloadEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) events.push_back(items[i].event);
  const CoalescedBatch batch = coalesce_batch(events);
  for (const WorkloadEvent& event : batch.applied) {
    const RepairReport rep = shard.engine->apply(event, shard.spec.trace);
    if (!rep.success) ++shard.failures;
    ++shard.events_applied;
    shard.signature.mix_repair(event.kind, rep,
                               shard.engine->allocation().num_processors());
  }
  shard.events_coalesced += batch.coalesced;
  ++shard.version;
  publish_snapshot(shard);
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    shard.latency_seconds.push_back(
        std::chrono::duration<double>(now - items[i].enqueued_at).count());
  }
}

void AllocationService::publish_snapshot(Shard& shard) {
  auto snap = std::make_unique<ShardSnapshot>();
  snap->version = shard.version;
  snap->initialized = shard.initialized;
  snap->events_applied = shard.events_applied;
  snap->events_coalesced = shard.events_coalesced;
  snap->failures = shard.failures;
  snap->cost = shard.engine->cost();
  snap->processors = shard.engine->allocation().num_processors();
  snap->live_apps = shard.engine->num_live_apps();
  snap->signature = shard.signature.h;
  snap->allocation = shard.engine->allocation();
  const ShardSnapshot* raw = snap.get();
  shard.snapshot_history.push_back(std::move(snap));
  shard.snapshot.store(raw, std::memory_order_release);
}

ServiceStats AllocationService::finish() {
  if (finished_) return stats_;
  assert(started_);
  finished_ = true;
  // Stop accepting, let the workers drain the queue completely, then join:
  // after the join every request is in some shard's pending list.
  queue_.close();
  for (std::thread& t : workers_) t.join();
  // Final flush on the caller's thread: unclosed epochs are now final.
  draining_.store(true);
  for (std::unique_ptr<Shard>& shard : shards_) {
    run_shard(*shard);
    assert(shard->pending.empty());
  }
  stats_.shards = num_shards();
  stats_.workers = static_cast<unsigned>(workers_.size());
  for (std::unique_ptr<Shard>& shard : shards_) {
    stats_.requests_submitted += shard->submit_seq.load();
    stats_.events_applied += shard->events_applied;
    stats_.events_coalesced += shard->events_coalesced;
    stats_.failures += shard->failures;
    stats_.latency_seconds.insert(stats_.latency_seconds.end(),
                                  shard->latency_seconds.begin(),
                                  shard->latency_seconds.end());
  }
  return stats_;
}

} // namespace insp
