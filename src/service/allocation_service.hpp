// Sharded, thread-safe allocation service (docs/DESIGN.md §9): the
// concurrent front end over the online re-allocation engine.  The platform
// is partitioned into shards — each shard owns its own server partition,
// price catalog, tenant set, and one DynamicAllocator kept live behind a
// single-writer discipline — and tenant requests (arrival/departure, rho
// and object-rate changes, server failures) flow through one bounded MPMC
// queue into per-shard epoch batches (batch_planner.hpp).
//
// Concurrency model, and why a concurrent run is bit-reproducible:
//   - submit() stamps each request with a shard-local sequence number;
//     workers popping the shared queue re-sort a shard's requests by that
//     sequence, so per-shard order is submission order no matter which
//     worker carries which request.
//   - a shard is driven by at most one worker at a time (an atomic
//     ownership flag, not a held lock), and only *closed, complete* epoch
//     batches are applied — an epoch closes when a later-epoch request for
//     the shard has been submitted, or at drain.  Batch composition is
//     therefore a pure function of the submitted stream, never of timing.
//   - the repair trajectory of a shard is then exactly the trajectory of
//     the sequential reference (service_replay.hpp) over the same stream:
//     signatures and final allocations match bit for bit for any worker
//     count (tests/service/, tests/golden/replay_signatures.txt).
//   - query threads never touch the engines: each batch publishes an
//     immutable ShardSnapshot through an atomic release-store, so reads
//     are a single acquire-load — wait-free, never blocking a writer, and
//     never observing a half-applied batch.  Published snapshots are
//     retained by the owning shard until the service is destroyed (readers
//     therefore never race reclamation; a long-lived deployment would swap
//     the retire list for epoch-based reclamation, see DESIGN §9).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dynamic/repair_allocator.hpp"
#include "dynamic/replay_signature.hpp"
#include "dynamic/workload_events.hpp"
#include "service/request_queue.hpp"
#include "util/rng.hpp"

namespace insp {

/// One platform partition: the world a single shard serves.  `trace`
/// doubles as the arrival-tree registry — AppArrival requests index into
/// it (DynamicAllocator::apply's contract).
struct ShardSpec {
  std::vector<ApplicationSpec> apps;
  Platform platform;
  PriceCatalog catalog;
  EventTrace trace;
};

struct ServiceOptions {
  /// Worker threads draining the request queue (0 = hardware concurrency).
  int num_workers = 1;
  std::size_t queue_capacity = 1024;
  /// Epoch width for deterministic batching/coalescing; <= 0 applies every
  /// request individually (no batching, no coalescing).
  double batch_window_s = 30.0;
  /// Per-shard repair engine knobs, including speculative parallel repair
  /// (repair.speculative_plans > 1 races candidate plans inside each worker;
  /// replay signatures stay bit-identical for any thread count, so shards
  /// may enable it independently of num_workers).
  RepairOptions repair;
  std::uint64_t seed = 42;
};

/// Immutable state snapshot of one shard, published after every applied
/// batch.  Snapshots stay valid (and bit-stable) until the service is
/// destroyed, however long a reader keeps the pointer.
struct ShardSnapshot {
  std::uint64_t version = 0;  ///< batches applied (0 = post-initialize)
  bool initialized = false;   ///< initial from-scratch allocation succeeded
  int events_applied = 0;     ///< engine.apply() calls so far
  int events_coalesced = 0;   ///< requests folded away by last-write-wins
  int failures = 0;           ///< applied events with success == false
  Dollars cost = 0.0;
  int processors = 0;
  int live_apps = 0;
  /// Running replay signature over the applied events (replay_signature.hpp;
  /// unlike ScenarioResult::signature it does not append the final
  /// allocation — it must be extendable).  Equal to the sequential
  /// reference's signature after drain.
  std::uint64_t signature = 0;
  Allocation allocation;
};

struct ServiceStats {
  int shards = 0;
  unsigned workers = 0;
  std::uint64_t requests_submitted = 0;
  int events_applied = 0;
  int events_coalesced = 0;
  int failures = 0;
  /// Per-request latency (submit -> batch applied and snapshot published),
  /// in submission order per shard, shards concatenated.
  std::vector<double> latency_seconds;
};

/// Deterministic per-shard engine seed (splitmix64 of base ^ golden-ratio
/// stripe).  Shared with the sequential reference.
inline std::uint64_t shard_seed(std::uint64_t base_seed, int shard) {
  std::uint64_t x = base_seed ^ (0x9e3779b97f4a7c15ull *
                                 (static_cast<std::uint64_t>(shard) + 1));
  return splitmix64(x);
}

class AllocationService {
 public:
  AllocationService(std::vector<ShardSpec> shards, ServiceOptions options);
  ~AllocationService();

  AllocationService(const AllocationService&) = delete;
  AllocationService& operator=(const AllocationService&) = delete;

  /// Builds every shard's initial allocation (sequentially, so it is
  /// deterministic) and spawns the workers.  Call once.
  void start();

  /// Enqueues one tenant request; blocks while the queue is full.  Returns
  /// false when the shard id is out of range or the service is finishing.
  /// Per-shard request order is submission order: concurrent submitters
  /// must target different shards (one stream per shard), which is the
  /// natural tenant-to-shard routing anyway.
  bool submit(int shard, const WorkloadEvent& event);

  /// Latest published snapshot: one atomic acquire-load, wait-free, safe
  /// from any thread.  Never null after start(); valid until the service
  /// is destroyed.
  const ShardSnapshot* snapshot(int shard) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Drains the queue, applies every remaining batch (including unclosed
  /// final epochs), stops the workers, and publishes final snapshots.
  /// Idempotent; submit() is refused afterwards.
  ServiceStats finish();

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::int64_t epoch = 0;
    WorkloadEvent event;
    std::chrono::steady_clock::time_point enqueued_at{};
  };

  struct Shard {
    explicit Shard(ShardSpec s) : spec(std::move(s)) {}

    ShardSpec spec;
    std::unique_ptr<DynamicAllocator> engine;

    std::atomic<std::uint64_t> submit_seq{0};  // next seq submit() hands out

    std::mutex mu;                 // guards pending + next_seq
    std::deque<Pending> pending;   // sorted by seq
    std::uint64_t next_seq = 0;    // first seq not yet extracted

    /// Single-writer ownership flag: the worker that wins the exchange is
    /// the shard's engine thread until it stores false.
    std::atomic<bool> owned{false};

    std::atomic<const ShardSnapshot*> snapshot{nullptr};

    // Owner-only state (guarded by the ownership protocol, not a lock).
    /// Every snapshot ever published, in publication order: readers hold
    /// raw pointers, so nothing is reclaimed before the service dies.
    std::vector<std::unique_ptr<const ShardSnapshot>> snapshot_history;
    ReplaySignature signature;
    std::uint64_t version = 0;
    int events_applied = 0;
    int events_coalesced = 0;
    int failures = 0;
    bool initialized = false;
    std::vector<double> latency_seconds;
  };

  void worker_loop();
  /// Drives the shard until no closed batch remains (ownership loop).
  void run_shard(Shard& shard);
  /// Extractable-prefix length: contiguous by seq, cut before the final
  /// epoch group unless draining.  Requires shard.mu held; the single
  /// definition keeps extract_ready and the lost-wakeup recheck agreeing
  /// on what "ready" means (including non-monotonic event times).
  std::size_t ready_count_locked(const Shard& shard) const;
  /// Moves the extractable prefix out of pending.  Empty when none.
  std::vector<Pending> extract_ready(Shard& shard);
  bool has_ready(Shard& shard);
  /// Coalesces + applies one epoch group, publishes the snapshot, records
  /// latencies.  Owner only.
  void apply_group(Shard& shard, const Pending* items, std::size_t count);
  void publish_snapshot(Shard& shard);

  ServiceOptions opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};
  bool started_ = false;
  bool finished_ = false;
  ServiceStats stats_;
};

} // namespace insp
