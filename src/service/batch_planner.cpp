#include "service/batch_planner.hpp"

#include <cmath>

namespace insp {

std::int64_t batch_epoch(double time_s, double window_s) {
  if (window_s <= 0.0) return 0;  // callers split per event instead
  return static_cast<std::int64_t>(std::floor(time_s / window_s));
}

bool is_rate_event(EventKind kind) {
  return kind == EventKind::RhoChange || kind == EventKind::ObjectRateChange;
}

bool is_server_event(EventKind kind) {
  return kind == EventKind::ServerFailure || kind == EventKind::ServerRecovery;
}

namespace {

/// Coalescing key: two rate events collide iff they update the same knob.
bool same_knob(const WorkloadEvent& a, const WorkloadEvent& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == EventKind::RhoChange) return a.app_id == b.app_id;
  return a.object_type == b.object_type;  // ObjectRateChange
}

} // namespace

CoalescedBatch coalesce_batch(const std::vector<WorkloadEvent>& batch) {
  CoalescedBatch out;
  out.applied.reserve(batch.size());
  std::size_t i = 0;
  while (i < batch.size()) {
    if (!is_rate_event(batch[i].kind)) {  // barrier
      // A consecutive run of identical server events collapses to one
      // application (idempotent re-inference by the failure detector);
      // the survivor keeps the last occurrence's position, matching the
      // rate events' last-write-wins convention.
      if (is_server_event(batch[i].kind)) {
        std::size_t j = i + 1;
        while (j < batch.size() && batch[j].kind == batch[i].kind &&
               batch[j].server == batch[i].server) {
          ++j;
        }
        out.coalesced += static_cast<int>(j - i - 1);
        out.applied.push_back(batch[j - 1]);
        i = j;
      } else {  // structural barrier: applied verbatim
        out.applied.push_back(batch[i]);
        ++i;
      }
      continue;
    }
    // Maximal run of rate events [i, j): keep the last update per knob.
    std::size_t j = i;
    while (j < batch.size() && is_rate_event(batch[j].kind)) ++j;
    for (std::size_t k = i; k < j; ++k) {
      bool overwritten = false;
      for (std::size_t l = k + 1; l < j && !overwritten; ++l) {
        overwritten = same_knob(batch[k], batch[l]);
      }
      if (overwritten) {
        ++out.coalesced;
      } else {
        out.applied.push_back(batch[k]);
      }
    }
    i = j;
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> epoch_runs(
    const std::vector<WorkloadEvent>& events, double window_s) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  if (events.empty()) return runs;
  if (window_s <= 0.0) {  // batching disabled: one event per batch
    for (std::size_t i = 0; i < events.size(); ++i) runs.emplace_back(i, i + 1);
    return runs;
  }
  std::size_t first = 0;
  std::int64_t epoch = batch_epoch(events[0].time, window_s);
  for (std::size_t i = 1; i < events.size(); ++i) {
    const std::int64_t e = batch_epoch(events[i].time, window_s);
    if (e != epoch) {
      runs.emplace_back(first, i);
      first = i;
      epoch = e;
    }
  }
  runs.emplace_back(first, events.size());
  return runs;
}

} // namespace insp
