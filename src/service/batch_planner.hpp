// Deterministic batching and coalescing rules (docs/DESIGN.md §9).  The
// allocation service applies a shard's requests in *epoch batches* instead
// of one repair per request, folding bursts of rate updates into one repair
// pass.  Everything here is a pure function of the event stream — never of
// arrival timing or thread count — which is what makes a concurrent service
// run bit-reproducible against the sequential per-shard reference
// (service_replay.hpp):
//
//   - epoch: floor(event.time / window_s).  A batch is a maximal run of
//     consecutive same-epoch events in shard submission order.  An epoch is
//     *closed* (safe to apply) once a later-epoch event for the shard has
//     been submitted — event times are non-decreasing per shard, so nothing
//     can join a closed epoch — or when the service is draining.
//   - coalescing: within a batch, consecutive runs of rate-only events
//     (RhoChange / ObjectRateChange) keep only the last update per app and
//     per object type; earlier ones are acknowledged without a repair pass
//     (last-write-wins, exactly what the tenant observes from a sequential
//     application of the run).  Structural and server events
//     (arrival/departure/failure/recovery) are barriers: rate updates never
//     reorder across them.  One refinement for the health layer, whose
//     failure detector may re-assert a failure it already reported while
//     the repair is in flight: a consecutive run of *identical* server
//     events (same kind, same server) collapses to a single application —
//     DynamicAllocator::apply treats the duplicates as idempotent no-ops
//     anyway, so collapsing them saves the shard a repair pass per
//     duplicate without changing what any tenant observes.
#pragma once

#include <cstdint>
#include <vector>

#include "dynamic/workload_events.hpp"

namespace insp {

/// Epoch of an event at the given window width.  window_s <= 0 disables
/// batching (every event is its own epoch, nothing coalesces).
std::int64_t batch_epoch(double time_s, double window_s);

/// True for the event kinds that participate in last-write-wins coalescing.
bool is_rate_event(EventKind kind);

/// True for ServerFailure / ServerRecovery — the kinds whose identical
/// consecutive repeats collapse to one application (see above).
bool is_server_event(EventKind kind);

struct CoalescedBatch {
  /// Surviving events, in their original relative order (a survivor keeps
  /// the position of its *last* occurrence within its rate run).
  std::vector<WorkloadEvent> applied;
  /// Events folded away by last-write-wins.
  int coalesced = 0;
};

/// Coalesces one batch (the events of one epoch, in submission order).
CoalescedBatch coalesce_batch(const std::vector<WorkloadEvent>& batch);

/// Splits `events` (submission order) into consecutive same-epoch runs and
/// returns the batch boundaries as (first, last) index pairs, last
/// exclusive.  Shared by the shard runners and the sequential reference so
/// both see identical batches.
std::vector<std::pair<std::size_t, std::size_t>> epoch_runs(
    const std::vector<WorkloadEvent>& events, double window_s);

} // namespace insp
