#include "service/request_queue.hpp"

namespace insp {

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool RequestQueue::push(ServiceRequest request) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_space_.wait(lock,
                 [this] { return closed_ || items_.size() < capacity_; });
  if (closed_) return false;
  items_.push_back(std::move(request));
  lock.unlock();
  cv_items_.notify_one();
  return true;
}

bool RequestQueue::pop(ServiceRequest& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_items_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  cv_space_.notify_one();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_space_.notify_all();
  cv_items_.notify_all();
}

std::size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

} // namespace insp
