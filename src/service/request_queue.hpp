// Bounded multi-producer / multi-consumer request queue: the front door of
// the allocation service.  Producers (tenant-facing threads) block when the
// queue is full — backpressure instead of unbounded memory — and workers
// block when it is empty.  close() wakes everyone: pending items are still
// drained by pop(), further push()es are refused.
//
// The queue is deliberately a plain mutex + two condition variables: at
// service scale the per-request cost is dominated by the repair work the
// request triggers (tens of microseconds to milliseconds), so a lock-free
// ring would buy nothing measurable while complicating the close/drain
// semantics the service relies on.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "dynamic/workload_events.hpp"

namespace insp {

/// One tenant request: a workload event bound for a shard.  `seq` is the
/// shard-local submission index (assigned by AllocationService::submit);
/// shard runners use it to restore per-shard order when several workers
/// pop requests of the same shard concurrently.  `enqueued_at` feeds the
/// request-latency histogram.
struct ServiceRequest {
  int shard = -1;
  std::uint64_t seq = 0;
  WorkloadEvent event;
  std::chrono::steady_clock::time_point enqueued_at{};
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Blocks while the queue is full.  Returns false — and drops the
  /// request — iff the queue was closed.
  bool push(ServiceRequest request);

  /// Blocks while the queue is empty.  Returns false iff the queue is
  /// closed *and* fully drained.
  bool pop(ServiceRequest& out);

  /// Idempotent.  Wakes every blocked producer and consumer.
  void close();

  std::size_t capacity() const { return capacity_; }
  /// Instantaneous size (tests/diagnostics only — stale by the time the
  /// caller looks at it).
  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_space_;  ///< signals producers: slot free / closed
  std::condition_variable cv_items_;  ///< signals consumers: item ready / closed
  std::deque<ServiceRequest> items_;
  bool closed_ = false;
};

} // namespace insp
