#include "service/service_replay.hpp"

#include "service/batch_planner.hpp"

namespace insp {

ShardReplayResult replay_shard_sequential(const ShardSpec& spec,
                                          int shard_index,
                                          const ServiceOptions& options) {
  ShardReplayResult result;
  DynamicAllocator engine(spec.apps, spec.platform, spec.catalog,
                          options.repair);
  const RepairReport init =
      engine.initialize(shard_seed(options.seed, shard_index));
  result.initialized = init.success;
  if (!init.success) ++result.failures;

  ReplaySignature signature;
  const std::vector<std::pair<std::size_t, std::size_t>> runs =
      epoch_runs(spec.trace.events, options.batch_window_s);
  std::vector<WorkloadEvent> batch;
  for (const auto& [first, last] : runs) {
    batch.assign(spec.trace.events.begin() + static_cast<std::ptrdiff_t>(first),
                 spec.trace.events.begin() + static_cast<std::ptrdiff_t>(last));
    const CoalescedBatch coalesced = coalesce_batch(batch);
    for (const WorkloadEvent& event : coalesced.applied) {
      const RepairReport rep = engine.apply(event, spec.trace);
      if (!rep.success) ++result.failures;
      ++result.events_applied;
      signature.mix_repair(event.kind, rep,
                           engine.allocation().num_processors());
    }
    result.events_coalesced += coalesced.coalesced;
  }
  result.signature = signature.h;
  result.final_cost = engine.cost();
  result.processors = engine.allocation().num_processors();
  result.final_allocation = engine.allocation();
  return result;
}

} // namespace insp
