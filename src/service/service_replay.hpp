// Sequential per-shard reference for the allocation service: one thread,
// one shard, the same epoch batching, coalescing, seed derivation, and
// signature mixing as AllocationService.  A concurrent service run is
// correct iff, for every shard, the post-drain ShardSnapshot matches this
// function's result bit for bit (signature and final allocation) — the
// contract the service stress test, the golden-signature regression, and
// bench_service all check.
#pragma once

#include "service/allocation_service.hpp"

namespace insp {

struct ShardReplayResult {
  bool initialized = false;
  int events_applied = 0;
  int events_coalesced = 0;
  int failures = 0;
  Dollars final_cost = 0.0;
  int processors = 0;
  /// Running replay signature over the applied events (no final-allocation
  /// mix; see ShardSnapshot::signature).
  std::uint64_t signature = 0;
  Allocation final_allocation;
};

/// Replays `spec.trace` against the shard's world exactly as the service
/// would: epoch runs -> coalesce -> apply, seeded with
/// shard_seed(options.seed, shard_index).  Only `options.repair`, `seed`
/// and `batch_window_s` matter here; worker/queue options are ignored.
ShardReplayResult replay_shard_sequential(const ShardSpec& spec,
                                          int shard_index,
                                          const ServiceOptions& options);

} // namespace insp
