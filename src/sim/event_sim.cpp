#include "sim/event_sim.hpp"

#include <algorithm>
#include <map>
#include <cassert>
#include <deque>
#include <vector>

namespace insp {

namespace {

/// One intermediate result in transit over a crossing tree edge.
struct Token {
  int child_op;           ///< edge identified by its child endpoint
  long long result;       ///< result index being carried
  MegaBytes remaining;    ///< MB still to transfer
  int eligible_period;    ///< pipelining: send starts the period after compute
};

} // namespace

EventSimResult simulate_allocation(const Problem& problem,
                                   const Allocation& alloc,
                                   const EventSimConfig& config) {
  const OperatorTree& tree = *problem.tree;
  const PriceCatalog& cat = *problem.catalog;
  const double period_s = 1.0 / problem.rho;
  const int n_ops = tree.num_operators();
  const int n_procs = alloc.num_processors();

  // Static per-processor figures.
  std::vector<double> cpu_budget_mops(n_procs);     // per period
  std::vector<MBps> card_comm_budget(n_procs);      // per period, MB
  {
    Problem at_unit = problem;
    at_unit.rho = 1.0;
    const auto loads = compute_processor_loads(at_unit, alloc);
    for (int u = 0; u < n_procs; ++u) {
      const auto& cfg = alloc.processors[static_cast<std::size_t>(u)].config;
      cpu_budget_mops[static_cast<std::size_t>(u)] =
          cat.speed(cfg) * period_s;
      // Downloads stream continuously and occupy a fixed share of the card;
      // the remainder is available for inter-processor traffic each period.
      card_comm_budget[static_cast<std::size_t>(u)] = std::max(
          0.0, (cat.bandwidth(cfg) - loads[u].download) * period_s);
    }
  }

  const auto bottom_up = tree.bottom_up_order();
  std::vector<long long> computed(n_ops, 0);   // #results finished per op
  std::vector<long long> delivered(n_ops, 0);  // #results of op delivered to
                                               // its parent's processor
  std::vector<double> progress(n_ops, 0.0);    // Mops spent on current result
  std::deque<Token> in_transit;

  EventSimResult out;
  std::map<std::size_t, long long> root_produced_at_warmup;
  std::vector<long long> root_produced(n_ops, 0);

  for (int period = 0; period < config.periods; ++period) {
    if (period == config.warmup_periods) {
      for (int r : tree.roots()) {
        root_produced_at_warmup[static_cast<std::size_t>(r)] =
            root_produced[static_cast<std::size_t>(r)];
      }
    }
    // ---- Compute phase (start-of-period snapshot: one-period stage
    //      latency, matching the paper's pipelined execution model). -------
    const std::vector<long long> computed_at_start = computed;
    std::vector<double> cpu_left = cpu_budget_mops;
    for (int op : bottom_up) {
      const int u = alloc.op_to_proc[static_cast<std::size_t>(op)];
      auto& budget = cpu_left[static_cast<std::size_t>(u)];
      const MegaOps w = tree.op(op).work;
      // Catch-up is allowed: an operator may complete several pending
      // results in one period if its CPU share and inputs permit.
      const int parent = tree.op(op).parent;
      for (;;) {
        const long long r = computed[static_cast<std::size_t>(op)];
        if (r > period) break;  // basic objects update once per period
        // Backpressure: bounded buffer toward the parent.
        if (parent != kNoNode &&
            r >= computed_at_start[static_cast<std::size_t>(parent)] +
                     config.max_results_ahead) {
          break;
        }
        bool inputs_ready = true;
        for (int c : tree.op(op).children) {
          const int cu = alloc.op_to_proc[static_cast<std::size_t>(c)];
          const long long have =
              cu == u ? computed_at_start[static_cast<std::size_t>(c)]
                      : delivered[static_cast<std::size_t>(c)];
          if (have < r + 1) {
            inputs_ready = false;
            break;
          }
        }
        if (!inputs_ready || budget <= 0.0) break;
        const bool is_root = parent == kNoNode;
        // Partial progress carries across periods: a heavyweight operator
        // accumulates CPU over several periods instead of losing budget
        // remainders to fragmentation.
        auto& done = progress[static_cast<std::size_t>(op)];
        const double spend = std::min(w - done, budget);
        budget -= spend;
        done += spend;
        if (done < w - 1e-9) break;  // result not finished this period
        done = 0.0;
        ++computed[static_cast<std::size_t>(op)];
        if (is_root) {
          // Forests (multi-application): final results are counted at
          // every root; the reported throughput is the slowest root's
          // (each application must meet the common folded target).
          ++root_produced[static_cast<std::size_t>(op)];
          if (out.first_output_period < 0) out.first_output_period = period;
        } else {
          const int pu =
              alloc.op_to_proc[static_cast<std::size_t>(tree.op(op).parent)];
          if (pu == u) {
            // Co-located: visible to the parent next period via computed[].
          } else {
            in_transit.push_back(
                Token{op, r, tree.op(op).output_mb, period + 1});
          }
        }
      }
    }

    // ---- Transfer phase: FIFO over tokens, budgets on sender card,
    //      receiver card, and the pairwise link (bounded multi-port). ------
    std::vector<MBps> card_left = card_comm_budget;
    std::vector<std::vector<MBps>> link_left;  // lazily sized on demand
    link_left.assign(static_cast<std::size_t>(n_procs),
                     std::vector<MBps>(static_cast<std::size_t>(n_procs),
                                       problem.platform->link_proc_proc() *
                                           period_s));
    std::deque<Token> still;
    for (auto& token : in_transit) {
      if (token.eligible_period > period) {
        still.push_back(token);
        continue;
      }
      const int u =
          alloc.op_to_proc[static_cast<std::size_t>(token.child_op)];
      const int v = alloc.op_to_proc[static_cast<std::size_t>(
          tree.op(token.child_op).parent)];
      MBps& su = card_left[static_cast<std::size_t>(u)];
      MBps& sv = card_left[static_cast<std::size_t>(v)];
      MBps& sl = link_left[static_cast<std::size_t>(std::min(u, v))]
                          [static_cast<std::size_t>(std::max(u, v))];
      const MegaBytes amount =
          std::min({token.remaining, su, sv, sl});
      if (amount > 0.0) {
        token.remaining -= amount;
        su -= amount;
        sv -= amount;
        sl -= amount;
      }
      if (token.remaining <= 1e-9) {
        // Delivered: usable by the parent from the next period on (the
        // delivered[] counter is only read in the next compute phase).
        ++delivered[static_cast<std::size_t>(token.child_op)];
      } else {
        still.push_back(token);
      }
    }
    in_transit = std::move(still);
  }

  const int measured = std::max(1, config.periods - config.warmup_periods);
  long long min_after_warmup = -1;
  long long total = 0;
  for (int r : tree.roots()) {
    const long long after = root_produced[static_cast<std::size_t>(r)] -
                            root_produced_at_warmup[static_cast<std::size_t>(r)];
    total += root_produced[static_cast<std::size_t>(r)];
    if (min_after_warmup < 0 || after < min_after_warmup) {
      min_after_warmup = after;
    }
  }
  out.results_produced = total;
  out.achieved_throughput = static_cast<double>(std::max<long long>(
                                0, min_after_warmup)) /
                            (static_cast<double>(measured) * period_s);
  out.sustained = out.achieved_throughput >= problem.rho * 0.99;
  return out;
}

} // namespace insp
