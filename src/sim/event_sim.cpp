// Sparse pre-indexed simulator core (and the shared setup both cores use).
//
// The seed implementation walked every operator through tree-node accessors
// and rebuilt an n_procs x n_procs link-budget matrix every period — despite
// a comment claiming it was "lazily sized on demand", it was eagerly
// assigned each iteration, O(P^2 * periods) allocation churn at N=400.  The
// sparse core indexes everything once:
//
//   - crossing edges (child and parent on different processors) are
//     discovered up front; link budgets live in a flat vector keyed by the
//     distinct (u, v) pairs actually crossed, not a dense matrix;
//   - per-operator data (processor, parent, children, work, root position)
//     sits in flat arrays walked in bottom-up order;
//   - the per-period "start of period" snapshot is maintained by a dirty
//     list (operators that computed this period) instead of a full vector
//     copy;
//   - tokens in transit live in two pooled vectors that swap roles each
//     period, so the steady-state period loop performs no heap allocation.
#include "sim/event_sim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "sim/event_sim_internal.hpp"

namespace insp {

namespace simdetail {

namespace {

/// Smallest k with 2^k > d (0 for d == 0): the depth-scaled slack added to
/// the auto-derived backpressure bound.
int log2_slack(int d) {
  int bits = 0;
  for (; d > 0; d >>= 1) ++bits;
  return bits;
}

ResolvedSimConfig resolve_config(const EventSimConfig& config, int fill_depth,
                                 int crossing_depth, int max_edge_skew) {
  ResolvedSimConfig r;
  r.sustained_fraction = config.sustained_fraction;
  r.periods = config.periods;
  if (r.periods <= 0) {
    r.periods = 0;
    r.degenerate = true;
    return r;
  }
  // Out-of-range sentinels (warmup below -1, negative bound) still resolve
  // to the derived defaults, but are flagged: the caller asked for
  // something no one defined.
  if (config.warmup_periods < -1 || config.max_results_ahead < 0) {
    r.degenerate = true;
  }
  // On a DAG, a shared producer feeding both a deep path and a near-root
  // consumer must run fill[p] - fill[c] periods ahead of the shallow edge
  // before the reconvergence point can fire, so the bound must cover the
  // largest such skew or backpressure throttles a feasible plan.  Tree
  // edges have skew 1 (co-located) or 2 (crossing), which the base term
  // always dominates — tree behavior is unchanged.
  r.max_results_ahead =
      config.max_results_ahead > 0
          ? config.max_results_ahead
          : std::max(4 + log2_slack(crossing_depth), max_edge_skew + 2);
  if (config.warmup_periods >= 0) {
    // Explicit warmup: honor it when it leaves a measurement window,
    // otherwise flag the config and measure the whole run.  A pipeline
    // that cannot even fill within the run can never produce a result,
    // so that is flagged too.
    r.warmup = config.warmup_periods;
    if (r.warmup >= r.periods) {
      r.warmup = 0;
      r.degenerate = true;
    }
    if (fill_depth >= r.periods) r.degenerate = true;
  } else {
    // Auto warmup: cover the pipeline fill (a crossing edge adds ~2 periods
    // of latency, a co-located edge 1) plus slack, floor at a quarter of
    // the run, cap at half so at least half the run is measured.
    r.warmup = std::clamp(std::max(r.periods / 4, fill_depth + 16), 0,
                          r.periods / 2);
    if (fill_depth > r.periods / 2) r.degenerate = true;
  }
  return r;
}

} // namespace

SimStaticPlan build_sim_plan(const Problem& problem, const Allocation& alloc,
                             const SimPlatformView& view,
                             const EventSimConfig& config) {
  const OperatorTree& tree = *problem.tree;
  const PriceCatalog& cat = *problem.catalog;

  SimStaticPlan plan;
  plan.period_s = 1.0 / problem.rho;
  plan.n_ops = tree.num_operators();
  plan.n_procs = alloc.num_processors();
  const auto n_ops = static_cast<std::size_t>(plan.n_ops);
  const auto n_procs = static_cast<std::size_t>(plan.n_procs);

  for (int op = 0; op < plan.n_ops; ++op) {
    const int u = alloc.op_to_proc[static_cast<std::size_t>(op)];
    if (u < 0 || u >= plan.n_procs) {
      plan.unassigned_ops = true;
      plan.cfg = resolve_config(config, 0, 0, 0);
      plan.cfg.degenerate = true;
      return plan;
    }
  }

  plan.bottom_up = tree.bottom_up_order();
  plan.proc.resize(n_ops);
  plan.work.resize(n_ops);
  plan.root_index.assign(n_ops, -1);
  plan.starved.assign(n_ops, 0);
  plan.child_start.assign(n_ops + 1, 0);

  for (int op = 0; op < plan.n_ops; ++op) {
    const auto o = static_cast<std::size_t>(op);
    plan.proc[o] = alloc.op_to_proc[o];
    plan.work[o] = tree.op(op).work;
  }
  const auto& roots = tree.roots();
  for (std::size_t r = 0; r < roots.size(); ++r) {
    plan.root_index[static_cast<std::size_t>(roots[r])] = static_cast<int>(r);
  }

  // Children and out-edges (consumers) in CSR form, declaration order
  // preserved.
  for (int op = 0; op < plan.n_ops; ++op) {
    plan.child_start[static_cast<std::size_t>(op) + 1] =
        plan.child_start[static_cast<std::size_t>(op)] +
        static_cast<int>(tree.op(op).children.size());
  }
  plan.child_list.resize(
      static_cast<std::size_t>(plan.child_start[n_ops]));
  for (int op = 0; op < plan.n_ops; ++op) {
    int w = plan.child_start[static_cast<std::size_t>(op)];
    for (int c : tree.op(op).children) {
      plan.child_list[static_cast<std::size_t>(w++)] = c;
    }
  }
  plan.out_start.assign(n_ops + 1, 0);
  for (int op = 0; op < plan.n_ops; ++op) {
    plan.out_start[static_cast<std::size_t>(op) + 1] =
        plan.out_start[static_cast<std::size_t>(op)] +
        static_cast<int>(tree.op(op).out.size());
  }
  plan.out_dst.resize(static_cast<std::size_t>(plan.out_start[n_ops]));
  for (int op = 0; op < plan.n_ops; ++op) {
    int w = plan.out_start[static_cast<std::size_t>(op)];
    for (const OutEdge& e : tree.op(op).out) {
      plan.out_dst[static_cast<std::size_t>(w++)] = e.dst;
    }
  }

  // Crossing lanes: one per (producer, distinct destination processor) in
  // producer order then first-occurrence destination order, carrying the max
  // out-edge delta into that processor (multicast dedup, docs/DESIGN.md
  // §13) — on trees exactly the crossing child->parent edges, as before.
  std::vector<std::pair<int, int>> pairs;
  auto each_crossing_lane = [&](auto&& fn) {
    for (int op = 0; op < plan.n_ops; ++op) {
      const auto& out = tree.op(op).out;
      const int u = plan.proc[static_cast<std::size_t>(op)];
      for (std::size_t a = 0; a < out.size(); ++a) {
        const int v = plan.proc[static_cast<std::size_t>(out[a].dst)];
        if (v == u) continue;
        bool first = true;
        for (std::size_t b = 0; b < a; ++b) {
          if (plan.proc[static_cast<std::size_t>(out[b].dst)] == v) {
            first = false;
            break;
          }
        }
        if (!first) continue;
        MegaBytes mx = out[a].delta;
        for (std::size_t b = a + 1; b < out.size(); ++b) {
          if (plan.proc[static_cast<std::size_t>(out[b].dst)] == v) {
            mx = std::max(mx, out[b].delta);
          }
        }
        fn(op, u, v, mx);
      }
    }
  };
  each_crossing_lane([&](int /*op*/, int u, int v, MegaBytes /*mx*/) {
    pairs.push_back({std::min(u, v), std::max(u, v)});
  });
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  plan.link_pair_budget.resize(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    plan.link_pair_budget[i] =
        view.link_bandwidth(pairs[i].first, pairs[i].second) * plan.period_s;
  }
  each_crossing_lane([&](int op, int u, int v, MegaBytes mx) {
    CrossingEdge edge;
    edge.child_op = op;
    edge.proc_u = u;
    edge.proc_v = v;
    const std::pair<int, int> key{std::min(u, v), std::max(u, v)};
    edge.pair_index = static_cast<int>(
        std::lower_bound(pairs.begin(), pairs.end(), key) - pairs.begin());
    edge.volume = mx;
    plan.crossing.push_back(edge);
  });
  // Lanes are grouped by producer in producer order, so per-producer ranges
  // are a prefix sum over them.
  plan.cross_start.assign(n_ops + 1, 0);
  for (const CrossingEdge& edge : plan.crossing) {
    ++plan.cross_start[static_cast<std::size_t>(edge.child_op) + 1];
  }
  for (std::size_t o = 0; o < n_ops; ++o) {
    plan.cross_start[o + 1] += plan.cross_start[o];
  }
  // Map each (child occurrence, consumer) to the lane that feeds it.
  plan.child_edge.assign(plan.child_list.size(), -1);
  for (int op = 0; op < plan.n_ops; ++op) {
    const int u = plan.proc[static_cast<std::size_t>(op)];
    for (int k = plan.child_start[static_cast<std::size_t>(op)];
         k < plan.child_start[static_cast<std::size_t>(op) + 1]; ++k) {
      const int c = plan.child_list[static_cast<std::size_t>(k)];
      if (plan.proc[static_cast<std::size_t>(c)] == u) continue;
      for (int e = plan.cross_start[static_cast<std::size_t>(c)];
           e < plan.cross_start[static_cast<std::size_t>(c) + 1]; ++e) {
        if (plan.crossing[static_cast<std::size_t>(e)].proc_v == u) {
          plan.child_edge[static_cast<std::size_t>(k)] = e;
          break;
        }
      }
    }
  }

  // Budgets.  The download share follows the seed semantics — distinct
  // *needed* types per processor — except that a type whose download route
  // points at a down server streams nothing: its rate is released and every
  // operator needing it on that processor starves.
  plan.cpu_budget_mops.resize(n_procs);
  plan.card_comm_budget.resize(n_procs);
  const auto needed = needed_types_per_processor(problem, alloc);
  std::vector<std::vector<int>> down_types(n_procs);
  for (std::size_t u = 0; u < n_procs; ++u) {
    const auto& p = alloc.processors[u];
    MBps download = 0.0;
    for (int t : needed[u]) {
      int server = -1;
      for (const DownloadRoute& route : p.downloads) {
        if (route.object_type == t) {
          server = route.server;
          break;
        }
      }
      if (server >= 0 && !view.server_is_up(server)) {
        down_types[u].push_back(t);  // needed[u] is sorted, so this is too
      } else {
        download += tree.catalog().type(t).rate();
      }
    }
    plan.cpu_budget_mops[u] = cat.speed(p.config) * plan.period_s;
    // Downloads stream continuously and occupy a fixed share of the card;
    // the remainder is available for inter-processor traffic each period.
    plan.card_comm_budget[u] =
        std::max(0.0, (cat.bandwidth(p.config) - download) * plan.period_s);
  }
  for (int op = 0; op < plan.n_ops; ++op) {
    const auto& down =
        down_types[static_cast<std::size_t>(
            plan.proc[static_cast<std::size_t>(op)])];
    if (down.empty()) continue;
    for (int t : tree.object_types_of(op)) {
      if (std::binary_search(down.begin(), down.end(), t)) {
        plan.starved[static_cast<std::size_t>(op)] = 1;
        break;
      }
    }
  }

  // Pipeline depths, walked consumers-before-producers: the latency an op's
  // result accumulates on its way to a root is the max over its out-edges
  // (a crossing edge costs ~2 periods, a co-located edge 1).
  std::vector<int> fill(n_ops, 0);
  std::vector<int> cross(n_ops, 0);
  for (int op : tree.top_down_order()) {
    const auto& out = tree.op(op).out;
    if (out.empty()) continue;
    const int u = plan.proc[static_cast<std::size_t>(op)];
    int f = 0, cr = 0;
    for (const OutEdge& e : out) {
      const bool crossing =
          plan.proc[static_cast<std::size_t>(e.dst)] != u;
      f = std::max(f, fill[static_cast<std::size_t>(e.dst)] +
                          (crossing ? 2 : 1));
      cr = std::max(cr, cross[static_cast<std::size_t>(e.dst)] +
                            (crossing ? 1 : 0));
    }
    fill[static_cast<std::size_t>(op)] = f;
    cross[static_cast<std::size_t>(op)] = cr;
    plan.fill_depth = std::max(plan.fill_depth, f);
    plan.crossing_depth = std::max(plan.crossing_depth, cr);
  }
  // Largest producer-consumer depth gap across any single edge: always
  // 1 or 2 on trees, but a shared node's edge to a near-root consumer can
  // skip arbitrarily many pipeline stages.
  int max_edge_skew = 0;
  for (int op = 0; op < plan.n_ops; ++op) {
    for (const OutEdge& e : tree.op(op).out) {
      max_edge_skew =
          std::max(max_edge_skew, fill[static_cast<std::size_t>(op)] -
                                      fill[static_cast<std::size_t>(e.dst)]);
    }
  }

  plan.cfg = resolve_config(config, plan.fill_depth, plan.crossing_depth,
                            max_edge_skew);
  return plan;
}

} // namespace simdetail

namespace {

using simdetail::SimStaticPlan;

/// One intermediate result in transit over a crossing lane.
struct Token {
  int edge;             ///< index into plan.crossing
  MegaBytes remaining;  ///< MB still to transfer
  int eligible_period;  ///< pipelining: send starts the period after compute
};

EventSimResult run_sparse(const Problem& problem, const SimStaticPlan& plan) {
  const OperatorTree& tree = *problem.tree;
  const auto n_ops = static_cast<std::size_t>(plan.n_ops);
  const std::size_t n_roots = tree.roots().size();

  std::vector<long long> root_produced(n_roots, 0);
  std::vector<long long> root_at_warmup(n_roots, 0);
  int first_output_period = -1;

  if (plan.cfg.periods <= 0 || plan.unassigned_ops) {
    return simdetail::finalize_result(problem, plan, {}, {}, -1);
  }

  // Result counters live in doubles: every value is an exact integer far
  // below 2^53, so min/max/compare arithmetic on them is exact.
  std::vector<double> computed(n_ops, 0.0);  ///< #results finished per op
  std::vector<double> computed_at_start(n_ops, 0.0);
  /// #results landed per crossing lane (usable by that lane's consumers).
  std::vector<double> delivered(plan.crossing.size(), 0.0);
  std::vector<double> progress(n_ops, 0.0);   ///< Mops spent on current result
  std::vector<int> dirty;  ///< ops whose computed changed this period
  dirty.reserve(n_ops);

  // The catch-up loop's three break conditions (one result per period,
  // backpressure toward the consumers, inputs ready) only read counters
  // that are FROZEN during the compute phase (computed_at_start folds at
  // end of period, delivered moves in the transfer phase).  So they
  // collapse into one precomputed per-op bound:
  //
  //   caps[o] = min(period + 1,
  //                 min over consumers of computed_at_start[dst] + bound
  //                                                     (+inf for roots),
  //                 min over children of have[c]         (+inf for leaves))
  //
  // and the walk below progresses exactly while computed[o] < caps[o] —
  // bit-identical to the seed's per-iteration checks (integer-exact
  // doubles, min/max tie values equal; on trees the consumer min is just
  // the parent).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> in_cap(n_ops, kInf);  ///< leaves stay +inf forever
  std::vector<double> caps(n_ops, 0.0);

  std::vector<double> cpu_left;
  cpu_left.reserve(plan.cpu_budget_mops.size());
  std::vector<MegaBytes> card_left(plan.card_comm_budget.size(), 0.0);
  std::vector<MegaBytes> pair_left(plan.link_pair_budget.size(), 0.0);

  // Processors touched by crossing traffic: the only card budgets the
  // transfer phase reads, hence the only ones worth resetting per period.
  std::vector<int> active_procs;
  {
    std::vector<char> seen(plan.card_comm_budget.size(), 0);
    for (const auto& edge : plan.crossing) {
      for (int p : {edge.proc_u, edge.proc_v}) {
        if (!seen[static_cast<std::size_t>(p)]) {
          seen[static_cast<std::size_t>(p)] = 1;
          active_procs.push_back(p);
        }
      }
    }
  }

  // Pooled token storage: in_transit/next swap roles each period, so the
  // steady-state loop allocates nothing once their capacity settles.
  std::vector<Token> in_transit, next_transit;
  const std::size_t token_capacity =
      plan.crossing.size() *
      (static_cast<std::size_t>(plan.cfg.max_results_ahead) + 2);
  in_transit.reserve(token_capacity);
  next_transit.reserve(token_capacity);

  const int bound = plan.cfg.max_results_ahead;
  for (int period = 0; period < plan.cfg.periods; ++period) {
    if (period == plan.cfg.warmup) root_at_warmup = root_produced;

    // ---- Compute phase (start-of-period snapshot: one-period stage
    //      latency, matching the paper's pipelined execution model). -------
    // Inputs-ready bound per op: min over children of the frozen counter
    // the child feeds through (same-processor results via the snapshot,
    // crossing results via the child's lane into this processor).  Scalar
    // CSR pass; leaves keep +inf.
    for (std::size_t o = 0; o < n_ops; ++o) {
      const int kb = plan.child_start[o];
      const int ke = plan.child_start[o + 1];
      if (kb == ke) continue;
      double m = kInf;
      for (int k = kb; k < ke; ++k) {
        const int lane = plan.child_edge[static_cast<std::size_t>(k)];
        const double have =
            lane < 0
                ? computed_at_start[static_cast<std::size_t>(
                      plan.child_list[static_cast<std::size_t>(k)])]
                : delivered[static_cast<std::size_t>(lane)];
        m = have < m ? have : m;
      }
      in_cap[o] = m;
    }
    // Per-op cap: one result per period, backpressure toward the slowest
    // consumer, inputs ready.  Scalar over the out CSR (the retired
    // gather/blend kernel lost to this autovectorized form; see
    // docs/ROADMAP.md).
    {
      const double period_cap = static_cast<double>(period) + 1.0;
      const double dbound = static_cast<double>(bound);
      for (std::size_t o = 0; o < n_ops; ++o) {
        const int ob = plan.out_start[o];
        const int oe = plan.out_start[o + 1];
        double bp = kInf;
        for (int k = ob; k < oe; ++k) {
          const double cas = computed_at_start[static_cast<std::size_t>(
              plan.out_dst[static_cast<std::size_t>(k)])];
          bp = cas < bp ? cas : bp;
        }
        double cap = period_cap;
        const double bpb = bp + dbound;  // inf + bound == inf
        cap = bpb < cap ? bpb : cap;
        cap = in_cap[o] < cap ? in_cap[o] : cap;
        caps[o] = cap;
      }
    }
    cpu_left = plan.cpu_budget_mops;
    for (int op : plan.bottom_up) {
      const auto o = static_cast<std::size_t>(op);
      if (plan.starved[o]) continue;  // its basic object never arrives
      const auto u = static_cast<std::size_t>(plan.proc[o]);
      double& budget = cpu_left[u];
      const MegaOps w = plan.work[o];
      const double cap = caps[o];
      // Catch-up is allowed: an operator may complete several pending
      // results in one period if its CPU share and inputs permit.
      while (computed[o] < cap) {
        if (budget <= 0.0) break;
        // Partial progress carries across periods: a heavyweight operator
        // accumulates CPU over several periods instead of losing budget
        // remainders to fragmentation.
        double& done = progress[o];
        const double spend = std::min(w - done, budget);
        budget -= spend;
        done += spend;
        if (done < w - 1e-9) break;  // result not finished this period
        done = 0.0;
        if (computed[o] == computed_at_start[o]) dirty.push_back(op);
        computed[o] += 1.0;
        if (plan.root_index[o] >= 0) {
          ++root_produced[static_cast<std::size_t>(plan.root_index[o])];
          if (first_output_period < 0) first_output_period = period;
        } else {
          // One shipment per crossing lane: remote consumers sharing a
          // destination processor ride a single copy (lane volume is the
          // max delta among them).
          for (int e = plan.cross_start[o]; e < plan.cross_start[o + 1];
               ++e) {
            in_transit.push_back(
                Token{e, plan.crossing[static_cast<std::size_t>(e)].volume,
                      period + 1});
          }
        }
        // Co-located consumers see the result next period via
        // computed_at_start[]; nothing to enqueue.
      }
    }

    // ---- Transfer phase: FIFO over tokens, budgets on sender card,
    //      receiver card, and the pairwise link (bounded multi-port). ------
    for (int p : active_procs) {
      card_left[static_cast<std::size_t>(p)] =
          plan.card_comm_budget[static_cast<std::size_t>(p)];
    }
    pair_left = plan.link_pair_budget;
    next_transit.clear();
    for (Token& token : in_transit) {
      if (token.eligible_period > period) {
        next_transit.push_back(token);
        continue;
      }
      const auto& edge = plan.crossing[static_cast<std::size_t>(token.edge)];
      MegaBytes& su = card_left[static_cast<std::size_t>(edge.proc_u)];
      MegaBytes& sv = card_left[static_cast<std::size_t>(edge.proc_v)];
      MegaBytes& sl = pair_left[static_cast<std::size_t>(edge.pair_index)];
      const MegaBytes amount = std::min({token.remaining, su, sv, sl});
      if (amount > 0.0) {
        token.remaining -= amount;
        su -= amount;
        sv -= amount;
        sl -= amount;
      }
      if (token.remaining <= 1e-9) {
        // Delivered: usable by the lane's consumers from the next period on
        // (the delivered[] counter is only read in the next compute phase).
        delivered[static_cast<std::size_t>(token.edge)] += 1.0;
      } else {
        next_transit.push_back(token);
      }
    }
    std::swap(in_transit, next_transit);

    // ---- End of period: fold this period's completions into the
    //      start-of-next-period snapshot (dirty list, not a full copy). ----
    for (int op : dirty) {
      computed_at_start[static_cast<std::size_t>(op)] =
          computed[static_cast<std::size_t>(op)];
    }
    dirty.clear();
  }

  return simdetail::finalize_result(problem, plan, root_produced,
                                    root_at_warmup, first_output_period);
}

} // namespace

EventSimResult simulate_allocation(const Problem& problem,
                                   const Allocation& alloc,
                                   const EventSimConfig& config) {
  return simulate_allocation(problem, alloc,
                             SimPlatformView::uniform(*problem.platform),
                             config);
}

EventSimResult simulate_allocation(const Problem& problem,
                                   const Allocation& alloc,
                                   const SimPlatformView& view,
                                   const EventSimConfig& config) {
  const SimStaticPlan plan =
      simdetail::build_sim_plan(problem, alloc, view, config);
  return run_sparse(problem, plan);
}

} // namespace insp
