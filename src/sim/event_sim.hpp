// Discrete-event validation of an allocation: simulates the paper's
// pipelined steady-state execution (each processor concurrently computes
// result t, sends intermediate results for t-1 and receives inputs for t+1,
// §2.3) with explicit per-period CPU budgets, card budgets and link budgets,
// token queues on every crossing edge, and backpressure.
//
// If the allocation truly sustains the target throughput rho, the simulated
// output settles at one result per period with pipeline latency equal to
// the processor-level pipeline depth; if some resource is over-subscribed,
// tokens back up and the measured output rate drops below rho — giving an
// executable cross-check of the closed-form flow analysis.
//
// Two interchangeable cores implement these semantics:
//
//   simulate_allocation        — the sparse pre-indexed core (DESIGN.md §8):
//                                crossing edges, link budgets and processor
//                                schedules are indexed once up front and the
//                                steady-state period loop does no heap
//                                allocation;
//   simulate_allocation_dense_reference
//                              — the seed-era dense implementation (full
//                                n_procs x n_procs link matrix rebuilt every
//                                period, full-vector snapshots, node-by-node
//                                tree walks), kept compiled-in as the oracle
//                                for the differential test suite and the
//                                baseline for bench_sim_speed.
//
// Both cores must produce bit-identical results for every input
// (tests/sim/sim_differential_test.cpp enforces this).
#pragma once

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "sim/sim_platform_view.hpp"

namespace insp {

struct EventSimConfig {
  int periods = 400;  ///< simulated periods (period = 1/rho seconds)
  /// Periods excluded from the throughput measurement.  -1 (default) derives
  /// the warmup from the allocation's pipeline fill time — a crossing edge
  /// adds ~2 periods of latency, a co-located edge 1 — so deep pipelines are
  /// measured only after their first result can possibly appear.  A fixed
  /// value is honored as given; warmup >= periods is flagged degenerate and
  /// measured as warmup 0, and anything below -1 is flagged degenerate and
  /// auto-derived.
  int warmup_periods = -1;
  /// Bounded buffers: an operator may compute at most this many results
  /// beyond what its parent has consumed, so upstream operators cannot
  /// starve downstream ones of shared CPU when a resource is
  /// over-subscribed.  0 (default) derives the bound from the allocation's
  /// crossing-edge pipeline depth: a crossing hop has ~3 periods of
  /// compute/transfer/consume latency, plus slack that grows with the
  /// depth of the crossing pipeline to absorb FIFO transfer jitter.
  /// Negative values are flagged degenerate and auto-derived.
  int max_results_ahead = 0;
  /// The sustained verdict's tolerance: sustained iff the measured
  /// throughput reaches this fraction of the target rho.
  double sustained_fraction = 0.99;
};

struct EventSimResult {
  /// Results produced per second, measured after warmup.
  double achieved_throughput = 0.0;
  long long results_produced = 0;
  /// Period index at which the first final result appeared (-1: none).
  int first_output_period = -1;
  /// True when the achieved throughput reached the target (within the
  /// configured sustained_fraction).
  bool sustained = false;
  /// The config could not be honored as given: non-positive periods, an
  /// explicit warmup outside [0, periods), an allocation with unassigned
  /// operators, or a pipeline too deep to fill and measure within the
  /// configured periods.  The result is still computed over the clamped
  /// window but should not be trusted as a steady-state verdict.
  bool degenerate_config = false;
  /// The values actually used after auto-derivation/clamping.
  int warmup_periods_used = 0;
  int max_results_ahead_used = 0;
};

/// Sparse core, healthy platform (every server up, uniform links).
EventSimResult simulate_allocation(const Problem& problem,
                                   const Allocation& alloc,
                                   const EventSimConfig& config = {});

/// Sparse core against a degraded platform view (failed servers,
/// per-pair link bandwidths) — what scenario replay uses.
EventSimResult simulate_allocation(const Problem& problem,
                                   const Allocation& alloc,
                                   const SimPlatformView& view,
                                   const EventSimConfig& config = {});

/// Dense reference implementation (differential oracle + bench baseline).
EventSimResult simulate_allocation_dense_reference(
    const Problem& problem, const Allocation& alloc,
    const SimPlatformView& view, const EventSimConfig& config = {});

} // namespace insp
