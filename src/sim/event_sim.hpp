// Discrete-event validation of an allocation: simulates the paper's
// pipelined steady-state execution (each processor concurrently computes
// result t, sends intermediate results for t-1 and receives inputs for t+1,
// §2.3) with explicit per-period CPU budgets, card budgets and link budgets,
// token queues on every crossing edge, and backpressure.
//
// If the allocation truly sustains the target throughput rho, the simulated
// output settles at one result per period with pipeline latency equal to
// the processor-level pipeline depth; if some resource is over-subscribed,
// tokens back up and the measured output rate drops below rho — giving an
// executable cross-check of the closed-form flow analysis.
#pragma once

#include "core/allocation.hpp"
#include "core/problem.hpp"

namespace insp {

struct EventSimConfig {
  int periods = 400;        ///< simulated periods (period = 1/rho seconds)
  int warmup_periods = 100; ///< excluded from the throughput measurement
  /// Bounded buffers: an operator may compute at most this many results
  /// beyond what its parent has consumed.  Prevents upstream operators from
  /// starving downstream ones of shared CPU when a resource is
  /// over-subscribed.  Must exceed the per-hop pipeline latency (a crossing
  /// edge takes ~3 periods: compute, transfer, consume) or valid plans are
  /// throttled; 4 keeps the pipeline full with bounded queues.
  int max_results_ahead = 4;
};

struct EventSimResult {
  /// Results produced per second, measured after warmup.
  double achieved_throughput = 0.0;
  long long results_produced = 0;
  /// Period index at which the first final result appeared (-1: none).
  int first_output_period = -1;
  /// True when the achieved throughput reached the target (within 1%).
  bool sustained = false;
};

EventSimResult simulate_allocation(const Problem& problem,
                                   const Allocation& alloc,
                                   const EventSimConfig& config = {});

} // namespace insp
