// Dense reference implementation of the event simulator: the seed-era data
// layout, kept compiled-in as the oracle for the differential test suite
// (tests/sim/sim_differential_test.cpp) and the baseline bench_sim_speed
// measures the sparse core against.
//
// It deliberately preserves the seed's per-period costs — a full
// n_procs x n_procs link-budget matrix assigned every period, a full
// computed[] snapshot copy, deque-based token queues, tree-node accessor
// walks — while sharing every piece of *semantics* (resolved config, per
// period budgets, down-route starvation, the measurement tail) with the
// sparse core through sim/event_sim_internal.hpp.  The differential suite
// requires the two cores to agree bit-exactly.
#include <algorithm>
#include <deque>
#include <vector>

#include "sim/event_sim.hpp"
#include "sim/event_sim_internal.hpp"

namespace insp {

namespace {

/// One intermediate result in transit over a crossing lane.
struct DenseToken {
  int edge;             ///< index into plan.crossing
  MegaBytes remaining;  ///< MB still to transfer
  int eligible_period;  ///< pipelining: send starts the period after compute
};

} // namespace

EventSimResult simulate_allocation_dense_reference(
    const Problem& problem, const Allocation& alloc,
    const SimPlatformView& view, const EventSimConfig& config) {
  const simdetail::SimStaticPlan plan =
      simdetail::build_sim_plan(problem, alloc, view, config);
  const OperatorTree& tree = *problem.tree;
  const auto n_ops = static_cast<std::size_t>(plan.n_ops);
  const auto n_procs = static_cast<std::size_t>(plan.n_procs);

  if (plan.cfg.periods <= 0 || plan.unassigned_ops) {
    return simdetail::finalize_result(problem, plan, {}, {}, -1);
  }

  const auto bottom_up = tree.bottom_up_order();
  std::vector<long long> computed(n_ops, 0);
  std::vector<long long> delivered(plan.crossing.size(), 0);  ///< per lane
  std::vector<double> progress(n_ops, 0.0);
  std::deque<DenseToken> in_transit;

  const std::size_t n_roots = tree.roots().size();
  std::vector<long long> root_produced(n_roots, 0);
  std::vector<long long> root_at_warmup(n_roots, 0);
  int first_output_period = -1;

  const int bound = plan.cfg.max_results_ahead;
  for (int period = 0; period < plan.cfg.periods; ++period) {
    if (period == plan.cfg.warmup) root_at_warmup = root_produced;

    // ---- Compute phase: full snapshot copy every period. -----------------
    const std::vector<long long> computed_at_start = computed;
    std::vector<double> cpu_left = plan.cpu_budget_mops;
    for (int op : bottom_up) {
      if (plan.starved[static_cast<std::size_t>(op)]) continue;
      const int u = alloc.op_to_proc[static_cast<std::size_t>(op)];
      double& budget = cpu_left[static_cast<std::size_t>(u)];
      const MegaOps w = tree.op(op).work;
      for (;;) {
        const long long r = computed[static_cast<std::size_t>(op)];
        if (r > period) break;  // basic objects update once per period
        // Backpressure toward the slowest consumer (the single parent on
        // trees).
        bool throttled = false;
        for (const OutEdge& e : tree.op(op).out) {
          if (r >= computed_at_start[static_cast<std::size_t>(e.dst)] +
                       bound) {
            throttled = true;
            break;
          }
        }
        if (throttled) break;
        bool inputs_ready = true;
        const int kb = plan.child_start[static_cast<std::size_t>(op)];
        for (std::size_t ci = 0; ci < tree.op(op).children.size(); ++ci) {
          const int c = tree.op(op).children[ci];
          const int lane =
              plan.child_edge[static_cast<std::size_t>(kb) + ci];
          const long long have =
              lane < 0 ? computed_at_start[static_cast<std::size_t>(c)]
                       : delivered[static_cast<std::size_t>(lane)];
          if (have < r + 1) {
            inputs_ready = false;
            break;
          }
        }
        if (!inputs_ready || budget <= 0.0) break;
        double& done = progress[static_cast<std::size_t>(op)];
        const double spend = std::min(w - done, budget);
        budget -= spend;
        done += spend;
        if (done < w - 1e-9) break;
        done = 0.0;
        ++computed[static_cast<std::size_t>(op)];
        const int root_idx = plan.root_index[static_cast<std::size_t>(op)];
        if (root_idx >= 0) {
          ++root_produced[static_cast<std::size_t>(root_idx)];
          if (first_output_period < 0) first_output_period = period;
        } else {
          // One shipment per crossing lane (remote consumers sharing a
          // destination processor ride one copy).
          for (int e = plan.cross_start[static_cast<std::size_t>(op)];
               e < plan.cross_start[static_cast<std::size_t>(op) + 1];
               ++e) {
            in_transit.push_back(DenseToken{
                e, plan.crossing[static_cast<std::size_t>(e)].volume,
                period + 1});
          }
        }
      }
    }

    // ---- Transfer phase: dense pairwise budget matrix, rebuilt every
    //      period (the allocation churn the sparse core eliminates). -------
    std::vector<MegaBytes> card_left = plan.card_comm_budget;
    std::vector<std::vector<MegaBytes>> link_left;
    link_left.assign(
        n_procs,
        std::vector<MegaBytes>(n_procs, view.default_link_bandwidth() *
                                            plan.period_s));
    for (const auto& edge : plan.crossing) {
      link_left[static_cast<std::size_t>(std::min(edge.proc_u, edge.proc_v))]
               [static_cast<std::size_t>(std::max(edge.proc_u, edge.proc_v))] =
          plan.link_pair_budget[static_cast<std::size_t>(edge.pair_index)];
    }
    std::deque<DenseToken> still;
    for (DenseToken& token : in_transit) {
      if (token.eligible_period > period) {
        still.push_back(token);
        continue;
      }
      const auto& edge = plan.crossing[static_cast<std::size_t>(token.edge)];
      const int u = edge.proc_u;
      const int v = edge.proc_v;
      MegaBytes& su = card_left[static_cast<std::size_t>(u)];
      MegaBytes& sv = card_left[static_cast<std::size_t>(v)];
      MegaBytes& sl = link_left[static_cast<std::size_t>(std::min(u, v))]
                               [static_cast<std::size_t>(std::max(u, v))];
      const MegaBytes amount = std::min({token.remaining, su, sv, sl});
      if (amount > 0.0) {
        token.remaining -= amount;
        su -= amount;
        sv -= amount;
        sl -= amount;
      }
      if (token.remaining <= 1e-9) {
        ++delivered[static_cast<std::size_t>(token.edge)];
      } else {
        still.push_back(token);
      }
    }
    in_transit = std::move(still);
  }

  return simdetail::finalize_result(problem, plan, root_produced,
                                    root_at_warmup, first_output_period);
}

} // namespace insp
