// Shared setup for the two event-simulator cores (sparse and dense
// reference).  Everything that influences the *semantics* of a simulation —
// resolved config, per-period budgets, starvation from down download
// routes, crossing-edge discovery — is computed here exactly once, so the
// cores can only differ in data layout and per-period mechanics, never in
// the verdict.  Internal header: included by src/sim/*.cpp only.
#pragma once

#include <vector>

#include "core/allocation.hpp"
#include "core/problem.hpp"
#include "sim/event_sim.hpp"

namespace insp::simdetail {

/// EventSimConfig after auto-derivation and clamping (see the config's
/// field comments for the rules).
struct ResolvedSimConfig {
  int periods = 0;
  int warmup = 0;
  int max_results_ahead = 0;
  double sustained_fraction = 0.99;
  bool degenerate = false;
};

/// One crossing shipment lane: a producer whose result must reach a distinct
/// remote destination processor.  With the DAG model a producer feeding
/// several consumers on one remote processor ships a single copy there
/// (multicast dedup, docs/DESIGN.md §13), so lanes are keyed by
/// (producer, destination processor) — on trees exactly the child->parent
/// edge with child and parent on different processors.
struct CrossingEdge {
  int child_op = -1;
  int proc_u = -1;      ///< sender (producer side)
  int proc_v = -1;      ///< receiver (destination processor)
  int pair_index = -1;  ///< index into link_pair_budget
  MegaBytes volume = 0.0;  ///< max out-edge delta into proc_v
};

/// Everything both cores precompute before the period loop.
struct SimStaticPlan {
  ResolvedSimConfig cfg;
  double period_s = 0.0;
  int n_ops = 0;
  int n_procs = 0;
  /// True when some operator is unassigned — nothing can be simulated; the
  /// caller returns a degenerate all-zero result.
  bool unassigned_ops = false;

  std::vector<int> bottom_up;          ///< op ids, children before parents

  // Per-operator flat tables (indexed by op id) — the sparse core's period
  // loop never touches an OperatorNode.
  std::vector<int> proc;               ///< op -> processor
  std::vector<double> work;            ///< w_i, Mops
  std::vector<int> root_index;         ///< position in tree.roots(), -1 else
  std::vector<char> starved;           ///< needs a type routed via a down server
  /// Consumers (out-edge destinations) of each op in CSR form, declaration
  /// order preserved — the single parent on trees.
  std::vector<int> out_start;          ///< size n_ops + 1
  std::vector<int> out_dst;
  /// Crossing lanes of producer op are the contiguous range
  /// crossing[cross_start[op] .. cross_start[op+1]).
  std::vector<int> cross_start;        ///< size n_ops + 1
  /// Children of each op in CSR form (tree order preserved).
  std::vector<int> child_start;        ///< size n_ops + 1
  std::vector<int> child_list;
  /// Parallel to child_list: index into `crossing` of the lane that feeds
  /// this consumer from that child, or -1 when co-located.
  std::vector<int> child_edge;

  // Per-processor budgets, already scaled to one period.
  std::vector<double> cpu_budget_mops;
  std::vector<MegaBytes> card_comm_budget;

  // Crossing edges and the distinct processor pairs they use.
  std::vector<CrossingEdge> crossing;
  std::vector<MegaBytes> link_pair_budget;  ///< per distinct pair, per period

  // Pipeline depths (periods of latency accumulated on the path to the
  // op's root): fill_depth counts crossing edges as 2 and co-located edges
  // as 1; crossing_depth counts crossing edges only.
  int fill_depth = 0;
  int crossing_depth = 0;
};

/// Builds the plan: budgets, crossing edges, starvation, depth, and the
/// resolved config (which needs the depths for auto-derivation).
SimStaticPlan build_sim_plan(const Problem& problem, const Allocation& alloc,
                             const SimPlatformView& view,
                             const EventSimConfig& config);

/// The shared measurement tail: both cores feed the same per-root counters
/// through this, so the throughput figure and the sustained verdict are
/// computed by one piece of code.
inline EventSimResult finalize_result(
    const Problem& problem, const SimStaticPlan& plan,
    const std::vector<long long>& root_produced,
    const std::vector<long long>& root_produced_at_warmup,
    int first_output_period) {
  EventSimResult out;
  out.degenerate_config = plan.cfg.degenerate;
  out.warmup_periods_used = plan.cfg.warmup;
  out.max_results_ahead_used = plan.cfg.max_results_ahead;
  out.first_output_period = first_output_period;
  if (plan.cfg.periods <= 0 || root_produced.empty()) return out;
  const int measured = std::max(1, plan.cfg.periods - plan.cfg.warmup);
  long long min_after_warmup = -1;
  long long total = 0;
  for (std::size_t r = 0; r < root_produced.size(); ++r) {
    // Forests (multi-application): final results are counted at every
    // root; the reported throughput is the slowest root's (each
    // application must meet the common folded target).
    const long long after = root_produced[r] - root_produced_at_warmup[r];
    total += root_produced[r];
    if (min_after_warmup < 0 || after < min_after_warmup) {
      min_after_warmup = after;
    }
  }
  out.results_produced = total;
  out.achieved_throughput = static_cast<double>(std::max<long long>(
                                0, min_after_warmup)) /
                            (static_cast<double>(measured) * plan.period_s);
  out.sustained = out.achieved_throughput >=
                  problem.rho * plan.cfg.sustained_fraction;
  return out;
}

} // namespace insp::simdetail
