#include "sim/flow_analyzer.hpp"

#include <limits>
#include <map>
#include <sstream>

namespace insp {

const char* to_string(BottleneckKind kind) {
  switch (kind) {
    case BottleneckKind::None: return "none";
    case BottleneckKind::ProcessorCpu: return "processor-cpu";
    case BottleneckKind::ProcessorNic: return "processor-nic";
    case BottleneckKind::ServerCard: return "server-card";
    case BottleneckKind::ServerProcLink: return "server-proc-link";
    case BottleneckKind::ProcProcLink: return "proc-proc-link";
    case BottleneckKind::InfeasibleDownloads: return "infeasible-downloads";
  }
  return "?";
}

namespace {

struct Constraint {
  MBps fixed = 0.0;    ///< download share (rho-independent)
  double linear = 0.0; ///< per-rho share (work in Mops, or MB of traffic)
  double capacity = 0.0;
  BottleneckKind kind = BottleneckKind::None;
  std::string detail;
};

} // namespace

FlowAnalysis analyze_flow(const Problem& problem, const Allocation& alloc) {
  const OperatorTree& tree = *problem.tree;
  const Platform& plat = *problem.platform;
  const PriceCatalog& cat = *problem.catalog;

  std::vector<Constraint> constraints;

  // Per-processor CPU and NIC.  compute_processor_loads folds rho into its
  // outputs, so divide it back out to recover the linear coefficients.
  Problem at_unit_rho = problem;
  at_unit_rho.rho = 1.0;
  const auto loads = compute_processor_loads(at_unit_rho, alloc);
  for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
    const auto& cfg = alloc.processors[u].config;
    {
      Constraint c;
      c.linear = loads[u].cpu_demand;  // sum of w_i
      c.capacity = cat.speed(cfg);
      c.kind = BottleneckKind::ProcessorCpu;
      c.detail = "P" + std::to_string(u) + " CPU";
      constraints.push_back(std::move(c));
    }
    {
      Constraint c;
      c.fixed = loads[u].download;
      c.linear = loads[u].comm_in + loads[u].comm_out;
      c.capacity = cat.bandwidth(cfg);
      c.kind = BottleneckKind::ProcessorNic;
      c.detail = "P" + std::to_string(u) + " NIC";
      constraints.push_back(std::move(c));
    }
  }

  // Server cards and server->processor links: download-only (fixed share).
  {
    std::vector<MBps> card(static_cast<std::size_t>(plat.num_servers()), 0.0);
    std::map<std::pair<int, int>, MBps> link;
    for (std::size_t u = 0; u < alloc.processors.size(); ++u) {
      for (const auto& dl : alloc.processors[u].downloads) {
        const MBps r = tree.catalog().type(dl.object_type).rate();
        card[static_cast<std::size_t>(dl.server)] += r;
        link[{dl.server, static_cast<int>(u)}] += r;
      }
    }
    for (int l = 0; l < plat.num_servers(); ++l) {
      Constraint c;
      c.fixed = card[static_cast<std::size_t>(l)];
      c.capacity = plat.server(l).card_bandwidth;
      c.kind = BottleneckKind::ServerCard;
      c.detail = "S" + std::to_string(l) + " card";
      constraints.push_back(std::move(c));
    }
    for (const auto& [key, load] : link) {
      Constraint c;
      c.fixed = load;
      c.capacity = plat.link_server_proc();
      c.kind = BottleneckKind::ServerProcLink;
      c.detail = "link S" + std::to_string(key.first) + "->P" +
                 std::to_string(key.second);
      constraints.push_back(std::move(c));
    }
  }

  // Processor<->processor links: linear in rho.
  {
    // One shipment per (producer, distinct destination processor) at the max
    // out-edge delta (multicast dedup, docs/DESIGN.md §13) — the lone
    // child->parent edge on trees.
    std::map<std::pair<int, int>, MegaBytes> link;
    for (const auto& n : tree.operators()) {
      const int uc = alloc.op_to_proc[static_cast<std::size_t>(n.id)];
      if (uc == kNoNode) continue;
      for (std::size_t a = 0; a < n.out.size(); ++a) {
        const int up = alloc.op_to_proc[static_cast<std::size_t>(n.out[a].dst)];
        if (up == kNoNode || up == uc) continue;
        bool first = true;
        for (std::size_t b = 0; b < a; ++b) {
          if (alloc.op_to_proc[static_cast<std::size_t>(n.out[b].dst)] == up) {
            first = false;
            break;
          }
        }
        if (!first) continue;
        MegaBytes mx = n.out[a].delta;
        for (std::size_t b = a + 1; b < n.out.size(); ++b) {
          if (alloc.op_to_proc[static_cast<std::size_t>(n.out[b].dst)] == up) {
            mx = std::max(mx, n.out[b].delta);
          }
        }
        link[{std::min(uc, up), std::max(uc, up)}] += mx;
      }
    }
    for (const auto& [key, volume] : link) {
      Constraint c;
      c.linear = volume;
      c.capacity = plat.link_proc_proc();
      c.kind = BottleneckKind::ProcProcLink;
      c.detail = "link P" + std::to_string(key.first) + "<->P" +
                 std::to_string(key.second);
      constraints.push_back(std::move(c));
    }
  }

  FlowAnalysis out;
  out.downloads_feasible = true;
  out.max_throughput = std::numeric_limits<double>::infinity();
  for (const auto& c : constraints) {
    if (!fits_within(c.fixed, c.capacity)) {
      out.downloads_feasible = false;
      out.max_throughput = 0.0;
      out.bottleneck = BottleneckKind::InfeasibleDownloads;
      out.bottleneck_detail = c.detail;
      return out;
    }
    if (c.linear <= 0.0) continue;
    const double limit = (c.capacity - c.fixed) / c.linear;
    if (limit < out.max_throughput) {
      out.max_throughput = limit;
      out.bottleneck = c.kind;
      out.bottleneck_detail = c.detail;
    }
  }
  return out;
}

} // namespace insp
