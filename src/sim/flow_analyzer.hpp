// Steady-state fluid analysis of a finished allocation under the
// full-overlap bounded multi-port model: computes the *maximum sustainable
// application throughput* rho* and names the bottleneck resource.
//
// Downloads are QoS-driven (rate_k = delta_k * f_k, independent of rho), so
// they consume a fixed share of every card/link they traverse; compute and
// inter-operator traffic scale linearly with rho.  For each resource R with
// fixed share F_R and linear share L_R * rho and capacity C_R:
//     rho <= (C_R - F_R) / L_R        (L_R > 0)
//     feasible iff F_R <= C_R         (L_R == 0)
// rho* is the minimum over all resources; an allocation satisfies the
// paper's constraints (1)-(5) at rho exactly when rho* >= rho — a property
// the test suite checks against the independent constraint checker.
#pragma once

#include <string>

#include "core/allocation.hpp"
#include "core/problem.hpp"

namespace insp {

enum class BottleneckKind {
  None,            ///< unbounded (no resource constrains throughput)
  ProcessorCpu,
  ProcessorNic,
  ServerCard,
  ServerProcLink,
  ProcProcLink,
  InfeasibleDownloads,  ///< fixed download demand alone exceeds a capacity
};

const char* to_string(BottleneckKind kind);

struct FlowAnalysis {
  /// Max sustainable throughput; 0 when downloads alone are infeasible;
  /// +infinity when nothing constrains rho (single processor, no comm,
  /// never the case with real catalogs since CPU always binds).
  double max_throughput = 0.0;
  BottleneckKind bottleneck = BottleneckKind::None;
  /// Human-readable bottleneck, e.g. "P2 NIC" or "link S1->P0".
  std::string bottleneck_detail;
  bool downloads_feasible = false;
};

FlowAnalysis analyze_flow(const Problem& problem, const Allocation& alloc);

} // namespace insp
