#include "sim/sim_platform_view.hpp"

#include <algorithm>
#include <cassert>

namespace insp {

SimPlatformView SimPlatformView::uniform(const Platform& platform) {
  SimPlatformView view;
  view.default_link_pp_ = platform.link_proc_proc();
  view.server_up_.assign(static_cast<std::size_t>(platform.num_servers()), 1);
  return view;
}

SimPlatformView SimPlatformView::degraded(const Platform& platform,
                                          const std::vector<bool>& server_up) {
  SimPlatformView view = uniform(platform);
  for (std::size_t s = 0; s < server_up.size(); ++s) {
    if (!server_up[s]) view.set_server_up(static_cast<int>(s), false);
  }
  return view;
}

void SimPlatformView::set_server_up(int server, bool up) {
  assert(server >= 0);
  const auto s = static_cast<std::size_t>(server);
  if (s >= server_up_.size()) server_up_.resize(s + 1, 1);
  server_up_[s] = up ? 1 : 0;
}

void SimPlatformView::set_link_bandwidth(int proc_u, int proc_v, MBps bw) {
  assert(proc_u >= 0 && proc_v >= 0 && proc_u != proc_v);
  const std::pair<int, int> key{std::min(proc_u, proc_v),
                                std::max(proc_u, proc_v)};
  const auto it = std::lower_bound(
      link_overrides_.begin(), link_overrides_.end(), key,
      [](const auto& entry, const auto& k) { return entry.first < k; });
  if (it != link_overrides_.end() && it->first == key) {
    it->second = bw;
  } else {
    link_overrides_.insert(it, {key, bw});
  }
}

void SimPlatformView::scale_links(double factor) {
  assert(factor > 0.0);
  default_link_pp_ *= factor;
  for (auto& entry : link_overrides_) entry.second *= factor;
}

MBps SimPlatformView::link_bandwidth(int proc_u, int proc_v) const {
  const std::pair<int, int> key{std::min(proc_u, proc_v),
                                std::max(proc_u, proc_v)};
  const auto it = std::lower_bound(
      link_overrides_.begin(), link_overrides_.end(), key,
      [](const auto& entry, const auto& k) { return entry.first < k; });
  if (it != link_overrides_.end() && it->first == key) return it->second;
  return default_link_pp_;
}

} // namespace insp
