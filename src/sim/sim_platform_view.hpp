// The platform as the event simulator should see it.  A Problem's Platform
// describes the *healthy* world with one uniform processor<->processor link
// bandwidth; the dynamic layer (src/dynamic/) degrades that world — servers
// fail, and operators can find themselves on opposite sides of a slow pair
// link.  SimPlatformView is the self-contained snapshot of those degradations
// that travels with a simulation request:
//
//   - server_up flags: a download route that points at a down server delivers
//     nothing, so the operators needing that object type starve (and the
//     route's rate stops occupying the processor card);
//   - per-pair link overrides: heterogeneous bandwidth for specific
//     processor pairs on top of the platform's uniform default.
//
// The view is plain data (no pointers into Platform), so scenario snapshots
// can be simulated in worker threads long after the live world moved on.
#pragma once

#include <utility>
#include <vector>

#include "platform/platform.hpp"
#include "util/units.hpp"

namespace insp {

class SimPlatformView {
 public:
  SimPlatformView() = default;

  /// Healthy view of a platform: every server up, every processor pair at
  /// the uniform link_proc_proc() bandwidth.
  static SimPlatformView uniform(const Platform& platform);

  /// Degraded view: uniform() with the servers whose `server_up` flag is
  /// false marked down.  Flags are indexed by server id; ids beyond the
  /// vector are up.  This covers both true failures and partitions ("links
  /// down, servers up"): an unreachable server delivers nothing to any
  /// processor, which is all the simulator can observe about it.  Shared by
  /// the scenario engine and the health monitor so oracle-driven and
  /// detector-driven replays validate against identical views.
  static SimPlatformView degraded(const Platform& platform,
                                  const std::vector<bool>& server_up);

  MBps default_link_bandwidth() const { return default_link_pp_; }

  /// Marks a server up/down.  Grows the flag set on demand, so a view built
  /// with uniform() accepts any valid server id.
  void set_server_up(int server, bool up);
  /// Servers never marked down are up (an empty view fails nothing).
  bool server_is_up(int server) const {
    const auto s = static_cast<std::size_t>(server);
    return s >= server_up_.size() || server_up_[s] != 0;
  }

  /// Overrides the bandwidth of the unordered processor pair {u, v}.
  void set_link_bandwidth(int proc_u, int proc_v, MBps bw);
  /// Pair bandwidth: the override if one was set, else the uniform default.
  MBps link_bandwidth(int proc_u, int proc_v) const;

  /// Brownout view: scales the uniform default and every per-pair override
  /// by `factor` (factor < 1 slows the interconnect, e.g. a congested
  /// fabric during a slow-node brownout).  Requires factor > 0.
  void scale_links(double factor);

 private:
  MBps default_link_pp_ = 0.0;
  std::vector<char> server_up_;  ///< empty slot/short vector == up
  /// Sorted by pair key (min, max); binary-searched.  Looked up once per
  /// crossing edge at simulation setup, never in the period loop.
  std::vector<std::pair<std::pair<int, int>, MBps>> link_overrides_;
};

} // namespace insp
