// Basic objects: the continuously-updated data items at the leaves of the
// operator tree (paper §2.1).  An *object type* is a distinct basic object
// (o_k); several tree leaves may reference the same type, and a type may be
// replicated on several data servers.
#pragma once

#include <cassert>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace insp {

struct ObjectType {
  int id = -1;
  MegaBytes size_mb = 0.0;  ///< delta_k
  Hertz freq_hz = 0.0;      ///< f_k, download frequency

  /// rate_k = delta_k * f_k: bandwidth consumed on every link/card the
  /// object is streamed through (paper §2.1).
  MBps rate() const { return size_mb * freq_hz; }
};

/// The set of distinct basic-object types available in one experiment.
class ObjectCatalog {
 public:
  ObjectCatalog() = default;
  explicit ObjectCatalog(std::vector<ObjectType> types)
      : types_(std::move(types)) {
    for (std::size_t i = 0; i < types_.size(); ++i) {
      assert(types_[i].id == static_cast<int>(i));
    }
  }

  /// Paper setup: `count` types with sizes drawn uniformly from
  /// [size_lo, size_hi] MB and a common download frequency.
  static ObjectCatalog random(Rng& rng, int count, MegaBytes size_lo,
                              MegaBytes size_hi, Hertz freq);

  int count() const { return static_cast<int>(types_.size()); }
  const ObjectType& type(int id) const {
    assert(id >= 0 && id < count());
    return types_[static_cast<std::size_t>(id)];
  }
  const std::vector<ObjectType>& all() const { return types_; }

  /// Uniformly rescale all download frequencies (frequency-sweep study).
  void set_frequency(Hertz freq) {
    for (auto& t : types_) t.freq_hz = freq;
  }

  /// Change one type's update frequency (dynamic object-rate events).
  void set_type_frequency(int id, Hertz freq) {
    assert(id >= 0 && id < count());
    types_[static_cast<std::size_t>(id)].freq_hz = freq;
  }

 private:
  std::vector<ObjectType> types_;
};

inline ObjectCatalog ObjectCatalog::random(Rng& rng, int count,
                                           MegaBytes size_lo,
                                           MegaBytes size_hi, Hertz freq) {
  assert(count > 0 && size_lo > 0 && size_hi >= size_lo && freq > 0);
  std::vector<ObjectType> types;
  types.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    types.push_back(ObjectType{i, rng.uniform_real(size_lo, size_hi), freq});
  }
  return ObjectCatalog(std::move(types));
}

} // namespace insp
