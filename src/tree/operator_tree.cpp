#include "tree/operator_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace insp {

OperatorDag::OperatorDag(std::vector<OperatorNode> ops,
                         std::vector<LeafRef> leaves, int root,
                         ObjectCatalog catalog)
    : OperatorDag(std::move(ops), std::move(leaves), std::vector<int>{root},
                  std::move(catalog)) {}

OperatorDag::OperatorDag(std::vector<OperatorNode> ops,
                         std::vector<LeafRef> leaves, std::vector<int> roots,
                         ObjectCatalog catalog)
    : ops_(std::move(ops)),
      leaves_(std::move(leaves)),
      roots_(std::move(roots)),
      catalog_(std::move(catalog)) {}

bool OperatorDag::is_tree_shaped() const {
  for (const auto& n : ops_) {
    if (n.out.size() > 1) return false;
  }
  return true;
}

int OperatorDag::num_edges() const {
  int total = 0;
  for (const auto& n : ops_) total += static_cast<int>(n.out.size());
  return total;
}

std::vector<int> OperatorDag::object_types_of(int i) const {
  std::vector<int> types;
  for (int l : op(i).leaves) {
    const int t = leaf(l).object_type;
    if (std::find(types.begin(), types.end(), t) == types.end()) {
      types.push_back(t);
    }
  }
  return types;
}

std::vector<int> OperatorDag::al_operators() const {
  std::vector<int> out;
  for (const auto& n : ops_) {
    if (n.is_al_operator()) out.push_back(n.id);
  }
  return out;
}

std::vector<int> OperatorDag::top_down_order() const {
  // Kahn's algorithm seeded with the declared roots, scanning the order list
  // itself as the FIFO.  A node is appended once all its consumers are in the
  // order.  On a tree every operator has at most one consumer, so each child
  // is appended the moment its parent is scanned — exactly the historical BFS.
  std::vector<int> pending(ops_.size(), 0);
  for (const auto& n : ops_) {
    pending[static_cast<std::size_t>(n.id)] = static_cast<int>(n.out.size());
  }
  std::vector<int> order;
  order.reserve(ops_.size());
  for (int r : roots_) {
    if (r != kNoNode) order.push_back(r);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (int c : op(order[i]).children) {
      if (--pending[static_cast<std::size_t>(c)] == 0) order.push_back(c);
    }
  }
  return order;
}

std::vector<int> OperatorDag::bottom_up_order() const {
  std::vector<int> order = top_down_order();
  std::reverse(order.begin(), order.end());
  return order;
}

void OperatorDag::compute_work_and_outputs(double alpha, double work_scale) {
  for (int i : bottom_up_order()) {
    auto& n = ops_[static_cast<std::size_t>(i)];
    MegaBytes mass = 0.0;
    for (int l : n.leaves) {
      mass += catalog_.type(leaf(l).object_type).size_mb;
    }
    for (int c : n.children) {
      mass += op(c).output_mb;
    }
    n.output_mb = mass;
    n.work = work_scale * std::pow(mass, alpha);
    for (OutEdge& e : n.out) e.delta = mass;
  }
}

std::optional<std::string> OperatorDag::validate() const {
  if (ops_.empty()) return "tree has no operators";
  if (roots_.empty()) return "tree has no roots";
  std::vector<char> declared_root(ops_.size(), 0);
  for (int r : roots_) {
    if (r < 0 || r >= num_operators()) return "invalid root index";
    if (!op(r).out.empty()) return "root has a parent";
    if (declared_root[static_cast<std::size_t>(r)]) {
      return "root " + std::to_string(r) + " declared twice";
    }
    declared_root[static_cast<std::size_t>(r)] = 1;
  }

  const auto count_edges_to = [](const OperatorNode& n, int dst) {
    int c = 0;
    for (const OutEdge& e : n.out) c += e.dst == dst ? 1 : 0;
    return c;
  };
  const auto count_children = [](const OperatorNode& n, int child) {
    int c = 0;
    for (int x : n.children) c += x == child ? 1 : 0;
    return c;
  };

  int roots = 0;
  for (const auto& n : ops_) {
    if (n.id != &n - ops_.data()) return "operator ids are not dense";
    if (n.out.empty()) {
      ++roots;
    } else {
      for (const OutEdge& e : n.out) {
        if (e.dst < 0 || e.dst >= num_operators()) {
          return "operator " + std::to_string(n.id) + " has invalid parent";
        }
        // Parallel edges are allowed; the multiplicities must agree
        // (an edge listed twice = the consumer reads this input twice).
        if (count_edges_to(n, e.dst) != count_children(op(e.dst), n.id)) {
          return "operator " + std::to_string(n.id) +
                 " not listed in its parent's children";
        }
      }
    }
    const int arity = n.arity();
    if (arity < 1 || arity > 2) {
      return "operator " + std::to_string(n.id) + " has arity " +
             std::to_string(arity) + " (must be 1 or 2)";
    }
    for (int c : n.children) {
      if (c < 0 || c >= num_operators()) {
        return "operator " + std::to_string(n.id) + " has invalid child";
      }
      if (count_children(n, c) != count_edges_to(op(c), n.id)) {
        return "child " + std::to_string(c) + " does not point back to " +
               std::to_string(n.id);
      }
    }
    for (int l : n.leaves) {
      if (l < 0 || l >= num_leaves()) {
        return "operator " + std::to_string(n.id) + " has invalid leaf index";
      }
      if (leaf(l).parent_op != n.id) {
        return "leaf " + std::to_string(l) + " does not point back to op " +
               std::to_string(n.id);
      }
    }
  }
  if (roots != static_cast<int>(roots_.size())) {
    return "parentless operators do not match the declared roots";
  }

  // Kahn completion: a short order means a directed cycle, or operators not
  // reachable from the declared roots.
  if (static_cast<int>(top_down_order().size()) != num_operators()) {
    return "operators form a cycle or are unreachable from the roots";
  }

  for (const auto& l : leaves_) {
    if (l.object_type < 0 || l.object_type >= catalog_.count()) {
      return "leaf references unknown object type";
    }
  }
  return std::nullopt;
}

int TreeBuilder::add_operator(int parent) {
  const int id = static_cast<int>(ops_.size());
  OperatorNode n;
  n.id = id;
  if (parent == kNoNode) {
    if (root_ != kNoNode) {
      throw std::invalid_argument("TreeBuilder: second root added");
    }
    root_ = id;
  } else {
    if (parent < 0 || parent >= id) {
      throw std::invalid_argument("TreeBuilder: parent must already exist");
    }
    n.out.push_back(OutEdge{parent, 0.0});
    ops_[static_cast<std::size_t>(parent)].children.push_back(id);
  }
  ops_.push_back(std::move(n));
  return id;
}

int TreeBuilder::add_leaf(int op, int object_type) {
  if (op < 0 || op >= static_cast<int>(ops_.size())) {
    throw std::invalid_argument("TreeBuilder: leaf attached to unknown op");
  }
  if (object_type < 0 || object_type >= catalog_.count()) {
    throw std::invalid_argument("TreeBuilder: unknown object type");
  }
  const int id = static_cast<int>(leaves_.size());
  leaves_.push_back(LeafRef{object_type, op});
  ops_[static_cast<std::size_t>(op)].leaves.push_back(id);
  return id;
}

void TreeBuilder::add_edge(int child, int parent) {
  const int n = static_cast<int>(ops_.size());
  if (child < 0 || child >= n || parent < 0 || parent >= n) {
    throw std::invalid_argument("TreeBuilder: edge endpoint does not exist");
  }
  if (child == parent) {
    throw std::invalid_argument("TreeBuilder: self-edge");
  }
  ops_[static_cast<std::size_t>(child)].out.push_back(OutEdge{parent, 0.0});
  ops_[static_cast<std::size_t>(parent)].children.push_back(child);
}

OperatorTree TreeBuilder::build(double alpha, double work_scale) {
  OperatorTree t(std::move(ops_), std::move(leaves_), root_,
                 std::move(catalog_));
  if (auto err = t.validate()) {
    throw std::invalid_argument("TreeBuilder: " + *err);
  }
  t.compute_work_and_outputs(alpha, work_scale);
  return t;
}

} // namespace insp
