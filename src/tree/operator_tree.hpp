// The application model (paper §2.1): a binary tree of operators whose
// leaves are basic objects.  Each internal node n_i combines the outputs of
// its <= 2 children (operators and/or basic objects), requires w_i
// operations per result and emits delta_i MB per result.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tree/object.hpp"
#include "util/units.hpp"

namespace insp {

/// Index of "no node".
inline constexpr int kNoNode = -1;

/// One leaf occurrence in the tree: a reference to a basic-object type.
/// Distinct leaves may reference the same type (shared objects).
struct LeafRef {
  int object_type = -1;  ///< index into the ObjectCatalog
  int parent_op = -1;    ///< the al-operator this leaf feeds
};

struct OperatorNode {
  int id = -1;
  int parent = kNoNode;            ///< Par(i); kNoNode for the root
  std::vector<int> children;       ///< Ch(i): operator children, size <= 2
  std::vector<int> leaves;         ///< Leaf(i): leaf indices, size <= 2
  MegaOps work = 0.0;              ///< w_i
  MegaBytes output_mb = 0.0;       ///< delta_i, data sent to the parent

  /// al-operator ("almost leaf"): needs >= 1 basic object (paper §2.1).
  bool is_al_operator() const { return !leaves.empty(); }
  int arity() const {
    return static_cast<int>(children.size() + leaves.size());
  }
};

/// Immutable-after-build operator tree plus its object catalog.
///
/// Also models *forests* (several independent trees over one catalog):
/// every root is listed in roots(); root() returns the first.  Forests
/// arise in the multi-application extension (multi/multi_app.hpp), where
/// each member tree is one application.  No tree edge ever connects two
/// member trees, so all per-edge constraint semantics are unchanged.
class OperatorTree {
 public:
  OperatorTree() = default;
  OperatorTree(std::vector<OperatorNode> ops, std::vector<LeafRef> leaves,
               int root, ObjectCatalog catalog);
  /// Forest constructor: one entry in `roots` per member tree.
  OperatorTree(std::vector<OperatorNode> ops, std::vector<LeafRef> leaves,
               std::vector<int> roots, ObjectCatalog catalog);

  int num_operators() const { return static_cast<int>(ops_.size()); }
  int num_leaves() const { return static_cast<int>(leaves_.size()); }
  int root() const { return roots_.empty() ? kNoNode : roots_.front(); }
  const std::vector<int>& roots() const { return roots_; }
  bool is_forest() const { return roots_.size() > 1; }

  const OperatorNode& op(int i) const { return ops_[static_cast<std::size_t>(i)]; }
  const LeafRef& leaf(int l) const { return leaves_[static_cast<std::size_t>(l)]; }
  const std::vector<OperatorNode>& operators() const { return ops_; }
  const std::vector<LeafRef>& leaf_refs() const { return leaves_; }
  const ObjectCatalog& catalog() const { return catalog_; }
  ObjectCatalog& mutable_catalog() { return catalog_; }

  /// Overwrites operator `i`'s demands in place (dynamic workloads: per-app
  /// rho re-folding scales w and delta; see src/dynamic/).  The structure
  /// stays immutable — only the two demand numbers change.
  void set_demand(int i, MegaOps work, MegaBytes output_mb) {
    auto& n = ops_[static_cast<std::size_t>(i)];
    n.work = work;
    n.output_mb = output_mb;
  }

  /// Distinct object types operator i needs (deduplicated; an operator with
  /// two leaves of the same type needs that type once).
  std::vector<int> object_types_of(int i) const;

  /// Allocation-free object_types_of(): calls fn(type) for each distinct
  /// type, in the same first-occurrence order.  Operators have at most a
  /// handful of leaves, so the quadratic dedup is cheaper than any set —
  /// and the placement probes call this on every assign/unassign, where a
  /// returned vector would be the hot path's only heap traffic.
  template <typename Fn>
  void visit_object_types(int i, Fn&& fn) const {
    const auto& ls = op(i).leaves;
    for (std::size_t a = 0; a < ls.size(); ++a) {
      const int t = leaf(ls[a]).object_type;
      bool seen = false;
      for (std::size_t b = 0; b < a; ++b) {
        if (leaf(ls[b]).object_type == t) {
          seen = true;
          break;
        }
      }
      if (!seen) fn(t);
    }
  }

  /// Indices of al-operators (operators with >= 1 leaf child).
  std::vector<int> al_operators() const;

  /// Operator ids ordered bottom-up: every node appears after all its
  /// operator children (reverse BFS from the root).
  std::vector<int> bottom_up_order() const;
  /// Top-down (parents before children).
  std::vector<int> top_down_order() const;

  /// Recompute w_i and delta_i bottom-up for the given alpha:
  ///   input mass  m_i = sum(leaf sizes) + sum(child outputs)
  ///   w_i      = work_scale * m_i^alpha   [Mops]
  ///   delta_i  = m_i                       [MB]
  /// (paper §5 simulation methodology; work_scale defaults to 1).
  void compute_work_and_outputs(double alpha, double work_scale = 1.0);

  /// delta of the data flowing over the tree edge child->parent.
  MegaBytes edge_volume(int child_op) const {
    return op(child_op).output_mb;
  }

  /// Structural invariants (paper's model constraints):
  ///  - exactly one root; parent/child links consistent; ids dense
  ///  - |Leaf(i)| + |Ch(i)| in [1, 2] for every operator
  ///  - acyclic and fully connected (every op reachable from the root)
  ///  - every leaf references a valid object type and its parent op
  /// Returns std::nullopt if valid, otherwise a description of the issue.
  std::optional<std::string> validate() const;

 private:
  std::vector<OperatorNode> ops_;
  std::vector<LeafRef> leaves_;
  std::vector<int> roots_;
  ObjectCatalog catalog_;
};

/// Incremental construction helper used by generators, IO, and tests.
class TreeBuilder {
 public:
  explicit TreeBuilder(ObjectCatalog catalog) : catalog_(std::move(catalog)) {}

  /// Adds an operator; parent == kNoNode makes it the root (exactly one).
  int add_operator(int parent);
  /// Attaches a leaf of the given object type to operator `op`.
  int add_leaf(int op, int object_type);

  /// Finalize; computes w/delta with the given alpha and validates.
  /// Throws std::invalid_argument when the structure is not a valid tree.
  OperatorTree build(double alpha, double work_scale = 1.0);

 private:
  std::vector<OperatorNode> ops_;
  std::vector<LeafRef> leaves_;
  int root_ = kNoNode;
  ObjectCatalog catalog_;
};

} // namespace insp
