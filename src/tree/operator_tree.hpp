// The application model: a DAG of operators whose leaves are basic
// objects.  The paper's model (§2.1) is a binary *tree* — each internal
// node n_i combines the outputs of its <= 2 children (operators and/or
// basic objects), requires w_i operations per result and emits delta_i MB
// per result.  Following the paper's §6 remark on common-subexpression
// reuse (and the DAG-native formulation of Eidenbenz & Locher), the model
// here generalizes the single implicit child->parent edge into an explicit
// out-edge list: an operator's output may feed several consumers, each
// out-edge carrying its own delta.  A tree is the degenerate case where
// every out-edge list has at most one entry; all tree-era behavior is
// bit-identical in that case.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tree/object.hpp"
#include "util/units.hpp"

namespace insp {

/// Index of "no node".
inline constexpr int kNoNode = -1;

/// One leaf occurrence in the tree: a reference to a basic-object type.
/// Distinct leaves may reference the same type (shared objects).
struct LeafRef {
  int object_type = -1;  ///< index into the ObjectCatalog
  int parent_op = -1;    ///< the al-operator this leaf feeds
};

/// One directed edge from a producer operator to a consumer ("parent").
/// `delta` is the MB shipped to THIS consumer per result; for tree-shaped
/// applications every out-edge delta equals the node's output_mb.
struct OutEdge {
  int dst = kNoNode;       ///< consumer operator id
  MegaBytes delta = 0.0;   ///< per-result MB carried by this edge
};

struct OperatorNode {
  int id = -1;
  std::vector<OutEdge> out;        ///< consumers; empty for roots
  std::vector<int> children;       ///< Ch(i): operator inputs, size <= 2
  std::vector<int> leaves;         ///< Leaf(i): leaf indices, size <= 2
  MegaOps work = 0.0;              ///< w_i
  MegaBytes output_mb = 0.0;       ///< delta_i, size of one produced result

  /// Tree-compat accessor: Par(i) = the first consumer, kNoNode for roots.
  /// Meaningful only on tree-shaped graphs (out.size() <= 1 everywhere).
  int parent() const { return out.empty() ? kNoNode : out.front().dst; }
  bool is_shared() const { return out.size() > 1; }

  /// al-operator ("almost leaf"): needs >= 1 basic object (paper §2.1).
  bool is_al_operator() const { return !leaves.empty(); }
  int arity() const {
    return static_cast<int>(children.size() + leaves.size());
  }
};

/// Immutable-after-build operator DAG plus its object catalog.
///
/// Also models *forests* (several independent graphs over one catalog):
/// every root is listed in roots(); root() returns the first.  Forests
/// arise in the multi-application extension (multi/multi_app.hpp), where
/// each member is one application — and, after
/// fold_shared_subexpressions (multi/subexpression_fold.hpp), members may
/// share operators across application boundaries.
class OperatorDag {
 public:
  OperatorDag() = default;
  OperatorDag(std::vector<OperatorNode> ops, std::vector<LeafRef> leaves,
              int root, ObjectCatalog catalog);
  /// Forest constructor: one entry in `roots` per member graph.
  OperatorDag(std::vector<OperatorNode> ops, std::vector<LeafRef> leaves,
              std::vector<int> roots, ObjectCatalog catalog);

  int num_operators() const { return static_cast<int>(ops_.size()); }
  int num_leaves() const { return static_cast<int>(leaves_.size()); }
  int root() const { return roots_.empty() ? kNoNode : roots_.front(); }
  const std::vector<int>& roots() const { return roots_; }
  bool is_forest() const { return roots_.size() > 1; }

  /// True when every operator has at most one consumer (the paper's tree
  /// model).  Every tree-era code path is bit-identical on such graphs.
  bool is_tree_shaped() const;
  /// Total number of operator->operator edges.
  int num_edges() const;

  const OperatorNode& op(int i) const { return ops_[static_cast<std::size_t>(i)]; }
  const LeafRef& leaf(int l) const { return leaves_[static_cast<std::size_t>(l)]; }
  const std::vector<OperatorNode>& operators() const { return ops_; }
  const std::vector<LeafRef>& leaf_refs() const { return leaves_; }
  const ObjectCatalog& catalog() const { return catalog_; }
  ObjectCatalog& mutable_catalog() { return catalog_; }

  /// Overwrites operator `i`'s demands in place (dynamic workloads: per-app
  /// rho re-folding scales w and delta; see src/dynamic/).  The structure
  /// stays immutable — only the demand numbers change.  Every out-edge
  /// delta is overwritten with the new output_mb (uniform multicast), so
  /// incremental accounting (PlacementState::refresh_op_demand) can assume
  /// the previous deltas were uniform too.
  void set_demand(int i, MegaOps work, MegaBytes output_mb) {
    auto& n = ops_[static_cast<std::size_t>(i)];
    n.work = work;
    n.output_mb = output_mb;
    for (OutEdge& e : n.out) e.delta = output_mb;
  }

  /// Distinct object types operator i needs (deduplicated; an operator with
  /// two leaves of the same type needs that type once).
  std::vector<int> object_types_of(int i) const;

  /// Allocation-free object_types_of(): calls fn(type) for each distinct
  /// type, in the same first-occurrence order.  Operators have at most a
  /// handful of leaves, so the quadratic dedup is cheaper than any set —
  /// and the placement probes call this on every assign/unassign, where a
  /// returned vector would be the hot path's only heap traffic.
  template <typename Fn>
  void visit_object_types(int i, Fn&& fn) const {
    const auto& ls = op(i).leaves;
    for (std::size_t a = 0; a < ls.size(); ++a) {
      const int t = leaf(ls[a]).object_type;
      bool seen = false;
      for (std::size_t b = 0; b < a; ++b) {
        if (leaf(ls[b]).object_type == t) {
          seen = true;
          break;
        }
      }
      if (!seen) fn(t);
    }
  }

  /// Indices of al-operators (operators with >= 1 leaf child).
  std::vector<int> al_operators() const;

  /// Operator ids in true topological order, consumers ("parents") before
  /// producers: every node appears after all operators it feeds.  On trees
  /// this reduces exactly to the historical BFS from the roots.  Returns a
  /// short list when the graph has a cycle or unreachable component
  /// (validate() rejects both).
  std::vector<int> top_down_order() const;
  /// Reverse: every node appears after all its operator children.
  std::vector<int> bottom_up_order() const;

  /// Recompute w_i and delta_i bottom-up for the given alpha:
  ///   input mass  m_i = sum(leaf sizes) + sum(child outputs)
  ///   w_i      = work_scale * m_i^alpha   [Mops]
  ///   delta_i  = m_i                       [MB]
  /// (paper §5 simulation methodology; work_scale defaults to 1).  Shared
  /// nodes are computed once; every out-edge delta is set to the node's
  /// output_mb.  NOTE: this clobbers demand folding (per-app rho scaling
  /// and fold-merged maxima) — do not call it on a folded forest/DAG.
  void compute_work_and_outputs(double alpha, double work_scale = 1.0);

  /// delta of one result produced by `child_op` (tree-compat: on trees
  /// this is the volume of the unique child->parent edge).
  MegaBytes edge_volume(int child_op) const {
    return op(child_op).output_mb;
  }

  /// Structural invariants:
  ///  - ids dense; out-edge/children lists mutually consistent (with
  ///    matching multiplicities — parallel edges are allowed and model a
  ///    consumer reading the same shared input twice)
  ///  - |Leaf(i)| + |Ch(i)| in [1, 2] for every operator (paper's binary
  ///    in-arity; out-degree is unbounded)
  ///  - declared roots are exactly the operators with no out-edges
  ///  - acyclic and fully reachable (Kahn's algorithm completes)
  ///  - every leaf references a valid object type and its parent op
  /// Returns std::nullopt if valid, otherwise a description of the issue.
  std::optional<std::string> validate() const;

 private:
  std::vector<OperatorNode> ops_;
  std::vector<LeafRef> leaves_;
  std::vector<int> roots_;
  ObjectCatalog catalog_;
};

/// Historical name: the tree is the degenerate (out-degree <= 1) DAG.
using OperatorTree = OperatorDag;

/// Incremental construction helper used by generators, IO, and tests.
class TreeBuilder {
 public:
  explicit TreeBuilder(ObjectCatalog catalog) : catalog_(std::move(catalog)) {}

  /// Adds an operator; parent == kNoNode makes it the root (exactly one).
  int add_operator(int parent);
  /// Attaches a leaf of the given object type to operator `op`.
  int add_leaf(int op, int object_type);
  /// Adds an extra edge child->parent (both must exist): the child's output
  /// also feeds `parent`, making the graph a shared-subexpression DAG.
  /// Edge deltas are filled by build()'s compute_work_and_outputs.
  void add_edge(int child, int parent);

  /// Finalize; computes w/delta with the given alpha and validates.
  /// Throws std::invalid_argument when the structure is not a valid graph.
  OperatorTree build(double alpha, double work_scale = 1.0);

 private:
  std::vector<OperatorNode> ops_;
  std::vector<LeafRef> leaves_;
  int root_ = kNoNode;
  ObjectCatalog catalog_;
};

} // namespace insp
