#include "tree/tree_generator.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace insp {

namespace {

ObjectCatalog make_catalog(Rng& rng, const TreeGenConfig& c) {
  return ObjectCatalog::random(rng, c.num_object_types, c.object_size_lo,
                               c.object_size_hi, c.download_freq);
}

int effective_op_count(Rng& rng, const TreeGenConfig& c) {
  if (c.num_operators < 1) {
    throw std::invalid_argument("tree generator: num_operators must be >= 1");
  }
  if (!c.at_most_n || c.num_operators <= 2) return c.num_operators;
  return static_cast<int>(
      rng.uniform_int(c.num_operators / 2, c.num_operators));
}

} // namespace

OperatorTree generate_random_tree(Rng& rng, const TreeGenConfig& config,
                                  const ObjectCatalog& catalog) {
  const int n = effective_op_count(rng, config);
  TreeBuilder b(catalog);

  // Grow: maintain open slots (an operator that can still take a child).
  // Each operator is created with 1 or 2 open slots (binary_prob); expanding
  // a random slot attaches a new operator there; remaining open slots become
  // leaves.  Arity >= 1 keeps at least one slot open until all operators are
  // placed.
  auto arity = [&] { return rng.bernoulli(config.binary_prob) ? 2 : 1; };
  const int root = b.add_operator(kNoNode);
  std::vector<int> open_slots;
  for (int s = arity(); s > 0; --s) open_slots.push_back(root);
  for (int made = 1; made < n; ++made) {
    const std::size_t pick = rng.index(open_slots.size());
    const int parent = open_slots[pick];
    open_slots[pick] = open_slots.back();
    open_slots.pop_back();
    const int id = b.add_operator(parent);
    for (int s = arity(); s > 0; --s) open_slots.push_back(id);
  }
  for (int slot_owner : open_slots) {
    b.add_leaf(slot_owner, static_cast<int>(rng.index(
                               static_cast<std::size_t>(catalog.count()))));
  }
  return b.build(config.alpha, config.work_scale);
}

OperatorTree generate_random_tree(Rng& rng, const TreeGenConfig& config) {
  ObjectCatalog catalog = make_catalog(rng, config);
  return generate_random_tree(rng, config, catalog);
}

OperatorTree generate_shared_dag(Rng& rng, const TreeGenConfig& config,
                                 double share_prob) {
  ObjectCatalog catalog = make_catalog(rng, config);
  const int n = effective_op_count(rng, config);
  TreeBuilder b(catalog);

  auto arity = [&] { return rng.bernoulli(config.binary_prob) ? 2 : 1; };
  const int root = b.add_operator(kNoNode);
  std::vector<int> open_slots;
  for (int s = arity(); s > 0; --s) open_slots.push_back(root);
  for (int made = 1; made < n; ++made) {
    const std::size_t pick = rng.index(open_slots.size());
    const int parent = open_slots[pick];
    open_slots[pick] = open_slots.back();
    open_slots.pop_back();
    const int id = b.add_operator(parent);
    for (int s = arity(); s > 0; --s) open_slots.push_back(id);
  }
  // Leftover slots: either a fresh leaf, or (share_prob) a re-used operator
  // of higher id — the shared subexpression.  id ordering makes the extra
  // edge acyclic by construction.
  for (int slot_owner : open_slots) {
    if (slot_owner + 1 < n && rng.bernoulli(share_prob)) {
      const int shared = static_cast<int>(
          rng.uniform_int(slot_owner + 1, n - 1));
      b.add_edge(shared, slot_owner);
    } else {
      b.add_leaf(slot_owner, static_cast<int>(rng.index(
                                 static_cast<std::size_t>(catalog.count()))));
    }
  }
  return b.build(config.alpha, config.work_scale);
}

namespace {

/// Builds the reduction over sources [lo, hi) under `parent`; returns the
/// subtree root's operator id.
int build_reduction(TreeBuilder& b, const ObjectCatalog& catalog, int parent,
                    int lo, int hi, int leaves_per_source) {
  const int op = b.add_operator(parent);
  if (hi - lo == 1) {
    for (int i = 0; i < leaves_per_source; ++i) {
      b.add_leaf(op, lo % catalog.count());
    }
    return op;
  }
  const int mid = lo + (hi - lo + 1) / 2;
  build_reduction(b, catalog, op, lo, mid, leaves_per_source);
  build_reduction(b, catalog, op, mid, hi, leaves_per_source);
  return op;
}

} // namespace

OperatorTree generate_reduction_tree(const ObjectCatalog& catalog,
                                     int num_sources, double alpha,
                                     int leaves_per_source,
                                     double work_scale) {
  if (num_sources < 1) {
    throw std::invalid_argument("reduction tree: need at least one source");
  }
  if (leaves_per_source < 1 || leaves_per_source > 2) {
    throw std::invalid_argument(
        "reduction tree: leaves_per_source must be 1 or 2 (binary model)");
  }
  TreeBuilder b(catalog);
  build_reduction(b, catalog, kNoNode, 0, num_sources, leaves_per_source);
  return b.build(alpha, work_scale);
}

OperatorTree generate_left_deep_tree(Rng& rng, const TreeGenConfig& config) {
  ObjectCatalog catalog = make_catalog(rng, config);
  const int n = effective_op_count(rng, config);
  TreeBuilder b(catalog);
  // Root at the top, chain of operator children going down-left; each level
  // adds one leaf on the right, the bottom operator holds two leaves.
  int prev = b.add_operator(kNoNode);
  auto random_type = [&] {
    return static_cast<int>(
        rng.index(static_cast<std::size_t>(catalog.count())));
  };
  for (int i = 1; i < n; ++i) {
    const int child = b.add_operator(prev);
    b.add_leaf(prev, random_type());
    prev = child;
  }
  b.add_leaf(prev, random_type());
  b.add_leaf(prev, random_type());
  return b.build(config.alpha, config.work_scale);
}

} // namespace insp
