// Random application generators replicating the paper's simulation
// methodology (§5): random binary operator trees whose leaves draw from a
// catalog of 15 object types, plus the left-deep chains used in the
// complexity discussion (§3, Fig 1b).
#pragma once

#include "tree/operator_tree.hpp"
#include "util/rng.hpp"

namespace insp {

struct TreeGenConfig {
  int num_operators = 20;     ///< N: internal nodes ("at most N" per paper)
  double alpha = 1.0;         ///< w_i = mass^alpha
  double work_scale = 1.0;    ///< optional multiplier on w_i
  int num_object_types = 15;  ///< paper: 15 types
  MegaBytes object_size_lo = 5.0;    ///< small objects: [5,30] MB
  MegaBytes object_size_hi = 30.0;   ///< large objects: [450,530] MB
  Hertz download_freq = 0.5;  ///< high 1/2 s^-1; low 1/50 s^-1
  /// When true, the actual operator count is drawn uniformly from
  /// [num_operators/2, num_operators] ("trees with at most N operators").
  bool at_most_n = false;
  /// Probability that an operator takes two children (operators or leaves);
  /// otherwise it is unary, like n5 in the paper's Fig 1(a).  0.5 makes the
  /// expected leaf count ~N/2+1, which is the unique value consistent with
  /// the paper's three reported feasibility anchors (alpha thresholds 1.8 at
  /// N=60 and 2.2 at N=20; the N~80 cliff at alpha=1.7) — see docs/DESIGN.md §6.
  double binary_prob = 0.5;
};

/// Random full binary tree with exactly n (or "at most n") operators, grown
/// by repeatedly expanding a uniformly random open leaf slot into a new
/// operator.  Every operator ends with exactly two children (operator or
/// leaf); leaves get uniformly random object types.
OperatorTree generate_random_tree(Rng& rng, const TreeGenConfig& config);

/// Same, reusing a pre-built object catalog (lets several trees share one
/// catalog, e.g. in the frequency sweep).
OperatorTree generate_random_tree(Rng& rng, const TreeGenConfig& config,
                                  const ObjectCatalog& catalog);

/// Left-deep tree (paper Fig 1(b)): operator i has one operator child and
/// one leaf, except the bottom operator which has two leaves.
OperatorTree generate_left_deep_tree(Rng& rng, const TreeGenConfig& config);

/// Random shared-subexpression DAG: grown exactly like
/// generate_random_tree, but each leftover open slot becomes, with
/// probability `share_prob`, an extra edge from an existing operator of
/// higher id instead of a fresh leaf — that operator's output then feeds
/// multiple consumers.  Ids are creation-ordered (parent < child), so every
/// out-edge points to a smaller id and the result is acyclic by
/// construction.  share_prob = 0 reproduces generate_random_tree's draws
/// bit-for-bit except for the extra bernoulli per slot.
OperatorTree generate_shared_dag(Rng& rng, const TreeGenConfig& config,
                                 double share_prob);

/// Balanced binary reduction over per-source pipelines (the paper's §1
/// video-surveillance shape): one al-operator per source combining
/// `leaves_per_source` copies of that source's object type (e.g. frame
/// differencing), reduced pairwise up to a single root.  Source s draws
/// object type s mod catalog.count().  Produces ceil-balanced trees with
/// num_sources al-operators and num_sources - 1 reduction operators.
OperatorTree generate_reduction_tree(const ObjectCatalog& catalog,
                                     int num_sources, double alpha,
                                     int leaves_per_source = 2,
                                     double work_scale = 1.0);

} // namespace insp
