#include "tree/tree_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace insp {

std::string to_dot(const OperatorTree& tree) {
  std::ostringstream out;
  out << "digraph cinsp_tree {\n  rankdir=BT;\n";
  for (const auto& n : tree.operators()) {
    out << "  n" << n.id << " [shape=box,label=\"n" << n.id
        << "\\nw=" << n.work << "\\nd=" << n.output_mb << "\"];\n";
  }
  for (std::size_t l = 0; l < tree.leaf_refs().size(); ++l) {
    const auto& leaf = tree.leaf_refs()[l];
    out << "  o" << l << " [shape=ellipse,label=\"o" << leaf.object_type
        << "\"];\n";
    out << "  o" << l << " -> n" << leaf.parent_op << " [label=\""
        << tree.catalog().type(leaf.object_type).size_mb << "MB\"];\n";
  }
  for (const auto& n : tree.operators()) {
    for (const OutEdge& e : n.out) {
      out << "  n" << n.id << " -> n" << e.dst << " [label=\"" << e.delta
          << "MB\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_text(const OperatorTree& tree, double alpha,
                    double work_scale) {
  const bool tree_shaped = tree.is_tree_shaped();
  std::ostringstream out;
  out.precision(17);
  out << "cinsp-tree " << (tree_shaped ? 1 : 2) << "\n";
  out << "alpha " << alpha << " work_scale " << work_scale << "\n";
  out << "objects " << tree.catalog().count() << "\n";
  for (const auto& t : tree.catalog().all()) {
    out << "object " << t.id << " " << t.size_mb << " " << t.freq_hz << "\n";
  }
  out << "operators " << tree.num_operators() << " root " << tree.root()
      << "\n";
  if (tree.is_forest()) {
    out << "roots";
    for (int r : tree.roots()) out << " " << r;
    out << "\n";
  }
  for (const auto& n : tree.operators()) {
    out << "op " << n.id << " parent " << n.parent() << "\n";
  }
  if (!tree_shaped) {
    for (const auto& n : tree.operators()) {
      for (std::size_t e = 1; e < n.out.size(); ++e) {
        out << "edge " << n.id << " " << n.out[e].dst << "\n";
      }
    }
  }
  for (const auto& l : tree.leaf_refs()) {
    out << "leaf " << l.parent_op << " " << l.object_type << "\n";
  }
  return out.str();
}

OperatorTree from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;

  auto fail = [](const std::string& why) -> void {
    throw std::invalid_argument("from_text: " + why);
  };

  if (!std::getline(in, line) || line.rfind("cinsp-tree", 0) != 0) {
    fail("missing 'cinsp-tree' header");
  }
  {
    std::istringstream hs(line);
    std::string magic;
    int version = 0;
    hs >> magic;
    if (hs >> version) {
      if (version < 1 || version > 2) {
        fail("unsupported format version " + std::to_string(version));
      }
    }
  }

  double alpha = 1.0, work_scale = 1.0;
  int declared_objects = -1, declared_ops = -1, root = kNoNode;
  std::vector<int> forest_roots;
  std::vector<ObjectType> types;
  // op id -> parent; extra out-edges beyond the first as (child, parent)
  // pairs; leaves as (op, type) pairs — all kept in file order.
  std::map<int, int> op_parent;
  std::vector<std::pair<int, int>> extra_edges;
  std::vector<std::pair<int, int>> leaves;

  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == "alpha") {
      std::string ws;
      if (!(ls >> alpha >> ws >> work_scale) || ws != "work_scale") {
        fail("bad alpha line");
      }
    } else if (tok == "objects") {
      if (!(ls >> declared_objects)) fail("bad objects line");
    } else if (tok == "object") {
      ObjectType t;
      if (!(ls >> t.id >> t.size_mb >> t.freq_hz)) fail("bad object line");
      types.push_back(t);
    } else if (tok == "operators") {
      std::string r;
      if (!(ls >> declared_ops >> r >> root) || r != "root") {
        fail("bad operators line");
      }
    } else if (tok == "roots") {
      int r;
      while (ls >> r) forest_roots.push_back(r);
      if (forest_roots.empty()) fail("bad roots line");
    } else if (tok == "op") {
      int id, parent;
      std::string p;
      if (!(ls >> id >> p >> parent) || p != "parent") fail("bad op line");
      if (!op_parent.emplace(id, parent).second) fail("duplicate op id");
    } else if (tok == "edge") {
      int child, parent;
      if (!(ls >> child >> parent)) fail("bad edge line");
      extra_edges.emplace_back(child, parent);
    } else if (tok == "leaf") {
      int op, type;
      if (!(ls >> op >> type)) fail("bad leaf line");
      leaves.emplace_back(op, type);
    } else {
      fail("unknown directive '" + tok + "'");
    }
  }

  if (declared_objects != static_cast<int>(types.size())) {
    fail("object count mismatch");
  }
  if (declared_ops != static_cast<int>(op_parent.size())) {
    fail("operator count mismatch");
  }
  // Ids must be dense 0..n-1 and sorted for the catalog constructor.
  std::sort(types.begin(), types.end(),
            [](const ObjectType& a, const ObjectType& b) { return a.id < b.id; });
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (types[i].id != static_cast<int>(i)) fail("object ids not dense");
  }

  // Forests and shared-subexpression DAGs are rebuilt directly (TreeBuilder
  // is single-root and single-parent-per-op at creation).  Note that w/delta
  // are recomputed from alpha: demand folding applied by
  // combine_applications or fold_shared_subexpressions is not preserved —
  // serialize the member applications individually when that matters.
  if (!forest_roots.empty() || !extra_edges.empty()) {
    const int n_ops = static_cast<int>(op_parent.size());
    std::vector<OperatorNode> ops(static_cast<std::size_t>(n_ops));
    for (int id = 0; id < n_ops; ++id) {
      auto it = op_parent.find(id);
      if (it == op_parent.end()) fail("op ids not dense");
      ops[static_cast<std::size_t>(id)].id = id;
      if (it->second != kNoNode) {
        if (it->second < 0 || it->second >= n_ops) fail("bad parent");
        ops[static_cast<std::size_t>(id)].out.push_back(
            OutEdge{it->second, 0.0});
        ops[static_cast<std::size_t>(it->second)].children.push_back(id);
      }
    }
    for (const auto& [child, parent] : extra_edges) {
      if (child < 0 || child >= n_ops || parent < 0 || parent >= n_ops) {
        fail("edge endpoint does not exist");
      }
      ops[static_cast<std::size_t>(child)].out.push_back(OutEdge{parent, 0.0});
      ops[static_cast<std::size_t>(parent)].children.push_back(child);
    }
    std::vector<LeafRef> leaf_refs;
    for (const auto& [op, type] : leaves) {
      if (op < 0 || op >= n_ops) fail("leaf attached to unknown op");
      const int lid = static_cast<int>(leaf_refs.size());
      leaf_refs.push_back(LeafRef{type, op});
      ops[static_cast<std::size_t>(op)].leaves.push_back(lid);
    }
    if (forest_roots.empty()) forest_roots.push_back(root);
    OperatorTree t(std::move(ops), std::move(leaf_refs),
                   std::move(forest_roots), ObjectCatalog(std::move(types)));
    if (auto err = t.validate()) fail("graph: " + *err);
    t.compute_work_and_outputs(alpha, work_scale);
    return t;
  }

  // Rebuild through TreeBuilder.  The writer emits parents before children
  // (TreeBuilder guarantees parent id < child id), so inserting in id order
  // preserves ids exactly and the round-trip is the identity.
  TreeBuilder b{ObjectCatalog(std::move(types))};
  if (root == kNoNode || op_parent.find(root) == op_parent.end()) {
    fail("missing root");
  }
  const int n_ops = static_cast<int>(op_parent.size());
  for (int id = 0; id < n_ops; ++id) {
    auto it = op_parent.find(id);
    if (it == op_parent.end()) fail("op ids not dense");
    const int parent = it->second;
    if (parent == kNoNode && id != root) {
      fail("non-root operator without parent");
    }
    if (parent != kNoNode && (parent < 0 || parent >= id)) {
      fail("op parent must precede child (ids are creation-ordered)");
    }
    b.add_operator(parent);
  }
  for (const auto& [op, type] : leaves) {
    if (op < 0 || op >= n_ops) fail("leaf attached to unknown op");
    b.add_leaf(op, type);
  }
  return b.build(alpha, work_scale);
}

void save_tree(const OperatorTree& tree, const std::string& path, double alpha,
               double work_scale) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_tree: cannot open " + path);
  f << to_text(tree, alpha, work_scale);
}

OperatorTree load_tree(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_tree: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return from_text(ss.str());
}

} // namespace insp
