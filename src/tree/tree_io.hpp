// Serialization: Graphviz DOT export for inspection, and a line-oriented
// text format with full round-trip (used to pin test fixtures and to let
// examples load hand-written applications).
#pragma once

#include <iosfwd>
#include <string>

#include "tree/operator_tree.hpp"

namespace insp {

/// Graphviz DOT (operators as boxes, leaves as ellipses labeled with their
/// object type, edge labels = delta volumes).
std::string to_dot(const OperatorTree& tree);

/// Text format (version 1, written for every tree-shaped graph so existing
/// fixtures stay byte-identical):
///   cinsp-tree 1
///   objects <count>
///   object <id> <size_mb> <freq_hz>
///   operators <count> root <id>
///   op <id> parent <id|-1>
///   leaf <op_id> <object_type>
///   alpha <alpha> work_scale <scale>
/// Version 2 is emitted only when some operator has more than one consumer;
/// it adds one line per out-edge beyond the first:
///   cinsp-tree 2
///   ...
///   edge <child_id> <parent_id>
/// (a repeated edge line is a parallel edge: the consumer reads that shared
/// input twice).  Edge deltas are recomputed from alpha on load, like all
/// demands.  Lines may appear in any order within their section; `#` starts
/// a comment.  The parser accepts both versions; v1 files parse unchanged.
std::string to_text(const OperatorTree& tree, double alpha,
                    double work_scale = 1.0);

/// Parses the text format; throws std::invalid_argument on malformed input.
OperatorTree from_text(const std::string& text);

/// Convenience file helpers (throw std::runtime_error on IO failure).
void save_tree(const OperatorTree& tree, const std::string& path, double alpha,
               double work_scale = 1.0);
OperatorTree load_tree(const std::string& path);

} // namespace insp
