#include "tree/tree_stats.hpp"

#include <algorithm>
#include <set>

namespace insp {

TreeStats compute_tree_stats(const OperatorTree& tree) {
  TreeStats s;
  s.num_operators = tree.num_operators();
  s.num_leaves = tree.num_leaves();

  std::set<int> types;
  for (const auto& l : tree.leaf_refs()) {
    types.insert(l.object_type);
    s.total_leaf_mass += tree.catalog().type(l.object_type).size_mb;
    s.total_download_demand += tree.catalog().type(l.object_type).rate();
  }
  s.distinct_object_types = static_cast<int>(types.size());

  const auto depths = operator_depths(tree);
  for (const auto& n : tree.operators()) {
    if (n.is_al_operator()) ++s.num_al_operators;
    s.total_work += n.work;
    if (n.parent != kNoNode) {
      s.max_edge_volume = std::max(s.max_edge_volume, n.output_mb);
    }
    s.depth = std::max(s.depth, depths[static_cast<std::size_t>(n.id)]);
  }
  return s;
}

std::vector<int> object_popularity(const OperatorTree& tree) {
  std::vector<int> pop(static_cast<std::size_t>(tree.catalog().count()), 0);
  for (const auto& n : tree.operators()) {
    for (int t : tree.object_types_of(n.id)) {
      ++pop[static_cast<std::size_t>(t)];
    }
  }
  return pop;
}

std::vector<int> edges_by_volume_desc(const OperatorTree& tree) {
  std::vector<int> children;
  for (const auto& n : tree.operators()) {
    if (n.parent != kNoNode) children.push_back(n.id);
  }
  std::sort(children.begin(), children.end(), [&](int a, int b) {
    const MegaBytes va = tree.op(a).output_mb, vb = tree.op(b).output_mb;
    if (va != vb) return va > vb;
    return a < b;
  });
  return children;
}

std::vector<int> operator_depths(const OperatorTree& tree) {
  std::vector<int> depth(static_cast<std::size_t>(tree.num_operators()), 0);
  for (int i : tree.top_down_order()) {
    const auto& n = tree.op(i);
    depth[static_cast<std::size_t>(i)] =
        n.parent == kNoNode ? 1 : depth[static_cast<std::size_t>(n.parent)] + 1;
  }
  return depth;
}

} // namespace insp
