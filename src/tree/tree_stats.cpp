#include "tree/tree_stats.hpp"

#include <algorithm>
#include <set>

namespace insp {

TreeStats compute_tree_stats(const OperatorTree& tree) {
  TreeStats s;
  s.num_operators = tree.num_operators();
  s.num_leaves = tree.num_leaves();

  std::set<int> types;
  for (const auto& l : tree.leaf_refs()) {
    types.insert(l.object_type);
    s.total_leaf_mass += tree.catalog().type(l.object_type).size_mb;
    s.total_download_demand += tree.catalog().type(l.object_type).rate();
  }
  s.distinct_object_types = static_cast<int>(types.size());

  const auto depths = operator_depths(tree);
  for (const auto& n : tree.operators()) {
    if (n.is_al_operator()) ++s.num_al_operators;
    s.total_work += n.work;
    for (const OutEdge& e : n.out) {
      s.max_edge_volume = std::max(s.max_edge_volume, e.delta);
    }
    s.depth = std::max(s.depth, depths[static_cast<std::size_t>(n.id)]);
  }
  return s;
}

std::vector<int> object_popularity(const OperatorTree& tree) {
  std::vector<int> pop(static_cast<std::size_t>(tree.catalog().count()), 0);
  for (const auto& n : tree.operators()) {
    for (int t : tree.object_types_of(n.id)) {
      ++pop[static_cast<std::size_t>(t)];
    }
  }
  return pop;
}

std::vector<EdgeRef> edges_by_volume_desc(const OperatorTree& tree) {
  std::vector<EdgeRef> edges;
  for (const auto& n : tree.operators()) {
    for (const OutEdge& e : n.out) edges.push_back(EdgeRef{n.id, e.dst, e.delta});
  }
  std::sort(edges.begin(), edges.end(), [](const EdgeRef& a, const EdgeRef& b) {
    if (a.delta != b.delta) return a.delta > b.delta;
    if (a.child != b.child) return a.child < b.child;
    return a.parent < b.parent;
  });
  return edges;
}

std::vector<int> operator_depths(const OperatorTree& tree) {
  // top_down_order guarantees every consumer precedes its producers, so the
  // max over parents is final by the time a node is visited.
  std::vector<int> depth(static_cast<std::size_t>(tree.num_operators()), 0);
  for (int i : tree.top_down_order()) {
    const auto& n = tree.op(i);
    int d = 1;
    for (const OutEdge& e : n.out) {
      d = std::max(d, depth[static_cast<std::size_t>(e.dst)] + 1);
    }
    depth[static_cast<std::size_t>(i)] = d;
  }
  return depth;
}

} // namespace insp
