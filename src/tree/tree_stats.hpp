// Aggregate statistics over an operator tree; used by heuristics
// (popularity, edge ordering) and by the experiment reports.
#pragma once

#include <vector>

#include "tree/operator_tree.hpp"

namespace insp {

struct TreeStats {
  int num_operators = 0;
  int num_leaves = 0;
  int num_al_operators = 0;
  int distinct_object_types = 0;
  int depth = 0;                  ///< root depth = 1
  MegaBytes total_leaf_mass = 0;  ///< == root output (mass conservation)
  MegaOps total_work = 0;
  MegaBytes max_edge_volume = 0;  ///< largest child->parent delta
  MBps total_download_demand = 0; ///< sum over leaves of their type's rate
};

TreeStats compute_tree_stats(const OperatorTree& tree);

/// popularity[k] = number of operators that need object type k
/// (paper, Object-Grouping heuristic).
std::vector<int> object_popularity(const OperatorTree& tree);

/// One producer->consumer edge.  On trees there is exactly one per
/// non-root operator and delta == op(child).output_mb.
struct EdgeRef {
  int child = kNoNode;
  int parent = kNoNode;
  MegaBytes delta = 0.0;
};

/// All operator edges (child -> parent) sorted by non-increasing data
/// volume delta; ties broken by child id then parent id for determinism.
std::vector<EdgeRef> edges_by_volume_desc(const OperatorTree& tree);

/// Depth of each operator (root = 1).
std::vector<int> operator_depths(const OperatorTree& tree);

} // namespace insp
