// Counting-allocator test hook for the zero-allocation assertions
// (docs/DESIGN.md §11).  Usage: a test or bench binary #defines
// INSP_DEFINE_COUNTING_ALLOCATOR in exactly ONE of its .cpp files *before*
// including this header; that TU then provides replacement global
// operator new/delete which bump an atomic counter on every allocation.
// Binaries that never define the macro get only the (always-zero-delta)
// counter accessors and pay nothing.
//
// The counter counts ALLOCATIONS, not frees or bytes: the steady-state
// claim being tested is "this loop never calls operator new", so a
// before/after delta of allocations() is the whole measurement.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace insp::alloc_counter {

inline std::atomic<long long> g_allocations{0};

inline long long allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

inline void bump() {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

} // namespace insp::alloc_counter

#if defined(INSP_DEFINE_COUNTING_ALLOCATOR)

void* operator new(std::size_t size) {
  insp::alloc_counter::bump();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  insp::alloc_counter::bump();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  insp::alloc_counter::bump();
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // INSP_DEFINE_COUNTING_ALLOCATOR
