#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace insp {

namespace {

std::string format_tick(double v) {
  char buf[32];
  if (std::abs(v) >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2gM", v / 1e6);
  } else if (std::abs(v) >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3gk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

} // namespace

std::string render_ascii_chart(const std::vector<ChartSeries>& series,
                               const ChartOptions& options) {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      if (!std::isfinite(y) || !std::isfinite(x)) continue;
      any = true;
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << "\n";
  if (!any) {
    out << "  (no finite data points to plot)\n";
    return out.str();
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;
  // Pad y-range 5% so extremes don't sit on the frame.
  const double ypad = 0.05 * (ymax - ymin);
  ymin -= ypad;
  ymax += ypad;

  const int W = std::max(16, options.width);
  const int H = std::max(6, options.height);
  std::vector<std::string> grid(H, std::string(W, ' '));

  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      if (!std::isfinite(y) || !std::isfinite(x)) continue;
      int col = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) * (W - 1)));
      int row = static_cast<int>(std::lround((y - ymin) / (ymax - ymin) * (H - 1)));
      col = std::clamp(col, 0, W - 1);
      row = std::clamp(row, 0, H - 1);
      grid[H - 1 - row][col] = s.marker;
    }
  }

  const int label_w = 9;
  for (int r = 0; r < H; ++r) {
    std::string label(label_w, ' ');
    if (r == 0 || r == H - 1 || r == H / 2) {
      const double v = ymax - (ymax - ymin) * r / (H - 1);
      std::string t = format_tick(v);
      if (static_cast<int>(t.size()) > label_w) t.resize(label_w);
      label.replace(label_w - t.size(), t.size(), t);
    }
    out << label << " |" << grid[r] << "\n";
  }
  out << std::string(label_w + 1, ' ') << '+' << std::string(W, '-') << "\n";
  {
    std::string axis(label_w + 2 + W, ' ');
    std::string lo = format_tick(xmin), hi = format_tick(xmax);
    axis.replace(label_w + 2, lo.size(), lo);
    if (hi.size() < static_cast<std::size_t>(W)) {
      axis.replace(label_w + 2 + W - hi.size(), hi.size(), hi);
    }
    out << axis << "  " << options.x_label << "\n";
  }
  out << "  legend:";
  for (const auto& s : series) {
    out << "  " << s.marker << "=" << s.name;
  }
  if (!options.y_label.empty()) out << "   (y: " << options.y_label << ")";
  out << "\n";
  return out.str();
}

} // namespace insp
