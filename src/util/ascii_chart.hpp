// ASCII line-chart renderer.  The bench binaries replicate the paper's
// figures; this renders each figure's series directly in the terminal so
// "who wins / where the crossover falls" is visible without plotting tools.
#pragma once

#include <string>
#include <vector>

namespace insp {

struct ChartSeries {
  std::string name;
  char marker = '*';
  // (x, y) points; NaN y values are rendered as gaps (e.g. infeasible runs).
  std::vector<std::pair<double, double>> points;
};

struct ChartOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  std::string title;
  std::string x_label;
  std::string y_label;
};

/// Render series into a multi-line string. Ignores NaN points; returns a
/// note-only chart when all points are NaN.
std::string render_ascii_chart(const std::vector<ChartSeries>& series,
                               const ChartOptions& options);

} // namespace insp
