#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

namespace insp {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      positional_.push_back(a);
      continue;
    }
    a = a.substr(2);
    const auto eq = a.find('=');
    if (eq != std::string::npos) {
      options_[a.substr(0, eq)] = a.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[a] = argv[++i];
    } else {
      options_[a] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& def) const {
  auto it = options_.find(name);
  return it == options_.end() ? def : it->second;
}

long long CliArgs::get_int(const std::string& name, long long def) const {
  auto it = options_.find(name);
  return it == options_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double def) const {
  auto it = options_.find(name);
  return it == options_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  auto it = options_.find(name);
  if (it == options_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::uint64_t CliArgs::get_u64(const std::string& name,
                               std::uint64_t def) const {
  auto it = options_.find(name);
  return it == options_.end() ? def
                              : std::strtoull(it->second.c_str(), nullptr, 10);
}

std::vector<std::string> CliArgs::unknown(
    const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : options_) {
    (void)v;
    if (std::find(known.begin(), known.end(), k) == known.end()) {
      out.push_back(k);
    }
  }
  return out;
}

} // namespace insp
