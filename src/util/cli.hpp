// Minimal command-line option parser for bench/example binaries.
// Supports `--name value`, `--name=value`, and boolean `--flag` forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace insp {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;

  /// Non-option (positional) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  /// Options that were provided but never queried (typo detection).
  std::vector<std::string> unknown(const std::vector<std::string>& known) const;

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

} // namespace insp
