#include "util/csv.hpp"

#include <cmath>
#include <stdexcept>

namespace insp {

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  if (!file_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

CsvWriter::CsvWriter() : to_file_(false) {}

CsvWriter::~CsvWriter() {
  if (row_started_) end_row();
}

void CsvWriter::raw(const std::string& s) {
  if (to_file_) {
    file_ << s;
  } else {
    mem_ << s;
  }
}

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  for (const auto& n : names) cell(n);
  end_row();
}

CsvWriter& CsvWriter::cell(const std::string& v) {
  if (row_started_) raw(",");
  raw(escape(v));
  row_started_ = true;
  return *this;
}

CsvWriter& CsvWriter::cell(double v) {
  std::ostringstream ss;
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    ss << static_cast<long long>(v);
  } else {
    ss.precision(10);
    ss << v;
  }
  return cell(ss.str());
}

CsvWriter& CsvWriter::cell(long long v) {
  return cell(std::to_string(v));
}

void CsvWriter::end_row() {
  raw("\n");
  row_started_ = false;
}

std::string CsvWriter::str() const { return mem_.str(); }

} // namespace insp
