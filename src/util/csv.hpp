// Minimal CSV writer used by bench binaries to dump figure series next to
// the human-readable tables, so downstream plotting is one `gnuplot`/pandas
// call away.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace insp {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  /// In-memory mode (for tests); contents available via str().
  CsvWriter();
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(const std::vector<std::string>& names);

  CsvWriter& cell(const std::string& v);
  CsvWriter& cell(double v);
  CsvWriter& cell(long long v);
  CsvWriter& cell(int v) { return cell(static_cast<long long>(v)); }
  CsvWriter& cell(std::size_t v) { return cell(static_cast<long long>(v)); }
  void end_row();

  /// For in-memory mode.
  std::string str() const;

  /// Escape a field per RFC 4180 (quotes fields with commas/quotes/newlines).
  static std::string escape(const std::string& field);

 private:
  void raw(const std::string& s);
  std::ofstream file_;
  std::ostringstream mem_;
  bool to_file_ = false;
  bool row_started_ = false;
};

} // namespace insp
