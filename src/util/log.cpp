#include "util/log.hpp"

#include <cstdio>

namespace insp {

LogLevel Log::level_ = LogLevel::Warn;

LogLevel Log::level() { return level_; }

void Log::set_level(LogLevel lvl) { level_ = lvl; }

void Log::write(LogLevel lvl, const std::string& msg) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int i = static_cast<int>(lvl);
  if (i < 0 || i > 3) return;
  std::fprintf(stderr, "[%s] %s\n", names[i], msg.c_str());
}

} // namespace insp
