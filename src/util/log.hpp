// Tiny leveled logger.  Heuristics log placement decisions at Debug level so
// failures in large sweeps can be diagnosed without a debugger; benches run
// at Warn.  The experiment harness parallelizes sweeps in-process
// (util/thread_pool): each message is emitted as one fprintf (stdio's stream
// lock keeps lines whole, though lines from different workers may
// interleave), and set_level must be called before workers are spawned —
// the level itself is an unsynchronized static.
#pragma once

#include <sstream>
#include <string>

namespace insp {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static bool enabled(LogLevel lvl) { return lvl >= level(); }
  static void write(LogLevel lvl, const std::string& msg);

 private:
  static LogLevel level_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream ss_;
};
} // namespace detail

} // namespace insp

#define INSP_LOG(lvl)                      \
  if (!::insp::Log::enabled(lvl)) {        \
  } else                                   \
    ::insp::detail::LogLine(lvl)

#define INSP_DEBUG INSP_LOG(::insp::LogLevel::Debug)
#define INSP_INFO INSP_LOG(::insp::LogLevel::Info)
#define INSP_WARN INSP_LOG(::insp::LogLevel::Warn)
#define INSP_ERROR INSP_LOG(::insp::LogLevel::Error)
