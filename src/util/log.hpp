// Tiny leveled logger.  Heuristics log placement decisions at Debug level so
// failures in large sweeps can be diagnosed without a debugger; benches run
// at Warn.  Not thread-safe by design: the library is single-threaded per
// allocation problem (experiments parallelize across processes, not within).
#pragma once

#include <sstream>
#include <string>

namespace insp {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lvl);
  static bool enabled(LogLevel lvl) { return lvl >= level(); }
  static void write(LogLevel lvl, const std::string& msg);

 private:
  static LogLevel level_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, ss_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream ss_;
};
} // namespace detail

} // namespace insp

#define INSP_LOG(lvl)                      \
  if (!::insp::Log::enabled(lvl)) {        \
  } else                                   \
    ::insp::detail::LogLine(lvl)

#define INSP_DEBUG INSP_LOG(::insp::LogLevel::Debug)
#define INSP_INFO INSP_LOG(::insp::LogLevel::Info)
#define INSP_WARN INSP_LOG(::insp::LogLevel::Warn)
#define INSP_ERROR INSP_LOG(::insp::LogLevel::Error)
