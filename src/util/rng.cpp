#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace insp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
} // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next_u64());
  }
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    std::uint64_t r = next_u64();
    __uint128_t m = static_cast<__uint128_t>(r) * span;
    std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= threshold) {
      return lo + static_cast<std::int64_t>(m >> 64);
    }
  }
}

double Rng::canonical() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * canonical();
}

bool Rng::bernoulli(double p_true) { return canonical() < p_true; }

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() { return Rng(next_u64()); }

} // namespace insp
