// Deterministic, seedable pseudo-random generator for reproducible
// experiments.  xoshiro256** (Blackman & Vigna) seeded via splitmix64 so a
// single 64-bit seed fully determines every generated instance.  We do not
// use std::mt19937 + std::uniform_*_distribution because their outputs are
// not guaranteed identical across standard library implementations, and the
// experiment harness treats (seed -> instance) as a stable contract.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace insp {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next_u64(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Uniform real in [0, 1).
  double canonical();

  /// Bernoulli trial.
  bool bernoulli(double p_true);

  /// Uniformly pick an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Derive an independent child generator (stable given call order).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// splitmix64 step; exposed for tests and for stable hashing of seeds.
std::uint64_t splitmix64(std::uint64_t& state);

} // namespace insp
