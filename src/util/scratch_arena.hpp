// Persistent scratch arena for zero-allocation hot paths (docs/DESIGN.md
// §11).  A bump allocator over a chain of chunks:
//
//   * alloc<T>(n) hands out uninitialized, suitably-aligned storage from the
//     current chunk, growing the chain (geometrically) only when it runs
//     out — so after a warmup pass through a workload, steady-state use
//     never touches the heap (asserted by the counting-allocator tests);
//   * reset() rewinds every chunk to empty WITHOUT releasing memory —
//     O(chunks), no destructors run (only trivially-destructible element
//     types are accepted);
//   * growth appends a new chunk rather than reallocating, so pointers
//     handed out earlier in the same cycle stay valid even if a later
//     alloc() grows the arena.
//
// Ownership protocol: an arena belongs to exactly one logical caller —
// either a single-threaded object that owns it as a member, or a
// `thread_local` at function scope for const/concurrent code paths (e.g.
// repair planning, which runs the same const method on several
// PlacementState copies in parallel).  Spans obtained from an arena are
// dead the moment its owner calls reset(); never store them across calls.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace insp {

class ScratchArena {
 public:
  explicit ScratchArena(std::size_t first_chunk_bytes = 4096)
      : first_chunk_bytes_(first_chunk_bytes == 0 ? 64 : first_chunk_bytes) {}

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Uninitialized storage for `n` objects of T, aligned for T.  Valid
  /// until the next reset().  T must be trivially destructible (nothing is
  /// ever destroyed) and trivially copyable keeps use sane.
  template <class T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned types are not supported");
    const std::size_t bytes = n * sizeof(T);
    for (; cursor_ < chunks_.size(); ++cursor_) {
      Chunk& c = chunks_[cursor_];
      const std::size_t at = aligned_up(c.used, alignof(T));
      if (at + bytes <= c.size) {
        c.used = at + bytes;
        return reinterpret_cast<T*>(c.data.get() + at);
      }
    }
    grow(bytes + alignof(T));
    Chunk& c = chunks_[cursor_];
    const std::size_t at = aligned_up(c.used, alignof(T));
    assert(at + bytes <= c.size);
    c.used = at + bytes;
    return reinterpret_cast<T*>(c.data.get() + at);
  }

  /// Rewinds every chunk; keeps all memory for reuse.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    cursor_ = 0;
  }

  /// Total bytes reserved across chunks (growth diagnostic for tests).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t aligned_up(std::size_t v, std::size_t align) {
    return (v + (align - 1)) & ~(align - 1);
  }

  void grow(std::size_t at_least) {
    std::size_t next = chunks_.empty() ? first_chunk_bytes_
                                       : chunks_.back().size * 2;
    if (next < at_least) next = at_least;
    Chunk c;
    c.data = std::make_unique<unsigned char[]>(next);
    c.size = next;
    chunks_.push_back(std::move(c));
    cursor_ = chunks_.size() - 1;
  }

  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0;  ///< first chunk worth trying for the next alloc
};

} // namespace insp
