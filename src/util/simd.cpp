#include "util/simd.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace insp::simd {

namespace {

Isa detect() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Isa::kSse2;
#endif
  return Isa::kScalar;
}

// -2 = not yet initialized (read INSP_FORCE_ISA on first use),
// -1 = no force, >= 0 = forced Isa value.  Plain atomic: concurrent first
// uses race benignly to store the same env-derived value.
std::atomic<int> g_forced{-2};

int force_from_env() {
  const char* env = std::getenv("INSP_FORCE_ISA");
  Isa isa;
  if (env != nullptr && parse_isa(env, &isa)) return static_cast<int>(isa);
  return -1;
}

} // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
  }
  return "unknown";
}

bool parse_isa(const char* name, Isa* out) {
  if (name == nullptr) return false;
  char lower[8] = {};
  std::size_t n = std::strlen(name);
  if (n == 0 || n >= sizeof(lower)) return false;
  for (std::size_t i = 0; i < n; ++i) {
    lower[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(name[i])));
  }
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    if (std::strcmp(lower, to_string(isa)) == 0) {
      *out = isa;
      return true;
    }
  }
  return false;
}

Isa detected_isa() {
  static const Isa isa = detect();
  return isa;
}

Isa active_isa() {
  int f = g_forced.load(std::memory_order_relaxed);
  if (f == -2) {
    f = force_from_env();
    g_forced.store(f, std::memory_order_relaxed);
  }
  const Isa d = detected_isa();
  if (f < 0 || f > static_cast<int>(d)) return d;
  return static_cast<Isa>(f);
}

void set_forced_isa(Isa isa) {
  g_forced.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void clear_forced_isa() {
  g_forced.store(-1, std::memory_order_relaxed);
}

} // namespace insp::simd
