// Portable SIMD lane layer (docs/DESIGN.md §11): 2/4-wide double lanes over
// SSE2/AVX2 with a scalar fallback, selected by *runtime* CPUID dispatch so
// one binary serves every x86-64 host (and degrades to scalar elsewhere).
//
// Two pieces live here:
//
//   1. The ISA model.  `detected_isa()` is the widest path the running CPU
//      supports; `active_isa()` additionally honors a forced narrowing —
//      either programmatic (`set_forced_isa`, used by the differential
//      tests) or the INSP_FORCE_ISA environment variable ("scalar", "sse2",
//      "avx2").  Forcing never widens: the active ISA is min(forced,
//      detected), so INSP_FORCE_ISA=avx2 on an SSE2-only box runs SSE2.
//
//   2. The lane wrappers VSse2 / VAvx2: thin static-function shims over the
//      intrinsics, shaped so one `template <class V>` kernel body serves
//      every width.  Each wrapper is compiled ONLY inside its own
//      per-ISA translation unit (src/util/simd_kernels_{sse2,avx2}.cpp) —
//      see the dispatch rule in simd_kernels.hpp: code built with -mavx2
//      must never leak into baseline TUs, or the "portable binary" claim
//      dies by ODR merging.
//
// Bit-identity contract: every wrapper op is a single IEEE-754 elementwise
// instruction (add/sub/mul/min/max/cmp), which produces bit-identical
// results per lane across scalar, SSE2 and AVX2.  Kernels must keep the
// same expression tree as their scalar reference and must NOT enable FMA
// contraction (-mfma is deliberately never passed): a fused multiply-add
// rounds once where mul+add rounds twice, and the verdict equality the
// tests pin would break on epsilon-boundary cases.
#pragma once

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace insp::simd {

/// Instruction-set tiers, ordered: wider tiers strictly extend narrower
/// ones, so clamping by min() is meaningful.
enum class Isa : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* to_string(Isa isa);
/// Parses "scalar" / "sse2" / "avx2" (case-insensitive); false on junk.
bool parse_isa(const char* name, Isa* out);

/// Widest tier the running CPU supports (cached CPUID; kScalar off-x86).
Isa detected_isa();
/// min(forced, detected).  The force comes from set_forced_isa() or, if
/// never called, from INSP_FORCE_ISA read once on first use.
Isa active_isa();
/// Programmatic force for tests/benches; overrides INSP_FORCE_ISA.
void set_forced_isa(Isa isa);
/// Drops the programmatic force AND the env force: back to detected_isa().
void clear_forced_isa();

#if defined(__SSE2__)
/// Two double lanes over SSE2 (baseline on x86-64: no extra -m flags).
struct VSse2 {
  static constexpr int kLanes = 2;
  using reg = __m128d;
  using mask = __m128d;  ///< all-ones / all-zeros per lane

  static reg load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, reg v) { _mm_storeu_pd(p, v); }
  static reg broadcast(double x) { return _mm_set1_pd(x); }
  static reg add(reg a, reg b) { return _mm_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_pd(a, b); }
  static reg min(reg a, reg b) { return _mm_min_pd(a, b); }
  static reg max(reg a, reg b) { return _mm_max_pd(a, b); }
  static mask le(reg a, reg b) { return _mm_cmple_pd(a, b); }
  static mask and_(mask a, mask b) { return _mm_and_pd(a, b); }
  static mask or_(mask a, mask b) { return _mm_or_pd(a, b); }
  /// Lane l of the result = sign bit of lane l (cmp masks are all-ones).
  static unsigned bits(mask m) {
    return static_cast<unsigned>(_mm_movemask_pd(m));
  }
  static bool any(mask m) { return _mm_movemask_pd(m) != 0; }
  /// r[l] = base[idx[l]] — no SSE2 gather instruction; composed scalar.
  static reg gather(const double* base, const int* idx) {
    return _mm_set_pd(base[idx[1]], base[idx[0]]);
  }
  /// Mask of lanes where idx[l] == v.
  static mask eq_int(const int* idx, int v) {
    return _mm_castsi128_pd(_mm_set_epi64x(idx[1] == v ? -1 : 0,
                                           idx[0] == v ? -1 : 0));
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
/// Four double lanes over AVX2 (requires -mavx2: only the dedicated
/// kernel TU is built with it).
struct VAvx2 {
  static constexpr int kLanes = 4;
  using reg = __m256d;
  using mask = __m256d;

  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static reg broadcast(double x) { return _mm256_set1_pd(x); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static reg min(reg a, reg b) { return _mm256_min_pd(a, b); }
  static reg max(reg a, reg b) { return _mm256_max_pd(a, b); }
  static mask le(reg a, reg b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static mask and_(mask a, mask b) { return _mm256_and_pd(a, b); }
  static mask or_(mask a, mask b) { return _mm256_or_pd(a, b); }
  static unsigned bits(mask m) {
    return static_cast<unsigned>(_mm256_movemask_pd(m));
  }
  static bool any(mask m) { return _mm256_movemask_pd(m) != 0; }
  static reg gather(const double* base, const int* idx) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return _mm256_i32gather_pd(base, v, 8);
  }
  static mask eq_int(const int* idx, int v) {
    const __m128i lanes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    const __m128i eq = _mm_cmpeq_epi32(lanes, _mm_set1_epi32(v));
    // Sign-extend the 32-bit all-ones/zeros to 64-bit lane masks.
    return _mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq));
  }
};
#endif  // __AVX2__

} // namespace insp::simd
