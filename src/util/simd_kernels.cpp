// Baseline-flags TU: the single home of the scalar reference bodies (the
// per-ISA TUs call the *_range functions for degenerate cases and tails, so
// these must be non-inline and defined exactly once here), the scalar
// KernelTable, and the fallback-chain dispatch.  See the ODR rule in
// util/simd_kernels.hpp.
#include "util/simd_kernels.hpp"

#include "util/units.hpp"

namespace insp::simdk {

void probe_candidates_range(const ProbeBatchArgs& a, std::size_t begin,
                            std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (a.skip != nullptr && a.skip[i] != 0) continue;
    const int pid = a.pids[i];

    // Every touched processor other than the candidate must pass; the
    // candidate replaces its own folded entry with the richer check below.
    bool ok = a.others_failed == 0 ||
              (a.others_failed == 1 && a.others_failed_pid == pid);
    ok = ok && a.base_links_ok;

    // CPU: the whole group lands on the candidate.
    const double cpu = a.rho * (a.work[pid] + a.sum_w);
    ok = ok && (fits_within(cpu, a.speed_cap[pid]) ||
                (a.relaxed && fits_within(cpu, a.rho * a.work0[pid])));

    // NIC: added downloads plus the external edge volume that actually
    // crosses (edges toward the candidate itself become internal).
    const double nic =
        a.nic[pid] + a.dl_add[i] + (a.ext_total - a.vol_to[pid]);
    ok = ok && (fits_within(nic, a.bw_cap[pid]) ||
                (a.relaxed && fits_within(nic, a.nic0[pid])));

    // Pairwise links toward each external neighbor processor.
    for (std::size_t j = 0; ok && j < a.ext; ++j) {
      if (a.ext_pid[j] == pid) continue;
      const double used = a.link_base[j * a.stride + i] + a.ext_vol[j];
      ok = fits_within(used, a.link_cap) ||
           (a.relaxed && fits_within(used, a.link_pre[j * a.stride + i]));
    }

    a.verdicts[i] = ok ? 1 : 0;
  }
}

void probe_configs_range(const ProbeConfigsArgs& a, std::size_t begin,
                         std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    a.verdicts[i] = (a.shared_ok && fits_within(a.cpu, a.speed_caps[i]) &&
                     fits_within(a.nic, a.bw_caps[i]))
                        ? 1
                        : 0;
  }
}

namespace {

void scalar_probe_candidates(const ProbeBatchArgs& a) {
  probe_candidates_range(a, 0, a.num);
}
void scalar_probe_configs(const ProbeConfigsArgs& a) {
  probe_configs_range(a, 0, a.num);
}

constexpr KernelTable kScalarTable{simd::Isa::kScalar,
                                   &scalar_probe_candidates,
                                   &scalar_probe_configs};

} // namespace

const KernelTable* kernels_for(simd::Isa isa) {
  if (isa >= simd::Isa::kAvx2) {
    if (const KernelTable* t = avx2_table()) return t;
  }
  if (isa >= simd::Isa::kSse2) {
    if (const KernelTable* t = sse2_table()) return t;
  }
  return &kScalarTable;
}

const KernelTable* active_kernels() {
  return kernels_for(simd::active_isa());
}

} // namespace insp::simdk
