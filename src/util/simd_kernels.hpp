// Runtime-dispatched kernel tables for the hot flat loops (docs/DESIGN.md
// §11).  The lane wrappers in util/simd.hpp give one `template <class V>`
// body per kernel (util/simd_kernels_impl.hpp); this header is the ONLY
// interface the rest of the codebase sees: plain argument structs over flat
// arrays plus a per-ISA function-pointer table.
//
// ODR / portability rule — why three translation units:
//
//   * simd_kernels.cpp       — baseline flags.  Defines the scalar range
//                              functions (non-inline, the single definition
//                              everyone links against), the scalar table,
//                              and `kernels_for`.
//   * simd_kernels_sse2.cpp  — baseline flags on x86-64 (SSE2 is baseline);
//                              instantiates the templates with VSse2 only.
//   * simd_kernels_avx2.cpp  — built with -mavx2; instantiates with VAvx2
//                              only.  Nothing inline or template-shared with
//                              the other TUs is *defined* here, so the
//                              linker can never pick an AVX2-encoded body
//                              for a symbol reachable from baseline code —
//                              that is what keeps one binary safe on
//                              SSE2-only hosts.
//
// Each per-ISA TU exposes exactly one symbol (`sse2_table()` /
// `avx2_table()`) returning its KernelTable, or nullptr when the compiler
// can't target that ISA.  `kernels_for(isa)` walks the fallback chain
// avx2 → sse2 → scalar so callers always get a usable table.
//
// Every kernel is bit-identical across tables (same IEEE expression tree,
// no FMA — see util/simd.hpp); the ISA-dispatch differential tests pin it.
#pragma once

#include <cstddef>

#include "util/simd.hpp"

namespace insp::simdk {

/// Arguments for the batched candidate-feasibility sweep (the SoA probe of
/// core/placement_soa.hpp, flattened).  Per-pid arrays are indexed by the
/// gathered candidate pids; the link matrices are COLUMN-major —
/// `link_base[j * stride + i]` is the baseline usage of link
/// (pids[i], ext_pid[j]) — so a vector block of candidates loads
/// contiguously.  `stride` is normally `num`.
struct ProbeBatchArgs {
  // Per-pid gathered state (PlacementSoA), indexed by pids[i].
  const double* speed_cap;
  const double* bw_cap;
  const double* work;
  const double* nic;
  const double* work0;  ///< pre-transaction baselines (relaxed verdicts)
  const double* nic0;
  const double* vol_to;

  const int* pids;
  std::size_t num;
  const double* dl_add;  ///< per-candidate download-rate delta

  const double* link_base;  ///< column-major [j * stride + i]
  const double* link_pre;   ///< same layout; may be null in strict mode
  std::size_t stride;

  const int* ext_pid;  ///< external neighbor processors
  const double* ext_vol;
  std::size_t ext;

  const unsigned char* skip;  ///< non-zero lanes left untouched; may be null

  double rho;
  double sum_w;
  double ext_total;
  double link_cap;
  bool relaxed;

  int others_failed;
  int others_failed_pid;
  bool base_links_ok;

  unsigned char* verdicts;  ///< out: 0/1 per candidate
};

/// Arguments for the hypothetical-purchase sweep: candidate i is an empty
/// processor with capacities (speed_caps[i], bw_caps[i]); everything
/// candidate-independent has been folded into cpu/nic/shared_ok by the
/// caller (same fold for every ISA, so it stays scalar).
struct ProbeConfigsArgs {
  const double* speed_caps;
  const double* bw_caps;
  std::size_t num;
  double cpu;        ///< rho * sum_w
  double nic;        ///< dl_all + ext_total
  bool shared_ok;
  unsigned char* verdicts;
};

/// One entry per kernel; filled per-ISA.  All tables compute bit-identical
/// results — wider tables are just faster.
///
/// A third kernel (the event-sim per-period ready-caps pass) used to live
/// here; it was retired when benchmarking showed its gather-heavy body
/// losing to the compiler-autovectorized scalar loop, and the DAG out-edge
/// generalization made the gather pattern irregular anyway.  The sim now
/// folds caps inline over its CSR plan (src/sim/event_sim.cpp).
struct KernelTable {
  simd::Isa isa;
  void (*probe_candidates)(const ProbeBatchArgs&);
  void (*probe_configs)(const ProbeConfigsArgs&);
};

/// Table for exactly `isa` if this build can target it, else the widest
/// narrower table (avx2 → sse2 → scalar; scalar always exists).
const KernelTable* kernels_for(simd::Isa isa);

/// Shorthand: kernels_for(simd::active_isa()).
const KernelTable* active_kernels();

/// Per-ISA TU entry points; nullptr when the compiler can't emit that ISA.
const KernelTable* sse2_table();
const KernelTable* avx2_table();

/// Scalar reference bodies over index sub-ranges [begin, end).  Non-inline,
/// defined once in simd_kernels.cpp with baseline flags: the vector kernels
/// call them for degenerate folds and tail lanes, which both keeps the
/// per-ISA TUs free of shared inline definitions (ODR rule above) and
/// guarantees the tails are byte-for-byte the scalar path.
void probe_candidates_range(const ProbeBatchArgs& a, std::size_t begin,
                            std::size_t end);
void probe_configs_range(const ProbeConfigsArgs& a, std::size_t begin,
                         std::size_t end);

} // namespace insp::simdk
