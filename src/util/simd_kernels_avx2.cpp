// AVX2 kernel TU — the ONLY translation unit built with -mavx2 (CMake sets
// it per-source when the compiler supports the flag; the guard below keeps
// the file a stub otherwise).  The VAvx2 template instantiations live only
// here, and nothing defined here is inline-shared with baseline TUs, so no
// AVX2-encoded body can be linker-merged into code that runs before the
// CPUID dispatch.  See the ODR rule in util/simd_kernels.hpp.
#include "util/simd_kernels.hpp"

#if defined(__AVX2__)

#include "util/simd_kernels_impl.hpp"

namespace insp::simdk {

namespace {

void avx2_probe_candidates(const ProbeBatchArgs& a) {
  probe_candidates_t<simd::VAvx2>(a);
}
void avx2_probe_configs(const ProbeConfigsArgs& a) {
  probe_configs_t<simd::VAvx2>(a);
}

constexpr KernelTable kAvx2Table{simd::Isa::kAvx2, &avx2_probe_candidates,
                                 &avx2_probe_configs};

} // namespace

const KernelTable* avx2_table() { return &kAvx2Table; }

} // namespace insp::simdk

#else  // !__AVX2__

namespace insp::simdk {
const KernelTable* avx2_table() { return nullptr; }
} // namespace insp::simdk

#endif
