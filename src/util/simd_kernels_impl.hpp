// Width-generic kernel bodies, instantiated once per lane wrapper inside the
// per-ISA translation units (see the ODR rule in util/simd_kernels.hpp —
// this header must ONLY be included by simd_kernels_{sse2,avx2}.cpp, never
// by baseline code).
//
// Bit-identity discipline: every body mirrors the scalar reference in
// util/simd_kernels.cpp operation-for-operation — same expression trees,
// same fold order, tails and degenerate cases delegated to the extern
// scalar range functions.  min/max tie handling matches the scalar
// ternaries in value, and no FMA contraction is possible because -mfma is
// never passed (util/simd.hpp).
#pragma once

#include <cstddef>

#include "util/simd.hpp"
#include "util/simd_kernels.hpp"
#include "util/units.hpp"

namespace insp::simdk {

/// Vector twin of insp::fits_within (util/units.hpp):
///   load <= cap + eps * (1 + (cap > 0 ? cap : 0))
/// The ternary is max(cap, 0) for every value the ledgers produce (no NaNs;
/// -0.0 folds to +0.0 under both forms before the add).
template <class V>
inline typename V::mask fits_v(typename V::reg load, typename V::reg cap) {
  const typename V::reg eps = V::broadcast(kCapacityEpsilon);
  const typename V::reg one = V::broadcast(1.0);
  const typename V::reg zero = V::broadcast(0.0);
  const typename V::reg tol =
      V::add(cap, V::mul(eps, V::add(one, V::max(cap, zero))));
  return V::le(load, tol);
}

template <class V>
void probe_candidates_t(const ProbeBatchArgs& a) {
  // The others-fold and baseline-link degenerate cases make at most one
  // candidate passable; not worth lanes.  (Common case: both clean.)
  if (a.others_failed != 0 || !a.base_links_ok) {
    probe_candidates_range(a, 0, a.num);
    return;
  }
  constexpr std::size_t L = static_cast<std::size_t>(V::kLanes);
  const typename V::reg rho = V::broadcast(a.rho);
  const typename V::reg sum_w = V::broadcast(a.sum_w);
  const typename V::reg ext_total = V::broadcast(a.ext_total);
  const typename V::reg link_cap = V::broadcast(a.link_cap);
  std::size_t i = 0;
  for (; i + L <= a.num; i += L) {
    // CPU: the whole group lands on the candidate.
    const typename V::reg cpu =
        V::mul(rho, V::add(V::gather(a.work, a.pids + i), sum_w));
    typename V::mask ok = fits_v<V>(cpu, V::gather(a.speed_cap, a.pids + i));
    if (a.relaxed) {
      ok = V::or_(ok, fits_v<V>(cpu, V::mul(rho, V::gather(a.work0,
                                                           a.pids + i))));
    }
    // NIC: added downloads plus the external volume that actually crosses.
    const typename V::reg nic =
        V::add(V::add(V::gather(a.nic, a.pids + i), V::load(a.dl_add + i)),
               V::sub(ext_total, V::gather(a.vol_to, a.pids + i)));
    typename V::mask ok_nic = fits_v<V>(nic, V::gather(a.bw_cap, a.pids + i));
    if (a.relaxed) {
      ok_nic = V::or_(ok_nic, fits_v<V>(nic, V::gather(a.nic0, a.pids + i)));
    }
    ok = V::and_(ok, ok_nic);
    // Pairwise links toward each external neighbor processor.  Column-major
    // matrices: lane block i..i+L-1 of column j is one contiguous load.
    for (std::size_t j = 0; j < a.ext && V::any(ok); ++j) {
      const typename V::reg used =
          V::add(V::load(a.link_base + j * a.stride + i),
                 V::broadcast(a.ext_vol[j]));
      typename V::mask pass = fits_v<V>(used, link_cap);
      if (a.relaxed) {
        pass = V::or_(pass,
                      fits_v<V>(used, V::load(a.link_pre + j * a.stride + i)));
      }
      // Lanes whose candidate IS this neighbor keep the edge internal: the
      // scalar loop `continue`s, i.e. the link check vacuously passes.
      pass = V::or_(pass, V::eq_int(a.pids + i, a.ext_pid[j]));
      ok = V::and_(ok, pass);
    }
    const unsigned bits = V::bits(ok);
    for (std::size_t l = 0; l < L; ++l) {
      if (a.skip != nullptr && a.skip[i + l] != 0) continue;
      a.verdicts[i + l] = static_cast<unsigned char>((bits >> l) & 1u);
    }
  }
  probe_candidates_range(a, i, a.num);
}

template <class V>
void probe_configs_t(const ProbeConfigsArgs& a) {
  if (!a.shared_ok) {
    probe_configs_range(a, 0, a.num);
    return;
  }
  constexpr std::size_t L = static_cast<std::size_t>(V::kLanes);
  const typename V::reg cpu = V::broadcast(a.cpu);
  const typename V::reg nic = V::broadcast(a.nic);
  std::size_t i = 0;
  for (; i + L <= a.num; i += L) {
    const typename V::mask ok =
        V::and_(fits_v<V>(cpu, V::load(a.speed_caps + i)),
                fits_v<V>(nic, V::load(a.bw_caps + i)));
    const unsigned bits = V::bits(ok);
    for (std::size_t l = 0; l < L; ++l) {
      a.verdicts[i + l] = static_cast<unsigned char>((bits >> l) & 1u);
    }
  }
  probe_configs_range(a, i, a.num);
}

} // namespace insp::simdk
