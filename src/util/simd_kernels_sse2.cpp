// SSE2 kernel TU.  Built with baseline flags (SSE2 is part of the x86-64
// baseline, so no extra -m switches); the VSse2 template instantiations
// live only here.  See the ODR rule in util/simd_kernels.hpp.
#include "util/simd_kernels.hpp"

#if defined(__SSE2__)

#include "util/simd_kernels_impl.hpp"

namespace insp::simdk {

namespace {

void sse2_probe_candidates(const ProbeBatchArgs& a) {
  probe_candidates_t<simd::VSse2>(a);
}
void sse2_probe_configs(const ProbeConfigsArgs& a) {
  probe_configs_t<simd::VSse2>(a);
}

constexpr KernelTable kSse2Table{simd::Isa::kSse2, &sse2_probe_candidates,
                                 &sse2_probe_configs};

} // namespace

const KernelTable* sse2_table() { return &kSse2Table; }

} // namespace insp::simdk

#else  // !__SSE2__

namespace insp::simdk {
const KernelTable* sse2_table() { return nullptr; }
} // namespace insp::simdk

#endif
