#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace insp {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  assert(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  assert(n_ > 0);
  return max_;
}

void SampleSet::add(double x) {
  xs_.push_back(x);
  sorted_.insert(std::upper_bound(sorted_.begin(), sorted_.end(), x), x);
}

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double SampleSet::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double SampleSet::min() const {
  assert(!xs_.empty());
  return sorted_.front();
}

double SampleSet::max() const {
  assert(!xs_.empty());
  return sorted_.back();
}

double SampleSet::percentile(double p) const {
  assert(!xs_.empty());
  if (sorted_.size() == 1) return sorted_[0];
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

} // namespace insp
