// Streaming statistics accumulators used by the experiment harness to
// aggregate per-seed results (mean cost, failure rates, percentiles).
#pragma once

#include <cstddef>
#include <vector>

namespace insp {

/// Welford running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1); 0 for n < 2
  double stddev() const;
  double min() const;  ///< requires non-empty
  double max() const;  ///< requires non-empty

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples; supports exact percentiles. Suitable for the small sample
/// counts (tens per configuration) the experiments use.
///
/// The sorted view is maintained eagerly on add() — an ordered insertion,
/// O(n) worst case, trivial at experiment sample counts — so every const
/// accessor is genuinely read-only.  (A lazily sorted `mutable` cache would
/// race when one SampleSet is read from two sweep threads; the sweep engine
/// aggregates into per-cell sets read concurrently by reporting code.)
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;   ///< requires non-empty
  double max() const;   ///< requires non-empty
  /// Linear-interpolated percentile, p in [0,100]. Requires non-empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Samples in insertion order (the determinism tests compare these).
  const std::vector<double>& samples() const { return xs_; }

 private:
  std::vector<double> xs_;      ///< insertion order
  std::vector<double> sorted_;  ///< ascending, updated by add()
};

} // namespace insp
