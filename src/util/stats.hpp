// Streaming statistics accumulators used by the experiment harness to
// aggregate per-seed results (mean cost, failure rates, percentiles).
#pragma once

#include <cstddef>
#include <vector>

namespace insp {

/// Welford running mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1); 0 for n < 2
  double stddev() const;
  double min() const;  ///< requires non-empty
  double max() const;  ///< requires non-empty

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples; supports exact percentiles. Suitable for the small sample
/// counts (tens per configuration) the experiments use.
class SampleSet {
 public:
  void add(double x);
  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated percentile, p in [0,100]. Requires non-empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& samples() const { return xs_; }

 private:
  void ensure_sorted() const;
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

} // namespace insp
