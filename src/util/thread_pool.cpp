#include "util/thread_pool.hpp"

#include <atomic>
#include <utility>

namespace insp {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = resolve_num_threads(num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

unsigned ThreadPool::resolve_num_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::parallel_for(std::size_t n, unsigned num_threads,
                              const std::function<void(std::size_t)>& body) {
  const unsigned threads = resolve_num_threads(num_threads);
  if (n <= 1 || threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // One long-running task per worker, all pulling indices from a shared
  // counter.  Cheaper than queueing n closures and naturally load-balanced.
  std::atomic<std::size_t> next{0};
  const std::size_t spawned =
      std::min<std::size_t>(threads, n);  // never more workers than items
  ThreadPool pool(static_cast<unsigned>(spawned));
  for (std::size_t w = 0; w < spawned; ++w) {
    pool.submit([&next, n, &body] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        body(i);
      }
    });
  }
  pool.wait();
}

} // namespace insp
