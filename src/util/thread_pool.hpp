// Fixed-size thread pool with a single shared task queue (no work stealing).
// Built for the experiment harness: coarse-grained, independent tasks whose
// results are written to pre-allocated slots, so the pool needs no futures
// or return plumbing.  Tasks must not throw — an escaping exception
// terminates the process.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace insp {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task.  May be called from any thread, including workers.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished running.
  void wait();

  /// 0 -> hardware_concurrency (at least 1); otherwise the request itself.
  static unsigned resolve_num_threads(unsigned requested);

  /// Run body(0..n-1) across `num_threads` workers (0 = auto).  Iterations
  /// are claimed from a shared atomic counter, so the assignment of index
  /// to thread is nondeterministic — callers needing deterministic results
  /// must make each iteration self-contained (own RNG, own output slot).
  /// Runs inline when n <= 1 or only one thread is requested/available.
  static void parallel_for(std::size_t n, unsigned num_threads,
                           const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;  ///< signals workers: task ready / stop
  std::condition_variable cv_idle_;  ///< signals wait(): everything drained
  std::size_t in_flight_ = 0;        ///< queued + currently running tasks
  bool stop_ = false;
};

} // namespace insp
