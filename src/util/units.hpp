// Strong-ish unit conventions for the CINSP library.
//
// The paper mixes "GB", "Gbps" and "MB" loosely; this header is the single
// point of truth for the calibrated reading (docs/DESIGN.md §6):
//   - data sizes        : megabytes               (MB)
//   - bandwidths, rates : megabytes per second    (MB/s)
//   - operator work     : mega-operations         (Mops)
//   - compute speed     : mega-operations per sec (Mops/s); catalog GHz x1000
//   - money             : US dollars, integral cents never needed (catalog is
//                         whole dollars), stored as double for aggregation
//   - throughput rho    : results per second
#pragma once

#include <cstdint>

namespace insp {

/// Data size in megabytes.
using MegaBytes = double;
/// Bandwidth / transfer rate in megabytes per second.
using MBps = double;
/// Computational work in mega-operations (10^6 ops).
using MegaOps = double;
/// Compute speed in mega-operations per second.
using MopsPerSec = double;
/// Monetary cost in US dollars.
using Dollars = double;
/// Frequency in hertz (1/s).
using Hertz = double;
/// Application throughput in results per second.
using Throughput = double;

namespace units {

/// Convert a NIC bandwidth quoted in Gbps (paper Table 1) to MB/s.
constexpr MBps gbps(double g) { return g * 125.0; }

/// Convert an interconnect bandwidth quoted in GB/s (paper: "1 GB link",
/// "10 GB network card" on servers) to MB/s.
constexpr MBps gigabytes_per_sec(double g) { return g * 1000.0; }

/// Convert a CPU speed quoted in GHz (paper Table 1) to Mops/s.
constexpr MopsPerSec ghz(double g) { return g * 1000.0; }

} // namespace units

/// Relative/absolute tolerance used when comparing resource loads against
/// capacities.  Loads are sums of O(10^3) doubles, so a small epsilon avoids
/// spurious "capacity exceeded by 1e-12" failures without masking real
/// violations (all real violations in this problem are >= one object rate).
constexpr double kCapacityEpsilon = 1e-6;

/// `a <= b` up to kCapacityEpsilon, scaled by magnitude of b.
constexpr bool fits_within(double load, double capacity) {
  return load <= capacity + kCapacityEpsilon * (1.0 + (capacity > 0 ? capacity : 0.0));
}

} // namespace insp
