#include "core/allocator.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

TEST(Allocator, HeuristicNamesRoundTrip) {
  for (HeuristicKind k : all_heuristics()) {
    const auto back = heuristic_from_name(heuristic_name(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(heuristic_from_name("Nope").has_value());
  EXPECT_EQ(all_heuristics().size(), 6u);
}

TEST(Allocator, FullPipelineProducesValidatedPlan) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  for (HeuristicKind k : all_heuristics()) {
    Rng rng(3);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    ASSERT_TRUE(out.success) << heuristic_name(k) << ": "
                             << out.failure_reason;
    EXPECT_GT(out.cost, 0.0);
    EXPECT_EQ(out.num_processors, out.allocation.num_processors());
    EXPECT_DOUBLE_EQ(out.cost, out.allocation.total_cost(f.catalog));
    // Downloads were filled in by server selection.
    for (const auto& p : out.allocation.processors) {
      EXPECT_FALSE(p.ops.empty());
    }
  }
}

TEST(Allocator, DowngradeReducesOrKeepsCost) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  for (HeuristicKind k : all_heuristics()) {
    Rng r1(5), r2(5);
    AllocatorOptions with, without;
    without.downgrade = false;
    const AllocationOutcome a = allocate(f.problem(), k, r1, with);
    const AllocationOutcome b = allocate(f.problem(), k, r2, without);
    ASSERT_TRUE(a.success && b.success) << heuristic_name(k);
    EXPECT_LE(a.cost, b.cost) << heuristic_name(k);
    EXPECT_DOUBLE_EQ(a.cost_before_downgrade, b.cost) << heuristic_name(k);
  }
}

TEST(Allocator, PlacementFailureReported) {
  const Fixture f = fig1a_fixture(2.5, 30.0);  // impossible root
  Rng rng(1);
  const AllocationOutcome out =
      allocate(f.problem(), HeuristicKind::CompGreedy, rng);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("placement:"), std::string::npos);
}

TEST(Allocator, ServerSelectionFailureReported) {
  Fixture f = fig1a_fixture(1.0, 480.0);
  f.platform = testhelpers::simple_platform({{0, 1, 2}}, 3, /*card=*/500.0);
  Rng rng(1);
  const AllocationOutcome out =
      allocate(f.problem(), HeuristicKind::SubtreeBottomUp, rng);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("server-selection:"), std::string::npos);
}

TEST(Allocator, PaperDefaultPairsRandomWithRandomSelection) {
  // Contrived platform where random selection is very likely to overload:
  // two hosts for each heavy type, one of which is tiny.
  Fixture f = fig1a_fixture(1.0, 480.0);
  f.platform = testhelpers::simple_platform({{0, 1, 2}, {0, 1, 2}}, 3,
                                            /*card=*/1500.0);
  int random_failures = 0, three_loop_failures = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng r1(seed), r2(seed);
    AllocatorOptions forced;
    forced.server_selection = ServerSelectionKind::ThreeLoop;
    const auto rnd = allocate(f.problem(), HeuristicKind::Random, r1);
    const auto tl = allocate(f.problem(), HeuristicKind::Random, r2, forced);
    random_failures += rnd.success ? 0 : 1;
    three_loop_failures += tl.success ? 0 : 1;
  }
  // The capacity-aware policy should not fail more often than the random
  // one, and the random one should fail at least occasionally here.
  EXPECT_LE(three_loop_failures, random_failures);
  EXPECT_GT(random_failures, 0);
}

TEST(Allocator, InvalidProblemRejected) {
  Problem p;  // all nulls
  Rng rng(1);
  const AllocationOutcome out = allocate(p, HeuristicKind::Random, rng);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.failure_reason.find("invalid"), std::string::npos);
}

TEST(Allocator, DeterministicGivenSeed) {
  const Fixture f = testhelpers::random_fixture(4, 30, 1.1);
  for (HeuristicKind k : all_heuristics()) {
    Rng r1(42), r2(42);
    const AllocationOutcome a = allocate(f.problem(), k, r1);
    const AllocationOutcome b = allocate(f.problem(), k, r2);
    ASSERT_EQ(a.success, b.success) << heuristic_name(k);
    if (a.success) {
      EXPECT_DOUBLE_EQ(a.cost, b.cost) << heuristic_name(k);
      EXPECT_EQ(a.allocation.op_to_proc, b.allocation.op_to_proc);
    }
  }
}

TEST(Allocator, DescribeMentionsEveryProcessor) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Rng rng(1);
  const AllocationOutcome out =
      allocate(f.problem(), HeuristicKind::Random, rng);
  ASSERT_TRUE(out.success);
  const std::string desc = out.allocation.describe(f.problem());
  for (int u = 0; u < out.num_processors; ++u) {
    EXPECT_NE(desc.find("P" + std::to_string(u) + " "), std::string::npos);
  }
}

} // namespace
} // namespace insp
