#include "core/constraints.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;
using testhelpers::simple_platform;

/// Hand-built allocation over the fig1a fixture: all five ops on one
/// processor, downloads routed to server 0.
Allocation one_proc_allocation(const Fixture&, ProcessorConfig cfg) {
  Allocation a;
  PurchasedProcessor proc;
  proc.config = cfg;
  proc.ops = {0, 1, 2, 3, 4};
  proc.downloads = {{0, 0}, {1, 0}, {2, 0}};
  a.processors.push_back(proc);
  a.op_to_proc = {0, 0, 0, 0, 0};
  return a;
}

TEST(Constraints, ValidSingleProcessorPasses) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  const CheckReport r = check_allocation(f.problem(), a);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(Constraints, DetectsUnassignedOperator) {
  const Fixture f = fig1a_fixture();
  Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  a.op_to_proc[2] = kNoNode;
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, ViolationKind::Structure);
}

TEST(Constraints, DetectsDoubleOwnership) {
  const Fixture f = fig1a_fixture();
  Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  PurchasedProcessor extra;
  extra.config = f.catalog.cheapest();
  extra.ops = {2};  // op 2 also owned by proc 0
  a.processors.push_back(extra);
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, ViolationKind::Structure);
}

TEST(Constraints, DetectsCpuOverload) {
  // Fastest CPU is 46,880 Mops; mass 270 at alpha 2.2 -> far beyond.
  const Fixture f = fig1a_fixture(2.2, 30.0);
  const Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.kind == ViolationKind::CpuCapacity;
  }
  EXPECT_TRUE(found) << r.summary();
}

TEST(Constraints, DetectsProcNicOverloadFromDownloads) {
  // 1 Gbps card = 125 MB/s; large objects at 0.5 Hz -> 3 types * ~240 MB/s.
  const Fixture f = fig1a_fixture(0.5, 480.0);
  Allocation a = one_proc_allocation(
      f, *f.catalog.cheapest_meeting(f.catalog.max_speed(), 0.0));
  // Force the smallest NIC (cheapest_meeting with bw=0 gives 1 Gbps).
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.kind == ViolationKind::ProcNic;
  }
  EXPECT_TRUE(found) << r.summary();
}

TEST(Constraints, DetectsCrossProcessorCommOnNic) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  // Custom catalog: plenty CPU, tiny NIC (20 MB/s).
  f.catalog = PriceCatalog(100.0, {{50000.0, 0.0}}, {{20.0, 0.0}});
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.cheapest();
  p0.ops = {0, 1, 2, 3};  // everything except n1
  p0.downloads = {{0, 0}, {1, 0}, {2, 0}};
  p1.config = f.catalog.cheapest();
  p1.ops = {4};  // n1 alone: edge n1->n2 = 30 MB crosses
  p1.downloads = {{0, 0}, {1, 0}};
  a.processors = {p0, p1};
  a.op_to_proc = {0, 0, 0, 0, 1};
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  bool nic = false;
  for (const auto& v : r.violations) nic |= v.kind == ViolationKind::ProcNic;
  EXPECT_TRUE(nic) << r.summary();
}

TEST(Constraints, DetectsServerCardOverload) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  // Server card of 7 MB/s < total download demand 22.5 MB/s.
  f.platform = simple_platform({{0, 1, 2}}, 3, /*server_card=*/7.0);
  const Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.kind == ViolationKind::ServerCard;
  }
  EXPECT_TRUE(found) << r.summary();
}

TEST(Constraints, DetectsServerProcLinkOverload) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.platform = simple_platform({{0, 1, 2}}, 3, 10000.0, /*link_sp=*/10.0);
  const Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.kind == ViolationKind::ServerProcLink;
  }
  EXPECT_TRUE(found) << r.summary();
}

TEST(Constraints, DetectsProcProcLinkOverload) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.platform = simple_platform({{0, 1, 2}}, 3, 10000.0, 1000.0,
                               /*link_pp=*/25.0);
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {0, 1, 2, 3};
  p0.downloads = {{0, 0}, {1, 0}, {2, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {4};
  p1.downloads = {{0, 0}, {1, 0}};
  a.processors = {p0, p1};
  a.op_to_proc = {0, 0, 0, 0, 1};
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) {
    found |= v.kind == ViolationKind::ProcProcLink;
  }
  EXPECT_TRUE(found) << r.summary();
}

TEST(Constraints, DetectsMissingDownloadRoute) {
  const Fixture f = fig1a_fixture();
  Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  a.processors[0].downloads.pop_back();  // drop o2's route
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, ViolationKind::DownloadRouting);
}

TEST(Constraints, DetectsDuplicateDownloadRoute) {
  const Fixture f = fig1a_fixture();
  Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  a.processors[0].downloads.push_back({0, 1});  // o0 routed twice
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, ViolationKind::DownloadRouting);
}

TEST(Constraints, DetectsDownloadFromNonHostingServer) {
  Fixture f = fig1a_fixture();
  f.platform = simple_platform({{0, 1}, {2}}, 3);
  Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  a.processors[0].downloads = {{0, 0}, {1, 0}, {2, 0}};  // S0 lacks o2
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, ViolationKind::DownloadRouting);
}

TEST(Constraints, DetectsUnneededDownloadRoute) {
  const Fixture f = fig1a_fixture();
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {0, 1, 2, 3};
  p0.downloads = {{0, 0}, {1, 0}, {2, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {4};
  p1.downloads = {{0, 0}, {1, 0}, {2, 0}};  // o2 not needed by n1
  a.processors = {p0, p1};
  a.op_to_proc = {0, 0, 0, 0, 1};
  const CheckReport r = check_allocation(f.problem(), a);
  ASSERT_FALSE(r.ok());
  bool routing = false;
  for (const auto& v : r.violations) {
    routing |= v.kind == ViolationKind::DownloadRouting;
  }
  EXPECT_TRUE(routing);
}

TEST(Constraints, SummaryNamesTheEquation) {
  const Fixture f = fig1a_fixture(2.2, 30.0);
  const Allocation a = one_proc_allocation(f, f.catalog.most_expensive());
  const CheckReport r = check_allocation(f.problem(), a);
  EXPECT_NE(r.summary().find("cpu-capacity(1)"), std::string::npos);
}

TEST(Constraints, LoadsComputationGroundTruth) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {4, 3};  // n1, n2
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {0, 1, 2};  // n4, n5, n3
  p1.downloads = {{1, 0}, {2, 0}};
  a.processors = {p0, p1};
  a.op_to_proc = {1, 1, 1, 0, 0};
  const auto loads = compute_processor_loads(f.problem(), a);
  // P0: works n1 = 30, n2 = 40 -> 70; edge n2->n5 crosses (40 out).
  EXPECT_DOUBLE_EQ(loads[0].cpu_demand, 70.0);
  EXPECT_DOUBLE_EQ(loads[0].comm_out, 40.0);
  EXPECT_DOUBLE_EQ(loads[0].comm_in, 0.0);
  EXPECT_DOUBLE_EQ(loads[0].download, 15.0);  // o0 + o1
  // P1: works n5 = 40, n3 = 50, n4 = 90 -> 180; in 40; downloads o1+o2 = 25.
  EXPECT_DOUBLE_EQ(loads[1].cpu_demand, 180.0);
  EXPECT_DOUBLE_EQ(loads[1].comm_in, 40.0);
  EXPECT_DOUBLE_EQ(loads[1].comm_out, 0.0);
  EXPECT_DOUBLE_EQ(loads[1].download, 25.0);
  // The split allocation is valid overall.
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

} // namespace
} // namespace insp
