// Placement-state fuzzer for shared-subexpression DAGs: the same
// random-walk-vs-recompute-oracle discipline as placement_fuzz_test.cpp,
// but over generate_shared_dag instances where operators fan out to
// several consumers.  The oracle restates the multicast charging rule of
// docs/DESIGN.md §13 independently: a producer ships ONE copy of its
// result to each *distinct* remote processor hosting consumers, and that
// copy is as large as the biggest out-edge delta into that processor —
// co-hosted consumers ride the same transfer for free.
#include "core/placement_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "platform/catalog.hpp"
#include "platform/platform.hpp"
#include "tree/tree_generator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace insp {
namespace {

struct FuzzWorld {
  OperatorTree dag;
  Platform platform;
  PriceCatalog prices;

  Problem problem() const {
    Problem p;
    p.tree = &dag;
    p.platform = &platform;
    p.catalog = &prices;
    p.rho = 1.0;
    return p;
  }
};

FuzzWorld make_fuzz_world(std::uint64_t seed, int n_ops, double share_prob) {
  Rng gen(seed);
  TreeGenConfig tcfg;
  tcfg.num_operators = n_ops;
  tcfg.alpha = 1.0;
  tcfg.num_object_types = 6;
  OperatorTree dag = generate_shared_dag(gen, tcfg, share_prob);
  std::vector<DataServer> servers;
  for (int s = 0; s < 3; ++s) {
    servers.push_back(DataServer{s, units::gigabytes_per_sec(10.0),
                                 {0, 1, 2, 3, 4, 5}});
  }
  Platform platform(std::move(servers), units::gigabytes_per_sec(1.0),
                    units::gigabytes_per_sec(1.0), 6);
  return FuzzWorld{std::move(dag), std::move(platform),
                   PriceCatalog::paper_default()};
}

struct Oracle {
  std::vector<int> live;
  std::map<int, double> cpu_demand, download, comm;
  std::map<std::pair<int, int>, double> link_traffic;
  double total_cost = 0.0;
  std::vector<int> overloaded_procs;
  std::vector<std::pair<int, int>> overloaded_links;
};

Oracle recompute(const FuzzWorld& world, const PlacementState& state) {
  Oracle o;
  const OperatorTree& dag = world.dag;
  const double rho = 1.0;
  o.live = state.live_processors();
  for (int pid : o.live) {
    double work = 0.0;
    std::vector<int> types;
    for (int op = 0; op < dag.num_operators(); ++op) {
      if (state.proc_of(op) != pid) continue;
      work += dag.op(op).work;
      for (int t : dag.object_types_of(op)) types.push_back(t);
    }
    std::sort(types.begin(), types.end());
    types.erase(std::unique(types.begin(), types.end()), types.end());
    double download = 0.0;
    for (int t : types) download += dag.catalog().type(t).rate();
    o.cpu_demand[pid] = rho * work;
    o.download[pid] = download;
    o.comm[pid] = 0.0;
    o.total_cost += world.prices.cost(state.config(pid));
  }
  // Multicast dedup: one shipment per (producer, distinct remote consumer
  // processor), sized by the largest out-edge delta into that processor.
  for (int op = 0; op < dag.num_operators(); ++op) {
    const int pc = state.proc_of(op);
    if (pc == kNoNode) continue;
    std::map<int, double> dest_max;  // remote proc -> max delta
    for (const OutEdge& e : dag.op(op).out) {
      const int q = state.proc_of(e.dst);
      if (q == kNoNode || q == pc) continue;
      auto [it, fresh] = dest_max.emplace(q, e.delta);
      if (!fresh) it->second = std::max(it->second, e.delta);
    }
    for (const auto& [q, mx] : dest_max) {
      const double volume = rho * mx;
      o.comm[pc] += volume;
      o.comm[q] += volume;
      o.link_traffic[{std::min(pc, q), std::max(pc, q)}] += volume;
    }
  }
  for (int pid : o.live) {
    if (!fits_within(o.cpu_demand[pid],
                     world.prices.speed(state.config(pid))) ||
        !fits_within(o.download[pid] + o.comm[pid],
                     world.prices.bandwidth(state.config(pid)))) {
      o.overloaded_procs.push_back(pid);
    }
  }
  for (const auto& [link, used] : o.link_traffic) {
    if (!fits_within(used, world.platform.link_proc_proc())) {
      o.overloaded_links.push_back(link);
    }
  }
  return o;
}

#define FUZZ_NEAR(actual, expected)                                       \
  EXPECT_NEAR(actual, expected, 1e-6 * (1.0 + std::abs(expected)))        \
      << "step " << step << ": " << #actual

void check_against_oracle(const FuzzWorld& world, PlacementState& state,
                          int step) {
  const Oracle o = recompute(world, state);
  ASSERT_EQ(state.live_processors(), o.live) << "step " << step;
  for (int pid : o.live) {
    FUZZ_NEAR(state.cpu_demand(pid), o.cpu_demand.at(pid));
    FUZZ_NEAR(state.download_load(pid), o.download.at(pid));
    FUZZ_NEAR(state.comm_load(pid), o.comm.at(pid));
    FUZZ_NEAR(state.nic_load(pid), o.download.at(pid) + o.comm.at(pid));
  }
  for (std::size_t i = 0; i < o.live.size(); ++i) {
    for (std::size_t j = i + 1; j < o.live.size(); ++j) {
      const auto key = std::make_pair(o.live[i], o.live[j]);
      const auto it = o.link_traffic.find(key);
      const double expected = it == o.link_traffic.end() ? 0.0 : it->second;
      FUZZ_NEAR(state.pair_traffic(o.live[i], o.live[j]), expected);
    }
  }
  FUZZ_NEAR(state.total_cost(), o.total_cost);
  EXPECT_EQ(state.overloaded_processors(), o.overloaded_procs)
      << "step " << step;
  EXPECT_EQ(state.overloaded_links(), o.overloaded_links) << "step " << step;
}

std::vector<int> random_ops(Rng& rng, int n_ops) {
  std::vector<int> ops;
  const int count = 1 + static_cast<int>(rng.index(3));
  for (int i = 0; i < count; ++i) {
    const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
    if (std::find(ops.begin(), ops.end(), op) == ops.end()) ops.push_back(op);
  }
  return ops;
}

void run_walk(std::uint64_t seed, double share_prob) {
  constexpr int kSteps = 1200;
  FuzzWorld world = make_fuzz_world(seed, /*n_ops=*/24, share_prob);
  ASSERT_FALSE(world.dag.validate().has_value());
  PlacementState state(world.problem());
  Rng rng(seed);
  const int n_ops = world.dag.num_operators();
  const auto& configs = world.prices.by_cost();
  int commits = 0, rejections = 0, probes = 0;

  for (int step = 0; step < kSteps; ++step) {
    const std::vector<int> live = state.live_processors();
    const int action = static_cast<int>(rng.index(100));

    if (action < 12 || live.empty()) {
      state.buy(configs[rng.index(configs.size())]);
    } else if (action < 18) {
      for (int pid : live) {
        if (state.ops_on(pid).empty()) {
          state.sell(pid);
          break;
        }
      }
    } else if (action < 48) {
      const std::vector<int> ops = random_ops(rng, n_ops);
      const int pid = live[rng.index(live.size())];
      const bool ok = rng.bernoulli(0.5) ? state.try_place_relaxed(ops, pid)
                                         : state.try_place(ops, pid);
      (ok ? commits : rejections) += 1;
    } else if (action < 62) {
      // Probe-only: rollback must restore the multicast accounting exactly.
      const std::vector<int> ops = random_ops(rng, n_ops);
      const int pid = live[rng.index(live.size())];
      const double cost_before = state.total_cost();
      if (rng.bernoulli(0.5)) {
        state.can_place(ops, pid);
      } else {
        state.can_place_relaxed(ops, pid);
      }
      ++probes;
      EXPECT_EQ(state.total_cost(), cost_before) << "step " << step;
    } else if (action < 72) {
      const int pid = live[rng.index(live.size())];
      state.try_reconfigure(pid, configs[rng.index(configs.size())]);
    } else if (action < 84) {
      // Demand refresh on a (possibly shared) operator: set_demand rewrites
      // every out-edge delta, the refresh must re-charge every lane.
      const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
      const MegaOps old_w = world.dag.op(op).work;
      const MegaBytes old_d = world.dag.op(op).output_mb;
      const double factor = rng.uniform_real(0.5, 1.8);
      world.dag.set_demand(op, old_w * factor, old_d * factor);
      state.refresh_op_demand(op, old_w, old_d);
    } else {
      const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
      if (state.proc_of(op) == kNoNode) {
        state.search_place(op, live[rng.index(live.size())]);
      } else {
        state.search_unassign(op);
      }
    }

    check_against_oracle(world, state, step);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(commits, 30);
  EXPECT_GT(rejections, 30);
  EXPECT_GT(probes, 60);
}

TEST(DagPlacementFuzz, ModerateSharingMatchesOracleEveryStep) {
  run_walk(0xDA60u, /*share_prob=*/0.35);
}

TEST(DagPlacementFuzz, HeavySharingMatchesOracleEveryStep) {
  run_walk(0xDA61u, /*share_prob=*/0.7);
}

} // namespace
} // namespace insp
