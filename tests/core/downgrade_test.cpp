#include "core/downgrade.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/constraints.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

Allocation most_expensive_single(const Fixture& f) {
  Allocation a;
  PurchasedProcessor p;
  p.config = f.catalog.most_expensive();
  p.ops = {0, 1, 2, 3, 4};
  p.downloads = {{0, 0}, {1, 0}, {2, 0}};
  a.processors.push_back(p);
  a.op_to_proc = {0, 0, 0, 0, 0};
  return a;
}

TEST(Downgrade, LightLoadDropsToCheapest) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a = most_expensive_single(f);
  const DowngradeSummary s = downgrade_processors(f.problem(), a);
  EXPECT_EQ(s.processors_changed, 1);
  EXPECT_DOUBLE_EQ(s.saved, 18846.0 - 7548.0);
  EXPECT_DOUBLE_EQ(a.total_cost(f.catalog), 7548.0);
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

TEST(Downgrade, KeepsConfigWhenLoadDemandsIt) {
  // Heavy CPU: root mass 270 at alpha 1.9 -> w ~ 41.8k Mops needs the
  // fastest CPU; the whole tree does not fit one processor, so split:
  // root alone on P0, the rest on P1.
  const Fixture f = fig1a_fixture(1.9, 30.0);
  Allocation a;
  PurchasedProcessor root_proc, rest;
  root_proc.config = f.catalog.most_expensive();
  root_proc.ops = {0};
  rest.config = f.catalog.most_expensive();
  rest.ops = {1, 2, 3, 4};
  rest.downloads = {{0, 0}, {1, 0}, {2, 0}};
  a.processors = {root_proc, rest};
  a.op_to_proc = {0, 1, 1, 1, 1};
  downgrade_processors(f.problem(), a);
  // P0: w = 270^1.9 ~ 41,772 -> 46.88 GHz; NIC carries the two inbound
  // edges (120 + 150 = 270 MB/s) -> 4 Gbps (500 MB/s).
  EXPECT_DOUBLE_EQ(f.catalog.speed(a.processors[0].config), 46880.0);
  EXPECT_DOUBLE_EQ(f.catalog.bandwidth(a.processors[0].config), 500.0);
  // P1: sum w ~ 36.6k -> 38.40 GHz; NIC = downloads 90 + outbound 270 ->
  // 4 Gbps.
  EXPECT_DOUBLE_EQ(f.catalog.speed(a.processors[1].config), 38400.0);
  EXPECT_DOUBLE_EQ(f.catalog.bandwidth(a.processors[1].config), 500.0);
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

TEST(Downgrade, NicRequirementIncludesCrossTraffic) {
  const Fixture f = fig1a_fixture(1.0, 100.0);  // edges up to 500 MB
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {4, 3};  // n1, n2; edge n2->n5 crosses at 400 MB/s
  p0.downloads = {{0, 0}, {1, 0}};
  p1.config = f.catalog.most_expensive();
  p1.ops = {0, 1, 2};
  p1.downloads = {{1, 0}, {2, 0}};
  a.processors = {p0, p1};
  a.op_to_proc = {1, 1, 1, 0, 0};
  downgrade_processors(f.problem(), a);
  // P0 NIC: downloads 150 + out 400 = 550 -> needs 10 Gbps (1250), not 4.
  EXPECT_DOUBLE_EQ(f.catalog.bandwidth(a.processors[0].config), 1250.0);
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

TEST(Downgrade, NeverIncreasesCost) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 25, 1.2);
    Allocation a;
    // One op per processor, every proc most expensive; route via loop3.
    a.op_to_proc.resize(static_cast<std::size_t>(f.tree.num_operators()));
    for (int op = 0; op < f.tree.num_operators(); ++op) {
      PurchasedProcessor p;
      p.config = f.catalog.most_expensive();
      p.ops = {op};
      a.processors.push_back(p);
      a.op_to_proc[static_cast<std::size_t>(op)] = op;
    }
    // Fill downloads naively from the first hosting server.
    for (int op = 0; op < f.tree.num_operators(); ++op) {
      for (int t : f.tree.object_types_of(op)) {
        a.processors[static_cast<std::size_t>(op)].downloads.push_back(
            {t, f.platform.servers_with(t).front()});
      }
    }
    const Dollars before = a.total_cost(f.catalog);
    const DowngradeSummary s = downgrade_processors(f.problem(), a);
    const Dollars after = a.total_cost(f.catalog);
    EXPECT_LE(after, before);
    EXPECT_NEAR(before - after, s.saved, 1e-9);
  }
}

TEST(Downgrade, IdempotentSecondPassChangesNothing) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Allocation a = most_expensive_single(f);
  downgrade_processors(f.problem(), a);
  const DowngradeSummary second = downgrade_processors(f.problem(), a);
  EXPECT_EQ(second.processors_changed, 0);
  EXPECT_DOUBLE_EQ(second.saved, 0.0);
}

TEST(Downgrade, MixedRequirementsPerProcessor) {
  // One processor CPU-bound, one NIC-bound: each downgraded independently.
  const Fixture f = fig1a_fixture(1.75, 30.0);  // root w = 270^1.75 ~ 18k
  Allocation a;
  PurchasedProcessor heavy, light;
  heavy.config = f.catalog.most_expensive();
  heavy.ops = {0, 1, 2};  // root included: big CPU
  heavy.downloads = {{1, 0}, {2, 0}};
  light.config = f.catalog.most_expensive();
  light.ops = {3, 4};
  light.downloads = {{0, 0}, {1, 0}};
  a.processors = {heavy, light};
  a.op_to_proc = {0, 0, 0, 1, 1};
  downgrade_processors(f.problem(), a);
  EXPECT_GT(f.catalog.speed(a.processors[0].config),
            f.catalog.speed(a.processors[1].config));
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

} // namespace
} // namespace insp
