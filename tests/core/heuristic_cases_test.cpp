// Focused tests for the heuristics' textual case analyses (paper §4.1):
// Comm-Greedy's three edge cases, Object-Availability's per-type rounds,
// and Subtree-Bottom-Up's forced coalesce — each exercised on instances
// crafted to hit exactly that branch.
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "core/placement_heuristics.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::simple_platform;

/// Chain tree: n0 <- n1 <- n2 (root n0), with leaves at n1, n2, sizes
/// chosen so edge volumes differ sharply: n2->n1 small, n1->n0 large.
Fixture chain_fixture(MegaBytes small, MegaBytes large, MBps link_pp) {
  ObjectCatalog objects({{0, small, 0.5}, {1, large, 0.5}});
  TreeBuilder b(objects);
  const int n0 = b.add_operator(kNoNode);
  const int n1 = b.add_operator(n0);
  const int n2 = b.add_operator(n1);
  b.add_leaf(n1, 1);  // large: edge n1->n0 = small + large
  b.add_leaf(n2, 0);  // small: edge n2->n1 = small
  return Fixture{b.build(1.0),
                 simple_platform({{0, 1}}, 2, 10000.0, 1000.0, link_pp),
                 PriceCatalog::paper_default(), 1.0};
}

TEST(CommGreedyCases, CaseBothUnassignedBuysCheapestForPair) {
  // Largest edge first: (n1, n0) are both unassigned; the cheapest
  // processor must host the pair.
  const Fixture f = chain_fixture(10.0, 50.0, 1000.0);
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_comm_greedy(state, rng).success);
  EXPECT_EQ(state.proc_of(0), state.proc_of(1));
  // Everything light: single cheapest processor in the end.
  EXPECT_EQ(state.num_live_processors(), 1);
  EXPECT_DOUBLE_EQ(state.total_cost(), 7548.0);
}

TEST(CommGreedyCases, CaseOneAssignedJoinsExistingProcessor) {
  // Tight link: after (n1,n0) are paired, edge (n2,n1) has n1 assigned;
  // n2 must join n1's processor because the link cannot carry even the
  // small edge.
  const Fixture f = chain_fixture(10.0, 50.0, /*link_pp=*/5.0);
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_comm_greedy(state, rng).success);
  EXPECT_EQ(state.proc_of(2), state.proc_of(1));
  EXPECT_EQ(state.num_live_processors(), 1);
}

TEST(CommGreedyCases, CaseBothAssignedMergesAndSells) {
  // Star of two heavy edges: process order pairs (a-root) then (b-root);
  // the second edge finds both endpoints assigned on different processors
  // and must merge them (case iii), selling one.
  ObjectCatalog objects({{0, 100.0, 0.5}});
  TreeBuilder b(objects);
  const int root = b.add_operator(kNoNode);
  const int a = b.add_operator(root);
  const int c = b.add_operator(root);
  b.add_leaf(a, 0);
  b.add_leaf(c, 0);
  Fixture f{b.build(1.5), simple_platform({{0}}, 1),
            PriceCatalog::paper_default(), 1.0};
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_comm_greedy(state, rng).success);
  // All three operators end co-located (work at alpha=1.5 still fits one
  // fast CPU: 100^1.5 * 2 + 200^1.5 ~ 4.8k Mops).
  EXPECT_EQ(state.proc_of(a), state.proc_of(root));
  EXPECT_EQ(state.proc_of(c), state.proc_of(root));
  EXPECT_EQ(state.num_live_processors(), 1);
}

/// Star over one 300 MB object with alpha = 0.5 and a single 25 Mops/s
/// CPU model: w(a) = w(c) = 300^0.5 ~ 17.3, w(root) = 600^0.5 ~ 24.5.
/// Each operator fits a processor alone; no two fit together — processors
/// can never merge, yet the instance is feasible (three processors).
Fixture unmergeable_star_fixture() {
  ObjectCatalog objects({{0, 300.0, 0.5}});
  TreeBuilder b(objects);
  const int root = b.add_operator(kNoNode);
  const int a = b.add_operator(root);
  const int c = b.add_operator(root);
  b.add_leaf(a, 0);
  b.add_leaf(c, 0);
  return Fixture{b.build(0.5), simple_platform({{0}}, 1),
                 PriceCatalog(500.0, {{25.0, 0.0}}, {{1000.0, 0.0}}), 1.0};
}

TEST(CommGreedyCases, CaseMergeImpossibleKeepsSeparateProcessors) {
  const Fixture f = unmergeable_star_fixture();
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_comm_greedy(state, rng).success);
  EXPECT_NE(state.proc_of(1), state.proc_of(2));  // a and c separate
  EXPECT_EQ(state.num_live_processors(), 3);
  EXPECT_TRUE(state.feasible());
}

TEST(ObjectAvailabilityCases, TypeRoundsSkipTypesWithoutAlOps) {
  // Types 1 and 2 exist in the catalog but no leaf uses them: the per-type
  // rounds must not buy processors for them.
  ObjectCatalog objects(
      {{0, 10.0, 0.5}, {1, 10.0, 0.5}, {2, 10.0, 0.5}});
  TreeBuilder b(objects);
  const int root = b.add_operator(kNoNode);
  b.add_leaf(root, 0);
  b.add_leaf(root, 0);
  Fixture f{b.build(1.0), simple_platform({{0, 1, 2}}, 3),
            PriceCatalog::paper_default(), 1.0};
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_object_availability(state, rng).success);
  EXPECT_EQ(state.num_live_processors(), 1);
}

TEST(ObjectAvailabilityCases, AlOpsLeftoverHandledByGreedyPhase) {
  // Two al-operators of one type, but the type's processor cannot host
  // both (CPU fits only one): the second is placed by the Comp-Greedy
  // style tail phase.
  const Fixture f = unmergeable_star_fixture();
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_object_availability(state, rng).success);
  EXPECT_EQ(state.num_unassigned(), 0);
  EXPECT_NE(state.proc_of(1), state.proc_of(2));
  EXPECT_TRUE(state.feasible());
}

TEST(SubtreeBottomUpCases, ForcedCoalesceWhenParentFitsNeitherChild) {
  // Both child subtrees sit on processors whose links cannot carry their
  // edges to a third processor; the parent can only be seated by
  // coalescing children onto one processor.
  ObjectCatalog objects({{0, 60.0, 0.5}});
  TreeBuilder b(objects);
  const int root = b.add_operator(kNoNode);
  const int a = b.add_operator(root);
  const int c = b.add_operator(root);
  b.add_leaf(a, 0);
  b.add_leaf(a, 0);
  b.add_leaf(c, 0);
  b.add_leaf(c, 0);
  // Links carry at most 50 MB/s but each child edge is 120 MB/s: the root
  // must co-locate with both children.
  Fixture f{b.build(1.0), simple_platform({{0}}, 1, 10000.0, 1000.0,
                                          /*link_pp=*/50.0),
            PriceCatalog::paper_default(), 1.0};
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_subtree_bottom_up(state, rng).success);
  EXPECT_EQ(state.proc_of(a), state.proc_of(root));
  EXPECT_EQ(state.proc_of(c), state.proc_of(root));
  EXPECT_EQ(state.num_live_processors(), 1);
}

} // namespace
} // namespace insp
