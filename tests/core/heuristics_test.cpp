// Per-heuristic behavioral tests on controlled instances, plus the grouping
// helper.  End-to-end pipeline properties live in the integration suite.
#include "core/placement_heuristics.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../test_helpers.hpp"
#include "core/ablation_variants.hpp"
#include "core/allocator.hpp"
#include "core/placement_common.hpp"
#include "tree/tree_stats.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

void expect_all_assigned(const PlacementState& st, const Fixture& f) {
  EXPECT_EQ(st.num_unassigned(), 0);
  for (int op = 0; op < f.tree.num_operators(); ++op) {
    EXPECT_NE(st.proc_of(op), kNoNode) << "op " << op;
  }
  EXPECT_TRUE(st.feasible());
}

// ---------------------------------------------------------------------------
// place_with_grouping
// ---------------------------------------------------------------------------

TEST(Grouping, SingleOpOnCheapestConfig) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState st(f.problem());
  std::string why;
  const auto pid =
      place_with_grouping(st, 4, GroupConfigPolicy::CheapestFirst, &why);
  ASSERT_TRUE(pid.has_value()) << why;
  EXPECT_DOUBLE_EQ(f.catalog.cost(st.config(*pid)), 7548.0);
  EXPECT_EQ(st.proc_of(4), *pid);
}

TEST(Grouping, MostExpensivePolicyBuysTopConfig) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState st(f.problem());
  std::string why;
  const auto pid =
      place_with_grouping(st, 4, GroupConfigPolicy::MostExpensiveOnly, &why);
  ASSERT_TRUE(pid.has_value()) << why;
  EXPECT_DOUBLE_EQ(f.catalog.cost(st.config(*pid)), 18846.0);
}

TEST(Grouping, PullsNeighborAcrossUncrossableEdge) {
  // Link 25 MB/s < every edge: any two adjacent ops must co-locate, so
  // placing n2 after n1 is assigned must pull n1 in.
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.platform = testhelpers::simple_platform({{0, 1, 2}}, 3, 10000.0, 1000.0,
                                            /*link_pp=*/25.0);
  PlacementState st(f.problem());
  std::string why;
  const auto p1 =
      place_with_grouping(st, 4, GroupConfigPolicy::CheapestFirst, &why);
  ASSERT_TRUE(p1.has_value());
  const auto p2 =
      place_with_grouping(st, 3, GroupConfigPolicy::CheapestFirst, &why);
  ASSERT_TRUE(p2.has_value()) << why;
  // n1 was pulled onto n2's processor; the old one was sold.
  EXPECT_EQ(st.proc_of(4), *p2);
  EXPECT_FALSE(st.is_live(*p1));
}

TEST(Grouping, FailsWhenWholeTreeExceedsEveryProcessor) {
  // alpha huge: even the full group exceeds the fastest CPU.
  const Fixture f = fig1a_fixture(2.5, 30.0);
  PlacementState st(f.problem());
  std::string why;
  const auto pid =
      place_with_grouping(st, 0, GroupConfigPolicy::CheapestFirst, &why);
  EXPECT_FALSE(pid.has_value());
  EXPECT_FALSE(why.empty());
  EXPECT_EQ(st.num_live_processors(), 0);  // failed purchases rolled back
}

TEST(Grouping, OpsByWorkDescOrdering) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const auto order = ops_by_work_desc(f.tree);
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(f.tree.op(order[i - 1]).work, f.tree.op(order[i]).work);
  }
  EXPECT_EQ(order.front(), 0);  // root has the largest mass
}

// ---------------------------------------------------------------------------
// Individual heuristics
// ---------------------------------------------------------------------------

class EveryHeuristic : public testing::TestWithParam<HeuristicKind> {};

TEST_P(EveryHeuristic, AssignsAllOperatorsOnEasyInstance) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  Rng rng(7);
  PlacementState state(f.problem());
  const PlacementOutcome out = strategy_for(GetParam()).place(state, rng);
  ASSERT_TRUE(out.success) << out.failure_reason;
  expect_all_assigned(state, f);
}

TEST_P(EveryHeuristic, FailsCleanlyOnImpossibleInstance) {
  // Root operator alone exceeds the fastest CPU: nothing can work.
  const Fixture f = fig1a_fixture(2.5, 30.0);
  PlacementState state(f.problem());
  Rng rng(7);
  const PlacementOutcome out = strategy_for(GetParam()).place(state, rng);
  EXPECT_FALSE(out.success);
  EXPECT_FALSE(out.failure_reason.empty());
}

INSTANTIATE_TEST_SUITE_P(AllSix, EveryHeuristic,
                         testing::ValuesIn(all_heuristics()),
                         [](const auto& info) {
                           std::string n = heuristic_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(CompGreedy, PacksEverythingOntoOneProcessorWhenItFits) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_comp_greedy(state, rng).success);
  EXPECT_EQ(state.num_live_processors(), 1);
}

TEST(CompGreedy, SplitsWhenCpuForcesIt) {
  // Root w must be near the CPU cap so the rest cannot join.
  const Fixture f = fig1a_fixture(1.95, 30.0);  // 270^1.95 ~ 55k > max CPU?
  // 270^1.95 = e^(1.95*5.6) ~ 5.6e4 > 46880 -> infeasible; use 1.9: 41.5k.
  const Fixture f2 = fig1a_fixture(1.9, 30.0);
  PlacementState state(f2.problem());
  Rng rng(1);
  ASSERT_TRUE(place_comp_greedy(state, rng).success);
  EXPECT_GE(state.num_live_processors(), 2);
}

TEST(SubtreeBottomUp, ConsolidatesToSingleProcessorOnEasyInstance) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_subtree_bottom_up(state, rng).success);
  EXPECT_EQ(state.num_live_processors(), 1);
}

TEST(SubtreeBottomUp, CoalesceAblationKeepsMoreProcessors) {
  const Fixture f = testhelpers::random_fixture(3, 40, 0.9);
  Rng r1(1), r2(1);
  PlacementState with(f.problem()), without(f.problem());
  ASSERT_TRUE(place_subtree_bottom_up(with, r1).success);
  ASSERT_TRUE(place_subtree_bottom_up_no_coalesce(without, r2).success);
  EXPECT_LE(with.num_live_processors(), without.num_live_processors());
  EXPECT_LE(with.total_cost(), without.total_cost());
}

TEST(Random, OneProcessorPerOperatorWhenNothingBinds) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState state(f.problem());
  Rng rng(123);
  ASSERT_TRUE(place_random(state, rng).success);
  // Every op its own cheapest processor (no grouping needed here).
  EXPECT_EQ(state.num_live_processors(), 5);
  EXPECT_DOUBLE_EQ(state.total_cost(), 5 * 7548.0);
}

TEST(Random, DifferentSeedsCanDifferEasySeedStillSucceeds) {
  const Fixture f = testhelpers::random_fixture(11, 20, 0.9);
  PlacementState s1(f.problem()), s2(f.problem());
  Rng r1(1), r2(2);
  ASSERT_TRUE(place_random(s1, r1).success);
  ASSERT_TRUE(place_random(s2, r2).success);
  // Same instance, both valid; order of purchases may differ but counts are
  // equal here because every op gets its own processor.
  EXPECT_EQ(s1.num_live_processors(), s2.num_live_processors());
}

TEST(CommGreedy, ColocatesLargestEdgeFirst) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_comm_greedy(state, rng).success);
  // Largest edge is n3->n4 (50 MB): endpoints must share a processor.
  EXPECT_EQ(state.proc_of(2), state.proc_of(0));
}

TEST(ObjectGrouping, CoLocatesSharersOfPopularObjects) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_object_grouping(state, rng).success);
  // n2 (id 3) and n1 (id 4) share o0; n1 and n3 share o1.  The seed with the
  // highest popularity sum is n1 (o0:2 + o1:2 = 4); both sharers join it.
  EXPECT_EQ(state.proc_of(4), state.proc_of(3));
  EXPECT_EQ(state.proc_of(4), state.proc_of(2));
}

TEST(ObjectAvailability, ProcessesRarestTypesFirst) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  // o2 on one server (availability 1), o0/o1 on two.
  f.platform = testhelpers::simple_platform({{0, 1}, {0, 1, 2}}, 3);
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_object_availability(state, rng).success);
  expect_all_assigned(state, f);
}

TEST(AblationRandomPairGrouping, MatchesIteratedOnEasyInstance) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState state(f.problem());
  Rng rng(123);
  ASSERT_TRUE(place_random_pair_grouping(state, rng).success);
  EXPECT_EQ(state.num_live_processors(), 5);
}

} // namespace
} // namespace insp
