// Cross-ISA differential suite (docs/DESIGN.md §11): every SIMD dispatch
// path the host can execute — forced scalar, forced SSE2, forced AVX2 —
// must be observationally indistinguishable.  The kernels share their IEEE
// expression trees with the scalar range functions and the build disables
// FP contraction, so the requirement is *bit-exact equality*, not
// tolerance:
//
//   * batched probe verdicts over a seeded mutation walk are element-wise
//     identical across ISAs, and the rollback fingerprint (every observable
//     double of the state, compared EQUAL) matches after every batch;
//   * full allocation runs (heuristic + batched probes + local search)
//     produce operator==-identical Allocations under every ISA;
//   * the event simulator's ready-caps kernel yields bit-identical results
//     (throughput compared with ==, not near) under every ISA.
//
// The suite runs under the plain, ASan/UBSan and TSan CI jobs, so a lane
// kernel that reads past a tail or races the dispatch cache fails here too.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "core/placement_state.hpp"
#include "sim/event_sim.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::random_fixture;

std::vector<simd::Isa> available_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::detected_isa() >= simd::Isa::kSse2) isas.push_back(simd::Isa::kSse2);
  if (simd::detected_isa() >= simd::Isa::kAvx2) isas.push_back(simd::Isa::kAvx2);
  return isas;
}

class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) { simd::set_forced_isa(isa); }
  ~ScopedIsa() { simd::clear_forced_isa(); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
};

/// Every observable double of a PlacementState, for exact comparison.
struct StateFingerprint {
  std::vector<int> assignment;
  std::vector<int> live;
  std::vector<double> loads;
  double cost = 0.0;
  bool operator==(const StateFingerprint&) const = default;
};

StateFingerprint fingerprint(const PlacementState& state, int n_ops) {
  StateFingerprint f;
  for (int op = 0; op < n_ops; ++op) f.assignment.push_back(state.proc_of(op));
  f.live = state.live_processors();
  for (int pid : f.live) {
    f.loads.push_back(state.cpu_demand(pid));
    f.loads.push_back(state.download_load(pid));
    f.loads.push_back(state.comm_load(pid));
    f.loads.push_back(state.nic_load(pid));
  }
  f.cost = state.total_cost();
  return f;
}

/// One deterministic probe walk: buys, committed moves, and batch probes
/// whose verdict bytes and post-rollback fingerprints are recorded.  The
/// same seed must record the same transcript under every ISA.
struct WalkTranscript {
  std::vector<unsigned char> verdicts;
  std::vector<StateFingerprint> fingerprints;
  bool operator==(const WalkTranscript&) const = default;
};

WalkTranscript run_probe_walk(const Fixture& f, std::uint64_t seed) {
  WalkTranscript t;
  PlacementState state(f.problem());
  Rng rng(seed);
  const int n_ops = f.tree.num_operators();
  const auto& configs = f.catalog.by_cost();
  std::vector<unsigned char> batch;
  for (int step = 0; step < 400; ++step) {
    const std::vector<int> live = state.live_processors();
    const int action = static_cast<int>(rng.index(10));
    if (action < 2 || live.empty()) {
      state.buy(configs[rng.index(configs.size())]);
      continue;
    }
    const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
    const int pid = live[rng.index(live.size())];
    if (action < 5) {
      if (rng.bernoulli(0.5)) {
        state.try_place(op, pid);
      } else {
        state.try_place_relaxed(op, pid);
      }
    } else {
      if (rng.bernoulli(0.5)) {
        state.can_place_batch({op}, live, batch);
      } else {
        state.can_place_batch_relaxed({op}, live, batch);
      }
      t.verdicts.insert(t.verdicts.end(), batch.begin(), batch.end());
      t.fingerprints.push_back(fingerprint(state, n_ops));
    }
  }
  t.fingerprints.push_back(fingerprint(state, n_ops));
  return t;
}

TEST(IsaDispatchDiff, ProbeWalkTranscriptsAreBitIdenticalAcrossIsas) {
  const std::vector<simd::Isa> isas = available_isas();
  ASSERT_FALSE(isas.empty());
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Fixture f = random_fixture(seed, 22, 1.2);
    ScopedIsa scalar(simd::Isa::kScalar);
    const WalkTranscript reference = run_probe_walk(f, seed);
    ASSERT_FALSE(reference.verdicts.empty());
    for (simd::Isa isa : isas) {
      ScopedIsa forced(isa);
      const WalkTranscript got = run_probe_walk(f, seed);
      EXPECT_EQ(got, reference)
          << "seed " << seed << " under ISA " << simd::to_string(isa);
    }
  }
}

TEST(IsaDispatchDiff, FullAllocationsAreIdenticalAcrossIsas) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Fixture f = random_fixture(seed, 24, 1.2);
    for (const HeuristicKind kind :
         {HeuristicKind::CommGreedy, HeuristicKind::SubtreeBottomUp}) {
      ScopedIsa scalar(simd::Isa::kScalar);
      Rng rng_ref(seed);
      const AllocationOutcome reference = allocate(f.problem(), kind, rng_ref);
      for (simd::Isa isa : available_isas()) {
        ScopedIsa forced(isa);
        Rng rng(seed);
        const AllocationOutcome got = allocate(f.problem(), kind, rng);
        ASSERT_EQ(got.success, reference.success)
            << "seed " << seed << " under ISA " << simd::to_string(isa);
        if (!reference.success) continue;
        EXPECT_EQ(got.allocation, reference.allocation)
            << "seed " << seed << " under ISA " << simd::to_string(isa);
      }
    }
  }
}

TEST(IsaDispatchDiff, SimulatorResultsAreBitIdenticalAcrossIsas) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Fixture f = random_fixture(seed, 24, 1.2);
    Rng rng(seed);
    const AllocationOutcome out =
        allocate(f.problem(), HeuristicKind::SubtreeBottomUp, rng);
    if (!out.success) continue;
    const SimPlatformView view = SimPlatformView::uniform(f.platform);

    ScopedIsa scalar(simd::Isa::kScalar);
    const EventSimResult reference =
        simulate_allocation(f.problem(), out.allocation, view, {});
    for (simd::Isa isa : available_isas()) {
      ScopedIsa forced(isa);
      const EventSimResult got =
          simulate_allocation(f.problem(), out.allocation, view, {});
      const std::string label =
          "seed " + std::to_string(seed) + " under ISA " +
          std::string(simd::to_string(isa));
      EXPECT_EQ(got.results_produced, reference.results_produced) << label;
      EXPECT_EQ(got.first_output_period, reference.first_output_period)
          << label;
      EXPECT_EQ(got.sustained, reference.sustained) << label;
      EXPECT_EQ(got.warmup_periods_used, reference.warmup_periods_used)
          << label;
      EXPECT_EQ(got.max_results_ahead_used, reference.max_results_ahead_used)
          << label;
      // Bit-exact: the caps kernel must execute the same IEEE arithmetic.
      EXPECT_EQ(got.achieved_throughput, reference.achieved_throughput)
          << label;
    }
  }
}

} // namespace
} // namespace insp
