#include "core/local_search.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"
#include "core/constraints.hpp"
#include "core/downgrade.hpp"
#include "core/placement_heuristics.hpp"
#include "core/server_selection.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

TEST(LocalSearch, MergesScatteredProcessors) {
  // Random placement: one cheap processor per operator; local search should
  // consolidate a light instance down to (near) one processor.
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState state(f.problem());
  Rng rng(11);
  ASSERT_TRUE(place_random(state, rng).success);
  ASSERT_EQ(state.num_live_processors(), 5);

  const LocalSearchStats stats = refine_placement(state);
  EXPECT_GT(stats.merges, 0);
  EXPECT_EQ(state.num_live_processors(), 1);
  EXPECT_LT(stats.projected_cost_after, stats.projected_cost_before);
  EXPECT_TRUE(state.feasible());
}

TEST(LocalSearch, ProjectedCostMatchesDowngradeOutcome) {
  const Fixture f = fig1a_fixture(1.3, 20.0);
  PlacementState state(f.problem());
  Rng rng(3);
  ASSERT_TRUE(place_object_availability(state, rng).success);
  const Dollars projected = projected_downgraded_cost(state);

  // Run the real pipeline tail: server selection + downgrade.
  Allocation alloc = state.to_allocation();
  Problem prob = f.problem();
  ASSERT_TRUE(select_servers_three_loop(prob, alloc).success);
  downgrade_processors(prob, alloc);
  EXPECT_NEAR(alloc.total_cost(f.catalog), projected, 1e-6);
}

TEST(LocalSearch, NeverIncreasesProjectedCost) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 30, 1.4);
    PlacementState state(f.problem());
    Rng rng(seed);
    if (!place_object_grouping(state, rng).success) continue;
    const Dollars before = projected_downgraded_cost(state);
    const LocalSearchStats stats = refine_placement(state);
    EXPECT_LE(stats.projected_cost_after, before + 1e-9) << "seed " << seed;
    EXPECT_TRUE(state.feasible()) << "seed " << seed;
  }
}

TEST(LocalSearch, RespectsPassLimit) {
  const Fixture f = testhelpers::random_fixture(2, 40, 0.9);
  PlacementState state(f.problem());
  Rng rng(1);
  ASSERT_TRUE(place_random(state, rng).success);
  LocalSearchOptions opts;
  opts.max_passes = 1;
  const LocalSearchStats stats = refine_placement(state, opts);
  EXPECT_EQ(stats.passes, 1);
}

TEST(LocalSearch, DisabledMovesDoNothing) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  PlacementState state(f.problem());
  Rng rng(11);
  ASSERT_TRUE(place_random(state, rng).success);
  LocalSearchOptions opts;
  opts.enable_merges = false;
  opts.enable_relocations = false;
  const LocalSearchStats stats = refine_placement(state, opts);
  EXPECT_EQ(stats.merges, 0);
  EXPECT_EQ(stats.relocations, 0);
  EXPECT_EQ(state.num_live_processors(), 5);
}

TEST(LocalSearch, PipelineFlagProducesValidCheaperOrEqualPlans) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Fixture f = testhelpers::random_fixture(seed, 40, 1.2);
    for (HeuristicKind k :
         {HeuristicKind::Random, HeuristicKind::ObjectAvailability}) {
      Rng r1(9), r2(9);
      AllocatorOptions plain, refined;
      refined.local_search = true;
      const AllocationOutcome a = allocate(f.problem(), k, r1, plain);
      const AllocationOutcome b = allocate(f.problem(), k, r2, refined);
      if (!a.success || !b.success) continue;
      EXPECT_LE(b.cost, a.cost + 1e-9)
          << heuristic_name(k) << " seed " << seed;
      EXPECT_TRUE(check_allocation(f.problem(), b.allocation).ok());
    }
  }
}

TEST(LocalSearch, SignificantGainOnRandomPlacement) {
  // On a mid-size instance the refinement should recover most of the gap
  // between Random and the consolidating heuristics.
  const Fixture f = testhelpers::random_fixture(7, 40, 0.9);
  Rng r1(2), r2(2);
  AllocatorOptions plain, refined;
  refined.local_search = true;
  const AllocationOutcome a =
      allocate(f.problem(), HeuristicKind::Random, r1, plain);
  const AllocationOutcome b =
      allocate(f.problem(), HeuristicKind::Random, r2, refined);
  ASSERT_TRUE(a.success && b.success);
  EXPECT_LT(b.cost, 0.5 * a.cost);
}

} // namespace
} // namespace insp
