// Differential oracle for the batched feasibility probes (docs/DESIGN.md
// §10): along a seeded random walk over the full mutation surface — the same
// action mix as the placement fuzzer, including the demand refreshes that
// drive the state infeasible — every probe step checks that
//
//   * can_place_batch / can_place_batch_relaxed verdicts are element-wise
//     identical to the sequential can_place / can_place_relaxed probes over
//     every live candidate (including candidates hosting group members, the
//     sequential-slow-path case, and relaxed probes on infeasible states);
//   * can_place_on_new_batch matches the literal buy + can_place + sell
//     emulation for every catalog configuration;
//   * the batch's single journal baseline rolls back bit-exactly: every
//     observable value (assignment, loads, link traffic, cost) compares
//     EQUAL — not near — before and after a batch call, in particular after
//     batches whose verdicts all failed.
//
// The sequential probes are the specification; the batch path shares the
// journal machinery but none of the verdict arithmetic, so any divergence
// in the SoA gather, the footprint fold, or the flat kernels fails here
// within one step of the state shape that exposed it.
#include "core/placement_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "platform/catalog.hpp"
#include "platform/platform.hpp"
#include "tree/tree_generator.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/units.hpp"

namespace insp {
namespace {

struct DiffWorld {
  OperatorTree tree;
  Platform platform;
  PriceCatalog prices;

  Problem problem() const {
    Problem p;
    p.tree = &tree;
    p.platform = &platform;
    p.catalog = &prices;
    p.rho = 1.0;
    return p;
  }
};

DiffWorld make_world(std::uint64_t seed, int n_ops) {
  Rng gen(seed);
  ObjectCatalog objects = ObjectCatalog::random(gen, 6, 5.0, 30.0, 0.5);
  TreeGenConfig tcfg;
  tcfg.num_operators = n_ops;
  tcfg.alpha = 1.0;
  tcfg.num_object_types = 6;
  OperatorTree tree = generate_random_tree(gen, tcfg, objects);
  std::vector<DataServer> servers;
  for (int s = 0; s < 3; ++s) {
    servers.push_back(DataServer{s, units::gigabytes_per_sec(10.0),
                                 {0, 1, 2, 3, 4, 5}});
  }
  Platform platform(std::move(servers), units::gigabytes_per_sec(1.0),
                    units::gigabytes_per_sec(1.0), 6);
  return DiffWorld{std::move(tree), std::move(platform),
                   PriceCatalog::paper_default()};
}

/// Every observable double and int of the state, for EXACT (bit-level on
/// the doubles) rollback comparison.
struct Fingerprint {
  std::vector<int> assignment;
  std::vector<int> live;
  std::vector<double> loads;    // cpu, download, comm per live pid
  std::vector<double> traffic;  // pairwise, live x live upper triangle
  double cost = 0.0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const PlacementState& state, int n_ops) {
  Fingerprint f;
  for (int op = 0; op < n_ops; ++op) f.assignment.push_back(state.proc_of(op));
  f.live = state.live_processors();
  for (int pid : f.live) {
    f.loads.push_back(state.cpu_demand(pid));
    f.loads.push_back(state.download_load(pid));
    f.loads.push_back(state.comm_load(pid));
  }
  for (std::size_t i = 0; i < f.live.size(); ++i) {
    for (std::size_t j = i + 1; j < f.live.size(); ++j) {
      f.traffic.push_back(state.pair_traffic(f.live[i], f.live[j]));
    }
  }
  f.cost = state.total_cost();
  return f;
}

std::vector<int> random_group(Rng& rng, PlacementState& state, int n_ops) {
  // Mostly small random groups (the heuristics' common case); sometimes a
  // whole processor's operator list (the merge/eviction case — maximal
  // source/transient interaction with the baseline).
  std::vector<int> ops;
  if (rng.bernoulli(0.25) && state.num_live_processors() > 0) {
    const auto& live = state.live_processors();
    ops = state.ops_on(live[rng.index(live.size())]);
    if (!ops.empty()) return ops;
  }
  const int count = 1 + static_cast<int>(rng.index(4));
  for (int i = 0; i < count; ++i) {
    const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
    if (std::find(ops.begin(), ops.end(), op) == ops.end()) ops.push_back(op);
  }
  return ops;
}

/// Forces one SIMD dispatch path for the lifetime of the scope (clamped to
/// what the host supports — forcing never widens past detected_isa()).
class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) { simd::set_forced_isa(isa); }
  ~ScopedIsa() { simd::clear_forced_isa(); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
};

/// The full differential walk, run once per dispatch path below so every
/// kernel (scalar range functions, SSE2 lanes, AVX2 lanes) faces the same
/// 1500-step mutation surface and must produce element-wise identical
/// verdicts and bit-exact rollbacks.
void run_batch_diff_walk() {
  constexpr int kSteps = 1500;
  DiffWorld world = make_world(0xBA7C4u, /*n_ops=*/24);
  PlacementState state(world.problem());
  Rng rng(0xBA7C4u);
  const int n_ops = world.tree.num_operators();
  const auto& configs = world.prices.by_cost();

  // Coverage counters: the walk must hit both verdicts in both modes, the
  // sequential slow path, and batches that fail on every candidate.
  long verdicts_checked = 0, true_verdicts = 0, false_verdicts = 0;
  long skip_candidates = 0, all_false_batches = 0, config_checks = 0;

  std::vector<unsigned char> batch, batch_relaxed, batch_new;
  for (int step = 0; step < kSteps; ++step) {
    const std::vector<int> live = state.live_processors();
    const int action = static_cast<int>(rng.index(100));

    if (action < 12 || live.empty()) {
      state.buy(configs[rng.index(configs.size())]);
    } else if (action < 17) {
      for (int pid : live) {
        if (state.ops_on(pid).empty()) {
          state.sell(pid);
          break;
        }
      }
    } else if (action < 40) {  // mutate: strict or relaxed committed move
      const std::vector<int> ops = random_group(rng, state, n_ops);
      const int pid = live[rng.index(live.size())];
      if (rng.bernoulli(0.5)) {
        state.try_place_relaxed(ops, pid);
      } else {
        state.try_place(ops, pid);
      }
    } else if (action < 75) {  // THE DIFFERENTIAL CHECK
      const std::vector<int> ops = random_group(rng, state, n_ops);
      const Fingerprint before = fingerprint(state, n_ops);

      state.can_place_batch(ops, live, batch);
      ASSERT_EQ(fingerprint(state, n_ops), before)
          << "step " << step << ": strict batch did not roll back bit-exactly";
      state.can_place_batch_relaxed(ops, live, batch_relaxed);
      ASSERT_EQ(fingerprint(state, n_ops), before)
          << "step " << step << ": relaxed batch did not roll back bit-exactly";

      ASSERT_EQ(batch.size(), live.size());
      ASSERT_EQ(batch_relaxed.size(), live.size());
      bool any_true = false;
      for (std::size_t i = 0; i < live.size(); ++i) {
        const bool seq_strict = state.can_place(ops, live[i]);
        const bool seq_relaxed = state.can_place_relaxed(ops, live[i]);
        ASSERT_EQ(batch[i] != 0, seq_strict)
            << "step " << step << ": strict verdict differs for pid "
            << live[i] << " (group size " << ops.size() << ")";
        ASSERT_EQ(batch_relaxed[i] != 0, seq_relaxed)
            << "step " << step << ": relaxed verdict differs for pid "
            << live[i] << " (group size " << ops.size() << ")";
        verdicts_checked += 2;
        (seq_strict ? true_verdicts : false_verdicts) += 1;
        (seq_relaxed ? true_verdicts : false_verdicts) += 1;
        any_true |= seq_strict || seq_relaxed;
        for (int op : ops) {
          if (state.proc_of(op) == live[i]) {
            ++skip_candidates;
            break;
          }
        }
      }
      if (!any_true) ++all_false_batches;

      // first_feasible_target agrees with the first true sequential verdict.
      const int first = state.first_feasible_target(ops, live);
      int expected = kNoNode;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (batch[i]) {
          expected = live[i];
          break;
        }
      }
      ASSERT_EQ(first, expected) << "step " << step;

      // Hypothetical-purchase batch vs the literal buy + probe + sell.
      if (step % 5 == 0) {
        state.can_place_on_new_batch(ops, configs, batch_new);
        ASSERT_EQ(batch_new.size(), configs.size());
        for (std::size_t c = 0; c < configs.size(); ++c) {
          const int pid = state.buy(configs[c]);
          const bool seq = state.can_place(ops, pid);
          state.sell(pid);
          ASSERT_EQ(batch_new[c] != 0, seq)
              << "step " << step << ": new-processor verdict differs for "
              << "config " << c;
          ++config_checks;
        }
      }
    } else if (action < 85) {  // dynamic demand refresh (may overload)
      const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
      const MegaOps old_w = world.tree.op(op).work;
      const MegaBytes old_d = world.tree.op(op).output_mb;
      const double factor = rng.uniform_real(0.5, 1.9);
      world.tree.set_demand(op, old_w * factor, old_d * factor);
      state.refresh_op_demand(op, old_w, old_d);
    } else if (action < 93) {  // dynamic object-rate refresh
      const int type = static_cast<int>(rng.index(6));
      const MBps old_rate = world.tree.catalog().type(type).rate();
      world.tree.mutable_catalog().set_type_frequency(
          type, rng.uniform_real(0.1, 1.5));
      state.refresh_object_rate(type, old_rate);
    } else {  // raw search moves keep unassigned/assigned mixes in play
      const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
      if (state.proc_of(op) == kNoNode) {
        state.search_place(op, live[rng.index(live.size())]);
      } else {
        state.search_unassign(op);
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // The walk exercised every interesting shape, both verdict polarities,
  // the slow path, and whole-batch rejections.
  EXPECT_GT(verdicts_checked, 2000);
  EXPECT_GT(true_verdicts, 200);
  EXPECT_GT(false_verdicts, 200);
  EXPECT_GT(skip_candidates, 100);
  EXPECT_GT(all_false_batches, 5);
  EXPECT_GT(config_checks, 500);
}

TEST(PlacementBatchDiff, BatchVerdictsMatchSequentialProbesEveryStep) {
  run_batch_diff_walk();
}

TEST(PlacementBatchDiff, WalkHoldsUnderForcedScalar) {
  ScopedIsa forced(simd::Isa::kScalar);
  ASSERT_EQ(simd::active_isa(), simd::Isa::kScalar);
  run_batch_diff_walk();
}

TEST(PlacementBatchDiff, WalkHoldsUnderForcedSse2) {
  if (simd::detected_isa() < simd::Isa::kSse2) {
    GTEST_SKIP() << "host has no SSE2 path";
  }
  ScopedIsa forced(simd::Isa::kSse2);
  ASSERT_EQ(simd::active_isa(), simd::Isa::kSse2);
  run_batch_diff_walk();
}

TEST(PlacementBatchDiff, WalkHoldsUnderForcedAvx2) {
  if (simd::detected_isa() < simd::Isa::kAvx2) {
    GTEST_SKIP() << "host has no AVX2 path";
  }
  ScopedIsa forced(simd::Isa::kAvx2);
  ASSERT_EQ(simd::active_isa(), simd::Isa::kAvx2);
  run_batch_diff_walk();
}

} // namespace
} // namespace insp
