// Property-based invariant fuzzer for the transactional placement engine:
// a seeded ~2000-step random walk over the full mutation surface —
// buy/sell, strict and relaxed try_place, probe-only can_place (rollback
// path), try_reconfigure, search_place/search_unassign, and the dynamic
// refresh hooks — where after EVERY step the incremental accounting is
// checked against a naive recompute-from-scratch oracle built from nothing
// but the tree, the catalogs, and the assignment: per-processor CPU /
// download / comm loads, pairwise link traffic, ledger overload lists, the
// live and unassigned id lists, and the total cost.  The oracle shares no
// code with PlacementState, so any drift the undo journal or the refresh
// deltas introduce fails within one step of the mutation that caused it.
#include "core/placement_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "platform/catalog.hpp"
#include "platform/platform.hpp"
#include "tree/tree_generator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace insp {
namespace {

struct FuzzWorld {
  OperatorTree tree;
  Platform platform;
  PriceCatalog prices;

  Problem problem() const {
    Problem p;
    p.tree = &tree;
    p.platform = &platform;
    p.catalog = &prices;
    p.rho = 1.0;
    return p;
  }
};

FuzzWorld make_fuzz_world(std::uint64_t seed, int n_ops) {
  Rng gen(seed);
  ObjectCatalog objects = ObjectCatalog::random(gen, 6, 5.0, 30.0, 0.5);
  TreeGenConfig tcfg;
  tcfg.num_operators = n_ops;
  tcfg.alpha = 1.0;
  tcfg.num_object_types = 6;
  OperatorTree tree = generate_random_tree(gen, tcfg, objects);
  std::vector<DataServer> servers;
  for (int s = 0; s < 3; ++s) {
    servers.push_back(DataServer{s, units::gigabytes_per_sec(10.0),
                                 {0, 1, 2, 3, 4, 5}});
  }
  Platform platform(std::move(servers), units::gigabytes_per_sec(1.0),
                    units::gigabytes_per_sec(1.0), 6);
  return FuzzWorld{std::move(tree), std::move(platform),
                   PriceCatalog::paper_default()};
}

/// Ground truth recomputed from scratch: assignment in, loads out.  The
/// charging semantics of docs/DESIGN.md §3, restated independently.
struct Oracle {
  std::vector<int> live;        // ascending pids
  std::vector<int> unassigned;  // ascending ops
  std::map<int, double> cpu_demand, download, comm;
  std::map<std::pair<int, int>, double> link_traffic;  // (min,max) -> MBps
  double total_cost = 0.0;
  std::vector<int> overloaded_procs;
  std::vector<std::pair<int, int>> overloaded_links;
};

Oracle recompute(const FuzzWorld& world, const PlacementState& state) {
  Oracle o;
  const OperatorTree& tree = world.tree;
  const double rho = 1.0;
  o.live = state.live_processors();  // pids are state-internal; loads are not
  for (int op = 0; op < tree.num_operators(); ++op) {
    if (state.proc_of(op) == kNoNode) o.unassigned.push_back(op);
  }
  for (int pid : o.live) {
    double work = 0.0;
    std::vector<int> types;
    for (int op = 0; op < tree.num_operators(); ++op) {
      if (state.proc_of(op) != pid) continue;
      work += tree.op(op).work;
      for (int t : tree.object_types_of(op)) types.push_back(t);
    }
    std::sort(types.begin(), types.end());
    types.erase(std::unique(types.begin(), types.end()), types.end());
    double download = 0.0;
    for (int t : types) download += tree.catalog().type(t).rate();
    o.cpu_demand[pid] = rho * work;
    o.download[pid] = download;
    o.comm[pid] = 0.0;
    o.total_cost += world.prices.cost(state.config(pid));
  }
  // Crossing edges: charged to both endpoint NICs and to the pairwise link.
  for (int child = 0; child < tree.num_operators(); ++child) {
    const int parent = tree.op(child).parent;
    if (parent == kNoNode) continue;
    const int pc = state.proc_of(child);
    const int pp = state.proc_of(parent);
    if (pc == kNoNode || pp == kNoNode || pc == pp) continue;
    const double volume = rho * tree.op(child).output_mb;
    o.comm[pc] += volume;
    o.comm[pp] += volume;
    o.link_traffic[{std::min(pc, pp), std::max(pc, pp)}] += volume;
  }
  for (int pid : o.live) {
    if (!fits_within(o.cpu_demand[pid],
                     world.prices.speed(state.config(pid))) ||
        !fits_within(o.download[pid] + o.comm[pid],
                     world.prices.bandwidth(state.config(pid)))) {
      o.overloaded_procs.push_back(pid);
    }
  }
  for (const auto& [link, used] : o.link_traffic) {
    if (!fits_within(used, world.platform.link_proc_proc())) {
      o.overloaded_links.push_back(link);
    }
  }
  return o;
}

#define FUZZ_NEAR(actual, expected)                                       \
  EXPECT_NEAR(actual, expected, 1e-6 * (1.0 + std::abs(expected)))        \
      << "step " << step << ": " << #actual

void check_against_oracle(const FuzzWorld& world, PlacementState& state,
                          int step) {
  const Oracle o = recompute(world, state);
  ASSERT_EQ(state.live_processors(), o.live) << "step " << step;
  ASSERT_EQ(state.unassigned_ops(), o.unassigned) << "step " << step;
  ASSERT_EQ(state.num_unassigned(), static_cast<int>(o.unassigned.size()));
  for (int pid : o.live) {
    FUZZ_NEAR(state.cpu_demand(pid), o.cpu_demand.at(pid));
    FUZZ_NEAR(state.download_load(pid), o.download.at(pid));
    FUZZ_NEAR(state.comm_load(pid), o.comm.at(pid));
    FUZZ_NEAR(state.nic_load(pid), o.download.at(pid) + o.comm.at(pid));
  }
  for (std::size_t i = 0; i < o.live.size(); ++i) {
    for (std::size_t j = i + 1; j < o.live.size(); ++j) {
      const auto key = std::make_pair(o.live[i], o.live[j]);
      const auto it = o.link_traffic.find(key);
      const double expected = it == o.link_traffic.end() ? 0.0 : it->second;
      FUZZ_NEAR(state.pair_traffic(o.live[i], o.live[j]), expected);
    }
  }
  FUZZ_NEAR(state.total_cost(), o.total_cost);
  EXPECT_EQ(state.overloaded_processors(), o.overloaded_procs)
      << "step " << step;
  EXPECT_EQ(state.overloaded_links(), o.overloaded_links) << "step " << step;
}

std::vector<int> random_ops(Rng& rng, int n_ops) {
  std::vector<int> ops;
  const int count = 1 + static_cast<int>(rng.index(3));
  for (int i = 0; i < count; ++i) {
    const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
    if (std::find(ops.begin(), ops.end(), op) == ops.end()) ops.push_back(op);
  }
  return ops;
}

TEST(PlacementFuzz, IncrementalAccountingMatchesNaiveOracleEveryStep) {
  constexpr int kSteps = 2000;
  FuzzWorld world = make_fuzz_world(0xF022u, /*n_ops=*/26);
  PlacementState state(world.problem());
  Rng rng(0xF022u);
  const int n_ops = world.tree.num_operators();
  const auto& configs = world.prices.by_cost();

  // Coverage counters: the walk must actually exercise commits AND
  // rollbacks on every mutation family, otherwise the oracle proves
  // nothing about the paths that matter.
  int commits = 0, rejections = 0, probes = 0, reconfigures = 0;
  int refreshes = 0, searches = 0;

  for (int step = 0; step < kSteps; ++step) {
    const std::vector<int> live = state.live_processors();
    const int action = static_cast<int>(rng.index(100));

    if (action < 10 || live.empty()) {  // buy (sometimes deliberately idle)
      state.buy(configs[rng.index(configs.size())]);
    } else if (action < 15) {  // sell a random empty processor, if any
      for (int pid : live) {
        if (state.ops_on(pid).empty()) {
          state.sell(pid);
          break;
        }
      }
    } else if (action < 40) {  // strict or relaxed try_place
      const std::vector<int> ops = random_ops(rng, n_ops);
      const int pid = live[rng.index(live.size())];
      const bool relaxed = rng.bernoulli(0.5);
      const bool ok = relaxed ? state.try_place_relaxed(ops, pid)
                              : state.try_place(ops, pid);
      (ok ? commits : rejections) += 1;
    } else if (action < 55) {  // probe-only: can_place must change nothing
      const std::vector<int> ops = random_ops(rng, n_ops);
      const int pid = live[rng.index(live.size())];
      const double cost_before = state.total_cost();
      std::vector<int> assignment_before;
      for (int op = 0; op < n_ops; ++op) {
        assignment_before.push_back(state.proc_of(op));
      }
      if (rng.bernoulli(0.5)) {
        state.can_place(ops, pid);
      } else {
        state.can_place_relaxed(ops, pid);
      }
      ++probes;
      // Rollback is a bit-exact value snapshot: exact equality, no epsilon.
      EXPECT_EQ(state.total_cost(), cost_before) << "step " << step;
      for (int op = 0; op < n_ops; ++op) {
        ASSERT_EQ(state.proc_of(op), assignment_before[static_cast<std::size_t>(op)])
            << "step " << step << ": can_place moved op " << op;
      }
    } else if (action < 65) {  // re-price in place
      const int pid = live[rng.index(live.size())];
      if (state.try_reconfigure(pid, configs[rng.index(configs.size())])) {
        ++reconfigures;
      }
    } else if (action < 80) {  // dynamic demand refresh (may overload)
      const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
      const MegaOps old_w = world.tree.op(op).work;
      const MegaBytes old_d = world.tree.op(op).output_mb;
      const double factor = rng.uniform_real(0.5, 1.8);
      world.tree.set_demand(op, old_w * factor, old_d * factor);
      state.refresh_op_demand(op, old_w, old_d);
      ++refreshes;
    } else if (action < 90) {  // dynamic object-rate refresh
      const int type = static_cast<int>(rng.index(6));
      const MBps old_rate = world.tree.catalog().type(type).rate();
      world.tree.mutable_catalog().set_type_frequency(
          type, rng.uniform_real(0.1, 1.5));
      state.refresh_object_rate(type, old_rate);
      ++refreshes;
    } else {  // expert search hooks: raw assign/unassign, no auto-sell
      const int op = static_cast<int>(rng.index(static_cast<std::size_t>(n_ops)));
      if (state.proc_of(op) == kNoNode) {
        state.search_place(op, live[rng.index(live.size())]);
      } else {
        state.search_unassign(op);
      }
      ++searches;
    }

    check_against_oracle(world, state, step);
    if (HasFatalFailure()) return;
  }

  // The walk covered every family, and both probe verdicts.
  EXPECT_GT(commits, 50);
  EXPECT_GT(rejections, 50);
  EXPECT_GT(probes, 100);
  EXPECT_GT(reconfigures, 10);
  EXPECT_GT(refreshes, 200);
  EXPECT_GT(searches, 50);
}

} // namespace
} // namespace insp
