#include "core/placement_state.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/constraints.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;

TEST(PlacementState, BuySellLifecycle) {
  const Fixture f = fig1a_fixture();
  const Problem p = f.problem();
  PlacementState st(p);
  EXPECT_EQ(st.num_live_processors(), 0);
  const int a = st.buy(f.catalog.cheapest());
  const int b = st.buy(f.catalog.most_expensive());
  EXPECT_TRUE(st.is_live(a));
  EXPECT_TRUE(st.is_live(b));
  EXPECT_EQ(st.num_live_processors(), 2);
  EXPECT_DOUBLE_EQ(st.total_cost(), 7548.0 + 18846.0);
  st.sell(a);
  EXPECT_FALSE(st.is_live(a));
  EXPECT_DOUBLE_EQ(st.total_cost(), 18846.0);
  EXPECT_EQ(st.live_processors(), std::vector<int>{b});
}

TEST(PlacementState, TryPlaceAssignsAndTracksLoads) {
  const Fixture f = fig1a_fixture(1.0, 10.0, 0.5);
  const Problem p = f.problem();
  PlacementState st(p);
  const int pid = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({4}, pid));  // n1: leaves o0 (10MB), o1 (20MB)
  EXPECT_EQ(st.proc_of(4), pid);
  EXPECT_EQ(st.num_unassigned(), 4);
  EXPECT_DOUBLE_EQ(st.cpu_demand(pid), 30.0);  // (10+20)^1
  // Downloads: o0 at 5 MB/s + o1 at 10 MB/s.
  EXPECT_DOUBLE_EQ(st.download_load(pid), 15.0);
  // No neighbors assigned: no comm yet.
  EXPECT_DOUBLE_EQ(st.comm_load(pid), 0.0);
}

TEST(PlacementState, DownloadsDeduplicatedPerProcessor) {
  const Fixture f = fig1a_fixture(1.0, 10.0, 0.5);
  const Problem p = f.problem();
  PlacementState st(p);
  const int pid = st.buy(f.catalog.most_expensive());
  // n1 (id 4) and n2 (id 3) both need o0: one download suffices.
  ASSERT_TRUE(st.try_place({4, 3}, pid));
  // Types on pid: o0 (5 MB/s), o1 (10 MB/s) — o0 counted once.
  EXPECT_DOUBLE_EQ(st.download_load(pid), 15.0);
}

TEST(PlacementState, CrossingEdgeChargedToBothAndLink) {
  const Fixture f = fig1a_fixture(1.0, 10.0, 0.5);
  const Problem p = f.problem();
  PlacementState st(p);
  const int a = st.buy(f.catalog.most_expensive());
  const int b = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({4}, a));  // n1
  ASSERT_TRUE(st.try_place({3}, b));  // n2 = parent of n1, edge 30 MB
  EXPECT_DOUBLE_EQ(st.comm_load(a), 30.0);
  EXPECT_DOUBLE_EQ(st.comm_load(b), 30.0);
  // Colocating removes the crossing charge.
  ASSERT_TRUE(st.try_place({4}, b));
  EXPECT_FALSE(st.is_live(a));  // emptied source sold automatically
  EXPECT_DOUBLE_EQ(st.comm_load(b), 0.0);
}

TEST(PlacementState, TryPlaceRejectsCpuOverload) {
  // alpha = 2.2 at size 10: root mass 90 -> w = 90^2.2 ~ 19,6k; n5 w = 40^2.2
  // Use large sizes to push the root beyond the fastest CPU.
  const Fixture f = fig1a_fixture(2.2, 30.0);
  const Problem p = f.problem();
  PlacementState st(p);
  const int pid = st.buy(f.catalog.most_expensive());
  // Root mass = 270 -> 270^2.2 ~ 221k Mops > 46,880.
  EXPECT_FALSE(st.try_place({0}, pid));
  EXPECT_EQ(st.proc_of(0), kNoNode);
  EXPECT_EQ(st.num_unassigned(), 5);
}

TEST(PlacementState, TryPlaceRejectsNicOverloadOnNeighbor) {
  // Tiny NIC catalog: crossing edges must fit both endpoints' cards.
  Fixture f = fig1a_fixture(0.5, 10.0);
  f.catalog = PriceCatalog(100.0, {{46880.0, 0.0}}, {{40.0, 0.0}});
  const Problem p = f.problem();
  PlacementState st(p);
  const int a = st.buy(f.catalog.cheapest());
  const int b = st.buy(f.catalog.cheapest());
  ASSERT_TRUE(st.try_place({4}, a));  // n1 downloads 15 MB/s
  // n2 on b: edge n1->n2 is 30 MB, nic b = 30 (edge) + 5 (o0 dl) > 40? No:
  // 35 fits; but nic a = 15 + 30 = 45 > 40 -> rejected.
  EXPECT_FALSE(st.try_place({3}, b));
  EXPECT_EQ(st.proc_of(3), kNoNode);
  // State unchanged: a still holds n1 with downloads only.
  EXPECT_DOUBLE_EQ(st.comm_load(a), 0.0);
}

TEST(PlacementState, TryPlaceRejectsLinkOverload) {
  // Link capacity below the edge volume: the pair can never be split.
  Fixture f = fig1a_fixture(0.5, 10.0);
  f.platform = testhelpers::simple_platform({{0, 1, 2}}, 3, 10000.0, 1000.0,
                                            /*link_pp=*/25.0);
  const Problem p = f.problem();
  PlacementState st(p);
  const int a = st.buy(f.catalog.most_expensive());
  const int b = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({4}, a));
  EXPECT_FALSE(st.try_place({3}, b));  // edge 30 > link 25
  ASSERT_TRUE(st.try_place({3}, a));   // co-location is fine
  EXPECT_DOUBLE_EQ(st.comm_load(a), 0.0);
}

TEST(PlacementState, MovingGroupBetweenProcessors) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Problem p = f.problem();
  PlacementState st(p);
  const int a = st.buy(f.catalog.most_expensive());
  const int b = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({4, 3}, a));
  ASSERT_TRUE(st.try_place({1, 0, 2}, b));
  // Move everything to b; a must be sold.
  ASSERT_TRUE(st.try_place({4, 3}, b));
  EXPECT_FALSE(st.is_live(a));
  EXPECT_EQ(st.num_unassigned(), 0);
  EXPECT_DOUBLE_EQ(st.comm_load(b), 0.0);
  EXPECT_EQ(st.ops_on(b).size(), 5u);
}

TEST(PlacementState, CanPlaceDoesNotMutate) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Problem p = f.problem();
  PlacementState st(p);
  const int a = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.can_place({4}, a));
  EXPECT_EQ(st.proc_of(4), kNoNode);
  EXPECT_EQ(st.num_unassigned(), 5);
  EXPECT_DOUBLE_EQ(st.cpu_demand(a), 0.0);
}

TEST(PlacementState, RhoScalesCpuAndCommDemand) {
  Fixture f = fig1a_fixture(1.0, 10.0);
  f.rho = 2.0;
  const Problem p = f.problem();
  PlacementState st(p);
  const int a = st.buy(f.catalog.most_expensive());
  const int b = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({4}, a));
  ASSERT_TRUE(st.try_place({3}, b));
  EXPECT_DOUBLE_EQ(st.cpu_demand(a), 60.0);   // 2 * 30
  EXPECT_DOUBLE_EQ(st.comm_load(a), 60.0);    // 2 * 30 MB edge
  // Downloads are rho-independent (QoS-driven).
  EXPECT_DOUBLE_EQ(st.download_load(a), 15.0);
}

TEST(PlacementState, ToAllocationCompactsAndSorts) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Problem p = f.problem();
  PlacementState st(p);
  const int a = st.buy(f.catalog.most_expensive());
  st.buy(f.catalog.cheapest());  // stays empty -> dropped
  const int c = st.buy(f.catalog.cheapest());
  ASSERT_TRUE(st.try_place({4, 3, 1}, a));
  ASSERT_TRUE(st.try_place({0, 2}, c));
  const Allocation alloc = st.to_allocation();
  ASSERT_EQ(alloc.num_processors(), 2);
  EXPECT_EQ(alloc.processors[0].ops, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(alloc.processors[1].ops, (std::vector<int>{0, 2}));
  EXPECT_EQ(alloc.op_to_proc[4], 0);
  EXPECT_EQ(alloc.op_to_proc[0], 1);
}

TEST(PlacementState, NeighborsReturnsParentAndChildrenWithVolumes) {
  const Fixture f = fig1a_fixture(1.0, 10.0);
  const Problem p = f.problem();
  PlacementState st(p);
  // n2 (id 3): parent n5 (id 1), child n1 (id 4).
  const auto nbs = st.neighbors(3);
  ASSERT_EQ(nbs.size(), 2u);
  EXPECT_EQ(nbs[0].first, 1);
  EXPECT_DOUBLE_EQ(nbs[0].second, 40.0);  // n2's own output to its parent
  EXPECT_EQ(nbs[1].first, 4);
  EXPECT_DOUBLE_EQ(nbs[1].second, 30.0);  // n1's output
}

TEST(PlacementState, IncrementalLoadsMatchGroundTruthChecker) {
  // Cross-validation: incremental accounting vs compute_processor_loads.
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const Fixture f = testhelpers::random_fixture(seed, 30, 1.1);
    const Problem p = f.problem();
    PlacementState st(p);
    Rng rng(seed);
    // Scatter ops over up to 6 processors arbitrarily (accepting only
    // feasible moves).
    std::vector<int> procs;
    for (int i = 0; i < 6; ++i) procs.push_back(st.buy(f.catalog.most_expensive()));
    for (int op = 0; op < f.tree.num_operators(); ++op) {
      for (int attempt = 0; attempt < 6; ++attempt) {
        const int pid = procs[rng.index(procs.size())];
        if (st.try_place({op}, pid)) break;
      }
      if (st.proc_of(op) == kNoNode) {
        ASSERT_TRUE(st.try_place({op}, procs[0]))
            << "op " << op << " could not be placed anywhere";
      }
    }
    const Allocation alloc = st.to_allocation();
    const auto loads = compute_processor_loads(p, alloc);
    // Map dense processor ids back to live state ids (same order).
    const auto live = st.live_processors();
    ASSERT_EQ(live.size(), loads.size());
    for (std::size_t u = 0; u < live.size(); ++u) {
      EXPECT_NEAR(st.cpu_demand(live[u]), loads[u].cpu_demand, 1e-6);
      EXPECT_NEAR(st.download_load(live[u]), loads[u].download, 1e-9);
      EXPECT_NEAR(st.comm_load(live[u]),
                  loads[u].comm_in + loads[u].comm_out, 1e-6);
    }
  }
}

// --- repair API (relaxed probes, reconfigure, demand refresh) --------------

namespace repairfix {

/// fig1a over a two-CPU catalog (speed 300 expensive / 100 cheap, one
/// 1000 MB/s NIC) so CPU overload scenarios are easy to stage.
testhelpers::Fixture small_catalog_fixture() {
  testhelpers::Fixture f{
      testhelpers::fig1a_tree(1.0, 10.0, 0.5),
      testhelpers::simple_platform({{0, 1, 2}, {0, 1, 2}}, 3),
      PriceCatalog(100.0, {{100.0, 0.0}, {300.0, 500.0}},
                   {{1000.0, 0.0}}),
      1.0,
  };
  return f;
}

/// Doubles every operator's demands and refreshes the state — the rho-fold
/// shape of a dynamic throughput increase.
void double_all_demands(OperatorTree& tree, PlacementState& st) {
  for (int op = 0; op < tree.num_operators(); ++op) {
    const MegaOps w = tree.op(op).work;
    const MegaBytes d = tree.op(op).output_mb;
    tree.set_demand(op, 2.0 * w, 2.0 * d);
    st.refresh_op_demand(op, w, d);
  }
}

} // namespace repairfix

TEST(PlacementStateRepair, RefreshOpDemandTracksMutatedTree) {
  testhelpers::Fixture f = repairfix::small_catalog_fixture();
  PlacementState st(f.problem());
  const int a = st.buy(f.catalog.most_expensive());
  const int b = st.buy(f.catalog.most_expensive());
  // Root (0) and n3 (2) on a; the chain n5,n2,n1 on b.
  ASSERT_TRUE(st.try_place({0, 2}, a));
  ASSERT_TRUE(st.try_place({1, 3, 4}, b));
  repairfix::double_all_demands(f.tree, st);

  // Oracle: a fresh state over the mutated tree with the same assignment.
  PlacementState fresh(f.problem());
  const int fa = fresh.buy(f.catalog.most_expensive());
  const int fb = fresh.buy(f.catalog.most_expensive());
  for (int op : {0, 2}) fresh.search_place(op, fa);
  for (int op : {1, 3, 4}) fresh.search_place(op, fb);

  EXPECT_NEAR(st.cpu_demand(a), fresh.cpu_demand(fa), 1e-9);
  EXPECT_NEAR(st.cpu_demand(b), fresh.cpu_demand(fb), 1e-9);
  EXPECT_NEAR(st.comm_load(a), fresh.comm_load(fa), 1e-9);
  EXPECT_NEAR(st.comm_load(b), fresh.comm_load(fb), 1e-9);
  EXPECT_NEAR(st.download_load(a), fresh.download_load(fa), 1e-9);
  EXPECT_NEAR(st.pair_traffic(a, b), fresh.pair_traffic(fa, fb), 1e-9);
}

TEST(PlacementStateRepair, RefreshObjectRateTracksMutatedCatalog) {
  testhelpers::Fixture f = repairfix::small_catalog_fixture();
  PlacementState st(f.problem());
  const int a = st.buy(f.catalog.most_expensive());
  const int b = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({0, 2}, a));   // n3 needs o1, o2
  ASSERT_TRUE(st.try_place({1, 3, 4}, b));  // n2/n1 need o0, o1
  // o1 (20 MB) from 0.5 Hz to 2 Hz: rate 10 -> 40 MB/s on both processors.
  const MBps old_rate = f.tree.catalog().type(1).rate();
  const MBps before_a = st.download_load(a);
  const MBps before_b = st.download_load(b);
  f.tree.mutable_catalog().set_type_frequency(1, 2.0);
  st.refresh_object_rate(1, old_rate);
  EXPECT_NEAR(st.download_load(a), before_a + 30.0, 1e-9);
  EXPECT_NEAR(st.download_load(b), before_b + 30.0, 1e-9);
}

TEST(PlacementStateRepair, OverloadedProcessorsReportsViolations) {
  testhelpers::Fixture f = repairfix::small_catalog_fixture();
  PlacementState st(f.problem());
  const int pid = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({0, 1, 2, 3, 4}, pid));  // total w = 250 <= 300
  EXPECT_TRUE(st.overloaded_processors().empty());
  repairfix::double_all_demands(f.tree, st);  // w = 500 > 300
  EXPECT_FALSE(st.feasible());
  EXPECT_EQ(st.overloaded_processors(), std::vector<int>{pid});
  EXPECT_TRUE(st.overloaded_links().empty());
}

TEST(PlacementStateRepair, RelaxedProbeDrainsOverloadedProcessor) {
  testhelpers::Fixture f = repairfix::small_catalog_fixture();
  PlacementState st(f.problem());
  const int a = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({0, 1, 2, 3, 4}, a));
  repairfix::double_all_demands(f.tree, st);  // a at w=500, speed 300

  const int b = st.buy(f.catalog.most_expensive());
  // Strict probes refuse: the source stays overloaded after one eviction
  // (500 - 180 = 320 > 300).
  EXPECT_FALSE(st.can_place({0}, b));
  EXPECT_FALSE(st.try_place({0}, b));
  // The relaxed probe accepts: a's excess shrinks, b stays feasible.
  EXPECT_TRUE(st.try_place_relaxed({0}, b));
  EXPECT_FALSE(st.feasible());  // a still at 320
  // A second eviction (n3, w=100) restores feasibility.
  EXPECT_TRUE(st.try_place_relaxed({2}, b));
  EXPECT_TRUE(st.feasible());
  EXPECT_TRUE(st.overloaded_processors().empty());
}

TEST(PlacementStateRepair, RelaxedProbeRejectsNewViolation) {
  testhelpers::Fixture f = repairfix::small_catalog_fixture();
  PlacementState st(f.problem());
  const int a = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({0, 1, 2, 3, 4}, a));
  repairfix::double_all_demands(f.tree, st);
  // Root now has w=180 > 100: the cheap CPU cannot host it, and the relaxed
  // verdict must not trade one violation for a new one.
  const int weak = st.buy(f.catalog.cheapest());
  EXPECT_FALSE(st.try_place_relaxed({0}, weak));
  // The probe rolled back: the weak processor is still empty.
  EXPECT_TRUE(st.ops_on(weak).empty());
  EXPECT_EQ(st.proc_of(0), a);
}

TEST(PlacementStateRepair, RelaxedEqualsStrictOnFeasibleStates) {
  const testhelpers::Fixture f = testhelpers::fig1a_fixture();
  PlacementState st(f.problem());
  const int a = st.buy(f.catalog.most_expensive());
  const int b = st.buy(f.catalog.most_expensive());
  ASSERT_TRUE(st.try_place({0, 1, 2}, a));
  for (int op : {3, 4}) {
    EXPECT_EQ(st.can_place({op}, b), st.can_place_relaxed({op}, b));
  }
}

TEST(PlacementStateRepair, TryReconfigureSwapsConfigWhenLoadsFit) {
  testhelpers::Fixture f = repairfix::small_catalog_fixture();
  PlacementState st(f.problem());
  const int pid = st.buy(f.catalog.cheapest());  // speed 100
  ASSERT_TRUE(st.try_place({4}, pid));           // n1: w = 30
  const Dollars before = st.total_cost();
  EXPECT_TRUE(st.try_reconfigure(pid, f.catalog.most_expensive()));
  EXPECT_EQ(st.config(pid).cpu, f.catalog.most_expensive().cpu);
  EXPECT_GT(st.total_cost(), before);

  // Upgrade a processor whose loads outgrew it (the repair path), and
  // refuse a downgrade below the current load.
  testhelpers::Fixture g = repairfix::small_catalog_fixture();
  PlacementState st2(g.problem());
  const int q = st2.buy(g.catalog.most_expensive());
  ASSERT_TRUE(st2.try_place({0, 1, 2, 3, 4}, q));  // w = 250 > 100
  EXPECT_FALSE(st2.try_reconfigure(q, g.catalog.cheapest()));
  EXPECT_EQ(st2.config(q).cpu, g.catalog.most_expensive().cpu);
}

} // namespace
} // namespace insp
