// Randomized differential test of the transactional placement engine
// (docs/DESIGN.md §5): random sequences of buy / sell / try_place /
// can_place run simultaneously against PlacementState and against a naive
// copy-and-revalidate oracle that recomputes every load from first
// principles.  Verdicts, loads, live sets, and costs must agree at every
// step, and a failed (or probe-only) move must leave PlacementState
// bit-identical to a deep copy taken before it.
#include "core/placement_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "../test_helpers.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;

/// Naive reference: full assignment vector, loads recomputed from scratch,
/// full-state validation on every probe.  Shares no accounting code with
/// PlacementState.
class Oracle {
 public:
  explicit Oracle(const Problem& p)
      : p_(&p),
        op_to_proc_(static_cast<std::size_t>(p.tree->num_operators()),
                    kNoNode) {}

  int buy(ProcessorConfig cfg) {
    procs_.push_back({cfg, true});
    return static_cast<int>(procs_.size()) - 1;
  }

  void sell(int pid) { procs_[static_cast<std::size_t>(pid)].live = false; }

  bool is_live(int pid) const {
    return pid >= 0 && static_cast<std::size_t>(pid) < procs_.size() &&
           procs_[static_cast<std::size_t>(pid)].live;
  }

  int proc_of(int op) const {
    return op_to_proc_[static_cast<std::size_t>(op)];
  }

  bool try_place(const std::vector<int>& ops, int pid) {
    std::vector<int> trial = op_to_proc_;
    for (int op : ops) trial[static_cast<std::size_t>(op)] = pid;
    if (!feasible(trial)) return false;
    std::vector<int> sources;
    for (int op : ops) {
      const int src = proc_of(op);
      if (src != kNoNode && src != pid) sources.push_back(src);
    }
    op_to_proc_ = std::move(trial);
    for (int src : sources) {
      if (is_live(src) && ops_assigned_to(src) == 0) sell(src);
    }
    return true;
  }

  bool can_place(const std::vector<int>& ops, int pid) const {
    std::vector<int> trial = op_to_proc_;
    for (int op : ops) trial[static_cast<std::size_t>(op)] = pid;
    return feasible(trial);
  }

  struct Loads {
    MegaOps work = 0.0;
    MBps download = 0.0;
    MBps comm = 0.0;
  };

  /// Recomputed from scratch for the current assignment.
  Loads loads_of(int pid) const { return loads_of(pid, op_to_proc_); }

  Dollars total_cost() const {
    Dollars total = 0.0;
    for (const auto& pr : procs_) {
      if (pr.live) total += p_->catalog->cost(pr.cfg);
    }
    return total;
  }

  std::vector<int> live_processors() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      if (procs_[i].live) out.push_back(static_cast<int>(i));
    }
    return out;
  }

  std::vector<int> unassigned_ops() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < op_to_proc_.size(); ++i) {
      if (op_to_proc_[i] == kNoNode) out.push_back(static_cast<int>(i));
    }
    return out;
  }

 private:
  struct Proc {
    ProcessorConfig cfg;
    bool live = false;
  };

  int ops_assigned_to(int pid) const {
    int n = 0;
    for (int q : op_to_proc_) n += q == pid ? 1 : 0;
    return n;
  }

  Loads loads_of(int pid, const std::vector<int>& assign) const {
    const OperatorTree& tree = *p_->tree;
    Loads out;
    std::set<int> types;
    for (int op = 0; op < tree.num_operators(); ++op) {
      if (assign[static_cast<std::size_t>(op)] != pid) continue;
      out.work += tree.op(op).work;
      for (int t : tree.object_types_of(op)) types.insert(t);
      // Crossing edges: parent edge plus child edges with the far endpoint
      // assigned elsewhere (unassigned neighbors are free).
      const auto& n = tree.op(op);
      if (n.parent() != kNoNode) {
        const int q = assign[static_cast<std::size_t>(n.parent())];
        if (q != kNoNode && q != pid) out.comm += p_->rho * n.output_mb;
      }
      for (int c : n.children) {
        const int q = assign[static_cast<std::size_t>(c)];
        if (q != kNoNode && q != pid) {
          out.comm += p_->rho * tree.op(c).output_mb;
        }
      }
    }
    for (int t : types) out.download += tree.catalog().type(t).rate();
    return out;
  }

  bool feasible(const std::vector<int>& assign) const {
    const PriceCatalog& cat = *p_->catalog;
    std::map<std::pair<int, int>, MBps> links;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
      const int pid = static_cast<int>(i);
      if (!procs_[i].live) continue;
      const Loads l = loads_of(pid, assign);
      if (!fits_within(p_->rho * l.work, cat.speed(procs_[i].cfg))) {
        return false;
      }
      if (!fits_within(l.download + l.comm, cat.bandwidth(procs_[i].cfg))) {
        return false;
      }
    }
    const OperatorTree& tree = *p_->tree;
    for (int op = 0; op < tree.num_operators(); ++op) {
      const auto& n = tree.op(op);
      if (n.parent() == kNoNode) continue;
      const int a = assign[static_cast<std::size_t>(op)];
      const int b = assign[static_cast<std::size_t>(n.parent())];
      if (a == kNoNode || b == kNoNode || a == b) continue;
      links[{std::min(a, b), std::max(a, b)}] += p_->rho * n.output_mb;
    }
    for (const auto& [k, v] : links) {
      (void)k;
      if (!fits_within(v, p_->platform->link_proc_proc())) return false;
    }
    return true;
  }

  const Problem* p_;
  std::vector<Proc> procs_;
  std::vector<int> op_to_proc_;
};

/// Everything observable about a PlacementState, for bit-exact comparison
/// around failed probes.
struct Observation {
  std::vector<int> live;
  std::vector<int> assignment;
  std::vector<int> unassigned;
  std::vector<MegaOps> cpu;
  std::vector<MBps> download, comm;
  std::vector<std::vector<int>> download_types;
  std::map<std::pair<int, int>, MBps> pair_traffic;
  Dollars cost = 0.0;
};

Observation observe(const PlacementState& st) {
  Observation o;
  o.live = st.live_processors();
  o.unassigned = st.unassigned_ops();
  const int num_ops = st.problem().tree->num_operators();
  for (int op = 0; op < num_ops; ++op) o.assignment.push_back(st.proc_of(op));
  for (int pid : o.live) {
    o.cpu.push_back(st.cpu_demand(pid));
    o.download.push_back(st.download_load(pid));
    o.comm.push_back(st.comm_load(pid));
    o.download_types.push_back(st.download_types(pid));
  }
  for (std::size_t i = 0; i < o.live.size(); ++i) {
    for (std::size_t j = i + 1; j < o.live.size(); ++j) {
      const MBps t = st.pair_traffic(o.live[i], o.live[j]);
      if (t != 0.0) o.pair_traffic[{o.live[i], o.live[j]}] = t;
    }
  }
  o.cost = st.total_cost();
  return o;
}

void expect_identical(const Observation& a, const Observation& b) {
  EXPECT_EQ(a.live, b.live);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.unassigned, b.unassigned);
  ASSERT_EQ(a.cpu.size(), b.cpu.size());
  for (std::size_t i = 0; i < a.cpu.size(); ++i) {
    // Bit-exact: a rolled-back probe must not perturb a single ULP.
    EXPECT_DOUBLE_EQ(a.cpu[i], b.cpu[i]);
    EXPECT_DOUBLE_EQ(a.download[i], b.download[i]);
    EXPECT_DOUBLE_EQ(a.comm[i], b.comm[i]);
  }
  EXPECT_EQ(a.download_types, b.download_types);
  ASSERT_EQ(a.pair_traffic.size(), b.pair_traffic.size());
  for (auto ita = a.pair_traffic.begin(), itb = b.pair_traffic.begin();
       ita != a.pair_traffic.end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first);
    EXPECT_DOUBLE_EQ(ita->second, itb->second);
  }
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

void expect_matches_oracle(const PlacementState& st, const Oracle& oracle) {
  ASSERT_EQ(st.live_processors(), oracle.live_processors());
  ASSERT_EQ(st.unassigned_ops(), oracle.unassigned_ops());
  for (int op = 0; op < st.problem().tree->num_operators(); ++op) {
    EXPECT_EQ(st.proc_of(op), oracle.proc_of(op)) << "op " << op;
  }
  for (int pid : st.live_processors()) {
    const Oracle::Loads l = oracle.loads_of(pid);
    EXPECT_NEAR(st.cpu_demand(pid), st.problem().rho * l.work, 1e-6);
    EXPECT_NEAR(st.download_load(pid), l.download, 1e-9);
    EXPECT_NEAR(st.comm_load(pid), l.comm, 1e-6);
  }
  EXPECT_DOUBLE_EQ(st.total_cost(), oracle.total_cost());
}

TEST(PlacementTxnDifferential, RandomSequencesMatchCopyRevalidateOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Alternate tree shapes and object weights across seeds so some probes
    // fail on CPU, some on NICs, some on links.
    const int n_ops = seed % 2 == 0 ? 24 : 40;
    const double alpha = seed % 3 == 0 ? 1.6 : 1.1;
    const MegaBytes size_hi = seed % 2 == 0 ? 120.0 : 30.0;
    const Fixture f =
        testhelpers::random_fixture(seed, n_ops, alpha, 5.0, size_hi);
    const Problem p = f.problem();
    PlacementState st(p);
    Oracle oracle(p);
    Rng rng(seed * 977 + 13);

    int probes = 0, failures = 0;
    for (int step = 0; step < 400; ++step) {
      const int action = static_cast<int>(rng.index(10));
      if (action == 0 || st.num_live_processors() == 0) {
        // Buy a random configuration; ids must stay in lockstep.
        const auto& configs = f.catalog.by_cost();
        const ProcessorConfig cfg = configs[rng.index(configs.size())];
        ASSERT_EQ(st.buy(cfg), oracle.buy(cfg));
        continue;
      }
      if (action == 1) {
        // Sell a random live empty processor, when one exists.
        std::vector<int> empties;
        for (int pid : st.live_processors()) {
          if (st.ops_on(pid).empty()) empties.push_back(pid);
        }
        if (!empties.empty()) {
          const int pid = empties[rng.index(empties.size())];
          st.sell(pid);
          oracle.sell(pid);
        }
        continue;
      }
      // Probe: 1-3 random operators (any assignment state, duplicates
      // allowed) onto a random live target.
      const std::vector<int>& live = st.live_processors();
      const int pid = live[rng.index(live.size())];
      std::vector<int> ops;
      const std::size_t group = 1 + rng.index(3);
      for (std::size_t i = 0; i < group; ++i) {
        ops.push_back(static_cast<int>(
            rng.index(static_cast<std::size_t>(p.tree->num_operators()))));
      }
      const bool probe_only = action >= 7;
      const Observation before = observe(st);
      bool verdict, expected;
      if (probe_only) {
        verdict = st.can_place(ops, pid);
        expected = oracle.can_place(ops, pid);
      } else {
        verdict = st.try_place(ops, pid);
        expected = oracle.try_place(ops, pid);
      }
      ASSERT_EQ(verdict, expected)
          << "step " << step << ": engine and oracle verdicts diverged";
      ++probes;
      failures += verdict ? 0 : 1;
      if (probe_only || !verdict) {
        // Rolled-back probe: the state must be bit-identical to before.
        expect_identical(before, observe(st));
      }
      expect_matches_oracle(st, oracle);
      ASSERT_TRUE(st.feasible());
    }
    // The sequence must actually exercise both branches.
    EXPECT_GT(probes, 100);
    EXPECT_GT(failures, 10);
    EXPECT_LT(failures, probes);
  }
}

} // namespace
} // namespace insp
