#include "core/server_selection.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "core/constraints.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::fig1a_fixture;
using testhelpers::simple_platform;

Allocation skeleton(const Fixture& f) {
  Allocation a;
  PurchasedProcessor p;
  p.config = f.catalog.most_expensive();
  p.ops = {0, 1, 2, 3, 4};
  a.processors.push_back(p);
  a.op_to_proc = {0, 0, 0, 0, 0};
  return a;
}

TEST(ServerSelection, ThreeLoopRoutesAllNeeds) {
  const Fixture f = fig1a_fixture();
  Allocation a = skeleton(f);
  const auto r = select_servers_three_loop(f.problem(), a);
  ASSERT_TRUE(r.success) << r.failure_reason;
  ASSERT_EQ(a.processors[0].downloads.size(), 3u);
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

TEST(ServerSelection, Loop1ExclusiveHolderIsForced) {
  Fixture f = fig1a_fixture();
  // o2 exists only on server 1; o0,o1 on both.
  f.platform = simple_platform({{0, 1}, {0, 1, 2}}, 3);
  Allocation a = skeleton(f);
  const auto r = select_servers_three_loop(f.problem(), a);
  ASSERT_TRUE(r.success) << r.failure_reason;
  for (const auto& dl : a.processors[0].downloads) {
    if (dl.object_type == 2) {
      EXPECT_EQ(dl.server, 1);
    }
  }
}

TEST(ServerSelection, Loop1FailsWhenExclusiveServerTooSmall) {
  Fixture f = fig1a_fixture(1.0, 480.0);  // o2 = 1440 MB, rate 720 MB/s
  f.platform = simple_platform({{0, 1}, {0, 1, 2}}, 3, 10000.0,
                               /*link_sp=*/500.0);
  Allocation a = skeleton(f);
  const auto r = select_servers_three_loop(f.problem(), a);
  ASSERT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("loop1"), std::string::npos);
}

TEST(ServerSelection, Loop2PrefersSingleTypeServers) {
  Fixture f = fig1a_fixture();
  // Server 1 hosts only o1; servers 0 and 1 both host o1.
  f.platform = simple_platform({{0, 1, 2}, {1}}, 3);
  Allocation a = skeleton(f);
  const auto r = select_servers_three_loop(f.problem(), a);
  ASSERT_TRUE(r.success) << r.failure_reason;
  for (const auto& dl : a.processors[0].downloads) {
    if (dl.object_type == 1) {
      EXPECT_EQ(dl.server, 1);
    }
  }
}

TEST(ServerSelection, Loop3BalancesByHeadroom) {
  // Two processors each needing o0; two hosts with asymmetric remaining
  // capacity: the larger headroom server is used first.
  Fixture f = fig1a_fixture(1.0, 100.0);  // o0 rate 50 MB/s
  f.platform = simple_platform({{0, 1, 2}, {0, 1, 2}}, 3, /*card=*/10000.0);
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {4, 3, 1, 0};  // needs o0, o1
  p1.config = f.catalog.most_expensive();
  p1.ops = {2};  // n3 needs o1, o2
  a.processors = {p0, p1};
  a.op_to_proc = {0, 0, 1, 0, 0};
  const auto r = select_servers_three_loop(f.problem(), a);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

TEST(ServerSelection, Loop3FailsWhenNothingFits) {
  Fixture f = fig1a_fixture(1.0, 480.0);  // rates 240/480/720 MB/s
  // Both servers host everything but cards are too small for the sum.
  f.platform = simple_platform({{0, 1, 2}, {0, 1, 2}}, 3, /*card=*/700.0);
  Allocation a = skeleton(f);
  const auto r = select_servers_three_loop(f.problem(), a);
  ASSERT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("loop3"), std::string::npos);
}

TEST(ServerSelection, FailsOnUnhostedType) {
  Fixture f = fig1a_fixture();
  f.platform = simple_platform({{0, 1}}, 3);  // o2 nowhere
  Allocation a = skeleton(f);
  const auto r = select_servers_three_loop(f.problem(), a);
  ASSERT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("hosted by no server"), std::string::npos);
}

TEST(ServerSelection, RandomSelectionRoutesFromHosts) {
  const Fixture f = fig1a_fixture();
  Allocation a = skeleton(f);
  Rng rng(5);
  const auto r = select_servers_random(f.problem(), a, rng);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(check_allocation(f.problem(), a).ok());
}

TEST(ServerSelection, RandomSelectionReportsOverload) {
  Fixture f = fig1a_fixture(1.0, 480.0);
  f.platform = simple_platform({{0, 1, 2}}, 3, /*card=*/700.0);
  Allocation a = skeleton(f);
  Rng rng(5);
  const auto r = select_servers_random(f.problem(), a, rng);
  ASSERT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("overloads"), std::string::npos);
}

TEST(ServerSelection, RandomSelectionDeterministicGivenSeed) {
  const Fixture f = fig1a_fixture();
  Allocation a1 = skeleton(f), a2 = skeleton(f);
  Rng r1(9), r2(9);
  ASSERT_TRUE(select_servers_random(f.problem(), a1, r1).success);
  ASSERT_TRUE(select_servers_random(f.problem(), a2, r2).success);
  EXPECT_EQ(a1.processors[0].downloads, a2.processors[0].downloads);
}

TEST(ServerSelection, PerProcessorDedupAcrossSharedTypes) {
  const Fixture f = fig1a_fixture();
  Allocation a = skeleton(f);
  ASSERT_TRUE(select_servers_three_loop(f.problem(), a).success);
  // o0 needed by two operators on the same processor: exactly one route.
  int o0_routes = 0;
  for (const auto& dl : a.processors[0].downloads) {
    o0_routes += dl.object_type == 0 ? 1 : 0;
  }
  EXPECT_EQ(o0_routes, 1);
}

TEST(ServerSelection, SameTypeOnTwoProcessorsRoutedTwice) {
  const Fixture f = fig1a_fixture();
  Allocation a;
  PurchasedProcessor p0, p1;
  p0.config = f.catalog.most_expensive();
  p0.ops = {4, 3, 1, 0};
  p1.config = f.catalog.most_expensive();
  p1.ops = {2};
  a.processors = {p0, p1};
  a.op_to_proc = {0, 0, 1, 0, 0};
  ASSERT_TRUE(select_servers_three_loop(f.problem(), a).success);
  // o1 needed on both processors: one route each.
  int o1_routes = 0;
  for (const auto& p : a.processors) {
    for (const auto& dl : p.downloads) o1_routes += dl.object_type == 1;
  }
  EXPECT_EQ(o1_routes, 2);
}

} // namespace
} // namespace insp
