#include "core/strategy_registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "../test_helpers.hpp"
#include "core/allocator.hpp"

namespace insp {
namespace {

using testhelpers::fig1a_fixture;

TEST(StrategyRegistry, PaperSixFirstThenAblations) {
  const auto& reg = placement_registry();
  ASSERT_GE(reg.size(), 8u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(reg[i].paper_core) << reg[i].name;
  }
  for (std::size_t i = 6; i < reg.size(); ++i) {
    EXPECT_FALSE(reg[i].paper_core) << reg[i].name;
  }
  EXPECT_EQ(all_heuristics().size(), 6u);
  EXPECT_EQ(all_heuristics().front(), HeuristicKind::Random);
}

TEST(StrategyRegistry, EveryEntryIsComplete) {
  std::set<std::string> names, cli_names;
  std::set<char> markers;
  for (const PlacementStrategy& s : placement_registry()) {
    EXPECT_NE(s.name, nullptr);
    EXPECT_NE(s.cli_name, nullptr);
    EXPECT_TRUE(s.place != nullptr) << s.name;
    EXPECT_NE(s.default_selection, ServerSelectionKind::PaperDefault)
        << s.name;
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_TRUE(cli_names.insert(s.cli_name).second)
        << "duplicate cli name " << s.cli_name;
    EXPECT_TRUE(markers.insert(s.marker).second)
        << "duplicate marker " << s.marker;
    // strategy_for must resolve the entry's own kind back to it.
    EXPECT_STREQ(strategy_for(s.kind).name, s.name);
  }
}

TEST(StrategyRegistry, LookupByDisplayAndCliName) {
  for (const PlacementStrategy& s : placement_registry()) {
    const PlacementStrategy* by_display = strategy_by_name(s.name);
    const PlacementStrategy* by_cli = strategy_by_name(s.cli_name);
    ASSERT_NE(by_display, nullptr) << s.name;
    ASSERT_NE(by_cli, nullptr) << s.cli_name;
    EXPECT_EQ(by_display->kind, s.kind);
    EXPECT_EQ(by_cli->kind, s.kind);
  }
  EXPECT_EQ(strategy_by_name("not-a-heuristic"), nullptr);
  EXPECT_FALSE(heuristic_from_name("Nope").has_value());
  // CLI spellings resolve through the optional-returning helper too.
  EXPECT_EQ(heuristic_from_name("sbu"), HeuristicKind::SubtreeBottomUp);
  EXPECT_EQ(heuristic_from_name("sbu-no-coalesce"),
            HeuristicKind::SbuNoCoalesce);
}

TEST(StrategyRegistry, PaperSelectionPairing) {
  EXPECT_EQ(strategy_for(HeuristicKind::Random).default_selection,
            ServerSelectionKind::RandomChoice);
  EXPECT_EQ(strategy_for(HeuristicKind::RandomPairGrouping).default_selection,
            ServerSelectionKind::RandomChoice);
  for (HeuristicKind k :
       {HeuristicKind::CompGreedy, HeuristicKind::CommGreedy,
        HeuristicKind::SubtreeBottomUp, HeuristicKind::ObjectGrouping,
        HeuristicKind::ObjectAvailability, HeuristicKind::SbuNoCoalesce}) {
    EXPECT_EQ(strategy_for(k).default_selection,
              ServerSelectionKind::ThreeLoop)
        << heuristic_name(k);
  }
}

TEST(StrategyRegistry, AblationKindsRunTheFullAllocatorPipeline) {
  const auto f = fig1a_fixture(1.0, 10.0);
  for (HeuristicKind k :
       {HeuristicKind::SbuNoCoalesce, HeuristicKind::RandomPairGrouping}) {
    Rng rng(11);
    const AllocationOutcome out = allocate(f.problem(), k, rng);
    EXPECT_TRUE(out.success)
        << heuristic_name(k) << ": " << out.failure_reason;
    EXPECT_GT(out.cost, 0.0);
  }
}

} // namespace
} // namespace insp
