// Zero-allocation contract for the steady-state hot paths (docs/DESIGN.md
// §11): after one warmup pass has sized every persistent scratch buffer —
// the PlacementState batch arenas, the journal vectors, the flat link
// ledger, the thread-local repair scratch — further probes, batch probes,
// committed move ping-pongs and repair-style scans must perform ZERO heap
// allocations.  The test compiles in the global counting operator new
// (util/alloc_counter.hpp) and fails on any non-zero delta, so a
// reintroduced per-call temporary anywhere under these paths is caught
// exactly, not statistically.
#define INSP_DEFINE_COUNTING_ALLOCATOR
#include "util/alloc_counter.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "../test_helpers.hpp"
#include "core/placement_state.hpp"
#include "util/rng.hpp"

namespace insp {
namespace {

using testhelpers::Fixture;
using testhelpers::random_fixture;

/// Seats every operator somewhere (relaxed, so even tight instances end up
/// fully assigned) and returns the state ready for steady-state probing.
PlacementState seated_state(const Fixture& f, int procs_to_buy) {
  PlacementState state(f.problem());
  const auto& configs = f.catalog.by_cost();
  for (int i = 0; i < procs_to_buy; ++i) {
    state.buy(configs[configs.size() - 1 - (i % 2)]);
  }
  const std::vector<int> live = state.live_processors();
  const int n_ops = f.tree.num_operators();
  for (int op = 0; op < n_ops; ++op) {
    if (!state.try_place_relaxed(op, live[op % live.size()])) {
      state.search_place(op, live[op % live.size()]);
    }
  }
  return state;
}

template <typename Fn>
long long alloc_delta_over(Fn&& body) {
  const long long before = alloc_counter::allocations();
  body();
  return alloc_counter::allocations() - before;
}

TEST(ZeroAllocProbe, SteadyStateBatchAndScalarProbesDoNotAllocate) {
  const Fixture f = random_fixture(7, 24, 1.2);
  PlacementState state = seated_state(f, 4);
  const std::vector<int> live = state.live_processors();
  const int n_ops = f.tree.num_operators();

  std::vector<unsigned char> verdicts;
  std::vector<int> group = {0, 1, 2};
  auto probe_round = [&] {
    for (int op = 0; op < n_ops; ++op) {
      group[0] = op;
      state.can_place_batch(group, live, verdicts);
      state.can_place_batch_relaxed(group, live, verdicts);
      for (int pid : live) {
        (void)state.can_place(op, pid);
        (void)state.can_place_relaxed(op, pid);
      }
      (void)state.first_feasible_target(op, live);
      (void)state.first_feasible_target(op, live, /*relaxed=*/true);
    }
  };

  // Warmup sizes every arena, journal and verdict buffer.
  probe_round();
  probe_round();

  const long long delta = alloc_delta_over(probe_round);
  EXPECT_EQ(delta, 0)
      << "steady-state probes allocated " << delta << " times";
}

TEST(ZeroAllocProbe, CommittedMovePingPongDoesNotAllocate) {
  const Fixture f = random_fixture(11, 20, 1.1);
  PlacementState state = seated_state(f, 4);
  const std::vector<int> live = state.live_processors();
  ASSERT_GE(live.size(), 2u);
  const int n_ops = f.tree.num_operators();

  // Find an operator that can actually bounce between two processors.
  int op = -1, a = -1, b = -1;
  for (int cand = 0; cand < n_ops && op < 0; ++cand) {
    for (std::size_t i = 0; i < live.size() && op < 0; ++i) {
      for (std::size_t j = 0; j < live.size(); ++j) {
        if (i == j) continue;
        if (state.try_place_relaxed(cand, live[i]) &&
            state.try_place_relaxed(cand, live[j])) {
          op = cand;
          a = live[i];
          b = live[j];
          break;
        }
      }
    }
  }
  if (op < 0) GTEST_SKIP() << "instance too tight for a movable operator";

  auto ping_pong = [&] {
    for (int r = 0; r < 50; ++r) {
      ASSERT_TRUE(state.try_place_relaxed(op, a));
      ASSERT_TRUE(state.try_place_relaxed(op, b));
    }
  };
  ping_pong();  // warmup: ledger capacity, journals, scratch
  const long long delta = alloc_delta_over(ping_pong);
  EXPECT_EQ(delta, 0)
      << "committed move ping-pong allocated " << delta << " times";
}

TEST(ZeroAllocProbe, RepairStyleScanDoesNotAllocate) {
  const Fixture f = random_fixture(13, 24, 1.3);
  PlacementState state = seated_state(f, 3);
  const std::vector<int> live = state.live_processors();
  const int n_ops = f.tree.num_operators();

  std::vector<int> over_procs;
  std::vector<std::pair<int, int>> over_links;
  std::vector<int> cands;
  auto repair_scan = [&] {
    state.overloaded_processors(over_procs);
    state.overloaded_links(over_links);
    for (int pid : over_procs) {
      for (int op : state.ops_on(pid)) {
        double crossing = 0.0;
        state.visit_neighbors(op, [&](int nb, MBps volume) {
          const int q = state.proc_of(nb);
          if (q != kNoNode && q != pid) crossing += volume;
        });
        (void)crossing;
        cands.clear();
        for (int q : live) {
          if (q != pid) cands.push_back(q);
        }
        (void)state.first_feasible_target(op, cands, /*relaxed=*/true);
      }
    }
    // The scan is only interesting if the instance is actually overloaded.
    for (int op = 0; op < n_ops; ++op) {
      cands.clear();
      for (int q : live) cands.push_back(q);
      (void)state.first_feasible_target(op, cands, /*relaxed=*/true);
    }
  };

  repair_scan();
  repair_scan();
  const long long delta = alloc_delta_over(repair_scan);
  EXPECT_EQ(delta, 0)
      << "repair-style scan allocated " << delta << " times";
}

} // namespace
} // namespace insp
